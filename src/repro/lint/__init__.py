"""reprolint — repo-specific static analysis for the ALP reproduction.

Generic linters cannot see the invariants this codebase lives on: exact
int64/uint64 semantics in the ALP round-trip, bit widths that must stay
inside ``[0, 64]``, hot kernels that must never fall back to per-value
Python loops, observability span names that the docs promise, and format
constants that must have a single authoritative definition.  reprolint
encodes those invariants as ten rule families:

- **RL1 dtype/overflow** — signed/unsigned numpy mixes (``int64 op
  uint64`` silently promotes to float64), shift amounts that can reach
  the dtype bit width, value-changing ``astype`` casts where a ``view``
  is meant, and unexplained narrowing casts.
- **RL2 hot-loop** — per-value Python ``for``/``while`` loops inside the
  word-parallel kernel modules (``bitpack``, ``ffor``, ``alp``,
  ``sampler``, ``alprd``), except in pinned ``*_reference`` /
  ``*_bitmatrix`` / ``*_loop`` / ``*_scalar`` equivalence functions.
- **RL3 span hygiene** — ``obs`` spans must be entered via ``with`` and
  span/counter/gauge name literals must come from the registered-name
  registry (:mod:`repro.lint.names`), keeping ``docs/OBSERVABILITY.md``
  truthful.
- **RL4 format constants** — magic numbers for the vector size, the
  row-group size, the 64-bit mask and the dictionary code width must
  come from :mod:`repro.core.constants`.
- **RL5 bare assert** — library code must raise explicit errors
  (``assert`` vanishes under ``python -O``); asserts belong in tests.
- **RL6 async blocking** — no blocking calls (``time.sleep``, ``open``,
  ``socket.*``, direct :mod:`repro.api` codec work) inside ``async def``
  bodies under ``repro/server`` — the event loop must never block.
- **RL7 storage copy** — no single-argument ``bytes(...)``
  materialization of payload slices under ``repro/storage`` — the
  zero-copy read path hands payloads around as ``memoryview`` slices,
  and one stray copy silently re-inflates every read.
- **RL8 lock discipline** — CFG-based (:mod:`repro.lint.cfg`): fields
  mutated under a lock somewhere must be locked everywhere, no blocking
  call or ``await`` while a lock is held, and the cross-class
  lock-acquisition-order graph must stay acyclic (deadlock freedom).
- **RL9 resource linearity** — every ``BufferPool.acquire()`` /
  ``os.open()`` / ``open()`` binding must reach exactly one of
  ``release``/``transfer``/``close`` on *every* CFG path, exception
  edges included.
- **RL10 view escapes** — payload ``memoryview``s must not be stored
  into ``self``/module containers, yielded past the owning reader's
  ``with`` scope, or captured by closures that outlive it.

Violations can be suppressed per line with ``# reprolint:
ignore[RL1]`` (a trailing comment on the flagged line, or a standalone
comment on the line above); see ``docs/STATIC_ANALYSIS.md`` for the
full catalog, examples, and how to add a rule.

Run it as ``alp-repro lint`` or ``python -m repro.lint``.
"""

from __future__ import annotations

from repro.lint.engine import (
    FileContext,
    Rule,
    Violation,
    lint_file,
    lint_paths,
)
from repro.lint.rules_assert import BareAssertRule
from repro.lint.rules_async import AsyncBlockingRule
from repro.lint.rules_const import FormatConstantRule
from repro.lint.rules_dtype import DtypeOverflowRule
from repro.lint.rules_hotloop import HotLoopRule
from repro.lint.rules_linearity import ResourceLinearityRule
from repro.lint.rules_locks import LockDisciplineRule
from repro.lint.rules_span import SpanHygieneRule
from repro.lint.rules_storage import StorageCopyRule
from repro.lint.rules_views import ViewEscapeRule

__all__ = [
    "ALL_RULES",
    "AsyncBlockingRule",
    "BareAssertRule",
    "DtypeOverflowRule",
    "FileContext",
    "FormatConstantRule",
    "HotLoopRule",
    "LockDisciplineRule",
    "ResourceLinearityRule",
    "Rule",
    "SpanHygieneRule",
    "StorageCopyRule",
    "ViewEscapeRule",
    "Violation",
    "lint_file",
    "lint_paths",
]

#: Every registered rule, in report order.
ALL_RULES: tuple[Rule, ...] = (
    DtypeOverflowRule(),
    HotLoopRule(),
    SpanHygieneRule(),
    FormatConstantRule(),
    BareAssertRule(),
    AsyncBlockingRule(),
    StorageCopyRule(),
    LockDisciplineRule(),
    ResourceLinearityRule(),
    ViewEscapeRule(),
)
