"""FPC — predictive floating-point compression (Burtscher &
Ratanaworabhan, IEEE TC 2009).

The predictive ancestor of the XOR family (paper §5, "Predictive
Schemes"): two hash-table predictors guess the next double from history,
the better guess is XORed with the actual value, and only the non-zero
tail bytes of the XOR are stored:

- **FCM** (finite context method): predicts from the last few values'
  pattern,
- **DFCM** (differential FCM): predicts the next *delta*.

Per value, one 4-bit header packs the predictor choice (1 bit) and the
number of leading zero *bytes* of the XOR (3 bits, value 4 is skipped
like the reference, which never encodes exactly 4); headers for two
consecutive values share a byte.  Included as the historical baseline
the XOR schemes are measured against — not part of the paper's Table 4,
but the natural extension point §5 describes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alputil.bits import double_to_bits

#: log2 of the predictor hash-table sizes.
FCM_BITS = 16
DFCM_BITS = 16


@dataclass(frozen=True)
class FpcEncoded:
    """An FPC-compressed block of doubles."""

    headers: bytes  # one nibble per value, two per byte
    payload: bytes  # residual bytes, concatenated
    count: int

    def size_bits(self) -> int:
        """Headers + residual payload."""
        return (len(self.headers) + len(self.payload)) * 8

    def bits_per_value(self) -> float:
        """Compressed bits per value."""
        return self.size_bits() / self.count if self.count else 0.0


def _leading_zero_bytes(x: int) -> int:
    """Count of leading zero bytes of a 64-bit value (8 for zero)."""
    if x == 0:
        return 8
    return 8 - (x.bit_length() + 7) // 8


def fpc_compress(values: np.ndarray) -> FpcEncoded:
    """Compress a float64 array with FPC."""
    values = np.ascontiguousarray(values, dtype=np.float64)
    if values.size == 0:
        return FpcEncoded(headers=b"", payload=b"", count=0)

    bits_list = double_to_bits(values).tolist()
    fcm_table = [0] * (1 << FCM_BITS)
    dfcm_table = [0] * (1 << DFCM_BITS)
    fcm_hash = 0
    dfcm_hash = 0
    last = 0
    mask64 = (1 << 64) - 1

    nibbles: list[int] = []
    payload = bytearray()
    for value in bits_list:
        fcm_prediction = fcm_table[fcm_hash]
        dfcm_prediction = (dfcm_table[dfcm_hash] + last) & mask64

        fcm_xor = value ^ fcm_prediction
        dfcm_xor = value ^ dfcm_prediction
        if _leading_zero_bytes(fcm_xor) >= _leading_zero_bytes(dfcm_xor):
            xor, predictor_bit = fcm_xor, 0
        else:
            xor, predictor_bit = dfcm_xor, 1

        zero_bytes = _leading_zero_bytes(xor)
        if zero_bytes == 4:  # reference quirk: 4 is encoded as 3
            zero_bytes = 3
        residual_len = 8 - zero_bytes
        code = zero_bytes if zero_bytes < 4 else zero_bytes - 1  # 0..7 in 3 bits
        nibbles.append((predictor_bit << 3) | code)
        payload += xor.to_bytes(8, "big")[8 - residual_len :] if residual_len else b""

        # Update predictor state.
        fcm_table[fcm_hash] = value
        fcm_hash = ((fcm_hash << 6) ^ (value >> 48)) & ((1 << FCM_BITS) - 1)
        delta = (value - last) & mask64
        dfcm_table[dfcm_hash] = delta
        dfcm_hash = ((dfcm_hash << 2) ^ (delta >> 40)) & ((1 << DFCM_BITS) - 1)
        last = value

    headers = bytearray()
    for i in range(0, len(nibbles), 2):
        high = nibbles[i]
        low = nibbles[i + 1] if i + 1 < len(nibbles) else 0
        headers.append((high << 4) | low)
    return FpcEncoded(
        headers=bytes(headers), payload=bytes(payload), count=values.size
    )


def fpc_decompress(encoded: FpcEncoded) -> np.ndarray:
    """Decompress an :class:`FpcEncoded` block back to float64."""
    if encoded.count == 0:
        return np.empty(0, dtype=np.float64)

    fcm_table = [0] * (1 << FCM_BITS)
    dfcm_table = [0] * (1 << DFCM_BITS)
    fcm_hash = 0
    dfcm_hash = 0
    last = 0
    mask64 = (1 << 64) - 1

    out = np.empty(encoded.count, dtype=np.uint64)
    payload = encoded.payload
    offset = 0
    for i in range(encoded.count):
        header_byte = encoded.headers[i // 2]
        nibble = (header_byte >> 4) if i % 2 == 0 else (header_byte & 0xF)
        predictor_bit = nibble >> 3
        code = nibble & 0b111
        zero_bytes = code if code < 4 else code + 1
        residual_len = 8 - zero_bytes
        xor = (
            int.from_bytes(payload[offset : offset + residual_len], "big")
            if residual_len
            else 0
        )
        offset += residual_len

        prediction = (
            dfcm_table[dfcm_hash] + last
        ) & mask64 if predictor_bit else fcm_table[fcm_hash]
        value = xor ^ prediction
        out[i] = value

        fcm_table[fcm_hash] = value
        fcm_hash = ((fcm_hash << 6) ^ (value >> 48)) & ((1 << FCM_BITS) - 1)
        delta = (value - last) & mask64
        dfcm_table[dfcm_hash] = delta
        dfcm_hash = ((dfcm_hash << 2) ^ (delta >> 40)) & ((1 << DFCM_BITS) - 1)
        last = value
    return out.view(np.float64)
