"""Router semantics: equivalence, failover, degradation, liveness.

The equivalence class pins the acceptance criterion that routing is
*transparent*: scan payloads byte-identical and sums bit-identical to a
direct single-node server while every shard is healthy.  Sums use
integer-valued doubles so every partial sum is exact — the merge-order
argument (docs/SHARDING.md) then guarantees bit-identity regardless of
partitioning.

Failover/degradation tests kill backends mid-flight and pin the
contract: replicated partitions answer identically with exactly one
``shard.failovers`` tick; unreplicated partitions degrade into
row-aligned quarantine tallies (``partial: true``) — never a failed
request.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import api, obs
from repro.server import (
    DatasetRegistry,
    ServerClient,
    ServerConfig,
    ServerError,
    run_in_thread,
)
from repro.server.loadgen import LoadgenConfig, run_loadgen
from repro.shard.router import RouterConfig, run_router_in_thread

VECTOR_SIZE = 128
ROWGROUP_VECTORS = 2
#: Values per row-group under OPTIONS.
ROWGROUP_VALUES = VECTOR_SIZE * ROWGROUP_VECTORS
OPTIONS = api.CompressionOptions(
    vector_size=VECTOR_SIZE, rowgroup_vectors=ROWGROUP_VECTORS
)


def _int_values(n=8_192, seed=0):
    """Integer-valued doubles: every partial sum is exact in float64."""
    rng = np.random.default_rng(seed)
    return rng.integers(-1_000, 1_000, size=n).astype(np.float64)


@pytest.fixture
def cluster(tmp_path):
    """Three backends serving identical files, plus the value arrays."""
    values = {
        "temps": _int_values(seed=1),
        "loads": _int_values(seed=2),
    }
    paths = []
    for name, vals in values.items():
        path = tmp_path / f"{name}.alpc"
        api.write(path, vals, OPTIONS)
        paths.append(path)
    handles = []
    for _ in range(3):
        registry = DatasetRegistry()
        for path in paths:
            registry.register_path(path)
        handles.append(run_in_thread(registry, ServerConfig(port=0)))
    try:
        yield handles, values
    finally:
        for handle in handles:
            handle.shutdown()


def _backends(handles):
    return tuple(f"127.0.0.1:{h.port}" for h in handles)


def _start_router(handles, **kwargs):
    kwargs.setdefault("replication", 2)
    config = RouterConfig(backends=_backends(handles), **kwargs)
    return run_router_in_thread(config)


def _client(port, **kwargs):
    return ServerClient("127.0.0.1", port, **kwargs)


@pytest.fixture
def metrics():
    obs.enable()
    obs.reset()
    yield obs
    obs.disable()
    obs.reset()


def _shard_counters():
    counters = obs.snapshot()["counters"]
    return {
        name: count
        for name, count in counters.items()
        if name.startswith("shard.")
    }


class TestEquivalence:
    def test_scan_payload_byte_identical(self, cluster):
        handles, _ = cluster
        router = _start_router(handles)
        try:
            with _client(handles[0].port) as direct, _client(
                router.port
            ) as routed:
                for dataset in ("temps", "loads"):
                    _, direct_body = direct.request(
                        "scan", {"dataset": dataset}
                    )
                    _, routed_body = routed.request(
                        "scan", {"dataset": dataset}
                    )
                    assert routed_body == direct_body
        finally:
            router.shutdown()

    def test_sum_bit_identical(self, cluster):
        handles, values = cluster
        router = _start_router(handles)
        try:
            with _client(handles[0].port) as direct, _client(
                router.port
            ) as routed:
                for dataset in ("temps", "loads"):
                    direct_sum, direct_fields = direct.sum(dataset)
                    routed_sum, routed_fields = routed.sum(dataset)
                    assert np.float64(routed_sum).view(
                        np.uint64
                    ) == np.float64(direct_sum).view(np.uint64)
                    assert routed_sum == float(np.sum(values[dataset]))
                    assert (
                        routed_fields["count"] == direct_fields["count"]
                    )
        finally:
            router.shutdown()

    def test_range_queries_match(self, cluster):
        handles, _ = cluster
        router = _start_router(handles)
        try:
            with _client(handles[0].port) as direct, _client(
                router.port
            ) as routed:
                dv, _ = direct.scan("temps", low=-50.0, high=50.0)
                rv, _ = routed.scan("temps", low=-50.0, high=50.0)
                assert np.array_equal(dv, rv)
                ds, _ = direct.sum("temps", low=-50.0, high=50.0)
                rs, _ = routed.sum("temps", low=-50.0, high=50.0)
                assert ds == rs
        finally:
            router.shutdown()

    def test_datasets_and_comp_pass_through(self, cluster):
        handles, _ = cluster
        router = _start_router(handles)
        try:
            with _client(handles[0].port) as direct, _client(
                router.port
            ) as routed:
                assert routed.datasets() == direct.datasets()
                direct_comp = direct.comp("temps")
                routed_comp = routed.comp("temps")
                assert (
                    routed_comp["compressed_bits"]
                    == direct_comp["compressed_bits"]
                )
        finally:
            router.shutdown()

    def test_partition_sizes_do_not_change_answers(self, cluster):
        handles, values = cluster
        expected = float(np.sum(values["temps"]))
        for partition_rowgroups in (1, 3, 100):
            router = _start_router(
                handles, partition_rowgroups=partition_rowgroups
            )
            try:
                with _client(router.port) as routed:
                    total, _ = routed.sum("temps")
                    assert total == expected
                    scanned, _ = routed.scan("temps")
                    assert np.array_equal(scanned, values["temps"])
            finally:
                router.shutdown()

    def test_errors_propagate_without_failover(self, cluster, metrics):
        handles, _ = cluster
        router = _start_router(handles)
        try:
            with _client(router.port) as routed:
                with pytest.raises(ServerError) as excinfo:
                    routed.scan("nope")
                assert excinfo.value.code == "not_found"
                with pytest.raises(ServerError) as excinfo:
                    routed.scan("temps", low=1.0, high=None)
                assert excinfo.value.code == "bad_request"
            assert _shard_counters().get("shard.failovers", 0) == 0
        finally:
            router.shutdown()


class TestProjection:
    @pytest.fixture
    def table_cluster(self, tmp_path):
        rng = np.random.default_rng(5)
        table = api.Table.from_arrays(
            {
                "bid": rng.integers(0, 500, 4_096).astype(np.float64),
                "ask": rng.integers(0, 500, 4_096).astype(np.float64),
            }
        )
        path = tmp_path / "prices.alpc"
        api.write_table(path, table, OPTIONS)
        handles = []
        for _ in range(3):
            registry = DatasetRegistry()
            registry.register_path(path)
            handles.append(run_in_thread(registry, ServerConfig(port=0)))
        try:
            yield handles, table
        finally:
            for handle in handles:
                handle.shutdown()

    def test_scan_columns_byte_identical(self, table_cluster):
        handles, _ = table_cluster
        router = _start_router(handles)
        try:
            with _client(handles[0].port) as direct, _client(
                router.port
            ) as routed:
                direct_fields, direct_body = direct.request(
                    "scan",
                    {"dataset": "prices", "columns": ["ask", "bid"]},
                )
                routed_fields, routed_body = routed.request(
                    "scan",
                    {"dataset": "prices", "columns": ["ask", "bid"]},
                )
                assert routed_body == direct_body
                assert (
                    routed_fields["counts"] == direct_fields["counts"]
                )
                assert (
                    routed_fields["schema"] == direct_fields["schema"]
                )
                split, _ = routed.scan_columns("prices", ["bid", "ask"])
                assert set(split) == {"bid", "ask"}
        finally:
            router.shutdown()


class TestFailover:
    def test_single_partition_failover_counts_once(
        self, cluster, metrics
    ):
        handles, values = cluster
        # One partition per column: the scatter is a single RPC, so the
        # failover accounting is deterministic — exactly one tick.
        router = _start_router(handles, partition_rowgroups=1_000)
        try:
            placed = router.router.shard_map[("temps", "temps")]
            assert len(placed) == 1
            _, replicas = placed[0]
            primary = replicas[0]
            victim = next(
                h for h in handles if f"127.0.0.1:{h.port}" == primary
            )
            victim.shutdown()
            obs.reset()
            with _client(router.port) as routed:
                scanned, fields = routed.scan("temps")
            assert np.array_equal(scanned, values["temps"])
            assert fields.get("partial") is None
            assert fields["values_quarantined"] == 0
            counters = _shard_counters()
            assert counters["shard.failovers"] == 1
            assert counters.get("shard.partial_responses", 0) == 0
            assert counters.get("shard.shards_missed", 0) == 0
        finally:
            router.shutdown()

    def test_ejected_backend_not_retried(self, cluster, metrics):
        handles, values = cluster
        router = _start_router(handles, partition_rowgroups=1_000)
        try:
            placed = router.router.shard_map[("temps", "temps")]
            _, replicas = placed[0]
            victim = next(
                h
                for h in handles
                if f"127.0.0.1:{h.port}" == replicas[0]
            )
            victim.shutdown()
            with _client(router.port) as routed:
                routed.scan("temps")  # ejects the dead primary
                obs.reset()
                scanned, _ = routed.scan("temps")
            assert np.array_equal(scanned, values["temps"])
            # The dead backend is inside its cool-down: demoted, not
            # dialled — the healthy replica answers with zero failovers.
            assert _shard_counters().get("shard.failovers", 0) == 0
        finally:
            router.shutdown()

    def test_replicated_scan_survives_any_single_kill(
        self, cluster, metrics
    ):
        handles, values = cluster
        router = _start_router(handles, replication=2)
        try:
            handles[0].shutdown()
            with _client(router.port) as routed:
                scanned, fields = routed.scan("temps")
                total, _ = routed.sum("loads")
            assert np.array_equal(scanned, values["temps"])
            assert total == float(np.sum(values["loads"]))
            assert fields.get("partial") is None
            counters = _shard_counters()
            assert counters.get("shard.partial_responses", 0) == 0
        finally:
            router.shutdown()


class TestPartialDegradation:
    def test_unreplicated_partitions_degrade_row_aligned(
        self, cluster, metrics
    ):
        handles, values = cluster
        router = _start_router(handles, replication=1)
        try:
            victim = handles[1]
            dead = f"127.0.0.1:{victim.port}"
            placed = router.router.shard_map[("temps", "temps")]
            lost = [p for p, replicas in placed if replicas[0] == dead]
            assert lost, "placement put nothing on the victim?"
            victim.shutdown()
            with _client(router.port) as routed:
                scanned, fields = routed.scan("temps")
                total, sum_fields = routed.sum("temps")
            lost_rows = sum(p.rows for p in lost)
            assert fields["partial"] is True
            assert fields["shards_missed"] == len(lost)
            assert fields["values_quarantined"] == lost_rows
            assert fields["count"] == values["temps"].size - lost_rows
            assert fields["count"] + fields["values_quarantined"] == (
                values["temps"].size
            )
            # The surviving values are exactly the surviving
            # partitions' slices, in partition order.
            expected = np.concatenate(
                [
                    values["temps"][
                        p.start * ROWGROUP_VALUES : p.stop
                        * ROWGROUP_VALUES
                    ]
                    for p, replicas in placed
                    if replicas[0] != dead
                ]
            )
            assert np.array_equal(scanned, expected)
            assert sum_fields["partial"] is True
            assert total == float(np.sum(expected))
            counters = _shard_counters()
            assert counters["shard.partial_responses"] == 2
            assert counters["shard.shards_missed"] >= len(lost)
        finally:
            router.shutdown()


class TestLoadgenThroughRouter:
    def test_mid_kill_run_answers_every_request(self, cluster):
        handles, _ = cluster
        router = _start_router(handles, replication=2)
        try:
            config = LoadgenConfig(
                port=router.port,
                clients=4,
                requests_per_client=25,
                deadline_ms=10_000.0,
                zipf_s=1.1,
                seed=3,
            )
            killer = threading.Timer(0.3, handles[2].shutdown)
            killer.start()
            try:
                result = run_loadgen(config)
            finally:
                killer.cancel()
            assert result.requests == 100
            assert result.error_count == 0, result.errors
            # p99 stays under the request deadline: failover, not hang.
            assert result.percentile(99) < 10.0
        finally:
            router.shutdown()


class TestRouterValidation:
    def test_mismatched_backends_rejected(self, tmp_path, cluster):
        handles, _ = cluster
        other = tmp_path / "other.alpc"
        api.write(other, _int_values(seed=9), OPTIONS)
        registry = DatasetRegistry()
        registry.register_path(other)
        odd = run_in_thread(registry, ServerConfig(port=0))
        try:
            with pytest.raises(ValueError, match="different datasets"):
                run_router_in_thread(
                    RouterConfig(
                        backends=_backends([handles[0], odd]),
                        replication=1,
                    )
                )
        finally:
            odd.shutdown()

    def test_empty_backends_rejected(self):
        with pytest.raises(ValueError, match="at least one backend"):
            RouterConfig(backends=())

    def test_unreachable_backend_fails_startup(self, cluster):
        handles, _ = cluster
        import socket

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            free_port = sock.getsockname()[1]
        with pytest.raises(ConnectionError):
            run_router_in_thread(
                RouterConfig(
                    backends=(
                        _backends(handles)[0],
                        f"127.0.0.1:{free_port}",
                    ),
                    replication=1,
                    discovery_retries=0,
                )
            )
