"""Tests for the histogram analysis helpers."""

import numpy as np

from repro.analysis.histograms import (
    exponent_histogram,
    precision_histogram,
    render_histogram,
    xor_zero_histograms,
)


class TestPrecisionHistogram:
    def test_fixed_precision_column(self):
        values = np.round(np.random.default_rng(0).uniform(1, 9, 500), 2)
        hist = precision_histogram(values)
        assert sum(hist.values()) == 500
        assert max(hist, key=hist.get) == 2

    def test_integers(self):
        hist = precision_histogram(np.arange(10.0))
        assert hist == {0: 10}


class TestExponentHistogram:
    def test_single_bucket_for_tight_range(self):
        values = np.random.default_rng(1).uniform(1.0, 2.0, 100)
        hist = exponent_histogram(values)
        assert set(hist) == {1023}

    def test_bucketing(self):
        values = np.array([1.0, 2.0, 4.0, 8.0])
        hist = exponent_histogram(values, bucket=4)
        assert sum(hist.values()) == 4
        assert all(k % 4 == 0 for k in hist)


class TestXorHistograms:
    def test_constant_column_all_64s(self):
        leading, trailing = xor_zero_histograms(np.full(100, 1.5), bucket=4)
        assert leading == {64: 99}
        assert trailing == {64: 99}

    def test_single_value_empty(self):
        leading, trailing = xor_zero_histograms(np.array([1.0]))
        assert leading == {} and trailing == {}

    def test_counts_sum(self):
        values = np.random.default_rng(2).uniform(0, 1, 200)
        leading, trailing = xor_zero_histograms(values)
        assert sum(leading.values()) == 199
        assert sum(trailing.values()) == 199


class TestRender:
    def test_render_contains_percentages(self):
        text = render_histogram({0: 5, 1: 15}, "demo")
        assert "demo" in text
        assert "75.0%" in text

    def test_render_empty(self):
        assert "(empty)" in render_histogram({}, "demo")

    def test_bar_scaling(self):
        text = render_histogram({0: 1, 1: 100}, "demo", width=10)
        lines = text.splitlines()[1:]
        assert lines[1].count("#") == 10  # peak gets full width
        assert lines[0].count("#") >= 1  # minimum one mark
