"""ALP per-vector encoding and decoding (Algorithms 1 and 2).

A vector of up to 1024 doubles is encoded with one shared exponent ``e``
and factor ``f``:

    d = fast_round(n * 10**e * 10**-f)          (ALP_enc, Formula 1)
    n = d * 10**f * 10**-e                      (ALP_dec, Formula 2)

Values whose decode does not reproduce the original *bit pattern* become
exceptions: their slot in the encoded vector is filled with the first
successfully encoded integer (so the FFOR bit width is unaffected) and
the raw double plus its 16-bit position are stored aside.  The encoded
integers are then compressed with FFOR.

Two decode paths are provided: the numpy-vectorized one (the analogue of
the paper's auto-vectorized/SIMD kernels) and a pure-scalar Python one
(the analogue of their ``-fno-vectorize`` build), which the Figure 4
implementation-sweep benchmark compares.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.constants import (
    EXCEPTION_SIZE_BITS,
    F10,
    IF10,
    VECTOR_HEADER_BITS,
)
from repro.core.fastround import fast_round
from repro.encodings.ffor import (
    FforEncoded,
    ffor_decode,
    ffor_decode_unfused,
    ffor_encode,
    ffor_sum,
    ffor_sum_reference,
)


@dataclass(frozen=True)
class AlpVector:
    """One ALP-encoded vector.

    Attributes:
        ffor: the FFOR-compressed int64 payload.
        exponent: shared decimal exponent ``e`` of the vector.
        factor: shared trailing-zero factor ``f`` of the vector.
        exc_values: raw doubles that failed the round-trip (bit patterns).
        exc_positions: their positions inside the vector (uint16).
        count: number of values in the vector.
    """

    ffor: FforEncoded
    exponent: int
    factor: int
    exc_values: np.ndarray  # float64
    exc_positions: np.ndarray  # uint16
    count: int

    @property
    def exception_count(self) -> int:
        """Number of exception values in this vector."""
        return int(self.exc_positions.size)

    def size_bits(self) -> int:
        """Storage footprint: FFOR payload + exceptions + vector header."""
        return (
            self.ffor.size_bits()
            + self.exception_count * EXCEPTION_SIZE_BITS
            + VECTOR_HEADER_BITS
        )

    def bits_per_value(self) -> float:
        """Compressed bits per value, the paper's Table 4 metric."""
        if self.count == 0:
            return 0.0
        return self.size_bits() / self.count


def alp_analyze(
    values: np.ndarray, exponent: int, factor: int
) -> tuple[np.ndarray, np.ndarray]:
    """Run ALP_enc + ALP_dec and report (encoded ints, exception mask).

    This is the shared primitive of encoding and of the sampler's size
    estimation.  The exception test is *bitwise* so that -0.0, NaN payloads
    and every other IEEE 754 corner survive compression exactly.
    """
    values = np.ascontiguousarray(values, dtype=np.float64)
    # Overflow to inf on huge inputs is expected: such values simply fail
    # the bitwise round-trip below and become exceptions.
    with np.errstate(over="ignore", invalid="ignore"):
        encoded = fast_round(values * F10[exponent] * IF10[factor])
        decoded = encoded * F10[factor] * IF10[exponent]
    exceptions = decoded.view(np.uint64) != values.view(np.uint64)
    return encoded, exceptions


def _finish_vector(
    values: np.ndarray,
    encoded: np.ndarray,
    exceptions: np.ndarray,
    exponent: int,
    factor: int,
) -> AlpVector:
    """Exception patching + FFOR for one analyzed vector.

    Shared tail of :func:`alp_encode_vector` and the batched
    :func:`alp_encode_rowgroup`; both paths therefore produce identical
    payload bytes for identical inputs.
    """
    exc_positions = np.flatnonzero(exceptions)
    if exc_positions.size:
        non_exc = np.flatnonzero(~exceptions)
        # FIND_FIRST_ENCODED: a placeholder that cannot widen the FFOR
        # bit width.  If the whole vector is exceptional, use 0.
        first_encoded = int(encoded[non_exc[0]]) if non_exc.size else 0
        encoded = encoded.copy()
        encoded[exc_positions] = first_encoded
        exc_values = values[exc_positions].copy()
    else:
        exc_values = np.empty(0, dtype=np.float64)

    if obs.ENABLED:
        obs.metrics.counter_add("alp.vectors_encoded", 1)
        obs.metrics.counter_add("alp.exceptions", int(exc_positions.size))
    return AlpVector(
        ffor=ffor_encode(encoded),
        exponent=exponent,
        factor=factor,
        exc_values=exc_values,
        # fits: positions < vector size <= 65535 (checked at compress time)
        exc_positions=exc_positions.astype(np.uint16),
        count=values.size,
    )


def alp_encode_vector(
    values: np.ndarray, exponent: int, factor: int
) -> AlpVector:
    """Encode one vector with a given (e, f) combination (Algorithm 1).

    The caller is expected to have chosen (e, f) via the sampler; this
    function performs the encode, verification, exception patching and
    FFOR steps.
    """
    with obs.span("alp.encode_vector"):
        values = np.ascontiguousarray(values, dtype=np.float64)
        encoded, exceptions = alp_analyze(values, exponent, factor)
        return _finish_vector(values, encoded, exceptions, exponent, factor)


def alp_encode_rowgroup(
    values: np.ndarray, exponent: int, factor: int, vector_size: int
) -> list[AlpVector]:
    """Encode a whole row-group under one (e, f) as a list of vectors.

    This is the batched common case (a single surviving candidate, so
    level-two sampling is skipped): ALP_enc + ALP_dec + the exception
    test run *once* over the full row-group instead of once per vector,
    and only the per-vector tail (exception patching + FFOR) loops.
    Output is vector-for-vector identical to calling
    :func:`alp_encode_vector` on each chunk.
    """
    with obs.span("alp.encode_rowgroup"):
        values = np.ascontiguousarray(values, dtype=np.float64)
        encoded, exceptions = alp_analyze(values, exponent, factor)
        return [
            _finish_vector(
                values[start : start + vector_size],
                encoded[start : start + vector_size],
                exceptions[start : start + vector_size],
                exponent,
                factor,
            )
            for start in range(0, values.size, vector_size)
        ]


def alp_decode_vector(
    vector: AlpVector, fused: bool = True, out: np.ndarray | None = None
) -> np.ndarray:
    """Decode one vector (Algorithm 2): UNFFOR, ALP_dec, then patch.

    ``fused=False`` switches to the unfused FFOR decode for the Figure 5
    fusion ablation; output is bit-identical either way.  ``out``, when
    given, receives the decoded values in place (a ``vector.count``-sized
    float64 slice) so batch callers can decode straight into one
    preallocated column instead of concatenating per-vector arrays.
    """
    with obs.span("alp.decode_vector"):
        unffor = ffor_decode if fused else ffor_decode_unfused
        encoded = unffor(vector.ffor)
        # Two separate multiplies (Formula 2), preserved exactly: folding
        # the constants would change rounding and break bit-exactness.
        scaled = encoded * F10[vector.factor]
        if out is None:
            decoded = scaled * IF10[vector.exponent]
        else:
            decoded = np.multiply(scaled, IF10[vector.exponent], out=out)
        if vector.exc_positions.size:
            decoded[vector.exc_positions.astype(np.int64)] = vector.exc_values
        obs.counter_add("alp.vectors_decoded")
        return decoded


def alp_decode_vector_scalar(vector: AlpVector) -> np.ndarray:
    """Pure-Python scalar decode of one vector.

    Every step — bit-unpacking, the FOR add, ALP_dec, exception patching
    — runs value-at-a-time with no array operations, mirroring the
    paper's ``-fno-vectorize`` build for the Figure 4 implementation
    sweep.
    """
    ffor = vector.ffor
    width = ffor.bit_width
    payload = ffor.payload
    reference = ffor.reference
    mul = float(F10[vector.factor])
    inv = float(IF10[vector.exponent])
    mask = (1 << width) - 1
    stream = int.from_bytes(payload, "big") if payload else 0
    total_bits = len(payload) * 8

    out = [0.0] * vector.count
    for i in range(vector.count):
        if width:
            shift = total_bits - (i + 1) * width
            d = ((stream >> shift) & mask) + reference
        else:
            d = reference
        out[i] = d * mul * inv
    for pos, value in zip(
        vector.exc_positions.tolist(), vector.exc_values.tolist(), strict=True
    ):
        out[pos] = value
    return np.asarray(out, dtype=np.float64)


def alp_sum_vector(vector: AlpVector) -> float:
    """SUM of one vector in the encoded domain (late materialization).

    For the non-exception slots ``sum(n_i) = (sum(d_i)) * 10^f * 10^-e``:
    the integer sum runs fused on the packed FFOR payload
    (:func:`~repro.encodings.ffor.ffor_sum`, exact in Python ints) and
    the two Formula-2 multiplies are applied *once per vector* instead of
    once per value.  Exception slots hold placeholders in the payload, so
    they are excluded from the integer sum (the sparse correction) and
    their raw doubles are added with the same pairwise ``np.sum`` the
    decode-then-aggregate path uses — NaN/Inf/±0.0 exception payloads
    therefore propagate exactly as they do after full decoding, and an
    all-exception vector is summed bit-identically to the decoded path.

    The exception-free result differs from summing the individually
    rounded decoded doubles only in final-ulp rounding: the encoded-
    domain sum rounds once (after an exact integer sum) where the
    decoded sum rounds per value, making the fused result at least as
    accurate.  ``docs/PERFORMANCE.md`` states the exact guarantees.
    """
    if vector.count == 0:
        return 0.0
    n_exceptions = vector.exception_count
    exc_sum = (
        float(np.sum(vector.exc_values)) if n_exceptions else 0.0
    )
    if obs.ENABLED:
        obs.metrics.counter_add("alp.vectors_summed_encoded", 1)
    if n_exceptions == vector.count:
        # Pure-exception vector: the decoded column would be exactly
        # ``exc_values`` — return its sum untouched (adding a 0.0 main
        # term would flip a -0.0 total to +0.0).
        return exc_sum
    exclude = vector.exc_positions if n_exceptions else None
    d_sum = ffor_sum(vector.ffor, exclude=exclude)
    # Two separate multiplies (Formula 2), matching alp_decode_vector's
    # operation order on the summed integer.
    main = float(d_sum) * float(F10[vector.factor]) * float(
        IF10[vector.exponent]
    )
    if n_exceptions:
        return main + exc_sum
    return main


def alp_sum_vector_reference(vector: AlpVector) -> float:
    """Scalar oracle for :func:`alp_sum_vector`: same math, unfused.

    Decodes the integers through the unfused FFOR path, accumulates the
    exact integer sum per value, and applies the identical scaling and
    exception correction — bit-identical to the fused kernel by
    construction, at per-value Python speed.
    """
    if vector.count == 0:
        return 0.0
    n_exceptions = vector.exception_count
    exc_sum = (
        float(np.sum(vector.exc_values)) if n_exceptions else 0.0
    )
    if n_exceptions == vector.count:
        return exc_sum
    exclude = (
        vector.exc_positions.astype(np.int64) if n_exceptions else None
    )
    d_sum = ffor_sum_reference(vector.ffor, exclude=exclude)
    main = float(d_sum) * float(F10[vector.factor]) * float(
        IF10[vector.exponent]
    )
    if n_exceptions:
        return main + exc_sum
    return main


def estimate_size_bits(
    values: np.ndarray, exponent: int, factor: int
) -> int:
    """Estimated compressed size of ``values`` under (e, f) in bits.

    This is the sampler's objective function: FFOR width of the
    non-exception integers times the count, plus 80 bits per exception
    (§3.2: "minimizes the sum of the exception size and the size of the
    bit-packed integers").
    """
    encoded, exceptions = alp_analyze(values, exponent, factor)
    n_exceptions = int(exceptions.sum())
    valid = encoded[~exceptions]
    if valid.size:
        spread = int(valid.max()) - int(valid.min())
        width = spread.bit_length()
    else:
        width = 64
    n_valid = values.size - n_exceptions
    return n_valid * width + n_exceptions * EXCEPTION_SIZE_BITS
