"""CRC32C (Castagnoli) checksums for the on-disk column format.

Format v3 protects every section of an ALPC file — header, each
row-group payload, and the footer — with a CRC32C, the checksum used by
iSCSI, ext4 and most columnar formats (Parquet, ORC).  The polynomial's
error-detection properties matter less here than the ecosystem
compatibility: a v3 file's checksums can be re-verified with any
standard crc32c implementation.

The environment bakes in no crc32c wheel and :mod:`zlib` only provides
the plain CRC32 polynomial, so the implementation is pure Python — in
two tiers:

- **scalar slicing-by-8** (:func:`crc32c_reference`): eight 256-entry
  tables fold one 64-bit chunk per loop iteration.  This is the pinned
  oracle for the equivalence tests and the "before" arm of the
  ``kernels/io`` benchmark, and the path small buffers (headers,
  footers) take.
- **lane-parallel numpy** (the default for buffers >=
  ``PARALLEL_MIN_BYTES``): the buffer is split into K equal chunks and
  all K CRC states advance in lockstep with vectorized table gathers,
  so each Python-level step folds ``8 * K`` bytes instead of 8.  The
  per-chunk CRCs are then merged with the standard GF(2)
  zero-extension operator (the ``crc32_combine`` construction): the
  byte-update ``s' = (s >> 8) ^ T[(s ^ b) & 0xFF]`` is affine over
  GF(2), so ``crc(s, a || b) = M_len(b)(crc(s, a)) ^ crc(0, b)`` with
  ``M_L`` the advance-by-L-zero-bytes matrix, computed once per chunk
  length by binary exponentiation.

Both tiers accept any C-contiguous buffer-protocol object —
``bytes``, ``bytearray``, ``memoryview`` (including slices of an
``mmap``) or a numpy byte array — without materializing an
intermediate ``bytes`` copy, which is what keeps mmap-backed payload
verification zero-copy (see ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

#: Reversed Castagnoli polynomial (0x1EDC6F41 bit-reflected).
_POLY = 0x82F63B78

#: Number of slicing tables (bytes folded per main-loop iteration).
_SLICES = 8

#: Buffers at least this long take the lane-parallel numpy path; the
#: scalar tier runs at single-digit MB/s in pure Python, so the
#: threshold is set where the numpy dispatch overhead amortizes.
PARALLEL_MIN_BYTES = 4096

#: Upper bound on the number of parallel CRC lanes.  More lanes mean
#: fewer Python-level loop iterations but a longer GF(2) combine pass;
#: 512 keeps the combine under ~3% of total cost at row-group sizes.
_MAX_LANES = 512


def _build_tables() -> tuple[tuple[int, ...], ...]:
    first = []
    for i in range(256):
        crc = i
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
        first.append(crc)
    tables = [first]
    for _ in range(1, _SLICES):
        prev = tables[-1]
        tables.append([(c >> 8) ^ first[c & 0xFF] for c in prev])
    return tuple(tuple(t) for t in tables)


_TABLES = _build_tables()
#: The same tables as one (8, 256) uint32 array for the lane kernel.
_NP_TABLES = np.array(_TABLES, dtype=np.uint32)


def _byte_view(data: object) -> "bytes | bytearray | memoryview":
    """A flat byte-indexable, copy-free view of any contiguous buffer.

    ``bytes``/``bytearray`` pass through untouched; everything else
    goes through ``memoryview(...).cast("B")``, which requires (and we
    check for, with a clear error) C-contiguity — a strided view has
    no zero-copy byte representation.
    """
    if isinstance(data, (bytes, bytearray)):
        return data
    view = data if isinstance(data, memoryview) else memoryview(data)
    if not view.c_contiguous:
        raise ValueError(
            "crc32c requires a C-contiguous buffer; got a non-contiguous "
            "memoryview (copy it with bytes(...) or np.ascontiguousarray "
            "first)"
        )
    return view.cast("B")


def _scalar_update(
    buf: "bytes | bytearray | memoryview", start: int, stop: int, crc: int
) -> int:
    """Advance the raw CRC state over ``buf[start:stop]``, slicing-by-8."""
    t0, t1, t2, t3, t4, t5, t6, t7 = _TABLES
    length = stop - start
    aligned = start + length - (length % _SLICES)
    i = start
    while i < aligned:
        low = crc ^ (
            buf[i]
            | (buf[i + 1] << 8)
            | (buf[i + 2] << 16)
            | (buf[i + 3] << 24)
        )
        crc = (
            t7[low & 0xFF]
            ^ t6[(low >> 8) & 0xFF]
            ^ t5[(low >> 16) & 0xFF]
            ^ t4[(low >> 24) & 0xFF]
            ^ t3[buf[i + 4]]
            ^ t2[buf[i + 5]]
            ^ t1[buf[i + 6]]
            ^ t0[buf[i + 7]]
        )
        i += _SLICES
    while i < stop:
        crc = (crc >> 8) ^ t0[(crc ^ buf[i]) & 0xFF]
        i += 1
    return crc


# --- GF(2) combine machinery -------------------------------------------
#
# A 32x32 GF(2) matrix is a tuple of 32 ints: entry j is the image of
# basis vector 1<<j.  All matrices used here are powers of the single
# advance-one-zero-byte operator, so they commute and binary
# exponentiation needs no order bookkeeping.


def _mat_apply(mat: tuple[int, ...], vec: int) -> int:
    out = 0
    idx = 0
    while vec:
        if vec & 1:
            out ^= mat[idx]
        vec >>= 1
        idx += 1
    return out


def _mat_mul(a: tuple[int, ...], b: tuple[int, ...]) -> tuple[int, ...]:
    return tuple(_mat_apply(a, col) for col in b)


def _one_zero_byte_matrix() -> tuple[int, ...]:
    # s' = (s >> 8) ^ T0[s & 0xFF] applied to each basis vector.
    t0 = _TABLES[0]
    cols = []
    for i in range(32):
        e = 1 << i
        cols.append((e >> 8) ^ t0[e & 0xFF])
    return tuple(cols)


_ZERO_BYTE_MATRIX = _one_zero_byte_matrix()
_IDENTITY = tuple(1 << i for i in range(32))


@lru_cache(maxsize=256)
def _zero_advance(length: int) -> tuple[int, ...]:
    """The GF(2) operator advancing a CRC state by ``length`` zero bytes."""
    if length == 0:
        return _IDENTITY
    if length == 1:
        return _ZERO_BYTE_MATRIX
    half = _zero_advance(length // 2)
    mat = _mat_mul(half, half)
    if length & 1:
        mat = _mat_mul(_ZERO_BYTE_MATRIX, mat)
    return mat


@lru_cache(maxsize=64)
def _zero_advance_tables(length: int) -> tuple[tuple[int, ...], ...]:
    """The advance operator as four 256-entry byte tables.

    Applying a 32x32 matrix bit by bit costs ~32 ops per lane; the
    table form costs 4 lookups + 3 XORs.  Chunk lengths recur across
    calls (payload sizes are quantized by the row-group layout), so
    the one-time table build amortizes via the cache.
    """
    mat = _zero_advance(length)
    tables = []
    for byte_pos in range(4):
        shift = byte_pos * 8
        tables.append(
            tuple(_mat_apply(mat, b << shift) for b in range(256))
        )
    return tuple(tables)


def _lanes_update(
    buf: "bytes | bytearray | memoryview", crc: int
) -> tuple[int, int]:
    """Advance ``crc`` over as much of ``buf`` as lanes cover.

    Returns ``(state, consumed)``; the caller finishes the ragged tail
    with :func:`_scalar_update`.
    """
    n = len(buf)
    lanes = min(_MAX_LANES, max(8, n // 256))
    chunk_len = (n // lanes) & ~7  # multiple of 8 for the 64-bit step
    if chunk_len < 64:
        return crc, 0
    arr = np.frombuffer(buf, dtype=np.uint8, count=lanes * chunk_len)
    chunks = arr.reshape(lanes, chunk_len)
    words = chunks.view("<u4")  # (lanes, chunk_len // 4)

    t0, t1, t2, t3, t4, t5, t6, t7 = _NP_TABLES
    states = np.zeros(lanes, dtype=np.uint32)
    states[0] = crc  # lane 0 continues the incoming state
    for step in range(chunk_len // 8):
        low = states ^ words[:, 2 * step]
        high = words[:, 2 * step + 1]
        states = (
            t7[low & 0xFF]
            ^ t6[(low >> 8) & 0xFF]
            ^ t5[(low >> 16) & 0xFF]
            ^ t4[low >> 24]
            ^ t3[high & 0xFF]
            ^ t2[(high >> 8) & 0xFF]
            ^ t1[(high >> 16) & 0xFF]
            ^ t0[high >> 24]
        )

    # Merge lane CRCs left to right: crc(s, a || b) over GF(2) is
    # M_len(b)(crc(s, a)) ^ crc(0, b).
    a0, a1, a2, a3 = _zero_advance_tables(chunk_len)
    lane_crcs = states.tolist()
    state = lane_crcs[0]
    for lane_crc in lane_crcs[1:]:
        state = (
            a0[state & 0xFF]
            ^ a1[(state >> 8) & 0xFF]
            ^ a2[(state >> 16) & 0xFF]
            ^ a3[state >> 24]
            ^ lane_crc
        )
    return state, lanes * chunk_len


def crc32c(data: object, value: int = 0) -> int:
    """CRC32C of ``data``, optionally continuing from a prior ``value``.

    Matches the standard crc32c convention (e.g. ``crc32c(b"123456789")``
    is ``0xE3069283``); chain calls by passing the previous return value
    to checksum a logical section held in multiple buffers.  ``data``
    may be any C-contiguous buffer-protocol object; no intermediate
    copy is made.
    """
    buf = _byte_view(data)
    n = len(buf)
    crc = (value & 0xFFFFFFFF) ^ 0xFFFFFFFF
    consumed = 0
    if n >= PARALLEL_MIN_BYTES:
        crc, consumed = _lanes_update(buf, crc)
    crc = _scalar_update(buf, consumed, n, crc)
    return crc ^ 0xFFFFFFFF


def crc32c_reference(data: object, value: int = 0) -> int:
    """The pinned scalar slicing-by-8 CRC32C (pre-lane-parallel path).

    Kept as the oracle for the equivalence tests and as the "before"
    arm of the ``kernels/io`` cold-read benchmark; bit-identical to
    :func:`crc32c` for every input.
    """
    buf = _byte_view(data)
    crc = (value & 0xFFFFFFFF) ^ 0xFFFFFFFF
    crc = _scalar_update(buf, 0, len(buf), crc)
    return crc ^ 0xFFFFFFFF
