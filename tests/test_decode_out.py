"""Decode-into-buffer (``out=``) contracts across the kernel stack."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro.core.compressor import (
    compress,
    decompress,
    decompress_parallel,
)
from repro.encodings.bitpack import pack_bits, unpack_bits, unpack_sum
from repro.encodings.ffor import ffor_decode, ffor_encode


def awkward_column(n: int, seed: int = 11) -> np.ndarray:
    """Doubles that force exception patching plus every IEEE special."""
    rng = np.random.default_rng(seed)
    values = np.round(rng.normal(0.0, 50.0, n), 2)
    # Exception-heavy stretch: values ALP cannot hit with one exponent.
    values[100:200] = rng.random(100) * 1e300
    values[::61] = np.nan
    values[1::73] = np.inf
    values[2::89] = -np.inf
    values[3::53] = -0.0
    return values


# ------------------------------------------------------------- bitpack


class TestUnpackBitsBuffers:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=2**13 - 1),
            min_size=0,
            max_size=300,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_buffer_types_round_trip(self, raw):
        values = np.array(raw, dtype=np.uint64)
        packed = pack_bits(values, 13)
        for wrap in (bytes, bytearray, memoryview):
            got = unpack_bits(wrap(packed), 13, values.size)
            np.testing.assert_array_equal(got, values)

    def test_mmap_style_memoryview_slice(self):
        values = np.arange(500, dtype=np.uint64) % 1000
        packed = pack_bits(values, 10)
        framed = b"\xAA" * 32 + packed + b"\xBB" * 32
        view = memoryview(framed)[32 : 32 + len(packed)]
        np.testing.assert_array_equal(
            unpack_bits(view, 10, values.size), values
        )
        assert unpack_sum(view, 10, values.size) == int(values.sum())

    def test_non_contiguous_buffer_rejected(self):
        packed = pack_bits(np.arange(64, dtype=np.uint64), 7)
        strided = memoryview(bytes(2 * len(packed)))[::2]
        with pytest.raises(ValueError, match="C-contiguous"):
            unpack_bits(strided, 7, 64)

    @given(
        st.integers(min_value=0, max_value=64),
        st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=60, deadline=None)
    def test_out_matches_alloc(self, width, count):
        rng = np.random.default_rng(width * 211 + count)
        hi = (1 << width) - 1 if width else 0
        values = rng.integers(0, hi + 1, count, dtype=np.uint64)
        packed = pack_bits(values, width)
        expect = unpack_bits(packed, width, count)
        target = np.empty(count, dtype=np.uint64)
        got = unpack_bits(packed, width, count, out=target)
        assert got is target
        np.testing.assert_array_equal(got, expect)

    def test_bad_out_rejected(self):
        packed = pack_bits(np.arange(8, dtype=np.uint64), 5)
        with pytest.raises(ValueError, match="uint64"):
            unpack_bits(packed, 5, 8, out=np.empty(8, dtype=np.int64))
        with pytest.raises(ValueError, match="exactly"):
            unpack_bits(packed, 5, 8, out=np.empty(9, dtype=np.uint64))
        with pytest.raises(ValueError, match="writable"):
            frozen = np.empty(8, dtype=np.uint64)
            frozen.setflags(write=False)
            unpack_bits(packed, 5, 8, out=frozen)


# ---------------------------------------------------------------- ffor


class TestFforOut:
    def test_out_matches_alloc(self):
        rng = np.random.default_rng(5)
        values = rng.integers(-(2**40), 2**40, 3000, dtype=np.int64)
        encoded = ffor_encode(values)
        expect = ffor_decode(encoded)
        target = np.empty(values.size, dtype=np.int64)
        got = ffor_decode(encoded, out=target)
        # The result is the caller's buffer (re-viewed as int64), not a
        # fresh allocation.
        assert np.shares_memory(got, target)
        np.testing.assert_array_equal(got, expect)
        np.testing.assert_array_equal(target, values)


# ------------------------------------------------- whole-column decode


class TestDecompressOut:
    @pytest.fixture(scope="class")
    def column(self):
        values = awkward_column(30_000)
        return values, compress(values, rowgroup_vectors=4)

    def test_serial_out_bit_identical(self, column):
        values, compressed = column
        target = np.empty(values.size, dtype=np.float64)
        got = decompress(compressed, out=target)
        assert got is target
        np.testing.assert_array_equal(
            got.view(np.uint64), values.view(np.uint64)
        )

    @pytest.mark.parametrize("threads", [2, 4])
    def test_parallel_out_bit_identical_to_serial(self, column, threads):
        values, compressed = column
        serial = decompress(compressed)
        target = np.empty(values.size, dtype=np.float64)
        got = decompress_parallel(compressed, threads=threads, out=target)
        assert got is target
        np.testing.assert_array_equal(
            got.view(np.uint64), serial.view(np.uint64)
        )

    def test_parallel_disjoint_slices_share_one_buffer(self, column):
        # Concurrent row-group decodes land in disjoint slices of the
        # caller's array; a canary prefix/suffix proves nobody strays.
        values, compressed = column
        canary = np.full(values.size + 128, 1e999, dtype=np.float64)
        window = canary[64:-64]
        got = decompress_parallel(compressed, threads=4, out=window)
        assert got.base is canary
        np.testing.assert_array_equal(
            got.view(np.uint64), values.view(np.uint64)
        )
        assert np.all(canary[:64] == np.inf)
        assert np.all(canary[-64:] == np.inf)

    def test_api_decompress_out(self, column):
        values, compressed = column
        target = np.empty(values.size, dtype=np.float64)
        got = api.decompress(compressed, out=target)
        assert got is target
        np.testing.assert_array_equal(
            got.view(np.uint64), values.view(np.uint64)
        )

    def test_bad_out_rejected(self, column):
        _, compressed = column
        with pytest.raises(ValueError, match="float64"):
            decompress(
                compressed, out=np.empty(compressed.count, dtype=np.int64)
            )
        with pytest.raises(ValueError):
            decompress(
                compressed,
                out=np.empty(compressed.count - 1, dtype=np.float64),
            )
        fortran_2d = np.empty((compressed.count, 1), dtype=np.float64)
        with pytest.raises(ValueError):
            decompress_parallel(compressed, out=fortran_2d)
