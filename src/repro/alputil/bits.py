"""IEEE 754 bit-level helpers.

Both the ALP family and every XOR baseline manipulate doubles through their
raw 64-bit representation.  This module provides zero-copy views between
float arrays and unsigned integer arrays, field extraction for the three
IEEE 754 segments (sign / exponent / mantissa), and vectorized
leading/trailing-zero counts used throughout the dataset analysis
(Table 2 of the paper) and the XOR baselines.
"""

from __future__ import annotations

import numpy as np

#: Number of mantissa bits in an IEEE 754 double.
DOUBLE_MANTISSA_BITS = 52
#: Number of exponent bits in an IEEE 754 double.
DOUBLE_EXPONENT_BITS = 11
#: Exponent bias of an IEEE 754 double.
DOUBLE_EXPONENT_BIAS = 1023

#: Number of mantissa bits in an IEEE 754 single-precision float.
FLOAT_MANTISSA_BITS = 23
#: Number of exponent bits in an IEEE 754 single-precision float.
FLOAT_EXPONENT_BITS = 8
#: Exponent bias of an IEEE 754 single-precision float.
FLOAT_EXPONENT_BIAS = 127


def double_to_bits(values: np.ndarray) -> np.ndarray:
    """Reinterpret a float64 array as uint64 without copying.

    >>> double_to_bits(np.array([1.0]))
    array([4607182418800017408], dtype=uint64)
    """
    values = np.ascontiguousarray(values, dtype=np.float64)
    return values.view(np.uint64)


def bits_to_double(bits: np.ndarray) -> np.ndarray:
    """Reinterpret a uint64 array as float64 without copying."""
    bits = np.ascontiguousarray(bits, dtype=np.uint64)
    return bits.view(np.float64)


def float32_to_bits(values: np.ndarray) -> np.ndarray:
    """Reinterpret a float32 array as uint32 without copying."""
    values = np.ascontiguousarray(values, dtype=np.float32)
    return values.view(np.uint32)


def bits_to_float32(bits: np.ndarray) -> np.ndarray:
    """Reinterpret a uint32 array as float32 without copying."""
    bits = np.ascontiguousarray(bits, dtype=np.uint32)
    return bits.view(np.float32)


def ieee754_sign(values: np.ndarray) -> np.ndarray:
    """Return the sign bit (0 or 1) of each double."""
    # fits: the shift leaves a single bit, so the value is 0 or 1
    return (double_to_bits(values) >> np.uint64(63)).astype(np.uint8)


def ieee754_exponent(values: np.ndarray) -> np.ndarray:
    """Return the raw (biased) 11-bit exponent of each double.

    The biased exponent is what the paper's Table 2 columns C9/C10 report
    (e.g. values near 1.0 have a biased exponent around 1023).
    """
    bits = double_to_bits(values)
    # The masked value fits 11 bits, so the uint64 -> int64 bit
    # reinterpretation is exact and avoids the astype copy.
    return ((bits >> np.uint64(DOUBLE_MANTISSA_BITS)) & np.uint64(0x7FF)).view(
        np.int64
    )


def ieee754_mantissa(values: np.ndarray) -> np.ndarray:
    """Return the raw 52-bit mantissa (fraction field) of each double."""
    bits = double_to_bits(values)
    return bits & np.uint64((1 << DOUBLE_MANTISSA_BITS) - 1)


def leading_zeros64(bits: np.ndarray) -> np.ndarray:
    """Vectorized count of leading zero bits of each uint64.

    ``leading_zeros64(0) == 64`` by convention, matching the behaviour the
    XOR schemes rely on (an all-zero XOR result means "identical value").
    """
    bits = np.asarray(bits, dtype=np.uint64)
    out = np.full(bits.shape, 64, dtype=np.int64)
    nonzero = bits != 0
    if np.any(nonzero):
        nz = bits[nonzero]
        # bit_length via log2 is unsafe near 2**53; do it with shifts.
        count = np.zeros(nz.shape, dtype=np.int64)
        work = nz.copy()
        for shift in (32, 16, 8, 4, 2, 1):
            mask = work >= (np.uint64(1) << np.uint64(shift))
            count[mask] += shift
            work[mask] >>= np.uint64(shift)
        out[nonzero] = 63 - count
    return out


def trailing_zeros64(bits: np.ndarray) -> np.ndarray:
    """Vectorized count of trailing zero bits of each uint64.

    ``trailing_zeros64(0) == 64`` by convention.
    """
    bits = np.asarray(bits, dtype=np.uint64)
    out = np.full(bits.shape, 64, dtype=np.int64)
    nonzero = bits != 0
    if np.any(nonzero):
        nz = bits[nonzero]
        # Isolate lowest set bit, then count its position.
        lowest = nz & (np.uint64(0) - nz)
        out[nonzero] = 63 - leading_zeros64(lowest)
    return out


def xor_with_previous(values: np.ndarray) -> np.ndarray:
    """XOR each double's bits with the previous value's bits.

    The first element is XORed with 0 (i.e. passed through unchanged),
    mirroring how the stream-based XOR schemes bootstrap.  This is the
    primitive behind Table 2 columns C14/C15 ("Previous Value XOR 0's
    Bits").
    """
    bits = double_to_bits(values)
    prev = np.empty_like(bits)
    prev[0] = 0
    prev[1:] = bits[:-1]
    return bits ^ prev
