"""Tests for the LWC+ALP cascade (DICT/RLE fronts, ALP/Delta domains)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import get_dataset
from repro.encodings.cascade import (
    cascade_compress,
    cascade_decompress,
)


def bitwise_equal(a, b):
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return a.shape == b.shape and np.array_equal(
        a.view(np.uint64), b.view(np.uint64)
    )


class TestFrontSelection:
    def test_plain_data_uses_alp(self):
        values = np.round(np.random.default_rng(0).uniform(0, 100, 8192), 2)
        encoded = cascade_compress(values)
        assert encoded.front == "alp"

    def test_run_heavy_data_uses_rle(self):
        values = np.repeat(
            np.round(np.random.default_rng(1).uniform(0, 9, 200), 1), 100
        )
        encoded = cascade_compress(values)
        assert encoded.front == "rle+alp"
        assert bitwise_equal(cascade_decompress(encoded), values)

    def test_duplicate_heavy_data_uses_dict(self):
        rng = np.random.default_rng(2)
        pool = np.round(rng.uniform(0, 100, 50), 6)
        values = rng.choice(pool, 20_000)
        encoded = cascade_compress(values)
        assert encoded.front == "dict+alp"
        assert bitwise_equal(cascade_decompress(encoded), values)

    def test_auto_never_beats_itself(self):
        # Auto selection must produce the min over {candidate, plain alp}.
        values = get_dataset("Bio-Temp", n=16_384)
        auto = cascade_compress(values)
        plain = cascade_compress(values, front="alp")
        assert auto.size_bits() <= plain.size_bits()

    def test_forced_front_respected(self):
        values = np.round(np.random.default_rng(3).uniform(0, 9, 4096), 1)
        encoded = cascade_compress(values, front="dict+alp")
        assert encoded.front == "dict+alp"
        assert bitwise_equal(cascade_decompress(encoded), values)

    def test_unknown_front_rejected(self):
        with pytest.raises(ValueError):
            cascade_compress(np.zeros(4), front="huffman")


class TestDomainEncoding:
    def test_high_precision_dictionary_prefers_delta(self):
        # NYC/29-style: a dictionary of full-precision doubles in a tight
        # range — sorted bit patterns are near-monotonic, Delta wins.
        values = get_dataset("NYC/29", n=20_000)
        encoded = cascade_compress(values, front="dict+alp")
        assert encoded.domain_encoding == "delta"
        assert bitwise_equal(cascade_decompress(encoded), values)

    def test_decimal_dictionary_prefers_alp(self):
        rng = np.random.default_rng(4)
        pool = np.round(rng.uniform(0, 100, 64), 1)
        values = rng.choice(pool, 20_000)
        encoded = cascade_compress(values, front="dict+alp")
        assert encoded.domain_encoding in ("alp", "delta")
        assert bitwise_equal(cascade_decompress(encoded), values)

    def test_delta_domain_roundtrips_negative_values(self):
        rng = np.random.default_rng(5)
        pool = (rng.uniform(-1, 1, 40) * math.pi)
        values = rng.choice(pool, 10_000)
        encoded = cascade_compress(values, front="dict+alp")
        assert bitwise_equal(cascade_decompress(encoded), values)


class TestCascadeRatios:
    def test_nyc29_cascade_beats_plain_alp(self):
        values = get_dataset("NYC/29", n=20_000)
        cascade = cascade_compress(values)
        plain = cascade_compress(values, front="alp")
        assert cascade.size_bits() < plain.size_bits() * 0.7

    def test_gov26_rle_cascade_is_tiny(self):
        values = get_dataset("Gov/26", n=120_000)
        encoded = cascade_compress(values)
        assert encoded.size_bits() / values.size < 1.0

    def test_empty(self):
        encoded = cascade_compress(np.empty(0))
        assert cascade_decompress(encoded).size == 0

    def test_special_values(self):
        values = np.tile(
            np.array([math.nan, math.inf, -0.0, 1.5, 5e-324]), 200
        )
        encoded = cascade_compress(values)
        assert bitwise_equal(cascade_decompress(encoded), values)

    @given(
        st.lists(
            st.sampled_from(
                [0.0, -0.0, 1.5, 2.25, math.pi, math.nan, math.inf, 99.99]
            ),
            max_size=400,
        ),
        st.sampled_from(["alp", "dict+alp", "rle+alp", None]),
    )
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_roundtrip(self, xs, front):
        values = np.array(xs, dtype=np.float64)
        encoded = cascade_compress(values, front=front)
        assert bitwise_equal(cascade_decompress(encoded), values)
