"""Clean counterexample for RL8: disciplined locking, no findings."""

import threading
import time


class CleanCounter:
    """Every ``_count`` access is locked; blocking happens outside."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0

    def add(self, n: int) -> None:
        with self._lock:
            self._count += n

    def wipe(self) -> None:
        with self._lock:
            self._count = 0

    def flush(self) -> float:
        with self._lock:
            snapshot = self._count
        time.sleep(0.0)  # blocking, but the lock is already released
        return float(snapshot)


class Ordered:
    """Two locks, always taken in the same order — no cycle."""

    def __init__(self) -> None:
        self._front_lock = threading.Lock()
        self._back_lock = threading.Lock()
        self.depth = 0

    def forward(self) -> None:
        with self._front_lock:
            with self._back_lock:
                self.depth += 1

    def forward_again(self) -> None:
        with self._front_lock:
            with self._back_lock:
                self.depth -= 1
