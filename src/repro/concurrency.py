"""Lock construction with a pluggable factory.

Every long-lived mutex in the serving/storage stack is created through
:func:`create_lock` instead of ``threading.Lock()`` directly.  In
production the indirection is free — no factory installed means a plain
``threading.Lock``.  Under test, the runtime lock-order sanitizer
(:mod:`repro.lint.sanitizer`) installs a factory that hands out
instrumented locks, which lets the *real* suites detect lock-order
inversions, re-entrant acquisitions, and blocking-while-holding at
runtime — the dynamic complement to reprolint's static RL8.

The ``name`` argument is a stable human label (``"ClassName._lock"``)
used by sanitizer reports and the acquisition-order graph; it is ignored
by the default factory.
"""

from __future__ import annotations

import threading
from typing import Callable, ContextManager, Protocol


class MutexLike(ContextManager[bool], Protocol):
    """What callers may assume about a created lock."""

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ...

    def release(self) -> None:
        ...

    def locked(self) -> bool:
        ...


LockFactory = Callable[[str], MutexLike]

_factory: LockFactory | None = None


def create_lock(name: str) -> MutexLike:
    """A mutex labelled ``name`` — from the installed factory, if any."""
    factory = _factory
    if factory is None:
        return threading.Lock()
    return factory(name)


def set_lock_factory(factory: LockFactory | None) -> LockFactory | None:
    """Install ``factory`` (``None`` restores the default); returns the
    previously installed factory so callers can nest cleanly."""
    global _factory
    previous = _factory
    _factory = factory
    return previous
