"""Elf — erasing-based lossless floating-point compression (Li et al.).

Elf observes that a double which originated as a decimal with ``alpha``
fraction digits does not need its full 52-bit mantissa: trailing
mantissa bits can be zeroed ("erased") at encode time as long as the
decoder can recover the original by rounding the erased double back to
``alpha`` decimal places.  The erased stream XOR-compresses far better
(more trailing zeros), which is how Elf beats Chimp128 on compression
ratio — at the price of being the slowest scheme in the paper's
evaluation, a trade-off this port shares.

Layout: a per-value metadata stream (1 flag bit; ``1`` is followed by a
5-bit ``alpha``) plus a Chimp-compressed stream of the (possibly erased)
values.  The reference implementation derives the erasable bit count
analytically; we find it by binary search on the recoverability
predicate, which is simpler and never erases less than the analytical
bound allows.
"""

from __future__ import annotations

from dataclasses import dataclass
from struct import pack as _struct_pack
from struct import unpack as _struct_unpack

import numpy as np
from repro.alputil.bitstream import BitReader, BitWriter
from repro.alputil.decimals import decimal_places, shortest_round
from repro.baselines.chimp import ChimpEncoded, chimp_compress, chimp_decompress

#: alpha is stored in 5 bits.
MAX_ALPHA = 17


def _erase(value: float, alpha: int) -> tuple[float, bool]:
    """Zero as many trailing mantissa bits as recoverability allows.

    Returns (erased value, erased?).  Recoverability means
    ``shortest_round(erased, alpha) == value`` bit-exactly.
    """
    bits = _struct_unpack("<Q", _struct_pack("<d", value))[0]

    def recoverable(erase_count: int) -> bool:
        erased_bits = bits & ~((1 << erase_count) - 1)
        erased = _struct_unpack("<d", _struct_pack("<Q", erased_bits))[0]
        recovered = shortest_round(erased, alpha)
        return _struct_unpack("<Q", _struct_pack("<d", recovered))[0] == bits

    low, high = 0, 52
    if not recoverable(0):  # not even the exact value survives rounding
        return value, False
    while low < high:
        mid = (low + high + 1) // 2
        if recoverable(mid):
            low = mid
        else:
            high = mid - 1
    if low == 0:
        return value, False
    erased_bits = bits & ~((1 << low) - 1)
    return _struct_unpack("<d", _struct_pack("<Q", erased_bits))[0], True


@dataclass(frozen=True)
class ElfEncoded:
    """An Elf-compressed block of doubles."""

    metadata: bytes  # flag/alpha bit stream
    backend: ChimpEncoded  # XOR-compressed (erased) values
    count: int

    def size_bits(self) -> int:
        """Metadata stream + XOR backend."""
        return len(self.metadata) * 8 + self.backend.size_bits()

    def bits_per_value(self) -> float:
        """Compressed bits per value."""
        return self.size_bits() / self.count if self.count else 0.0


def elf_compress(values: np.ndarray) -> ElfEncoded:
    """Compress a float64 array with Elf."""
    values = np.ascontiguousarray(values, dtype=np.float64)
    meta = BitWriter()
    erased_values = np.empty_like(values)
    for i, value in enumerate(values.tolist()):
        alpha = decimal_places(value)
        if 0 <= alpha <= MAX_ALPHA:
            erased, did_erase = _erase(value, alpha)
        else:
            erased, did_erase = value, False
        if did_erase:
            meta.write_bit(1)
            meta.write(alpha, 5)
            erased_values[i] = erased
        else:
            meta.write_bit(0)
            erased_values[i] = value
    return ElfEncoded(
        metadata=meta.finish(),
        backend=chimp_compress(erased_values),
        count=values.size,
    )


def elf_decompress(encoded: ElfEncoded) -> np.ndarray:
    """Decompress an :class:`ElfEncoded` block back to float64."""
    if encoded.count == 0:
        return np.empty(0, dtype=np.float64)
    erased = chimp_decompress(encoded.backend)
    reader = BitReader(encoded.metadata)
    out = erased.copy()
    for i in range(encoded.count):
        if reader.read_bit():
            alpha = reader.read(5)
            out[i] = shortest_round(float(erased[i]), alpha)
    return out
