"""Cross-module integration tests.

These tests wire several subsystems together the way a downstream user
would: datasets -> compressor -> serializer -> file -> engine, and check
the invariants that only hold when everything composes correctly:

- the logical size model (``size_bits``) tracks the physical serialized
  size,
- every codec agrees on every dataset (losslessness as a cross-cutting
  property),
- corrupted files fail loudly instead of returning wrong data.
"""

import struct

import numpy as np
import pytest

from repro.baselines.registry import CODECS, get_codec
from repro.core.compressor import compress, compress_rowgroup
from repro.data import DATASET_ORDER, get_dataset
from repro.query.engine import sum_query
from repro.query.sources import FileColumnSource, make_source
from repro import api
from repro.storage.columnfile import ColumnFileReader
from repro.storage.serializer import serialize_rowgroup


class TestSizeModelConsistency:
    @pytest.mark.parametrize(
        "name", ["City-Temp", "Stocks-USA", "POI-lat", "Gov/26", "CMS/25"]
    )
    def test_size_bits_tracks_serialized_bytes(self, name):
        values = get_dataset(name, n=20_000)
        rowgroup, _, _ = compress_rowgroup(values)
        payload = serialize_rowgroup(rowgroup)
        logical_bytes = rowgroup.size_bits() / 8
        physical_bytes = len(payload)
        # The size model counts packed payloads exactly and headers
        # approximately; the two must stay within a few percent + a
        # small constant (per-vector framing).
        slack = 0.08 * physical_bytes + 64 * len(
            rowgroup.alp.vectors if rowgroup.alp else rowgroup.rd.vectors
        )
        assert abs(physical_bytes - logical_bytes) <= slack, (
            name,
            physical_bytes,
            logical_bytes,
        )

    def test_file_size_tracks_column_size(self, tmp_path):
        values = get_dataset("Stocks-USA", n=250_000)
        column = compress(values)
        path = tmp_path / "col.alpc"
        api.write(path, values)
        file_bits = path.stat().st_size * 8
        assert file_bits == pytest.approx(column.size_bits(), rel=0.10)


class TestEveryCodecOnEveryDatasetFamily:
    # One dataset per structural family; the Table 4 bench covers all 30.
    FAMILIES = ("City-Temp", "CMS/9", "Gov/26", "NYC/29", "POI-lat")

    @pytest.mark.parametrize("dataset", FAMILIES)
    @pytest.mark.parametrize("codec_name", sorted(CODECS))
    def test_lossless(self, dataset, codec_name):
        values = get_dataset(dataset, n=6_000)
        bits = get_codec(codec_name).roundtrip_bits_per_value(values)
        assert 0 < bits < 100


class TestFileToEnginePath:
    def test_dataset_to_file_to_sum(self, tmp_path):
        values = get_dataset("Dew-Temp", n=150_000)
        path = tmp_path / "dew.alpc"
        api.write(path, values)
        source = FileColumnSource.open(path)
        assert sum_query(source) == pytest.approx(
            float(values.sum()), rel=1e-9
        )

    def test_in_memory_and_file_sources_agree(self, tmp_path):
        values = get_dataset("Btc-Price", n=120_000)
        path = tmp_path / "btc.alpc"
        api.write(path, values)
        memory = sum_query(make_source("alp", values))
        file_based = sum_query(FileColumnSource.open(path))
        assert memory == pytest.approx(file_based, rel=1e-12)


class TestCorruptionHandling:
    def _write(self, tmp_path):
        values = np.round(np.linspace(0, 10, 5000), 2)
        path = tmp_path / "col.alpc"
        api.write(path, values)
        return path

    def test_truncated_file_rejected(self, tmp_path):
        path = self._write(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises((ValueError, struct.error, IndexError)):
            ColumnFileReader(path)

    def test_flipped_magic_rejected(self, tmp_path):
        path = self._write(tmp_path)
        data = bytearray(path.read_bytes())
        data[0] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError):
            ColumnFileReader(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = self._write(tmp_path)
        data = bytearray(path.read_bytes())
        struct.pack_into("<H", data, 4, 99)
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError):
            ColumnFileReader(path)

    def test_footer_length_mismatch_detected(self, tmp_path):
        path = self._write(tmp_path)
        reader = ColumnFileReader(path)
        meta = reader.metadata[0]
        # Corrupt the in-memory footer length and verify the framing check.
        from dataclasses import replace

        reader._meta[0] = replace(meta, length=meta.length - 3)
        with pytest.raises(ValueError):
            reader.read_rowgroup(0)


class TestAdaptivityAcrossCorpus:
    def test_rd_only_on_poi(self):
        for name in DATASET_ORDER:
            values = get_dataset(name, n=10_240)
            column = compress(values)
            expects_rd = name in ("POI-lat", "POI-lon")
            assert column.uses_rd == expects_rd, name

    def test_all_datasets_compress_below_raw(self):
        for name in DATASET_ORDER:
            values = get_dataset(name, n=10_240)
            column = compress(values)
            assert column.bits_per_value() < 64, name
