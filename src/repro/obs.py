"""Lightweight observability: counters, gauges and timer spans.

The ALP pipeline is instrumented at every stage boundary (sampling,
scheme selection, encode/decode, bit-packing, storage I/O, query
operators) with three primitive kinds:

- **counters** — monotonically increasing event/byte tallies,
- **gauges** — last-written values (e.g. bits/value of the last column),
- **spans** — context-manager wall-clock timers that nest: entering a
  span inside another records under the path ``outer/inner``, so one
  snapshot shows where the time inside ``compressor.compress`` went.

Metrics are **disabled by default** and the disabled fast path is a
single module-global flag test per call site (no allocation, no locking,
no string formatting), measured at well under 1% of the tier-1 suite
runtime.  Enable with :func:`enable`, the ``REPRO_OBS=1`` environment
variable, or the ``alp-repro stats`` CLI subcommand.

All state lives in the module-level :data:`metrics` registry;
:meth:`MetricsRegistry.snapshot` exports it as a JSON-ready dict (the
same shape embedded in the ``BENCH_*.json`` benchmark records — see
``docs/OBSERVABILITY.md``).

Thread-safety: counter/gauge/span aggregation is lock-protected, and the
span nesting stack is thread-local, so ``compress_parallel`` and
partitioned query scans record correctly (their spans nest under the
worker thread's own stack, not the spawning thread's).
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from types import TracebackType

from repro.concurrency import create_lock

__all__ = [
    "MetricsRegistry",
    "SpanStat",
    "counter_add",
    "disable",
    "enable",
    "enabled",
    "gauge_set",
    "metrics",
    "reset",
    "snapshot",
    "snapshot_json",
    "span",
]

#: Global on/off switch.  Call sites test this one module global before
#: doing any metric work; it is mutated only by :func:`enable` /
#: :func:`disable`.  Read it via :func:`enabled` from application code.
ENABLED = False


class _NullSpan:
    """Shared no-op context manager returned while metrics are disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        return False


_NULL_SPAN = _NullSpan()


@dataclass
class SpanStat:
    """Aggregate timing of one span path: count, total, min, max."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = field(default=float("inf"))
    max_s: float = 0.0

    def record(self, elapsed: float) -> None:
        self.count += 1
        self.total_s += elapsed
        if elapsed < self.min_s:
            self.min_s = elapsed
        if elapsed > self.max_s:
            self.max_s = elapsed

    def as_dict(self) -> dict[str, float]:
        mean = self.total_s / self.count if self.count else 0.0
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": mean,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }


class _Span:
    """A live timer span; use via ``with registry.span(name):``."""

    __slots__ = ("_registry", "_name", "_path", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_Span":
        self._path = self._registry._push(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        elapsed = time.perf_counter() - self._start
        self._registry._pop(self._path, elapsed)
        return False


class MetricsRegistry:
    """Holds all counters, gauges and span aggregates.

    The module-level :data:`metrics` instance is the one the pipeline
    writes to; independent registries can be created for tests.
    """

    def __init__(self) -> None:
        self._lock = create_lock("MetricsRegistry._lock")
        self._local = threading.local()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._spans: dict[str, SpanStat] = {}

    # -- recording ----------------------------------------------------

    def counter_add(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (creating it at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge_set(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def span(self, name: str) -> _Span:
        """A context manager timing one stage; nests via the name stack."""
        return _Span(self, name)

    # -- span nesting internals (thread-local stack) ------------------

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, name: str) -> str:
        stack = self._stack()
        path = f"{stack[-1]}/{name}" if stack else name
        stack.append(path)
        return path

    def _pop(self, path: str, elapsed: float) -> None:
        stack = self._stack()
        if stack and stack[-1] == path:
            stack.pop()
        with self._lock:
            stat = self._spans.get(path)
            if stat is None:
                stat = self._spans[path] = SpanStat()
            stat.record(elapsed)

    # -- export -------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """JSON-ready view of everything recorded so far."""
        with self._lock:
            return {
                "enabled": ENABLED,
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "spans": {
                    path: stat.as_dict()
                    for path, stat in sorted(self._spans.items())
                },
            }

    def snapshot_json(self, indent: int | None = 2) -> str:
        """The snapshot serialized to a JSON string."""
        return json.dumps(self.snapshot(), indent=indent)

    def reset(self) -> None:
        """Drop every recorded value (the enabled flag is untouched)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._spans.clear()


#: The registry every instrumented call site writes to.
metrics = MetricsRegistry()


def enable() -> None:
    """Turn metric recording on (module-wide)."""
    global ENABLED
    ENABLED = True


def disable() -> None:
    """Turn metric recording off; already-recorded values are kept."""
    global ENABLED
    ENABLED = False


def enabled() -> bool:
    """Is metric recording currently on?"""
    return ENABLED


def counter_add(name: str, value: float = 1) -> None:
    """Add to a counter on the global registry (no-op when disabled)."""
    if ENABLED:
        metrics.counter_add(name, value)


def gauge_set(name: str, value: float) -> None:
    """Set a gauge on the global registry (no-op when disabled)."""
    if ENABLED:
        metrics.gauge_set(name, value)


def span(name: str) -> _Span | _NullSpan:
    """Timer span on the global registry; a shared no-op when disabled.

    The disabled path allocates nothing: every call returns the same
    inert context manager.
    """
    if ENABLED:
        return metrics.span(name)
    return _NULL_SPAN


def snapshot() -> dict[str, object]:
    """Snapshot of the global registry."""
    return metrics.snapshot()


def snapshot_json(indent: int | None = 2) -> str:
    """JSON snapshot of the global registry."""
    return metrics.snapshot_json(indent=indent)


def reset() -> None:
    """Clear the global registry."""
    metrics.reset()


if os.environ.get("REPRO_OBS", "") not in ("", "0"):
    enable()
