"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture
def doubles_file(tmp_path):
    rng = np.random.default_rng(0)
    values = np.round(rng.uniform(0, 100, 5000), 2)
    path = tmp_path / "input.f64"
    path.write_bytes(values.astype("<f8").tobytes())
    return path, values


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compress_args(self):
        args = build_parser().parse_args(["compress", "a.f64", "b.alpc"])
        assert args.input == "a.f64"
        assert args.output == "b.alpc"


class TestCompressDecompress:
    def test_roundtrip_raw(self, doubles_file, tmp_path, capsys):
        src, values = doubles_file
        alpc = tmp_path / "col.alpc"
        out = tmp_path / "out.f64"
        assert main(["compress", str(src), str(alpc)]) == 0
        assert "bits/value" in capsys.readouterr().out
        assert main(["decompress", str(alpc), str(out)]) == 0
        restored = np.frombuffer(out.read_bytes(), dtype="<f8")
        assert np.array_equal(restored, values)

    def test_roundtrip_npy(self, tmp_path):
        values = np.round(np.linspace(0, 10, 3000), 3)
        src = tmp_path / "input.npy"
        np.save(src, values)
        alpc = tmp_path / "col.alpc"
        out = tmp_path / "out.npy"
        assert main(["compress", str(src), str(alpc)]) == 0
        assert main(["decompress", str(alpc), str(out)]) == 0
        assert np.array_equal(np.load(out), values)

    def test_misaligned_raw_rejected(self, tmp_path):
        bad = tmp_path / "bad.f64"
        bad.write_bytes(b"123")
        with pytest.raises(SystemExit):
            main(["compress", str(bad), str(tmp_path / "x.alpc")])


class TestInspect:
    def test_inspect_lists_rowgroups(self, doubles_file, tmp_path, capsys):
        src, _ = doubles_file
        alpc = tmp_path / "col.alpc"
        main(["compress", str(src), str(alpc)])
        capsys.readouterr()
        assert main(["inspect", str(alpc)]) == 0
        out = capsys.readouterr().out
        assert "row-groups" in out
        assert "alp" in out


class TestRatio:
    def test_ratio_single_dataset(self, capsys):
        assert main(["ratio", "--n", "4096", "City-Temp"]) == 0
        out = capsys.readouterr().out
        assert "City-Temp" in out

    def test_ratio_multiple_codecs(self, capsys):
        assert (
            main(
                [
                    "ratio",
                    "--n",
                    "4096",
                    "--codec",
                    "alp",
                    "--codec",
                    "patas",
                    "SD-bench",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "patas" in out

    def test_unknown_codec_rejected(self):
        with pytest.raises(SystemExit):
            main(["ratio", "--codec", "nope", "City-Temp"])


class TestAnalyze:
    def test_analyze_dataset_name(self, capsys):
        assert main(["analyze", "City-Temp", "--n", "4096"]) == 0
        out = capsys.readouterr().out
        assert "Compressibility report" in out
        assert "ALP (decimal encoding)" in out

    def test_analyze_file(self, doubles_file, capsys):
        src, _ = doubles_file
        assert main(["analyze", str(src), "--n", "4096"]) == 0
        assert "prediction" in capsys.readouterr().out


class TestChoose:
    def test_choose_dataset(self, capsys):
        assert main(["choose", "Gov/26", "--n", "30000"]) == 0
        out = capsys.readouterr().out
        assert "chosen codec : lwc+alp" in out

    def test_choose_gps(self, capsys):
        assert main(["choose", "POI-lat-gps", "--n", "20000"]) == 0
        assert "alp-pi" in capsys.readouterr().out


class TestDatasets:
    def test_lists_all_thirty(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "POI-lat" in out and "Gov/26" in out
        assert len(out.strip().splitlines()) == 31  # header + 30
