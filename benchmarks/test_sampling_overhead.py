"""E8 — §4.2 "Sampling Overhead in Compression" statistics.

The paper instruments the two-level sampler over all datasets and
reports:

- ~54% of vectors skip second-level sampling entirely (k' == 1),
- among sampled vectors, trying 2 or 3 combinations is common and 4-5
  rare (22.9% / 20.0% / 2.9% / 0.3% of all vectors),
- brute-force search over the full 253-combination space improves the
  compression ratio by < 1% on average over the sampled choice.

We compress every dataset with the instrumented compressor and print
the same statistics, then run the brute-force-vs-sampling ratio
comparison on a subset.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import bench_n
from repro.bench.report import format_table, shape_check
from repro.core.alp import alp_encode_vector
from repro.core.compressor import compress
from repro.core.constants import VECTOR_SIZE
from repro.core.sampler import find_best_combination
from repro.data import DATASET_ORDER, DATASETS

BRUTE_FORCE_DATASETS = (
    "City-Temp",
    "Stocks-USA",
    "Btc-Price",
    "CMS/1",
    "Food-prices",
    "SD-bench",
)


def _sampling_stats(dataset_cache):
    n = min(bench_n(), 32_768)
    skipped = 0
    encoded_vectors = 0
    tried = []
    per_dataset = {}
    for name in DATASET_ORDER:
        if DATASETS[name].expects_rd:
            continue
        column = compress(dataset_cache(name, n))
        stats = column.stats
        skipped += stats.second_level_skipped
        encoded_vectors += stats.vectors_encoded
        tried.extend(stats.combinations_tried)
        per_dataset[name] = (
            stats.second_level_skipped,
            stats.vectors_encoded,
        )
    return skipped, encoded_vectors, tried, per_dataset


def _brute_force_gap(dataset_cache):
    """Compare sampled-choice ratio vs full-search-per-vector ratio."""
    n = min(bench_n(), 16_384)
    gaps = {}
    for name in BRUTE_FORCE_DATASETS:
        values = dataset_cache(name, n)
        sampled_bits = compress(values, force_scheme="alp").size_bits()
        brute_bits = 0
        for start in range(0, values.size, VECTOR_SIZE):
            chunk = values[start : start + VECTOR_SIZE]
            combo, _ = find_best_combination(chunk)  # full 253-combo search
            brute_bits += alp_encode_vector(
                chunk, combo.exponent, combo.factor
            ).size_bits()
        gaps[name] = (sampled_bits - brute_bits) / brute_bits
    return gaps


def test_sampling_overhead(benchmark, emit, dataset_cache):
    (skipped, total, tried, per_dataset), gaps = benchmark.pedantic(
        lambda: (
            _sampling_stats(dataset_cache),
            _brute_force_gap(dataset_cache),
        ),
        rounds=1,
        iterations=1,
    )

    skip_fraction = skipped / total
    tried_hist = {
        k: sum(1 for t in tried if t == k) / total for k in (2, 3, 4, 5)
    }

    rows = [
        ["vectors encoded", total],
        ["second level skipped (k'=1)", f"{skip_fraction * 100:.1f}%"],
    ]
    for k in (2, 3, 4, 5):
        rows.append(
            [f"vectors trying {k} combinations", f"{tried_hist[k] * 100:.1f}%"]
        )
    gap_rows = [
        [name, f"{gap * 100:+.2f}%"] for name, gap in sorted(gaps.items())
    ]
    worst_gap = max(gaps.values())

    checks = [
        shape_check(
            f"a large share of vectors skip level two "
            f"({skip_fraction * 100:.0f}%; paper ~54%; require >= 30%)",
            skip_fraction >= 0.30,
        ),
        shape_check(
            "trying 4-5 combinations is rare (< 15% of vectors)",
            tried_hist[4] + tried_hist[5] < 0.15,
        ),
        shape_check(
            f"sampling is within 8% of brute force everywhere "
            f"(worst {worst_gap * 100:+.2f}%; paper < 1% average)",
            worst_gap <= 0.08,
        ),
        shape_check(
            f"average sampling-vs-brute-force gap < 1.5% "
            f"({np.mean(list(gaps.values())) * 100:+.2f}%)",
            float(np.mean(list(gaps.values()))) <= 0.015,
        ),
    ]

    report = format_table(
        ["statistic", "value"],
        rows,
        title="Sampling overhead (§4.2) — second-level statistics over all "
        "decimal datasets",
    )
    report += "\n\n" + format_table(
        ["dataset", "sampled vs brute-force size"],
        gap_rows,
        title="Brute force gap — extra size of sampled (e,f) choices",
    )
    report += "\n" + "\n".join(checks)
    emit("sampling_overhead", report)
    assert all(c.startswith("[PASS]") for c in checks), "\n" + "\n".join(checks)
