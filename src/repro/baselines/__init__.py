"""Baseline floating-point compressors the paper evaluates against.

Every baseline the evaluation section compares with is implemented here,
from scratch, behind a single codec interface (see
:mod:`repro.baselines.registry`):

- :mod:`repro.baselines.gorilla` — Facebook Gorilla [Pelkonen et al.].
- :mod:`repro.baselines.chimp` — Chimp [Liakos et al.].
- :mod:`repro.baselines.chimp128` — Chimp128 (ChimpN with a 128-slot ring).
- :mod:`repro.baselines.patas` — DuckDB's byte-aligned Chimp128 variant.
- :mod:`repro.baselines.elf` — Elf, erasing-based XOR compression.
- :mod:`repro.baselines.pde` — PseudoDecimals from BtrBlocks.
- :mod:`repro.baselines.gp` — a general-purpose block compressor
  (stdlib zlib/lzma standing in for Zstd, which has no offline wheel).
"""

from repro.baselines.registry import (
    CODECS,
    Codec,
    get_codec,
    list_codecs,
)

__all__ = ["CODECS", "Codec", "get_codec", "list_codecs"]
