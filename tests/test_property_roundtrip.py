"""Property-based round-trip tests (hypothesis).

The invariants the whole repo rests on, checked over generated inputs:

- ``pack_bits``/``unpack_bits`` round-trip every width 0–64;
- FOR/FFOR round-trip arbitrary int64 values, including the extremes
  that exercise the wrapping uint64 subtraction;
- the ALP vector encode/decode and the full compressor pipeline are
  *bit-identical* on arbitrary doubles, including ±0.0, subnormals and
  the NaN/Inf exception paths.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alp import alp_decode_vector, alp_encode_vector
from repro.core.compressor import compress, decompress
from repro.encodings.bitpack import pack_bits, unpack_bits
from repro.encodings.ffor import ffor_decode, ffor_encode
from repro.encodings.for_ import for_decode, for_encode

#: Doubles whose bit patterns stress every ALP code path.
_EDGE_DOUBLES = (
    0.0,
    -0.0,
    5e-324,  # smallest positive subnormal
    -5e-324,
    2.2250738585072014e-308,  # smallest normal
    float("nan"),
    float("inf"),
    float("-inf"),
    1e308,
    -1e308,
    1.1,
    -123.456,
)

_any_double = st.one_of(
    st.sampled_from(_EDGE_DOUBLES),
    st.floats(allow_nan=True, allow_infinity=True, width=64),
)

_int64 = st.integers(
    min_value=int(np.iinfo(np.int64).min), max_value=int(np.iinfo(np.int64).max)
)


@st.composite
def _width_and_values(draw):
    width = draw(st.integers(min_value=0, max_value=64))
    upper = (1 << width) - 1
    values = draw(
        st.lists(
            st.integers(min_value=0, max_value=upper), min_size=0, max_size=300
        )
    )
    return width, np.array(values, dtype=np.uint64)


@settings(max_examples=50, deadline=None)
@given(_width_and_values())
def test_pack_unpack_roundtrip(case):
    width, values = case
    packed = pack_bits(values, width)
    assert np.array_equal(unpack_bits(packed, width, values.size), values)


@settings(max_examples=50, deadline=None)
@given(st.lists(_int64, min_size=1, max_size=200))
def test_for_ffor_roundtrip(values):
    array = np.array(values, dtype=np.int64)
    assert np.array_equal(for_decode(for_encode(array)), array)
    assert np.array_equal(ffor_decode(ffor_encode(array)), array)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(_any_double, min_size=1, max_size=200),
    st.integers(min_value=0, max_value=21),
    st.data(),
)
def test_alp_vector_roundtrip_bit_identical(values, exponent, data):
    factor = data.draw(st.integers(min_value=0, max_value=exponent))
    array = np.array(values, dtype=np.float64)
    vector = alp_encode_vector(array, exponent, factor)
    decoded = alp_decode_vector(vector)
    # Bit-level equality: NaN payloads and signed zeros must survive.
    assert np.array_equal(decoded.view(np.uint64), array.view(np.uint64))


@settings(max_examples=25, deadline=None)
@given(st.lists(_any_double, min_size=1, max_size=400))
def test_compressor_pipeline_bit_identical(values):
    array = np.array(values, dtype=np.float64)
    decoded = decompress(compress(array))
    assert np.array_equal(decoded.view(np.uint64), array.view(np.uint64))
