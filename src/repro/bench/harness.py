"""Measurement utilities shared by all benchmark modules.

Speed is reported in values per second and, as a cross-reference to the
paper's metric, in a *tuples-per-cycle proxy*: values/second divided by
a nominal 3.5 GHz (the paper's Ice Lake clock).  Absolute numbers are
not comparable between CPython and the paper's C++ — the benches compare
*relative* speeds, which is what the paper's claims are about
(DESIGN.md, substitution 3).

Beyond the original best-of-N timing helpers, the harness builds
**structured** results: :func:`bench_codec_structured` measures one
(dataset, codec) pair — ratio, MB/s, machine-relative throughput against
a same-process :func:`calibration_mbps` baseline, and the per-stage
:mod:`repro.obs` span/counter snapshot of one instrumented run — as a
:class:`repro.bench.records.BenchRecord`.  :func:`run_structured_bench`
sweeps a dataset x codec grid and emits a ``BENCH_*.json`` document
(see :mod:`repro.bench.records`), which is what the CI regression gate
(:mod:`repro.bench.gate`) consumes.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.baselines.registry import get_codec
from repro.bench.records import BenchRecord, write_bench_json
from repro.core.constants import VECTOR_SIZE
from repro.data import get_dataset

if TYPE_CHECKING:
    from repro.core.alp import AlpVector

#: Nominal clock used for the tuples-per-cycle proxy (paper's Ice Lake).
NOMINAL_GHZ = 3.5

#: An allocation below this is "small" for memory accounting: decode
#: scratch, headers, Python object churn.  At or above it, an
#: allocation is the kind the zero-copy read path exists to eliminate
#: (payload copies, fresh decode targets) — one 64 KiB block is eight
#: 1024-value float64 vectors.
LARGE_ALLOC_BYTES = 1 << 16


def peak_rss_bytes() -> int:
    """The process's high-water resident set size, in bytes.

    ``ru_maxrss`` is kilobytes on Linux (bytes on macOS, where this
    over-reports 1024x — acceptable for a trajectory metric that is
    only ever compared against same-platform baselines).
    """
    import resource

    # KiB -> bytes (not the vector size).  # reprolint: ignore[RL4]
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * 1024


def traced_large_allocs(
    fn: "Callable[[], object]",
    iterations: int = 3,
    threshold: int = LARGE_ALLOC_BYTES,
) -> int:
    """Large-allocation-equivalents of one ``fn()`` call, via tracemalloc.

    tracemalloc snapshots only see *live* blocks, so a transient copy
    (allocated and freed inside the call) would be invisible to a
    before/after diff.  The traced *peak* does see it: after a warm-up
    call, each iteration resets the peak, runs ``fn`` and divides the
    peak growth over the pre-call footprint by ``threshold``.  The
    worst iteration is returned — ``0`` means no code path in ``fn``
    ever held ``threshold`` bytes of fresh allocation at once, the
    steady-state property the serving buffer pool is for.
    """
    import tracemalloc

    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    try:
        fn()  # warm-up: lazy imports, caches, pool buckets
        worst = 0
        for _ in range(iterations):
            tracemalloc.reset_peak()
            base = tracemalloc.get_traced_memory()[0]
            fn()
            peak = tracemalloc.get_traced_memory()[1]
            worst = max(worst, int(max(0, peak - base) // threshold))
        return worst
    finally:
        if not was_tracing:
            tracemalloc.stop()


def bench_n(default: int = 60_000) -> int:
    """Values per dataset for table sweeps (override: REPRO_BENCH_N)."""
    return int(os.environ.get("REPRO_BENCH_N", default))


def measure_ratio(
    codec_name: str, values: np.ndarray, verify: bool = True
) -> float:
    """Compressed bits per value for a codec on a column."""
    codec = get_codec(codec_name)
    if verify:
        return codec.roundtrip_bits_per_value(values)
    encoded = codec.compress(values)
    return encoded.size_bits() / max(values.size, 1)


@dataclass(frozen=True)
class SpeedResult:
    """One timing measurement."""

    values_per_second: float
    seconds: float
    count: int

    @property
    def tuples_per_cycle_proxy(self) -> float:
        """values/sec normalized by the nominal clock."""
        return self.values_per_second / (NOMINAL_GHZ * 1e9)


def time_callable(
    fn: Callable[[], object],
    value_count: int,
    repeats: int = 5,
    warmup: int = 1,
    stat: str = "best",
) -> SpeedResult:
    """Wall-clock timing of a zero-arg callable over N runs.

    ``stat="best"`` (the default) follows the micro-benchmark practice
    of measuring the code, not the scheduler.  ``stat="median"`` is
    what the structured bench records and the CI regression gate use:
    best-of occasionally catches a run inside an unpreempted boost
    quantum that later runs can never reproduce, and a gate built on
    such lucky samples flakes; the median is robust to outliers in
    both directions.
    """
    if stat not in ("best", "median"):
        raise ValueError(f"stat must be 'best' or 'median', got {stat!r}")
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    samples.sort()
    if stat == "best":
        seconds = samples[0]
    else:
        mid = len(samples) // 2
        if len(samples) % 2:
            seconds = samples[mid]
        else:
            seconds = (samples[mid - 1] + samples[mid]) / 2
    seconds = max(seconds, 1e-12)
    return SpeedResult(
        values_per_second=value_count / seconds,
        seconds=seconds,
        count=value_count,
    )


def tuples_per_cycle(result: SpeedResult) -> float:
    """Convenience accessor for the proxy metric."""
    return result.tuples_per_cycle_proxy


def codec_speed_on_vector(
    codec_name: str,
    values: np.ndarray,
    repeats: int = 5,
) -> tuple[SpeedResult, SpeedResult]:
    """(compression, decompression) speed of a codec on one array.

    Mirrors the paper's §4.2 micro-benchmark: repeatedly [de]compress an
    L1-resident vector and take the best run.
    """
    codec = get_codec(codec_name)
    compress_speed = time_callable(
        lambda: codec.compress(values), values.size, repeats=repeats
    )
    encoded = codec.compress(values)
    decompress_speed = time_callable(
        lambda: codec.decompress(encoded), values.size, repeats=repeats
    )
    return compress_speed, decompress_speed


def dataset_vector(name: str, vector_size: int = VECTOR_SIZE) -> np.ndarray:
    """One vector of a dataset (the micro-benchmark unit)."""
    return get_dataset(name, n=vector_size)


def alp_vector_speed(
    values: np.ndarray, repeats: int = 5
) -> tuple[SpeedResult, SpeedResult]:
    """ALP micro-benchmark speeds under the paper's protocol (§4.2).

    The paper's micro-benchmark repeatedly encodes one L1-resident vector
    and explicitly notes that "the first sampling phase ... was not
    present in the micro-benchmarks": row-group-level sampling is paid
    once per 100 vectors in real compression, so the per-vector cost is
    second-level sampling + encode (+ FFOR), and decode is UNFFOR +
    ALP_dec + patch.
    """
    from repro.core.alp import alp_decode_vector, alp_encode_vector
    from repro.core.sampler import first_level_sample, second_level_sample

    values = np.ascontiguousarray(values, dtype=np.float64)
    candidates = first_level_sample(values).candidates

    def compress_once() -> "AlpVector":
        combo = second_level_sample(values, candidates).combination
        return alp_encode_vector(values, combo.exponent, combo.factor)

    compress_speed = time_callable(compress_once, values.size, repeats=repeats)
    encoded = compress_once()
    decompress_speed = time_callable(
        lambda: alp_decode_vector(encoded), values.size, repeats=repeats
    )
    return compress_speed, decompress_speed


# ---------------------------------------------------------------------------
# Structured records (BENCH_*.json)
# ---------------------------------------------------------------------------


def calibration_mbps(
    values: np.ndarray | None = None,
    repeats: int = 5,
    vector_size: int = VECTOR_SIZE,
) -> float:
    """Throughput of a codec-shaped reference workload, in MB/s.

    Measured in the same process as the codec timings, this anchors the
    machine-relative ``*_rel`` throughput fields of the bench records:
    the regression gate compares codec speed *relative to this number*,
    so a slower CI runner does not read as a codec regression.

    The workload deliberately mirrors the codecs' bottleneck profile —
    a Python loop dispatching small numpy kernels per 1024-value vector
    (scale, round, int cast, compare) — rather than one big memcpy.  A
    memory-bound ``ndarray.copy()`` does *not* co-vary with the
    interpreter-bound codec throughput when the machine slows down
    (frequency scaling, noisy neighbours), which made the gate's
    relative numbers drift; per-vector dispatch work does.  The default
    array is sized so one pass takes a few milliseconds — the same
    order as one codec run — because sub-millisecond workloads can slip
    through a scheduler quantum unpreempted and report throughput the
    longer codec runs can never reach.
    """
    if values is None:
        values = np.arange(262_144, dtype=np.float64)
    values = np.ascontiguousarray(values, dtype=np.float64)

    def work() -> int:
        exceptions = 0
        for start in range(0, values.size, vector_size):
            chunk = values[start : start + vector_size]
            encoded = np.rint(chunk * 100.0).astype(np.int64)
            decoded = encoded.astype(np.float64) * 0.01
            exceptions += int((decoded != chunk).sum())
        return exceptions

    result = time_callable(work, values.size, repeats=repeats, stat="median")
    return values.nbytes / result.seconds / 1e6


def bench_codec_structured(
    codec_name: str,
    dataset: str,
    values: np.ndarray,
    calibration: float | None = None,
    repeats: int = 3,
) -> BenchRecord:
    """Measure one (dataset, codec) pair into a :class:`BenchRecord`.

    Three passes: a verified round-trip for the ratio, best-of-N wall
    clock for MB/s, and one run with :mod:`repro.obs` enabled for the
    per-stage span/counter breakdown.  The obs pass is separate so the
    instrumentation overhead never pollutes the timing numbers.

    When ``calibration`` is ``None`` (the default), the calibration is
    measured *here*, immediately before and after the codec timings,
    and the mean of the two anchors this record's ``*_rel`` fields.
    Sandwiching matters: machine speed drifts over the seconds a full
    sweep takes, and a single process-start calibration lets that drift
    masquerade as a codec regression.
    """
    from repro import obs

    codec = get_codec(codec_name)
    values = np.ascontiguousarray(values, dtype=np.float64)
    cal_before = calibration_mbps(repeats=repeats) if calibration is None else 0.0
    bits_per_value = codec.roundtrip_bits_per_value(values)

    compress_speed = time_callable(
        lambda: codec.compress(values),
        values.size,
        repeats=repeats,
        stat="median",
    )
    encoded = codec.compress(values)
    decompress_speed = time_callable(
        lambda: codec.decompress(encoded),
        values.size,
        repeats=repeats,
        stat="median",
    )
    compress_mbps = values.nbytes / compress_speed.seconds / 1e6
    decompress_mbps = values.nbytes / decompress_speed.seconds / 1e6
    if calibration is None:
        calibration = (cal_before + calibration_mbps(repeats=repeats)) / 2

    was_enabled = obs.enabled()
    obs.enable()
    obs.reset()
    try:
        codec.decompress(codec.compress(values))
        breakdown = obs.snapshot()
    finally:
        if not was_enabled:
            obs.disable()
        obs.reset()

    # Memory accounting, after the timing passes so tracemalloc's
    # interpreter hooks never slow a measured iteration.
    large_allocs = traced_large_allocs(lambda: codec.decompress(encoded))

    return BenchRecord(
        dataset=dataset,
        codec=codec_name,
        n=int(values.size),
        bits_per_value=bits_per_value,
        compression_ratio=64.0 / bits_per_value if bits_per_value else 0.0,
        compress_mbps=compress_mbps,
        decompress_mbps=decompress_mbps,
        compress_rel=compress_mbps / calibration,
        decompress_rel=decompress_mbps / calibration,
        spans=breakdown["spans"],
        counters=breakdown["counters"],
        peak_rss_bytes=peak_rss_bytes(),
        large_allocs=large_allocs,
    )


def run_structured_bench(
    datasets: list[str],
    codecs: list[str],
    n: int,
    repeats: int = 3,
    out_path: str | os.PathLike | None = None,
    include_kernels: bool = False,
) -> tuple[dict, list[BenchRecord]]:
    """Sweep a dataset x codec grid into bench records (and optional JSON).

    Returns ``(document, records)``; when ``out_path`` is given the
    document is also written as a ``BENCH_*.json`` file.
    ``include_kernels`` appends the kernel micro-benchmark records
    (:func:`repro.bench.kernels.kernel_bench_records`) to the document,
    under their ``kernels/*`` pseudo-dataset keys.

    The document-level ``calibration_mbps`` is informational (one
    process-start measurement); each record's ``*_rel`` fields use
    their own sandwiched calibration (see
    :func:`bench_codec_structured`).
    """
    calibration = calibration_mbps()
    records = []
    for dataset in datasets:
        values = get_dataset(dataset, n=n)
        for codec_name in codecs:
            records.append(
                bench_codec_structured(
                    codec_name,
                    dataset,
                    values,
                    repeats=repeats,
                )
            )
    if include_kernels:
        from repro.bench.kernels import kernel_bench_records

        records.extend(kernel_bench_records(repeats=repeats))
    config = {
        "n": n,
        "repeats": repeats,
        "datasets": list(datasets),
        "codecs": list(codecs),
        "kernels": include_kernels,
    }
    if out_path is not None:
        document = write_bench_json(out_path, records, config, calibration)
    else:
        from repro.bench.records import build_document

        document = build_document(records, config, calibration)
    return document, records
