"""MSB-first bit stream used by the XOR-based baselines.

Gorilla, Chimp, Chimp128 and Elf all emit variable-width bit fields into a
continuous stream.  The reference implementations use hand-rolled 64-bit
buffers; here the writer accumulates bits into a Python integer buffer and
flushes whole bytes into a ``bytearray``, which keeps the per-call overhead
low without sacrificing clarity.

The stream is *MSB-first*: the first bit written becomes the most
significant bit of the first byte, which is the convention of the original
Gorilla paper and of the DuckDB Chimp/Patas code the paper benchmarks.
"""

from __future__ import annotations


class BitWriter:
    """Append-only MSB-first bit sink.

    >>> w = BitWriter()
    >>> w.write(0b101, 3)
    >>> w.write(0b1, 1)
    >>> w.finish()[0] == 0b10110000
    True
    """

    __slots__ = ("_buffer", "_acc", "_acc_bits")

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._acc = 0  # pending bits, right-aligned
        self._acc_bits = 0

    def write(self, value: int, width: int) -> None:
        """Write the ``width`` low bits of ``value`` (0 <= width <= 64)."""
        if width == 0:
            return
        if width < 0 or width > 64:
            raise ValueError(f"bit width must be in [0, 64], got {width}")
        value &= (1 << width) - 1
        self._acc = (self._acc << width) | value
        self._acc_bits += width
        while self._acc_bits >= 8:
            self._acc_bits -= 8
            self._buffer.append((self._acc >> self._acc_bits) & 0xFF)
        # Trim consumed high bits so the accumulator stays small.
        self._acc &= (1 << self._acc_bits) - 1

    def write_bit(self, bit: int) -> None:
        """Write a single bit (0 or 1)."""
        self.write(bit, 1)

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return len(self._buffer) * 8 + self._acc_bits

    def finish(self) -> bytes:
        """Flush any partial byte (zero-padded) and return the stream."""
        if self._acc_bits:
            pad = 8 - self._acc_bits
            self._buffer.append((self._acc << pad) & 0xFF)
            self._acc = 0
            self._acc_bits = 0
        return bytes(self._buffer)


class BitReader:
    """Sequential MSB-first bit source over a ``bytes`` object.

    Reading past the end raises :class:`EOFError`; the XOR decoders rely on
    their own value counts and never intentionally over-read, so hitting EOF
    indicates stream corruption.
    """

    __slots__ = ("_data", "_pos_bits", "_total_bits")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos_bits = 0
        self._total_bits = len(data) * 8

    def read(self, width: int) -> int:
        """Read ``width`` bits and return them as an unsigned integer."""
        if width == 0:
            return 0
        if width < 0 or width > 64:
            raise ValueError(f"bit width must be in [0, 64], got {width}")
        end = self._pos_bits + width
        if end > self._total_bits:
            raise EOFError("bit stream exhausted")
        first_byte = self._pos_bits // 8
        last_byte = (end - 1) // 8
        chunk = int.from_bytes(self._data[first_byte : last_byte + 1], "big")
        chunk_bits = (last_byte - first_byte + 1) * 8
        shift = chunk_bits - (end - first_byte * 8)
        self._pos_bits = end
        return (chunk >> shift) & ((1 << width) - 1)

    def read_bit(self) -> int:
        """Read a single bit."""
        return self.read(1)

    @property
    def bits_consumed(self) -> int:
        """Number of bits read so far."""
        return self._pos_bits

    @property
    def bits_remaining(self) -> int:
        """Number of bits left in the stream (including padding)."""
        return self._total_bits - self._pos_bits
