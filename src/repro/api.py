"""The unified public facade of the reproduction.

One import gives the whole pipeline — compression, on-disk storage,
tables, datasets, and integrity tooling — behind a single options
object.  Since format v4 the primary objects are *tables*: a
:class:`Schema` of named, typed, optionally-nullable columns, stored as
one multi-column ALPC file with per-column chunks and zone maps::

    import numpy as np
    from repro import api

    rng = np.random.default_rng(0)
    table = api.Table.from_arrays(
        {
            "ts": np.cumsum(rng.random(100_000)),
            "value": np.round(rng.normal(20, 5, 100_000), 2),
            "count": rng.integers(0, 50, 100_000),
            "city": np.array(["BER", "AMS"] * 50_000, dtype=object),
        }
    )
    api.write_table("table.alpc", table)

    t = api.read_table("table.alpc", columns=["ts", "value"])
    handle = api.open_table(
        "table.alpc",
        columns=["value"],
        predicate=api.FilterPredicate("ts", low=100.0, high=200.0),
    )
    matching = handle.read()                       # zone-map pruned scan

The original single-column functions remain, unchanged, as the
one-column special case (see docs/TABLES.md for the migration guide)::

    values = np.round(rng.normal(20, 5, 100_000), 2)

    column = api.compress(values)                  # in-memory
    restored = api.decompress(column)

    api.write("col.alpc", values)                  # one-column file (v3)
    reader = api.open("col.alpc")                  # lazy, verifying reader
    restored = api.read("col.alpc")

    report = api.verify("col.alpc")                # integrity walk (v2-v4)
    api.repair("col.alpc", "col.fixed.alpc")       # drop corrupt sections

``write`` is the single-column wrapper over the table path: it persists
one non-nullable float64 column (in the v3 single-column encoding every
reader generation understands), and ``open``/``read`` accept *any*
generation — v2, v3, or a one-float-column v4 table — through the same
verified reader surface.

Every knob the layers used to take as drifting per-function keyword
lists is collected in :class:`CompressionOptions`, accepted uniformly
by :func:`compress`, :func:`write`, :func:`write_table`,
:func:`write_dataset` and the underlying writers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.core.compressor import (
    CompressedRowGroups,
    compress as _compress,
    compress_parallel as _compress_parallel,
    decompress as _decompress,
    decompress_parallel as _decompress_parallel,
)
from repro.core.constants import ROWGROUP_VECTORS, VECTOR_SIZE
from repro.query.table import FilterPredicate
from repro.storage.columnfile import ColumnFileReader, ColumnFileWriter
from repro.storage.dataset_dir import DatasetReader
from repro.storage.errors import (
    CorruptFileError,
    CorruptRowGroupError,
    IntegrityError,
)
from repro.storage.schema import (
    CODECS_BY_TYPE,
    FLOAT64,
    INT64,
    STRING,
    Column,
    Schema,
)
from repro.storage.tablefile import (
    FORMAT_VERSION_V4,
    TableColumnReader,
    TableFileReader,
    TableFileWriter,
    file_format_version,
)
from repro.storage.verify import (
    DatasetVerifyReport,
    FileVerifyReport,
    RepairReport,
    repair_column_file,
    verify_path,
)

__all__ = [
    "Column",
    "CompressedRowGroups",
    "CompressionOptions",
    "CorruptFileError",
    "CorruptRowGroupError",
    "FilterPredicate",
    "IntegrityError",
    "Schema",
    "Table",
    "TableHandle",
    "compress",
    "decompress",
    "open",
    "open_dataset",
    "open_table",
    "read",
    "read_table",
    "repair",
    "verify",
    "write",
    "write_dataset",
    "write_table",
]

#: Schemes :attr:`CompressionOptions.force_scheme` accepts (None = adaptive).
_SCHEMES = (None, "alp", "alprd")

#: Every per-column codec override :attr:`CompressionOptions.column_codecs`
#: accepts (validity against the column's logical type happens at write
#: time, when the schema is known).
_COLUMN_CODECS = tuple(
    codec for codecs in CODECS_BY_TYPE.values() for codec in codecs
)


@dataclass(frozen=True)
class CompressionOptions:
    """Every tuning knob of the pipeline, in one place.

    Attributes:
        vector_size: values per ALP vector (the paper's ``v``).
        rowgroup_vectors: vectors per row-group (the paper's ``w``).
        threads: worker threads for :func:`compress`; ``1`` is serial,
            more dispatches row-groups to a thread pool (bit-identical
            output either way).
        force_scheme: ``"alp"`` or ``"alprd"`` bypasses the adaptive
            ALP-vs-ALP_rd cutoff decision; ``None`` keeps it adaptive.
            Applies to float64 columns table-wide.
        integrity: write checksummed format v3 with atomic publish (the
            default); ``False`` writes the legacy v2 layout without
            checksums.  Table files (v4) are always checksummed.
        column_codecs: per-column codec overrides for
            :func:`write_table` — a mapping (or tuple of pairs) from
            column name to ``"alp"``/``"alprd"`` (float64),
            ``"ffor"``/``"delta"`` (int64) or ``"dict"`` (string).
            Columns not named keep the adaptive choice.  Normalized to
            a sorted tuple of pairs so the options object stays
            hashable.
    """

    vector_size: int = VECTOR_SIZE
    rowgroup_vectors: int = ROWGROUP_VECTORS
    threads: int = 1
    force_scheme: str | None = None
    integrity: bool = True
    column_codecs: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.force_scheme not in _SCHEMES:
            raise ValueError(
                f"force_scheme must be one of {_SCHEMES}, "
                f"got {self.force_scheme!r}"
            )
        if self.threads < 1:
            raise ValueError(f"threads must be >= 1, got {self.threads}")
        if self.rowgroup_vectors < 1:
            raise ValueError(
                f"rowgroup_vectors must be >= 1, got {self.rowgroup_vectors}"
            )
        codecs = self.column_codecs
        items = codecs.items() if isinstance(codecs, Mapping) else codecs
        normalized = tuple(sorted((str(k), str(v)) for k, v in items))
        for name, codec in normalized:
            if codec not in _COLUMN_CODECS:
                raise ValueError(
                    f"column_codecs[{name!r}] must be one of "
                    f"{_COLUMN_CODECS}, got {codec!r}"
                )
        object.__setattr__(self, "column_codecs", normalized)


#: The default option set (adaptive scheme, integrity on).
DEFAULT_OPTIONS = CompressionOptions()


def _infer_column(name: str, values: np.ndarray, nullable: bool) -> Column:
    arr = np.asarray(values)
    if arr.dtype.kind == "f":
        return Column(name, FLOAT64, nullable=nullable)
    if arr.dtype.kind in ("i", "u"):
        return Column(name, INT64, nullable=nullable)
    if arr.dtype.kind in ("O", "U"):
        return Column(name, STRING, nullable=nullable)
    raise ValueError(
        f"column {name!r}: cannot infer a logical type from "
        f"dtype {arr.dtype}; supported kinds are float, int, and str"
    )


def _coerce_values(column: Column, values: np.ndarray) -> np.ndarray:
    if column.type == FLOAT64:
        return np.ascontiguousarray(values, dtype=np.float64)
    if column.type == INT64:
        return np.ascontiguousarray(values, dtype=np.int64)
    arr = np.asarray(values)
    if arr.dtype.kind == "U":
        arr = arr.astype(object)
    return np.asarray(arr, dtype=object)


@dataclass(frozen=True)
class Table:
    """An in-memory table: schema plus per-column value/validity arrays.

    ``columns`` maps every schema column to its values (float64, int64,
    or object-of-str, matching the logical type); ``validity`` maps
    *nullable* columns to boolean masks (True = valid).  Null slots in
    the value arrays hold codec fill values (0.0 / 0 / "") — mask them
    with :meth:`column_validity` before interpreting.
    """

    schema: Schema
    columns: dict[str, np.ndarray]
    validity: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        coerced: dict[str, np.ndarray] = {}
        n_rows: int | None = None
        for col in self.schema:
            if col.name not in self.columns:
                raise ValueError(f"missing values for column {col.name!r}")
            arr = _coerce_values(col, self.columns[col.name])
            if n_rows is None:
                n_rows = len(arr)
            elif len(arr) != n_rows:
                raise ValueError(
                    f"column {col.name!r} has {len(arr)} values, "
                    f"expected {n_rows}"
                )
            coerced[col.name] = arr
        extra = set(self.columns) - set(self.schema.names)
        if extra:
            raise ValueError(f"values for unknown columns {sorted(extra)}")
        masks: dict[str, np.ndarray] = {}
        for name, mask in self.validity.items():
            col = self.schema.column(name)
            if not col.nullable:
                raise ValueError(
                    f"column {name!r} is not nullable; validity mask rejected"
                )
            arr = np.ascontiguousarray(mask, dtype=bool)
            if arr.shape != (n_rows or 0,):
                raise ValueError(
                    f"validity mask for {name!r} must have {n_rows} entries"
                )
            masks[name] = arr
        object.__setattr__(self, "columns", coerced)
        object.__setattr__(self, "validity", masks)

    @classmethod
    def from_arrays(
        cls,
        columns: Mapping[str, np.ndarray],
        validity: Mapping[str, np.ndarray] | None = None,
        schema: Schema | None = None,
    ) -> "Table":
        """Build a table, inferring the schema from array dtypes.

        Float dtypes map to ``float64``, integer dtypes to ``int64``,
        object/str arrays to ``string``.  A column is marked nullable
        exactly when ``validity`` provides a mask for it; pass an
        explicit ``schema`` to override any of this.
        """
        validity = dict(validity or {})
        if schema is None:
            schema = Schema(
                tuple(
                    _infer_column(name, np.asarray(values), name in validity)
                    for name, values in columns.items()
                )
            )
        return cls(
            schema=schema, columns=dict(columns), validity=validity
        )

    def __len__(self) -> int:
        if not self.schema.columns:
            return 0
        return len(self.columns[self.schema.columns[0].name])

    @property
    def column_names(self) -> tuple[str, ...]:
        return self.schema.names

    def column(self, name: str) -> np.ndarray:
        """The value array of one column (fill values at null slots)."""
        self.schema.column(name)
        return self.columns[name]

    def column_validity(self, name: str) -> np.ndarray:
        """The validity mask of one column (all-True when non-nullable)."""
        col = self.schema.column(name)
        if not col.nullable or name not in self.validity:
            return np.ones(len(self), dtype=bool)
        return self.validity[name]


class TableHandle:
    """An open table file with an optional pinned projection/predicate.

    Thin convenience over :class:`TableFileReader`: ``columns`` and
    ``predicate`` given to :func:`open_table` become the defaults for
    :meth:`read` and :meth:`scan`, so a handle *is* a parameterized
    query over the file.  The underlying reader (and its full surface —
    zone maps, quarantine reports, per-column readers) stays reachable
    via :attr:`reader`.
    """

    def __init__(
        self,
        reader: TableFileReader,
        columns: list[str] | None = None,
        predicate: FilterPredicate | None = None,
    ) -> None:
        self._reader = reader
        if columns is not None:
            for name in columns:
                reader.schema.column(name)
        self._columns = list(columns) if columns is not None else None
        if predicate is not None:
            reader.schema.column(predicate.column)
        self._predicate = predicate

    @property
    def reader(self) -> TableFileReader:
        return self._reader

    @property
    def schema(self) -> Schema:
        """The projected schema (full schema without a projection)."""
        if self._columns is None:
            return self._reader.schema
        return self._reader.schema.select(self._columns)

    @property
    def row_count(self) -> int:
        return self._reader.row_count

    @property
    def format_version(self) -> int:
        return int(self._reader.format_version)

    def read(self) -> Table:
        """Materialize the pinned projection (+ predicate) as a Table."""
        return self.scan()

    def scan(
        self,
        columns: list[str] | None = None,
        predicate: FilterPredicate | None = None,
    ) -> Table:
        """Zone-map-pruned filtered read; arguments override the pinned ones."""
        names = columns if columns is not None else self._columns
        pred = predicate if predicate is not None else self._predicate
        values, validity = self._reader.scan(names, pred)
        schema = (
            self._reader.schema
            if names is None
            else self._reader.schema.select(names)
        )
        return Table(schema=schema, columns=values, validity=validity)

    def column_reader(self, name: str) -> ColumnFileReader | TableColumnReader:
        """A single-column reader view (non-nullable float64 columns)."""
        return self._reader.column_reader(name)

    def scan_report(self) -> object:
        """The reader's structured quarantine account."""
        return self._reader.scan_report()

    def close(self) -> None:
        self._reader.close()

    def __enter__(self) -> "TableHandle":
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        self.close()


def compress(
    values: np.ndarray, options: CompressionOptions | None = None
) -> CompressedRowGroups:
    """Compress a float64 column under one options object.

    ``options.threads > 1`` routes through the thread-pooled
    compressor; the result is bit-identical to the serial path.
    """
    opts = options or DEFAULT_OPTIONS
    if opts.threads > 1:
        return _compress_parallel(
            values,
            threads=opts.threads,
            vector_size=opts.vector_size,
            rowgroup_vectors=opts.rowgroup_vectors,
            force_scheme=opts.force_scheme,
        )
    return _compress(
        values,
        vector_size=opts.vector_size,
        rowgroup_vectors=opts.rowgroup_vectors,
        force_scheme=opts.force_scheme,
    )


def decompress(
    column: CompressedRowGroups,
    options: CompressionOptions | None = None,
    *,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Decompress a column back to float64, bit-exactly.

    Like :func:`compress`, ``options.threads > 1`` routes through the
    thread-pooled decoder (row-groups decode into disjoint slices of one
    output array); the result is bit-identical to the serial path.
    ``out``, when given, must be a writable C-contiguous float64 array
    of exactly ``column.count`` values; the decode writes in place and
    allocates no output array.
    """
    opts = options or DEFAULT_OPTIONS
    if opts.threads > 1:
        return _decompress_parallel(column, threads=opts.threads, out=out)
    return _decompress(column, out=out)


# -- tables (format v4) -----------------------------------------------


def write_table(
    path: str | os.PathLike,
    table: Table | Mapping[str, np.ndarray],
    options: CompressionOptions | None = None,
    *,
    validity: Mapping[str, np.ndarray] | None = None,
    schema: Schema | None = None,
) -> None:
    """Compress a table into one v4 ALPC file (atomic, checksummed).

    ``table`` is a :class:`Table`, or a plain mapping of column name to
    array (schema inferred; pass ``validity``/``schema`` to refine).
    Per-column codecs come from the schema's ``Column.codec`` pins or
    ``options.column_codecs``, adaptive otherwise.
    """
    if not isinstance(table, Table):
        table = Table.from_arrays(table, validity=validity, schema=schema)
    elif validity is not None or schema is not None:
        raise ValueError(
            "validity/schema arguments only apply to plain mappings; "
            "a Table already carries both"
        )
    opts = options or DEFAULT_OPTIONS
    with TableFileWriter(path, table.schema, options=opts) as writer:
        writer.write_rows(dict(table.columns), validity=dict(table.validity))


def open_table(
    path: str | os.PathLike,
    *,
    columns: list[str] | None = None,
    predicate: FilterPredicate | None = None,
    degraded: bool = False,
    mmap: bool = False,
) -> TableHandle:
    """Open any ALPC file (v2-v4) as a table.

    v2/v3 single-column files appear as a one-float64-column table
    named after the file stem.  ``columns`` pins a projection and
    ``predicate`` a zone-map-pruned range filter; both become the
    defaults for :meth:`TableHandle.read` / :meth:`TableHandle.scan`.
    ``degraded`` and ``mmap`` behave exactly as in :func:`open`.
    """
    reader = TableFileReader(path, degraded=degraded, mmap=mmap)
    try:
        return TableHandle(reader, columns=columns, predicate=predicate)
    except BaseException:
        reader.close()
        raise


def read_table(
    path: str | os.PathLike,
    *,
    columns: list[str] | None = None,
    predicate: FilterPredicate | None = None,
    degraded: bool = False,
) -> Table:
    """Materialize an ALPC file (v2-v4) as an in-memory :class:`Table`."""
    handle = open_table(
        path, columns=columns, predicate=predicate, degraded=degraded
    )
    return handle.read()


# -- single-column wrappers -------------------------------------------


def write(
    path: str | os.PathLike,
    values: np.ndarray,
    options: CompressionOptions | None = None,
) -> None:
    """Compress ``values`` into a column file (atomic, checksummed).

    The one-column special case of :func:`write_table`, kept on the v3
    single-column encoding: the output carries exactly one non-nullable
    float64 column and stays readable by every deployed reader
    generation (and by :func:`open_table`, which presents it as a
    table).
    """
    with ColumnFileWriter(path, options=options or DEFAULT_OPTIONS) as writer:
        writer.write_values(values)


def _single_float_column(path: str | os.PathLike) -> str:
    """The one non-nullable float64 column of a v4 file, or a typed error."""
    probe = TableFileReader(path)
    try:
        schema = probe.schema
        if len(schema) != 1 or schema.columns[0].type != FLOAT64 or (
            schema.columns[0].nullable
        ):
            raise ValueError(
                f"{os.fspath(path)}: schema {list(schema.names)} is not a "
                f"single non-nullable float64 column; use "
                f"open_table()/read_table() for multi-column tables"
            )
        return schema.columns[0].name
    finally:
        probe.close()


def open(
    path: str | os.PathLike, *, degraded: bool = False, mmap: bool = False
) -> ColumnFileReader | TableColumnReader:
    """Open a column file for verified random access and scans.

    The one-column wrapper over :func:`open_table`: v2/v3 files get the
    classic :class:`ColumnFileReader`; a v4 file whose schema is a
    single non-nullable float64 column gets the equivalent per-column
    reader view (same methods, zone maps, and quarantine semantics).

    With ``degraded=True`` bulk reads and range scans *quarantine*
    corrupt row-groups (skip + report via ``scan_report()``) instead of
    raising.

    With ``mmap=True`` the file is memory-mapped and payloads decode
    straight out of the page cache with zero copies (v2 and small
    files silently fall back to the buffered path).  Mapped readers
    must be closed, and close refuses — with a typed
    ``BufferLifetimeError`` — while payload views are still alive; see
    ``docs/PERFORMANCE.md``, "zero-copy read path".
    """
    if file_format_version(path) >= FORMAT_VERSION_V4:
        name = _single_float_column(path)
        reader = TableFileReader(path, degraded=degraded, mmap=mmap)
        try:
            column = reader.column_reader(name)
        except BaseException:
            reader.close()
            raise
        return column
    return ColumnFileReader(path, degraded=degraded, mmap=mmap)


def read(path: str | os.PathLike, *, degraded: bool = False) -> np.ndarray:
    """Decompress an entire column file to float64 (v2-v4)."""
    return open(path, degraded=degraded).read_all()


def write_dataset(
    directory: str | os.PathLike,
    columns: dict[str, np.ndarray],
    options: CompressionOptions | None = None,
) -> None:
    """Compress a dict of equally-long columns into a dataset directory."""
    from repro.storage.dataset_dir import write_dataset as _write_dataset

    _write_dataset(directory, columns, options=options or DEFAULT_OPTIONS)


def open_dataset(
    directory: str | os.PathLike,
    *,
    degraded: bool = False,
    mmap: bool = False,
) -> DatasetReader:
    """Open a dataset directory for lazy per-column reads and queries.

    ``mmap=True`` applies :func:`open`'s zero-copy mapping to every
    column file the reader touches (with the same buffered fallback).
    """
    return DatasetReader(directory, degraded=degraded, mmap=mmap)


def verify(
    path: str | os.PathLike,
) -> FileVerifyReport | DatasetVerifyReport:
    """Walk an ALPC file (v2-v4) or dataset directory, reporting bad sections."""
    return verify_path(path)


def repair(
    source: str | os.PathLike, destination: str | os.PathLike
) -> RepairReport:
    """Rewrite a damaged file, keeping intact row-groups (v4: chunks)."""
    return repair_column_file(source, destination)
