"""Property tests for encoded-domain query execution.

The late-materialization contract: every encoded-domain kernel — the
packed-field sums, the fused FFOR filter/aggregate kernels, ALP vector
SUM and the integer-bound range predicates — must agree with the
decode-then-execute pipeline, including the IEEE 754 corners (NaN/Inf
payloads, signed zeros), exception-heavy and all-exception vectors, and
empty selections.  Sums are compared against the scalar ``_reference``
oracles (bit-identical by construction); predicate selections are
compared bit-for-bit against masks computed on the decoded doubles.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alp import (
    alp_decode_vector,
    alp_encode_vector,
    alp_sum_vector,
    alp_sum_vector_reference,
)
from repro.core.predicates import (
    EMPTY_BOUNDS,
    count_vector_encoded,
    decode_scalar,
    exact_encoded_bounds,
    filter_mask_encoded,
    sum_range_vector,
)
from repro.encodings.bitpack import (
    pack_bits,
    unpack_sum,
    unpack_sum_excluding,
    unpack_sum_reference,
)
from repro.encodings.ffor import (
    ffor_encode,
    ffor_filter_range,
    ffor_filter_range_reference,
    ffor_sum,
    ffor_sum_range,
    ffor_sum_range_reference,
    ffor_sum_reference,
)
from repro.query import dispatch as dispatch_mod
from repro.query.dispatch import dispatch, handlers_for, register

#: Doubles that force ALP exceptions (no finite decimal representation
#: at small (e, f), NaN/Inf payloads, extreme magnitudes).
_EXCEPTION_DOUBLES = (
    math.pi,
    -math.e,
    float("nan"),
    float("inf"),
    float("-inf"),
    5e-324,
    1e308,
    -0.0,
)

#: Mostly round decimals (encode cleanly) salted with exception makers.
_mixed_double = st.one_of(
    st.integers(min_value=-10_000, max_value=10_000).map(
        lambda cents: cents / 100.0
    ),
    st.sampled_from(_EXCEPTION_DOUBLES),
)


@st.composite
def _packed_case(draw):
    """(buffer, width, count, values) spanning fold/cast/gather regimes."""
    width = draw(st.integers(min_value=0, max_value=64))
    count = draw(st.integers(min_value=0, max_value=200))
    upper = (1 << width) - 1 if width else 0
    values = np.array(
        draw(
            st.lists(
                st.one_of(
                    st.integers(min_value=0, max_value=upper),
                    st.just(upper),  # all-max stresses the fold modulus
                ),
                min_size=count,
                max_size=count,
            )
        ),
        dtype=np.uint64,
    )
    return pack_bits(values, width), width, count, values


class TestPackedSums:
    @settings(max_examples=60, deadline=None)
    @given(_packed_case())
    def test_unpack_sum_matches_reference(self, case):
        buffer, width, count, _ = case
        assert unpack_sum(buffer, width, count) == unpack_sum_reference(
            buffer, width, count
        )

    @settings(max_examples=60, deadline=None)
    @given(_packed_case(), st.data())
    def test_unpack_sum_excluding_matches_reference(self, case, data):
        buffer, width, count, values = case
        n_excluded = data.draw(st.integers(min_value=0, max_value=count))
        positions = np.array(
            sorted(
                data.draw(
                    st.sets(
                        st.integers(min_value=0, max_value=max(count - 1, 0)),
                        min_size=min(n_excluded, count),
                        max_size=min(n_excluded, count),
                    )
                )
                if count
                else []
            ),
            dtype=np.uint16,
        )
        got = unpack_sum_excluding(buffer, width, count, positions)
        skip = set(positions.tolist())
        expected = sum(
            int(value)
            for position, value in enumerate(values.tolist())
            if position not in skip
        )
        assert got == expected


_int60 = st.integers(min_value=-(1 << 59), max_value=(1 << 59) - 1)


class TestFforFused:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(_int60, min_size=0, max_size=200), st.data())
    def test_sum_with_exclusions(self, values, data):
        array = np.array(values, dtype=np.int64)
        encoded = ffor_encode(array)
        positions = np.array(
            sorted(
                data.draw(
                    st.sets(
                        st.integers(
                            min_value=0, max_value=max(array.size - 1, 0)
                        ),
                        max_size=array.size,
                    )
                )
                if array.size
                else []
            ),
            dtype=np.uint16,
        )
        assert ffor_sum(encoded, exclude=positions) == ffor_sum_reference(
            encoded, exclude=positions
        )

    @settings(max_examples=50, deadline=None)
    @given(st.lists(_int60, min_size=1, max_size=200), st.data())
    def test_filter_and_sum_range(self, values, data):
        array = np.array(values, dtype=np.int64)
        encoded = ffor_encode(array)
        # Bounds drawn around the value domain so accept / reject /
        # partial header states all occur.
        d_low = data.draw(_int60)
        d_high = data.draw(_int60)
        assert np.array_equal(
            ffor_filter_range(encoded, d_low, d_high),
            ffor_filter_range_reference(encoded, d_low, d_high),
        )
        assert ffor_sum_range(
            encoded, d_low, d_high
        ) == ffor_sum_range_reference(encoded, d_low, d_high)


class TestAlpSum:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(_mixed_double, min_size=0, max_size=300),
        st.integers(min_value=0, max_value=18),
        st.data(),
    )
    def test_bit_identical_to_reference(self, values, exponent, data):
        factor = data.draw(st.integers(min_value=0, max_value=exponent))
        array = np.array(values, dtype=np.float64)
        vector = alp_encode_vector(array, exponent, factor)
        fused = alp_sum_vector(vector)
        oracle = alp_sum_vector_reference(vector)
        assert np.float64(fused).view(np.uint64) == np.float64(
            oracle
        ).view(np.uint64)

    def test_all_exception_vector_matches_decoded_sum(self):
        array = np.array(
            [math.pi, -math.e, float("inf"), 5e-324], dtype=np.float64
        )
        vector = alp_encode_vector(array, 2, 0)
        assert vector.exception_count == array.size
        fused = np.float64(alp_sum_vector(vector))
        decoded = np.float64(np.sum(alp_decode_vector(vector)))
        assert fused.view(np.uint64) == decoded.view(np.uint64)

    def test_negative_zero_exception_sum_keeps_sign(self):
        array = np.array([-0.0], dtype=np.float64)
        vector = alp_encode_vector(array, 14, 14)
        fused = np.float64(alp_sum_vector(vector))
        decoded = np.float64(np.sum(alp_decode_vector(vector)))
        assert fused.view(np.uint64) == decoded.view(np.uint64)


class TestEncodedPredicates:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(_mixed_double, min_size=1, max_size=300),
        st.floats(min_value=-150, max_value=150, allow_nan=False),
        st.floats(min_value=0, max_value=200, allow_nan=False),
    )
    def test_mask_bit_identical_to_decoded(self, values, low, width):
        array = np.array(values, dtype=np.float64)
        vector = alp_encode_vector(array, 4, 2)
        high = low + width
        mask = filter_mask_encoded(vector, low, high)
        decoded = alp_decode_vector(vector)
        expected = (decoded >= low) & (decoded <= high)
        assert np.array_equal(mask, expected)
        assert count_vector_encoded(vector, low, high) == int(
            expected.sum()
        )

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(_mixed_double, min_size=1, max_size=300),
        st.floats(min_value=-150, max_value=150, allow_nan=False),
        st.floats(min_value=0, max_value=200, allow_nan=False),
    )
    def test_sum_range_count_and_empty_selection(self, values, low, width):
        array = np.array(values, dtype=np.float64)
        vector = alp_encode_vector(array, 4, 2)
        high = low + width
        total, kept = sum_range_vector(vector, low, high)
        decoded = alp_decode_vector(vector)
        selected = decoded[(decoded >= low) & (decoded <= high)]
        assert kept == selected.size
        if not selected.size:
            # Empty selection: exactly +0.0, never an accumulated term.
            assert np.float64(total).view(np.uint64) == np.float64(
                0.0
            ).view(np.uint64)
        else:
            assert math.isclose(
                total, float(np.sum(selected)), rel_tol=1e-9, abs_tol=1e-9
            )

    def test_nan_and_inverted_bounds_select_nothing(self):
        array = np.round(np.linspace(0.0, 10.0, 256), 2)
        vector = alp_encode_vector(array, 4, 2)
        for low, high in ((math.nan, 5.0), (0.0, math.nan), (7.0, 3.0)):
            assert exact_encoded_bounds(low, high, 4, 2) == EMPTY_BOUNDS
            assert count_vector_encoded(vector, low, high) == 0
            assert sum_range_vector(vector, low, high) == (0.0, 0)


class TestExactBounds:
    @settings(max_examples=60, deadline=None)
    @given(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
        st.integers(min_value=0, max_value=18),
        st.data(),
    )
    def test_membership_iff_integer_bounds(self, low, width, exponent, data):
        factor = data.draw(st.integers(min_value=0, max_value=exponent))
        high = low + width
        d_low, d_high = exact_encoded_bounds(low, high, exponent, factor)
        for d in data.draw(
            st.lists(
                st.integers(min_value=-(1 << 62), max_value=1 << 62),
                min_size=1,
                max_size=20,
            )
        ):
            in_float = low <= decode_scalar(d, exponent, factor) <= high
            assert in_float == (d_low <= d <= d_high)


class _Base:
    def encoded_batches(self, value_range=None):
        return iter(())


class _Sub(_Base):
    pass


class TestDispatchRegistry:
    def test_mro_specificity_and_inheritance(self):
        register("test-op-mro", _Base, lambda source: "base")
        # A subclass inherits the base handler...
        assert dispatch(
            "test-op-mro", _Sub(), default=lambda source: "default"
        ) == "base"
        # ...until its own, more specific handler is registered.
        register("test-op-mro", _Sub, lambda source: "sub")
        assert dispatch(
            "test-op-mro", _Sub(), default=lambda source: "default"
        ) == "sub"
        assert [
            handler(None)
            for handler in handlers_for("test-op-mro", _Sub())
        ] == ["sub", "base"]

    def test_not_implemented_falls_through(self):
        register(
            "test-op-decline", _Base, lambda source: "base"
        )
        register(
            "test-op-decline", _Sub, lambda source: NotImplemented
        )
        # The subclass handler declines, the base handler answers.
        assert dispatch(
            "test-op-decline", _Sub(), default=lambda source: "default"
        ) == "base"

    def test_all_declined_runs_default(self):
        register(
            "test-op-all-decline", _Base, lambda source: NotImplemented
        )
        assert dispatch(
            "test-op-all-decline",
            _Base(),
            default=lambda source: "default",
        ) == "default"

    def test_reregistration_replaces(self):
        register("test-op-replace", _Base, lambda source: "first")
        register("test-op-replace", _Base, lambda source: "second")
        assert len(handlers_for("test-op-replace", _Base())) == 1
        assert dispatch(
            "test-op-replace", _Base(), default=lambda source: "default"
        ) == "second"

    def teardown_method(self):
        for op in list(dispatch_mod._registry):
            if op.startswith("test-op-"):
                del dispatch_mod._registry[op]


class TestEngineParity:
    def _column(self, n=8192, seed=3):
        rng = np.random.default_rng(seed)
        values = np.round(rng.uniform(-50, 150, n), 2)
        values[::700] = math.pi  # sprinkle exceptions
        values[5] = math.nan
        return values

    def test_sum_query_fused_vs_decoded(self):
        from repro.query.engine import sum_query, sum_query_decoded
        from repro.query.sources import make_source

        values = self._column()
        source = make_source("alp", values)
        fused = sum_query(source)
        decoded = sum_query_decoded(source)
        # NaN propagates through both paths identically.
        assert math.isnan(fused) and math.isnan(decoded)

        finite = np.nan_to_num(values, nan=0.25)
        source = make_source("alp", finite)
        assert math.isclose(
            sum_query(source),
            sum_query_decoded(source),
            rel_tol=1e-12,
        )

    def test_range_queries_fused_vs_decoded(self):
        from repro.query.engine import (
            range_count_query,
            range_count_query_decoded,
            range_sum_query,
            range_sum_query_decoded,
        )
        from repro.query.sources import make_source

        values = self._column()
        source = make_source("alp", values)
        low, high = 10.0, 90.0
        assert range_count_query(
            source, low, high
        ) == range_count_query_decoded(source, low, high)
        total, count = range_sum_query(source, low, high)
        exp_total, exp_count = range_sum_query_decoded(source, low, high)
        assert count == exp_count
        assert math.isclose(total, exp_total, rel_tol=1e-12)

    def test_file_source_end_to_end(self, tmp_path):
        from repro import api
        from repro.query.engine import (
            range_count_query,
            range_count_query_decoded,
            sum_query,
            sum_query_decoded,
        )
        from repro.query.sources import FileColumnSource

        values = np.nan_to_num(self._column(n=20_480), nan=1.5)
        path = tmp_path / "column.alpc"
        api.write(path, values)
        source = FileColumnSource.open(path)
        assert math.isclose(
            sum_query(source), sum_query_decoded(source), rel_tol=1e-12
        )
        low, high = -10.0, 42.0
        assert range_count_query(
            source, low, high
        ) == range_count_query_decoded(source, low, high)
        expected = int(((values >= low) & (values <= high)).sum())
        assert range_count_query(source, low, high) == expected

    def test_encoded_batch_counts(self):
        from repro.query.sources import EncodedBatch

        empty = EncodedBatch()
        assert empty.count == 0 and empty.decode().size == 0
        decoded = EncodedBatch(values=np.ones(3))
        assert decoded.count == 3
        vector = alp_encode_vector(
            np.round(np.linspace(0, 1, 64), 2), 4, 2
        )
        assert EncodedBatch(alp=vector).count == 64
