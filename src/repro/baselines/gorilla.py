"""Gorilla floating-point compression (Pelkonen et al., VLDB 2015).

Each value is XORed with the immediately preceding value:

- a zero XOR is stored as a single ``0`` bit;
- otherwise a ``1`` control bit is written, then either
  - ``0`` + the meaningful bits, when they fall inside the previous
    value's leading/trailing-zero window (the "control bit" fast path), or
  - ``1`` + 5 bits of leading-zero count + 6 bits of meaningful-bit
    length + the meaningful bits themselves.

The leading-zero count is clamped to 31 so it fits 5 bits, exactly like
the reference implementation.  The paper notes Gorilla's heavy per-value
branching is what makes it slow — a property this straightforward port
shares by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alputil.bits import (
    double_to_bits,
    leading_zeros64,
    trailing_zeros64,
    xor_with_previous,
)
from repro.alputil.bitstream import BitReader, BitWriter

#: Leading-zero counts are stored in 5 bits, so clamp at 31.
MAX_STORED_LEADING = 31


@dataclass(frozen=True)
class GorillaEncoded:
    """A Gorilla-compressed block of doubles."""

    payload: bytes
    count: int

    def size_bits(self) -> int:
        """Compressed footprint in bits."""
        return len(self.payload) * 8

    def bits_per_value(self) -> float:
        """Compressed bits per value."""
        return self.size_bits() / self.count if self.count else 0.0


def gorilla_compress(values: np.ndarray) -> GorillaEncoded:
    """Compress a float64 array with Gorilla."""
    values = np.ascontiguousarray(values, dtype=np.float64)
    writer = BitWriter()
    if values.size == 0:
        return GorillaEncoded(payload=writer.finish(), count=0)

    bits = double_to_bits(values)
    xors = xor_with_previous(values)
    # Leading/trailing counts are data-parallel; precompute them so the
    # Python loop only does bit emission.
    leads = np.minimum(leading_zeros64(xors), MAX_STORED_LEADING)
    trails = trailing_zeros64(xors)

    writer.write(int(bits[0]), 64)
    stored_leading = -1
    stored_trailing = -1
    xors_list = xors.tolist()
    leads_list = leads.tolist()
    trails_list = trails.tolist()
    for i in range(1, values.size):
        xor = xors_list[i]
        if xor == 0:
            writer.write_bit(0)
            continue
        writer.write_bit(1)
        lead = leads_list[i]
        trail = trails_list[i]
        if (
            stored_leading >= 0
            and lead >= stored_leading
            and trail >= stored_trailing
        ):
            # Meaningful bits fit the previously established window.
            writer.write_bit(0)
            meaningful = 64 - stored_leading - stored_trailing
            writer.write(xor >> stored_trailing, meaningful)
        else:
            writer.write_bit(1)
            meaningful = 64 - lead - trail
            writer.write(lead, 5)
            writer.write(meaningful - 1, 6)
            writer.write(xor >> trail, meaningful)
            stored_leading = lead
            stored_trailing = trail
    return GorillaEncoded(payload=writer.finish(), count=values.size)


def gorilla_decompress(encoded: GorillaEncoded) -> np.ndarray:
    """Decompress a :class:`GorillaEncoded` block back to float64."""
    if encoded.count == 0:
        return np.empty(0, dtype=np.float64)
    reader = BitReader(encoded.payload)
    out = np.empty(encoded.count, dtype=np.uint64)
    current = reader.read(64)
    out[0] = current
    stored_leading = -1
    stored_trailing = -1
    for i in range(1, encoded.count):
        if reader.read_bit() == 0:
            out[i] = current
            continue
        if reader.read_bit() == 0:
            meaningful = 64 - stored_leading - stored_trailing
            xor = reader.read(meaningful) << stored_trailing
        else:
            lead = reader.read(5)
            meaningful = reader.read(6) + 1
            trail = 64 - lead - meaningful
            xor = reader.read(meaningful) << trail
            stored_leading = lead
            stored_trailing = trail
        current ^= xor
        out[i] = current
    return out.view(np.float64)
