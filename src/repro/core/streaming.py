"""Incremental (streaming) compression.

Ingestion pipelines rarely hold a whole column in memory; the
:class:`StreamingCompressor` accepts values in arbitrary-sized chunks,
buffers one row-group at a time, and emits
:class:`~repro.core.compressor.CompressedRowGroup` objects as soon as
each row-group fills — the same unit the storage layer serializes.
Sampling behaviour is identical to the batch compressor because ALP's
two-level sampling is row-group-scoped by design.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.core.compressor import (
    CompressedRowGroup,
    CompressedRowGroups,
    CompressionStats,
    compress_rowgroup,
)
from repro.core.constants import ROWGROUP_VECTORS, VECTOR_SIZE


class StreamingCompressor:
    """Chunk-at-a-time compressor emitting completed row-groups.

    Usage::

        sink = []
        stream = StreamingCompressor(on_rowgroup=sink.append)
        for chunk in chunks:
            stream.write(chunk)
        stream.close()        # flushes the partial trailing row-group
    """

    def __init__(
        self,
        on_rowgroup: Callable[[CompressedRowGroup], None],
        vector_size: int = VECTOR_SIZE,
        rowgroup_vectors: int = ROWGROUP_VECTORS,
    ) -> None:
        self._on_rowgroup = on_rowgroup
        self._vector_size = vector_size
        self._rowgroup_size = vector_size * rowgroup_vectors
        self._buffer: list[np.ndarray] = []
        self._buffered = 0
        self._closed = False
        self.values_written = 0
        self.rowgroups_emitted = 0

    def write(self, values: np.ndarray) -> None:
        """Append a chunk; emits row-groups whenever the buffer fills."""
        if self._closed:
            raise RuntimeError("compressor is closed")
        values = np.ascontiguousarray(values, dtype=np.float64)
        if values.size == 0:
            return
        self.values_written += values.size
        self._buffer.append(values)
        self._buffered += values.size
        while self._buffered >= self._rowgroup_size:
            self._emit(self._take(self._rowgroup_size))

    def close(self) -> None:
        """Flush any buffered tail as a final (short) row-group."""
        if self._closed:
            return
        if self._buffered:
            self._emit(self._take(self._buffered))
        self._closed = True

    def _take(self, count: int) -> np.ndarray:
        """Remove exactly ``count`` buffered values."""
        parts: list[np.ndarray] = []
        needed = count
        while needed:
            head = self._buffer[0]
            if head.size <= needed:
                parts.append(head)
                self._buffer.pop(0)
                needed -= head.size
            else:
                parts.append(head[:needed])
                self._buffer[0] = head[needed:]
                needed = 0
        self._buffered -= count
        return np.concatenate(parts) if len(parts) > 1 else parts[0]

    def _emit(self, values: np.ndarray) -> None:
        rowgroup, _, _ = compress_rowgroup(
            values, vector_size=self._vector_size
        )
        self.rowgroups_emitted += 1
        self._on_rowgroup(rowgroup)

    def __enter__(self) -> "StreamingCompressor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def compress_stream(
    chunks: Iterator[np.ndarray],
    vector_size: int = VECTOR_SIZE,
    rowgroup_vectors: int = ROWGROUP_VECTORS,
) -> CompressedRowGroups:
    """Compress an iterator of chunks into a full column object."""
    rowgroups: list[CompressedRowGroup] = []
    with StreamingCompressor(
        rowgroups.append,
        vector_size=vector_size,
        rowgroup_vectors=rowgroup_vectors,
    ) as stream:
        for chunk in chunks:
            stream.write(chunk)
    count = sum(rg.count for rg in rowgroups)
    return CompressedRowGroups(
        rowgroups=tuple(rowgroups),
        count=count,
        vector_size=vector_size,
        stats=CompressionStats(
            vectors_encoded=sum(
                len(rg.alp.vectors) if rg.alp else len(rg.rd.vectors)
                for rg in rowgroups
            ),
            rd_rowgroups=sum(1 for rg in rowgroups if rg.scheme == "alprd"),
            alp_rowgroups=sum(1 for rg in rowgroups if rg.scheme == "alp"),
        ),
    )
