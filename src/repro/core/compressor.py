"""Row-group orchestration: the public compress/decompress entry points.

``compress`` splits a column into row-groups of 100 vectors x 1024
values, runs the first sampling level once per row-group, decides between
ALP and ALP_rd, then encodes every vector (running the second sampling
level only when more than one candidate survived level one).

The returned objects carry enough introspection (scheme used, k' per
row-group, combinations tried per vector) to reproduce the paper's
sampling-overhead analysis (§4.2) without re-instrumenting the code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.core.alp import (
    AlpVector,
    alp_decode_vector,
    alp_encode_rowgroup,
    alp_encode_vector,
)
from repro.core.alprd import (
    AlpRdRowGroup,
    alprd_decode,
    alprd_encode,
)
from repro.core.constants import (
    ROWGROUP_VECTORS,
    VECTOR_SIZE,
)
from repro.core.sampler import (
    ExponentFactor,
    FirstLevelResult,
    first_level_sample,
    second_level_sample_rowgroup,
)


@dataclass(frozen=True)
class AlpRowGroup:
    """A decimal-encoded (main ALP) row-group."""

    vectors: tuple[AlpVector, ...]
    candidates: tuple[ExponentFactor, ...]
    count: int

    def size_bits(self) -> int:
        """Sum of per-vector footprints plus the candidate-list header."""
        return sum(v.size_bits() for v in self.vectors) + 8

    def exception_count(self) -> int:
        """Total exceptions across the row-group."""
        return sum(v.exception_count for v in self.vectors)


@dataclass(frozen=True)
class CompressedRowGroup:
    """One compressed row-group: exactly one of ``alp`` / ``rd`` is set."""

    alp: AlpRowGroup | None
    rd: AlpRdRowGroup | None
    first_level: FirstLevelResult
    count: int

    @property
    def scheme(self) -> str:
        """'alp' or 'alprd'."""
        return "alp" if self.alp is not None else "alprd"

    def size_bits(self) -> int:
        """Compressed footprint of this row-group."""
        payload = self.alp if self.alp is not None else self.rd
        if payload is None:
            raise ValueError("row-group has neither ALP nor ALP_rd payload")
        return payload.size_bits() + 8  # scheme tag


@dataclass(frozen=True)
class CompressionStats:
    """Aggregate sampling statistics for the §4.2 overhead analysis."""

    vectors_encoded: int = 0
    second_level_skipped: int = 0
    combinations_tried: tuple[int, ...] = field(default_factory=tuple)
    rd_rowgroups: int = 0
    alp_rowgroups: int = 0

    def tried_histogram(self) -> dict[int, int]:
        """Histogram of combinations tried per (non-skipped) vector."""
        hist: dict[int, int] = {}
        for tried in self.combinations_tried:
            hist[tried] = hist.get(tried, 0) + 1
        return hist


@dataclass(frozen=True)
class CompressedRowGroups:
    """A fully compressed column (ordered row-groups)."""

    rowgroups: tuple[CompressedRowGroup, ...]
    count: int
    vector_size: int
    stats: CompressionStats

    def size_bits(self) -> int:
        """Total compressed footprint."""
        return sum(rg.size_bits() for rg in self.rowgroups)

    def bits_per_value(self) -> float:
        """Compressed bits per value — the paper's Table 4 metric."""
        if self.count == 0:
            return 0.0
        return self.size_bits() / self.count

    def compression_ratio(self) -> float:
        """Uncompressed (64-bit) over compressed size."""
        bpv = self.bits_per_value()
        return 64.0 / bpv if bpv else float("inf")

    @property
    def uses_rd(self) -> bool:
        """True if any row-group fell back to ALP_rd."""
        return any(rg.scheme == "alprd" for rg in self.rowgroups)


#: Backwards-friendly alias used by the storage layer.
CompressedColumn = CompressedRowGroups


def compress_rowgroup(
    rowgroup: np.ndarray,
    vector_size: int = VECTOR_SIZE,
    force_scheme: str | None = None,
) -> tuple[CompressedRowGroup, list[int], int]:
    """Compress one row-group; returns (result, tried-counts, skipped).

    ``force_scheme`` ("alp" or "alprd") bypasses the adaptive decision,
    which the ablation benchmarks use to measure the fallback's cost.
    """
    if not 1 <= vector_size <= 65_535:
        # Exception positions and serialized vector counts are 16-bit.
        raise ValueError(
            f"vector_size must be in [1, 65535], got {vector_size}"
        )
    with obs.span("compressor.rowgroup"):
        return _compress_rowgroup(rowgroup, vector_size, force_scheme)


def _compress_rowgroup(
    rowgroup: np.ndarray,
    vector_size: int,
    force_scheme: str | None,
) -> tuple[CompressedRowGroup, list[int], int]:
    rowgroup = np.ascontiguousarray(rowgroup, dtype=np.float64)
    first = first_level_sample(rowgroup, vector_size=vector_size)

    use_rd = first.use_rd if force_scheme is None else force_scheme == "alprd"
    if obs.ENABLED:
        obs.metrics.counter_add("compressor.rowgroups", 1)
        obs.metrics.counter_add(
            "compressor.scheme.alprd" if use_rd else "compressor.scheme.alp", 1
        )
    if use_rd:
        rd = alprd_encode(rowgroup, vector_size=vector_size)
        return (
            CompressedRowGroup(
                alp=None, rd=rd, first_level=first, count=rowgroup.size
            ),
            [],
            0,
        )

    tried_counts: list[int] = []
    if len(first.candidates) == 1:
        # The common case: one surviving candidate means every vector
        # skips level two, so the whole row-group encodes as a single
        # batched ALP_enc/ALP_dec pass instead of ~100 per-vector ones.
        combo = first.candidates[0]
        vectors = alp_encode_rowgroup(
            rowgroup, combo.exponent, combo.factor, vector_size
        )
        skipped = len(vectors)
        obs.counter_add("sampler.second_level_skipped", skipped)
    else:
        # Multiple candidates: level-two sampling for every vector runs
        # as one batched (k' x vectors x s) evaluation, then each vector
        # encodes under its own winner.
        seconds = second_level_sample_rowgroup(
            rowgroup, first.candidates, vector_size=vector_size
        )
        vectors = []
        skipped = 0
        for vi, start in enumerate(range(0, rowgroup.size, vector_size)):
            chunk = rowgroup[start : start + vector_size]
            second = seconds[vi]
            if second.skipped:
                skipped += 1
            else:
                tried_counts.append(second.combinations_tried)
            combo = second.combination
            vectors.append(
                alp_encode_vector(chunk, combo.exponent, combo.factor)
            )

    if obs.ENABLED:
        obs.metrics.counter_add(
            "compressor.exceptions_patched",
            sum(v.exception_count for v in vectors),
        )
    alp = AlpRowGroup(
        vectors=tuple(vectors),
        candidates=first.candidates,
        count=rowgroup.size,
    )
    return (
        CompressedRowGroup(
            alp=alp, rd=None, first_level=first, count=rowgroup.size
        ),
        tried_counts,
        skipped,
    )


def compress(
    values: np.ndarray,
    vector_size: int = VECTOR_SIZE,
    rowgroup_vectors: int = ROWGROUP_VECTORS,
    force_scheme: str | None = None,
) -> CompressedRowGroups:
    """Compress a float64 column with adaptive ALP / ALP_rd.

    This is the library's primary entry point.  The input round-trips
    bit-exactly through :func:`decompress`, including NaN payloads,
    infinities and signed zeros.
    """
    with obs.span("compressor.compress"):
        values = np.ascontiguousarray(values, dtype=np.float64)
        rowgroup_size = vector_size * rowgroup_vectors
        rowgroups: list[CompressedRowGroup] = []
        all_tried: list[int] = []
        skipped_total = 0
        for start in range(0, values.size, rowgroup_size):
            chunk = values[start : start + rowgroup_size]
            rg, tried, skipped = compress_rowgroup(
                chunk, vector_size=vector_size, force_scheme=force_scheme
            )
            rowgroups.append(rg)
            all_tried.extend(tried)
            skipped_total += skipped

        vectors_encoded = sum(
            len(rg.alp.vectors) if rg.alp else len(rg.rd.vectors)
            for rg in rowgroups
        )
        stats = CompressionStats(
            vectors_encoded=vectors_encoded,
            second_level_skipped=skipped_total,
            combinations_tried=tuple(all_tried),
            rd_rowgroups=sum(1 for rg in rowgroups if rg.scheme == "alprd"),
            alp_rowgroups=sum(1 for rg in rowgroups if rg.scheme == "alp"),
        )
        column = CompressedRowGroups(
            rowgroups=tuple(rowgroups),
            count=values.size,
            vector_size=vector_size,
            stats=stats,
        )
        _record_column_metrics(column)
        return column


def _record_column_metrics(column: CompressedRowGroups) -> None:
    """Counter/gauge summary of one finished compression (if enabled)."""
    if not obs.ENABLED:
        return
    stats = column.stats
    obs.metrics.counter_add("compressor.vectors_encoded", stats.vectors_encoded)
    obs.metrics.counter_add(
        "compressor.second_level_skipped", stats.second_level_skipped
    )
    obs.metrics.counter_add(
        "compressor.combinations_tried", sum(stats.combinations_tried)
    )
    obs.metrics.counter_add("compressor.values", column.count)
    obs.metrics.counter_add("compressor.compressed_bits", column.size_bits())
    obs.metrics.gauge_set(
        "compressor.bits_per_value", column.bits_per_value()
    )


def compress_parallel(
    values: np.ndarray,
    threads: int = 2,
    vector_size: int = VECTOR_SIZE,
    rowgroup_vectors: int = ROWGROUP_VECTORS,
    force_scheme: str | None = None,
) -> CompressedRowGroups:
    """Compress row-groups concurrently with a thread pool.

    Row-groups are independent by construction (sampling is row-group
    scoped), so the result is bit-identical to :func:`compress` — order,
    parameters and payloads included.  numpy kernels release the GIL for
    part of the work, so two threads help even in CPython.
    """
    from concurrent.futures import ThreadPoolExecutor

    values = np.ascontiguousarray(values, dtype=np.float64)
    rowgroup_size = vector_size * rowgroup_vectors
    chunks = [
        values[start : start + rowgroup_size]
        for start in range(0, values.size, rowgroup_size)
    ]
    if threads <= 1 or len(chunks) <= 1:
        return compress(
            values,
            vector_size=vector_size,
            rowgroup_vectors=rowgroup_vectors,
            force_scheme=force_scheme,
        )

    def work(chunk: np.ndarray) -> CompressedRowGroup:
        return compress_rowgroup(
            chunk, vector_size=vector_size, force_scheme=force_scheme
        )

    with obs.span("compressor.compress_parallel"):
        with ThreadPoolExecutor(max_workers=threads) as pool:
            results = list(pool.map(work, chunks))

    rowgroups = [rg for rg, _, _ in results]
    all_tried = [t for _, tried, _ in results for t in tried]
    skipped_total = sum(skipped for _, _, skipped in results)
    stats = CompressionStats(
        vectors_encoded=sum(
            len(rg.alp.vectors) if rg.alp else len(rg.rd.vectors)
            for rg in rowgroups
        ),
        second_level_skipped=skipped_total,
        combinations_tried=tuple(all_tried),
        rd_rowgroups=sum(1 for rg in rowgroups if rg.scheme == "alprd"),
        alp_rowgroups=sum(1 for rg in rowgroups if rg.scheme == "alp"),
    )
    column = CompressedRowGroups(
        rowgroups=tuple(rowgroups),
        count=values.size,
        vector_size=vector_size,
        stats=stats,
    )
    _record_column_metrics(column)
    return column


def decode_rowgroup_into(rg: CompressedRowGroup, out: np.ndarray) -> None:
    """Decode one row-group into a preallocated float64 slice.

    The canonical decode path: :func:`decompress`,
    :func:`decompress_parallel` and the storage readers'
    ``read_rowgroup``/``read_all`` ``out=`` variants all funnel through
    here, each vector writing directly into its offset of the caller's
    buffer.  ``out`` must be a writable float64 array (or slice) of
    exactly ``rg.count`` values.
    """
    if out.dtype != np.float64 or out.ndim != 1 or out.size != rg.count:
        raise ValueError(
            f"out must be a 1-D float64 array of {rg.count} values, "
            f"got {out.dtype} with shape {out.shape}"
        )
    pos = 0
    if rg.alp is not None:
        for vector in rg.alp.vectors:
            alp_decode_vector(vector, out=out[pos : pos + vector.count])
            pos += vector.count
    else:
        if rg.rd is None:
            raise ValueError("row-group has neither ALP nor ALP_rd payload")
        alprd_decode(rg.rd, out=out[pos : pos + rg.rd.count])


def coerce_decode_out(
    column: CompressedRowGroups, out: np.ndarray | None
) -> np.ndarray:
    """Validate (or allocate) a whole-column float64 decode buffer."""
    if out is None:
        return np.empty(column.count, dtype=np.float64)
    if not isinstance(out, np.ndarray):
        raise TypeError(f"out must be a numpy ndarray, got {type(out)!r}")
    if out.dtype != np.float64 or out.ndim != 1 or out.size != column.count:
        raise ValueError(
            f"out must be a 1-D float64 array of {column.count} values, "
            f"got {out.dtype} with shape {out.shape}"
        )
    if not out.flags.c_contiguous or not out.flags.writeable:
        raise ValueError("out must be C-contiguous and writable")
    return out


def decompress(
    column: CompressedRowGroups, out: np.ndarray | None = None
) -> np.ndarray:
    """Decompress a column back to float64, bit-exactly.

    Every vector decodes directly into its offset of one preallocated
    output array — no per-vector arrays are built and concatenated.
    ``out``, when given, must be a writable C-contiguous float64 array
    of exactly ``column.count`` values; the decoded column is written
    in place and ``out`` itself is returned, so steady-state callers
    (the serving buffer pool) allocate nothing per decode.
    """
    out = coerce_decode_out(column, out)
    if column.count == 0:
        return out
    with obs.span("compressor.decompress"):
        pos = 0
        for rg in column.rowgroups:
            decode_rowgroup_into(rg, out[pos : pos + rg.count])
            pos += rg.count
        if obs.ENABLED:
            obs.metrics.counter_add("compressor.values_decoded", column.count)
        return out


def decompress_parallel(
    column: CompressedRowGroups, threads: int = 2, out: np.ndarray | None = None
) -> np.ndarray:
    """Decompress row-groups concurrently with a thread pool.

    Each row-group decodes into a disjoint slice of one preallocated
    output array, so workers never touch the same memory and the result
    is bit-identical to :func:`decompress` — including when the caller
    provides the array via ``out=`` (same contract as
    :func:`decompress`).  Like :func:`compress_parallel`, the win comes
    from numpy kernels releasing the GIL for part of the decode.
    """
    from concurrent.futures import ThreadPoolExecutor

    if threads <= 1 or len(column.rowgroups) <= 1:
        return decompress(column, out=out)
    out = coerce_decode_out(column, out)
    if column.count == 0:
        return out
    with obs.span("compressor.decompress_parallel"):
        slices = []
        pos = 0
        for rg in column.rowgroups:
            slices.append((rg, out[pos : pos + rg.count]))
            pos += rg.count
        with ThreadPoolExecutor(max_workers=threads) as pool:
            list(pool.map(lambda item: decode_rowgroup_into(*item), slices))
        if obs.ENABLED:
            obs.metrics.counter_add("compressor.values_decoded", column.count)
        return out
