"""Chimp128 (ChimpN, N = 128) — Chimp with a previous-value ring buffer.

Instead of always XORing with the immediately preceding value, Chimp128
searches the previous 128 values for the most promising XOR partner, at
the cost of a 7-bit index per reference.  Candidate lookup uses a hash
table over the low 14 bits of the double's bit pattern, exactly like the
reference implementation: a match on the low bits strongly predicts a
long trailing-zero run in the XOR.

Flag layout (2 bits):

- ``00`` — perfect match: 7-bit ring index only;
- ``01`` — useful match (> 6 trailing zeros): 7-bit index, 3-bit leading
  code, 6-bit significant-bit count, center bits;
- ``10`` / ``11`` — fall back to the previous value, exactly like Chimp.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alputil.bits import double_to_bits
from repro.alputil.bitstream import BitReader, BitWriter
from repro.baselines.chimp import (
    CLASS_TO_CODE,
    CODE_TO_CLASS,
    TRAILING_THRESHOLD,
    _ROUND_DOWN,
)

#: Default ring size (Chimp128) and the bits needed to index it.
RING_SIZE = 128
INDEX_BITS = 7

#: Hash key: the low 14 bits of the IEEE 754 pattern.
KEY_MASK = (1 << 14) - 1


def _index_bits(ring_size: int) -> int:
    """Bits needed to address a ring of ``ring_size`` slots."""
    if ring_size < 2 or ring_size & (ring_size - 1):
        raise ValueError(f"ring size must be a power of two >= 2, got {ring_size}")
    return ring_size.bit_length() - 1


def _leading_zeros(x: int) -> int:
    """Scalar leading-zero count of a 64-bit int."""
    return 64 - x.bit_length()


def _trailing_zeros(x: int) -> int:
    """Scalar trailing-zero count of a 64-bit int (64 for zero)."""
    if x == 0:
        return 64
    return (x & -x).bit_length() - 1


@dataclass(frozen=True)
class Chimp128Encoded:
    """A ChimpN-compressed block of doubles (N = 128 by default)."""

    payload: bytes
    count: int
    ring_size: int = RING_SIZE

    def size_bits(self) -> int:
        """Compressed footprint in bits."""
        return len(self.payload) * 8

    def bits_per_value(self) -> float:
        """Compressed bits per value."""
        return self.size_bits() / self.count if self.count else 0.0


def chimpn_compress(
    values: np.ndarray, ring_size: int = RING_SIZE
) -> Chimp128Encoded:
    """Compress a float64 array with ChimpN (ring of ``ring_size``)."""
    index_bits = _index_bits(ring_size)
    values = np.ascontiguousarray(values, dtype=np.float64)
    writer = BitWriter()
    if values.size == 0:
        return Chimp128Encoded(
            payload=writer.finish(), count=0, ring_size=ring_size
        )

    bits_list = double_to_bits(values).tolist()
    writer.write(bits_list[0], 64)

    ring = [0] * ring_size
    ring[0] = bits_list[0]
    last_seen: dict[int, int] = {bits_list[0] & KEY_MASK: 0}
    stored_leading = -1

    for i in range(1, len(bits_list)):
        value = bits_list[i]
        candidate_pos = last_seen.get(value & KEY_MASK, -1)
        use_candidate = candidate_pos >= 0 and i - candidate_pos <= ring_size
        if use_candidate:
            candidate = ring[candidate_pos % ring_size]
            xor = value ^ candidate
            trail = _trailing_zeros(xor)
            if xor == 0:
                writer.write(0b00, 2)
                writer.write(candidate_pos % ring_size, index_bits)
                stored_leading = -1
            elif trail > TRAILING_THRESHOLD:
                writer.write(0b01, 2)
                writer.write(candidate_pos % ring_size, index_bits)
                lead_class = _ROUND_DOWN[_leading_zeros(xor)]
                significant = 64 - lead_class - trail
                writer.write(CLASS_TO_CODE[lead_class], 3)
                writer.write(significant, 6)
                writer.write(xor >> trail, significant)
                stored_leading = -1
            else:
                use_candidate = False
        if not use_candidate:
            # Fall back to the previous value, Chimp style.
            xor = value ^ ring[(i - 1) % ring_size]
            if xor == 0:
                # No perfect-match candidate was found via the hash, but
                # the previous value happens to be equal: flag 00 with the
                # previous slot's index keeps the decoder uniform.
                writer.write(0b00, 2)
                writer.write((i - 1) % ring_size, index_bits)
                stored_leading = -1
            else:
                lead_class = _ROUND_DOWN[_leading_zeros(xor)]
                if lead_class == stored_leading:
                    writer.write(0b10, 2)
                    writer.write(xor, 64 - lead_class)
                else:
                    writer.write(0b11, 2)
                    writer.write(CLASS_TO_CODE[lead_class], 3)
                    writer.write(xor, 64 - lead_class)
                    stored_leading = lead_class
        ring[i % ring_size] = value
        last_seen[value & KEY_MASK] = i
    return Chimp128Encoded(
        payload=writer.finish(), count=values.size, ring_size=ring_size
    )


def chimpn_decompress(encoded: Chimp128Encoded) -> np.ndarray:
    """Decompress a ChimpN block back to float64."""
    if encoded.count == 0:
        return np.empty(0, dtype=np.float64)
    ring_size = encoded.ring_size
    index_bits = _index_bits(ring_size)
    reader = BitReader(encoded.payload)
    out = np.empty(encoded.count, dtype=np.uint64)
    ring = [0] * ring_size
    current = reader.read(64)
    out[0] = current
    ring[0] = current
    stored_leading = -1
    for i in range(1, encoded.count):
        flag = reader.read(2)
        if flag == 0b00:
            current = ring[reader.read(index_bits)]
            stored_leading = -1
        elif flag == 0b01:
            reference = ring[reader.read(index_bits)]
            lead_class = CODE_TO_CLASS[reader.read(3)]
            significant = reader.read(6)
            trail = 64 - lead_class - significant
            current = reference ^ (reader.read(significant) << trail)
            stored_leading = -1
        elif flag == 0b10:
            current = ring[(i - 1) % ring_size] ^ reader.read(
                64 - stored_leading
            )
        else:
            lead_class = CODE_TO_CLASS[reader.read(3)]
            current = ring[(i - 1) % ring_size] ^ reader.read(64 - lead_class)
            stored_leading = lead_class
        ring[i % ring_size] = current
        out[i] = current
    return out.view(np.float64)


def chimp128_compress(values: np.ndarray) -> Chimp128Encoded:
    """Compress with the paper's configuration: ChimpN, N = 128."""
    return chimpn_compress(values, ring_size=RING_SIZE)


def chimp128_decompress(encoded: Chimp128Encoded) -> np.ndarray:
    """Decompress a :class:`Chimp128Encoded` block back to float64."""
    return chimpn_decompress(encoded)
