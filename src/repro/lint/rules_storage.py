"""RL7 — ``bytes(...)`` payload materialization inside the storage layer.

The zero-copy read path hands row-group payloads around as
``memoryview`` slices of the (possibly mmap-backed) file image:
:meth:`ColumnFileReader.rowgroup_payload` returns a view, CRC32C runs
directly over buffers, and ``deserialize_rowgroup`` reads from any
object supporting the buffer protocol.  One ``bytes(view)`` call
quietly reintroduces the full-payload copy the whole path exists to
avoid — and nothing at runtime notices; reads just get slower and the
"zero-copy" claim in ``docs/PERFORMANCE.md`` silently rots.

This rule rejects single-argument ``bytes(x)`` calls anywhere under
``repro/storage/`` when ``x`` is an expression (a name, attribute,
subscript, call result, …).  Copy-free spellings stay legal:

- ``bytes(8)`` / ``bytes()`` — size-based zero-fill construction,
- ``bytes([0x41, 0x4c])`` — literal byte lists (format magic),
- ``bytes(it, "utf-8")`` — the multi-argument encode form.

A justified copy (e.g. detaching a payload from a reader about to
close) takes a ``# reprolint: ignore[RL7]`` with a reason, which is
exactly the greppable audit trail we want for every surviving copy.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Rule, Violation


def _is_copyless_argument(node: ast.expr) -> bool:
    """Arguments to ``bytes(...)`` that never copy a payload."""
    if isinstance(node, ast.Constant):
        return True  # bytes(8), bytes(b"..."): size/literal construction
    if isinstance(node, (ast.List, ast.Tuple)):
        # bytes([0x41, 0x4c, 0x50, 0x43]) — literal magic, not a payload.
        return all(isinstance(elt, ast.Constant) for elt in node.elts)
    return False


class StorageCopyRule(Rule):
    """RL7: payload-materializing ``bytes(...)`` under ``repro/storage``."""

    code = "RL7"
    name = "storage-copy"
    description = (
        "bytes(...) materializes a payload copy inside repro/storage; "
        "keep the memoryview (crc32c and deserialize_rowgroup accept "
        "buffers directly)"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return len(ctx.effective) >= 2 and ctx.effective[:2] == (
            "repro",
            "storage",
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Name) and func.id == "bytes"):
                continue
            if len(node.args) != 1 or node.keywords:
                continue  # bytes() / bytes(it, encoding): no buffer copy
            argument = node.args[0]
            if _is_copyless_argument(argument):
                continue
            yield self.violation(
                ctx,
                node,
                "bytes(...) copies the payload; the zero-copy read path "
                "passes memoryview slices through (crc32c and "
                "deserialize_rowgroup accept any buffer) — copy only "
                "with a justified # reprolint: ignore[RL7]",
            )
