"""Vector-at-a-time physical operators (pull-based, Tectorwise style).

Operators form a pull pipeline: each ``next_vector()`` call returns the
next 1024-value float64 vector (possibly shorter at the tail) or ``None``
at end of stream.  Work inside an operator is numpy-vectorized over the
vector — the defining property of the execution model the paper targets.

Two pipelines coexist:

- the *decoded* pipeline (:class:`ScanOperator` → :class:`FilterOperator`
  → :class:`AggregateOperator`) materializes every vector as float64 and
  runs operators on doubles;
- the *encoded* pipeline (:class:`EncodedScanOperator` and the
  aggregates below) pulls :class:`~repro.query.sources.EncodedBatch`
  objects and executes SUM / range predicates directly on the ALP
  integer domain — late materialization: doubles are never built for
  values that only feed an aggregate, and vectors whose FFOR header
  already decides a predicate are skipped without unpacking a bit.

:func:`register_encoded_source` wires a source type into the engine's
dispatch registry so every encoded source gets the fused ops without
the engine knowing the type.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

import numpy as np

from repro import obs
from repro.core.alp import alp_sum_vector
from repro.core.predicates import (
    count_vector_encoded,
    sum_range_vector,
)
from repro.query.dispatch import register

if TYPE_CHECKING:
    from repro.query.sources import ColumnSource, EncodedBatch


class Operator:
    """Base class of the pull pipeline."""

    def next_vector(self) -> Optional[np.ndarray]:
        """Return the next vector, or None when exhausted."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[np.ndarray]:
        while True:
            vector = self.next_vector()
            if vector is None:
                return
            yield vector


class ScanOperator(Operator):
    """Leaf operator: pulls vectors out of a column source."""

    def __init__(self, source: "ColumnSource") -> None:
        self._iter = source.vectors()

    def next_vector(self) -> Optional[np.ndarray]:
        return next(self._iter, None)


class FilterOperator(Operator):
    """Range selection: keeps values in [low, high].

    Emits compacted vectors (selection applied), like Tectorwise's
    selection-vector approach after compaction.  Vectors with no
    qualifying values are dropped, so downstream operators do less work —
    combined with zone maps this is the predicate push-down story.
    """

    def __init__(self, child: Operator, low: float, high: float) -> None:
        self._child = child
        self._low = low
        self._high = high

    def next_vector(self) -> Optional[np.ndarray]:
        while True:
            vector = self._child.next_vector()
            if vector is None:
                return None
            mask = (vector >= self._low) & (vector <= self._high)
            if mask.any():
                return vector[mask]


class AggregateOperator(Operator):
    """Terminal aggregate over the child stream: SUM/COUNT/MIN/MAX.

    ``result()`` drains the child and returns the aggregate value.
    """

    _INITIAL = {
        "sum": 0.0,
        "count": 0.0,
        "min": float("inf"),
        "max": float("-inf"),
    }

    def __init__(self, child: Operator, kind: str = "sum") -> None:
        if kind not in self._INITIAL:
            raise ValueError(f"unknown aggregate {kind!r}")
        self._child = child
        self._kind = kind

    def next_vector(self) -> Optional[np.ndarray]:
        # Aggregates are sinks; expose the scalar via result() instead.
        return None

    def result(self) -> float:
        value = self._INITIAL[self._kind]
        for vector in self._child:
            if self._kind == "sum":
                value += float(vector.sum())
            elif self._kind == "count":
                value += vector.size
            elif self._kind == "min" and vector.size:
                value = min(value, float(vector.min()))
            elif self._kind == "max" and vector.size:
                value = max(value, float(vector.max()))
        return value


# -- the encoded (late-materialization) pipeline ----------------------


class EncodedScanOperator:
    """Leaf of the encoded pipeline: pulls batches that stay compressed.

    ``value_range``, when given, is forwarded to the source as a
    push-down hint — sources with zone maps may withhold batches that
    cannot contain qualifying values (safe for any filtered op: withheld
    batches contribute nothing to the result).
    """

    def __init__(
        self,
        source: object,
        value_range: tuple[float, float] | None = None,
    ) -> None:
        batches = getattr(source, "encoded_batches")
        self._iter = batches(value_range)

    def next_batch(self) -> "Optional[EncodedBatch]":
        return next(self._iter, None)

    def __iter__(self) -> "Iterator[EncodedBatch]":
        while True:
            batch = self.next_batch()
            if batch is None:
                return
            yield batch


class EncodedSumOperator:
    """SUM without materialization: integer-domain per ALP batch.

    ALP batches are summed by :func:`~repro.core.alp.alp_sum_vector`
    (packed-integer reduction + one scale per vector + sparse exception
    correction); already-decoded fallback batches contribute the same
    ``float(values.sum())`` term the decoded pipeline would.
    """

    def __init__(self, child: EncodedScanOperator) -> None:
        self._child = child

    def result(self) -> float:
        total = 0.0
        started = False
        for batch in self._child:
            if batch.alp is not None:
                term = alp_sum_vector(batch.alp)
            elif batch.values is not None and batch.values.size:
                term = float(batch.values.sum())
            else:
                continue
            # Mirror the decoded pipeline's `0.0 + term` accumulation
            # from the first batch on, so results match to the bit when
            # there is exactly one contributing batch of exceptions.
            total = term if not started else total + term
            started = True
        return total


class EncodedRangeAggregateOperator:
    """Filtered SUM + COUNT over ``[low, high]``, encoded-domain.

    ``result()`` returns ``(sum, count)`` of qualifying values.  ALP
    batches go through the exact integer-bounds translation
    (:mod:`repro.core.predicates`); fallback batches are filtered as
    doubles.
    """

    def __init__(
        self, child: EncodedScanOperator, low: float, high: float
    ) -> None:
        self._child = child
        self._low = low
        self._high = high

    def result(self) -> tuple[float, int]:
        total = 0.0
        count = 0
        started = False
        for batch in self._child:
            if batch.alp is not None:
                term, kept = sum_range_vector(
                    batch.alp, self._low, self._high
                )
            else:
                values = batch.values
                if values is None or not values.size:
                    continue
                mask = (values >= self._low) & (values <= self._high)
                kept = int(mask.sum())
                term = float(values[mask].sum()) if kept else 0.0
            if not kept:
                continue
            total = term if not started else total + term
            started = True
            count += kept
        return total, count


class EncodedRangeCountOperator:
    """COUNT of values in ``[low, high]``; header-decided ALP vectors
    are counted with zero unpacking."""

    def __init__(
        self, child: EncodedScanOperator, low: float, high: float
    ) -> None:
        self._child = child
        self._low = low
        self._high = high

    def result(self) -> int:
        count = 0
        for batch in self._child:
            if batch.alp is not None:
                count += count_vector_encoded(
                    batch.alp, self._low, self._high
                )
            elif batch.values is not None and batch.values.size:
                values = batch.values
                count += int(
                    ((values >= self._low) & (values <= self._high)).sum()
                )
        return count


def _encoded_sum(source: object) -> float:
    obs.counter_add("query.sum_encoded")
    return EncodedSumOperator(EncodedScanOperator(source)).result()


def _encoded_range_sum(
    source: object, low: float, high: float
) -> tuple[float, int]:
    scan = EncodedScanOperator(source, value_range=(low, high))
    return EncodedRangeAggregateOperator(scan, low, high).result()


def _encoded_range_count(
    source: object, low: float, high: float
) -> int:
    scan = EncodedScanOperator(source, value_range=(low, high))
    return EncodedRangeCountOperator(scan, low, high).result()


def register_encoded_source(source_type: type) -> type:
    """Give ``source_type`` the encoded fast paths for sum/range ops.

    The type must provide ``encoded_batches(value_range=None)`` yielding
    :class:`~repro.query.sources.EncodedBatch`.  Usable as a class
    decorator; the engine picks the handlers up through the dispatch
    registry without naming the type anywhere.
    """
    register("sum", source_type, _encoded_sum)
    register("range_sum", source_type, _encoded_range_sum)
    register("range_count", source_type, _encoded_range_count)
    return source_type
