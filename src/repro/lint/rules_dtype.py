"""RL1 — dtype/overflow rules for the exact-integer kernels.

The ALP round-trip is only lossless while every integer operation stays
in the intended dtype.  numpy silently promotes ``int64 op uint64`` to
*float64* (destroying exactness above 2**53), wraps value-changing
``astype`` casts, and leaves shifts by the full bit width undefined.
RL1 flags, inside ``repro/encodings``, ``repro/core`` and
``repro/alputil``:

- **RL1 mix** — arithmetic mixing a known signed and a known unsigned
  64-bit numpy operand (the silent float64 promotion);
- **RL1 shift** — shift amounts that can reach the dtype bit width: a
  constant ``>= 64`` on a 64-bit numpy operand, or the
  ``np.uint64(64) - x`` pattern without a ``& 63`` mask;
- **RL1 cast** — ``astype`` between same-width signed/unsigned dtypes
  (a value-wrapping cast where a ``view`` bit-reinterpretation is
  meant), and narrowing ``astype`` casts with neither a masking
  operation in the dataflow nor a justifying comment on (or directly
  above) the line.

Inference is deliberately conservative (see :mod:`repro.lint.npinfer`):
a check only fires when the dtypes involved are syntactically certain.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Rule, Violation
from repro.lint.npinfer import Env, IntKind, dtype_of_node, infer, resolve

#: Arithmetic operators checked for signed/unsigned mixes.
_ARITH_OPS = (
    ast.Add,
    ast.Sub,
    ast.Mult,
    ast.FloorDiv,
    ast.Mod,
    ast.BitAnd,
    ast.BitOr,
    ast.BitXor,
)

#: Calls in a value's dataflow that count as masking/clamping before a
#: narrowing cast.
_MASKING_CALLS = {"clip", "minimum", "mod", "where", "clamp"}


def _constant_int(node: ast.expr) -> int | None:
    """The integer value of ``node`` if it is a plain or wrapped constant
    (``64``, ``np.uint64(64)``)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if (
        isinstance(node, ast.Call)
        and dtype_of_node(node.func) is not None
        and len(node.args) == 1
    ):
        return _constant_int(node.args[0])
    return None


def _contains_mask(node: ast.expr) -> bool:
    """Whether the expression tree masks/clamps its value."""
    for child in ast.walk(node):
        if isinstance(child, ast.BinOp) and isinstance(child.op, ast.BitAnd):
            return True
        if isinstance(child, ast.Call) and isinstance(
            child.func, ast.Attribute
        ):
            if child.func.attr in _MASKING_CALLS:
                return True
    return False


def _width_reaching_sub(node: ast.expr, env: Env) -> ast.BinOp | None:
    """Find an unmasked ``<64-ish> - <numpy value>`` inside ``node``.

    ``np.uint64(64) - offset`` can evaluate to exactly 64 when
    ``offset == 0``; shifting by it is undefined.  The idiomatic guard
    is ``(np.uint64(64) - offset) & np.uint64(63)``, whose presence
    anywhere in the expression clears the finding.
    """
    for child in ast.walk(node):
        if isinstance(child, ast.BinOp) and isinstance(child.op, ast.BitAnd):
            if (
                _constant_int(child.left) == 63
                or _constant_int(child.right) == 63
            ):
                return None  # masked with & 63 — safe by construction
    for child in ast.walk(node):
        if not (isinstance(child, ast.BinOp) and isinstance(child.op, ast.Sub)):
            continue
        if _constant_int(child.left) != 64:
            continue
        # Only meaningful when the subtraction happens in numpy (a plain
        # Python ``64 - width`` feeds an in-range constant).
        if (
            dtype_of_node(getattr(child.left, "func", ast.Constant(None)))
            is not None
            or _is_np_wrapped(child.left)
            or infer(child.right, env) is not None
        ):
            return child
    return None


def _is_np_wrapped(node: ast.expr) -> bool:
    """True for ``np.uint64(<const>)``-style wrapped constants."""
    return (
        isinstance(node, ast.Call)
        and dtype_of_node(node.func) is not None
    )


class DtypeOverflowRule(Rule):
    """RL1: signed/unsigned mixes, width-reaching shifts, unsafe casts."""

    code = "RL1"
    name = "dtype-overflow"
    description = (
        "signed/unsigned numpy mixes, shifts that can reach the dtype "
        "bit width, value-wrapping or unexplained narrowing astype casts"
    )

    _SCOPES = ("encodings", "core", "alputil")

    def applies_to(self, ctx: FileContext) -> bool:
        parts = ctx.effective
        return (
            len(parts) >= 2
            and parts[0] in ("repro",) + self._SCOPES
            and (parts[0] != "repro" or parts[1] in self._SCOPES)
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        checker = _ScopeChecker(self, ctx)
        checker.run(ctx.tree.body, Env())
        yield from checker.violations


class _ScopeChecker:
    """Statement-order walker keeping one dtype :class:`Env` per scope."""

    def __init__(self, rule: DtypeOverflowRule, ctx: FileContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.violations: list[Violation] = []

    def run(self, body: list[ast.stmt], env: Env) -> None:
        for stmt in body:
            self._statement(stmt, env)

    def _statement(self, stmt: ast.stmt, env: Env) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.run(stmt.body, Env())
            return
        if isinstance(stmt, ast.ClassDef):
            self.run(stmt.body, Env())
            return
        if isinstance(stmt, ast.Assign):
            self._expression(stmt.value, env)
            for target in stmt.targets:
                env.assign(target, stmt.value)
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._expression(stmt.value, env)
            env.assign(stmt.target, stmt.value)
            return
        if isinstance(stmt, ast.AugAssign):
            self._expression(stmt.value, env)
            self._check_mix(stmt.target, stmt.op, stmt.value, stmt, env)
            return
        for expr in self._own_expressions(stmt):
            self._expression(expr, env)
        for child_body in self._child_bodies(stmt):
            self.run(child_body, env)

    @staticmethod
    def _own_expressions(stmt: ast.stmt) -> list[ast.expr]:
        exprs: list[ast.expr] = []
        for field_name in ("value", "test", "iter", "exc", "msg"):
            value = getattr(stmt, field_name, None)
            if isinstance(value, ast.expr):
                exprs.append(value)
        for item in getattr(stmt, "items", []) or []:
            exprs.append(item.context_expr)
        return exprs

    @staticmethod
    def _child_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
        bodies: list[list[ast.stmt]] = []
        for field_name in ("body", "orelse", "finalbody"):
            value = getattr(stmt, field_name, None)
            if isinstance(value, list) and value and isinstance(
                value[0], ast.stmt
            ):
                bodies.append(value)
        for handler in getattr(stmt, "handlers", []) or []:
            bodies.append(handler.body)
        return bodies

    def _expression(self, node: ast.expr, env: Env) -> None:
        for child in ast.walk(node):
            if isinstance(child, ast.BinOp):
                if isinstance(child.op, _ARITH_OPS):
                    self._check_mix(
                        child.left, child.op, child.right, child, env
                    )
                elif isinstance(child.op, (ast.LShift, ast.RShift)):
                    self._check_shift(child, env)
            elif isinstance(child, ast.Call):
                self._check_astype(child, env)

    # -- individual checks --------------------------------------------

    def _check_mix(
        self,
        left: ast.expr,
        op: ast.operator,
        right: ast.expr,
        node: ast.AST,
        env: Env,
    ) -> None:
        if not isinstance(op, _ARITH_OPS):
            return
        left_kind = infer(left, env)
        right_kind = infer(right, env)
        if left_kind is None or right_kind is None:
            return
        if left_kind.kind == right_kind.kind:
            return
        if 64 not in (left_kind.width, right_kind.width):
            return  # sub-64 mixes promote to a wider int, losslessly
        self.violations.append(
            self.rule.violation(
                self.ctx,
                node,
                f"arithmetic mixes {left_kind} and {right_kind}: numpy "
                "promotes this to float64, silently losing integer "
                "exactness above 2**53",
            )
        )

    def _check_shift(self, node: ast.BinOp, env: Env) -> None:
        left_kind = infer(node.left, env)
        amount = _constant_int(node.right)
        if amount is not None:
            if left_kind is not None and left_kind.width == 64 and amount >= 64:
                self.violations.append(
                    self.rule.violation(
                        self.ctx,
                        node,
                        f"shift by {amount} on a {left_kind} operand is "
                        "undefined (amount reaches the dtype bit width)",
                    )
                )
            return
        resolved = resolve(node.right, env)
        sub = _width_reaching_sub(resolved, env)
        if sub is not None:
            self.violations.append(
                self.rule.violation(
                    self.ctx,
                    node,
                    "shift amount of the form (64 - x) can reach 64, "
                    "which is undefined; mask it with & np.uint64(63)",
                )
            )

    def _check_astype(self, node: ast.Call, env: Env) -> None:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr == "astype"
            and node.args
        ):
            return
        target = dtype_of_node(node.args[0])
        if target is None:
            return
        source = infer(func.value, env)
        if (
            source is not None
            and source.width == target.width
            and source.kind != target.kind
        ):
            self.violations.append(
                self.rule.violation(
                    self.ctx,
                    node,
                    f"astype({target}) on a {source} value is a "
                    "value-wrapping cast; use .view() for an explicit "
                    "bit reinterpretation",
                )
            )
            return
        if target.width < 64 and (source is None or source.width > target.width):
            # A justifying comment counts on the flagged line itself or on
            # the line directly above (long statements rarely fit both).
            if (
                node.lineno in self.ctx.comment_lines
                or node.lineno - 1 in self.ctx.comment_lines
            ):
                return
            if _contains_mask(resolve(func.value, env)):
                return
            self.violations.append(
                self.rule.violation(
                    self.ctx,
                    node,
                    f"narrowing astype({target}) without a masking "
                    "operation or a justifying comment on the line",
                )
            )
