"""Synthetic datasets matched to the paper's evaluation corpus.

The real 30-dataset corpus (Table 1) is not redistributable/downloadable
offline; :mod:`repro.data.datasets` synthesizes a stand-in for each from
the fingerprints the paper reports, and
:mod:`repro.data.paper_reference` transcribes the published result
tables so benchmark reports can print paper-vs-measured side by side.
"""

from repro.data.datasets import (
    DATASET_ORDER,
    DATASETS,
    DEFAULT_N,
    ENDTOEND_DATASETS,
    EXTENSION_DATASETS,
    DatasetSpec,
    get_dataset,
    list_datasets,
)
from repro.data.mlweights import MODELS, ModelSpec, get_model_weights

__all__ = [
    "DATASETS",
    "DATASET_ORDER",
    "DEFAULT_N",
    "ENDTOEND_DATASETS",
    "EXTENSION_DATASETS",
    "DatasetSpec",
    "MODELS",
    "ModelSpec",
    "get_dataset",
    "get_model_weights",
    "list_datasets",
]
