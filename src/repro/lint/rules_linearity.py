"""RL9 — resource linearity on every control-flow path.

The zero-copy serving path runs on an ownership protocol: a buffer from
``BufferPool.acquire()`` must reach *exactly one* of ``release()`` /
``transfer()`` before the function ends, a file descriptor from
``os.open()`` must reach ``os.close()``, a file handle from ``open()``
must be closed — on every path, including the exception edges a missed
``finally:`` silently drops.  One leaked pool buffer per failed request
bleeds the pool budget until the server allocates cold again; tests
rarely exercise the raising path, so the leak ships.

This rule runs the shared CFG/dataflow layer (:mod:`repro.lint.cfg`) as
a *may* analysis over ownership tokens:

- ``x = pool.acquire(...)`` / ``fd = os.open(...)`` / ``f = open(...)``
  binds a tracked resource to a plain name (attribute targets are out of
  scope — storing into ``self`` hands ownership to the object, whose
  ``close()`` discipline is checked by its own tests);
- ``pool.release(x)`` / ``pool.transfer(x)`` / ``os.close(x)`` /
  ``x.close()`` *finish* it;
- returning or yielding ``x``, aliasing it (``y = x``) or storing it
  into an attribute/container *escapes* it — ownership moved, this
  function is no longer responsible;
- passing ``x`` as a call argument is a borrow, not an escape: the
  classic leak is exactly ``fill(buffer)`` raising after ``acquire``.

Acquisitions take effect only when the statement *completes*
(exception edge: nothing was bound); finishes take effect on both edge
kinds (a raising ``release`` still consumed the buffer).  A token still
unfinished in the function-exit state means *some* path leaks; a finish
whose token is already finished on every path means a double release.

``tests/test_lint_cfg_property.py`` pins this verdict against
brute-force path enumeration over the same CFG on hypothesis-generated
control-flow shapes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.lint.cfg import (
    CFG,
    Block,
    ForwardAnalysis,
    iter_evaluated,
    iter_function_cfgs,
    run_forward,
)
from repro.lint.engine import FileContext, Rule, Violation

ACQUIRE = "acquire"
FINISH = "finish"
ESCAPE = "escape"


@dataclass(frozen=True)
class Event:
    """One ownership event a block performs on a named resource."""

    kind: str
    var: str
    node: ast.AST
    #: For ``acquire``: a human label ("pool buffer", "file descriptor").
    what: str = ""

    @property
    def site(self) -> tuple[int, int]:
        return (
            getattr(self.node, "lineno", 0),
            getattr(self.node, "col_offset", 0),
        )


def _dotted(expr: ast.AST) -> str | None:
    """``a.b.c`` spelled out, or None for non-name expressions."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _acquire_label(call: ast.Call) -> str | None:
    """What kind of resource this call hands out, if any."""
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr == "acquire":
        receiver = _dotted(func.value)
        # ``ok = lock.acquire(timeout=...)`` binds a bool, not a resource.
        if receiver is not None and "lock" in receiver.rsplit(".", 1)[-1].lower():
            return None
        return "pool buffer"
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "os"
        and func.attr == "open"
    ):
        return "file descriptor"
    if isinstance(func, ast.Name) and func.id == "open":
        return "file handle"
    return None


def _finished_var(call: ast.Call) -> str | None:
    """The name a finisher call consumes, if this call is one."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr in ("release", "transfer"):
        if call.args and isinstance(call.args[0], ast.Name):
            return call.args[0].id
        return None
    if func.attr == "close":
        if isinstance(func.value, ast.Name):
            if func.value.id == "os":
                if call.args and isinstance(call.args[0], ast.Name):
                    return call.args[0].id
                return None
            return func.value.id
    return None


def _escaped_names(expr: ast.AST | None) -> Iterator[str]:
    """Names whose *value* leaves via this expression.

    Call subtrees are skipped: ``return os.read(fd, 16)`` escapes the
    read result, not ``fd`` — arguments are borrows.
    """
    if expr is None:
        return
    stack: list[ast.AST] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Call):
            continue
        if isinstance(node, ast.Name):
            yield node.id
        else:
            stack.extend(ast.iter_child_nodes(node))


def block_events(block: Block) -> list[Event]:
    """Ownership events performed by one CFG block, in program order."""
    events: list[Event] = []
    node = block.node
    if isinstance(node, (ast.Assign, ast.AnnAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        value = node.value
        if len(targets) == 1 and isinstance(targets[0], ast.Name):
            # ``x = a if c else b`` *may* bind either arm's resource.
            candidates = (
                [value.body, value.orelse]
                if isinstance(value, ast.IfExp)
                else [value]
            )
            for candidate in candidates:
                if isinstance(candidate, ast.Call):
                    label = _acquire_label(candidate)
                    if label is not None:
                        events.append(
                            Event(ACQUIRE, targets[0].id, candidate, what=label)
                        )
        if isinstance(value, ast.Name):
            # ``y = x`` aliases; ``self.buf = x`` / ``d[k] = x`` stores.
            # Either way ownership left this name.
            events.append(Event(ESCAPE, value.id, node))
        elif value is not None and any(
            isinstance(t, (ast.Attribute, ast.Subscript)) for t in targets
        ):
            for name in _escaped_names(value):
                events.append(Event(ESCAPE, name, node))
    if isinstance(node, ast.Return):
        for name in _escaped_names(node.value):
            events.append(Event(ESCAPE, name, node))
    for sub in iter_evaluated(block):
        if isinstance(sub, ast.Call):
            var = _finished_var(sub)
            if var is not None:
                events.append(Event(FINISH, var, sub))
        elif isinstance(sub, (ast.Yield, ast.YieldFrom)):
            for name in _escaped_names(sub.value):
                events.append(Event(ESCAPE, name, sub))
    return events


# Dataflow tokens: ("acq", var, site) — resource live; ("fin", var, site)
# — consumed by a finisher; ("esc", var, site) — ownership moved away.
# FINISH/ESCAPE map acq -> fin/esc per token, ACQUIRE generates a token;
# all transfers are distributive over set union, so the fixpoint below
# equals the union of per-path outcomes.


class _LinearityAnalysis(ForwardAnalysis):
    def __init__(self, events: Mapping[int, Sequence[Event]]) -> None:
        self._events = events

    def _apply(
        self, block: Block, state: frozenset[object], completed: bool
    ) -> frozenset[object]:
        tokens = set(state)
        for event in self._events.get(block.index, ()):
            if event.kind == ACQUIRE:
                if completed:
                    tokens.add(("acq", event.var, event.site))
            else:
                consumed = "fin" if event.kind == FINISH else "esc"
                for token in [
                    t
                    for t in tokens
                    if isinstance(t, tuple)
                    and t[0] == "acq"
                    and t[1] == event.var
                ]:
                    tokens.discard(token)
                    tokens.add((consumed, token[1], token[2]))
        return frozenset(tokens)

    def transfer(
        self, block: Block, state: frozenset[object]
    ) -> frozenset[object]:
        return self._apply(block, state, completed=True)

    def transfer_exception(
        self, block: Block, state: frozenset[object]
    ) -> frozenset[object]:
        # The statement raised: nothing got bound, but a raising
        # release()/transfer() still consumed its argument.
        return self._apply(block, state, completed=False)


@dataclass(frozen=True)
class LinearityFinding:
    """One linearity defect: a may-leak or a may-double-finish."""

    kind: str  # "leak" | "double-finish"
    var: str
    what: str
    node: ast.AST


def collect_events(
    cfg: CFG,
) -> tuple[dict[int, list[Event]], dict[tuple[str, tuple[int, int]], Event]]:
    """Per-block ownership events and the acquire-site index for ``cfg``."""
    events: dict[int, list[Event]] = {}
    sites: dict[tuple[str, tuple[int, int]], Event] = {}
    for block in cfg.blocks:
        found = block_events(block)
        if found:
            events[block.index] = found
            for event in found:
                if event.kind == ACQUIRE:
                    sites[(event.var, event.site)] = event
    return events, sites


def findings_from_states(
    cfg: CFG,
    events: Mapping[int, Sequence[Event]],
    sites: Mapping[tuple[str, tuple[int, int]], Event],
    in_states: Mapping[int, frozenset[object]],
) -> list[LinearityFinding]:
    """Extract defects from per-block in-states (however computed).

    Split out from :func:`analyze_linearity` so the property test can
    feed brute-force path-enumerated states through the *same* verdict
    logic and compare against the dataflow fixpoint.
    """
    findings: list[LinearityFinding] = []
    exit_state = in_states.get(cfg.exit, frozenset())
    for token in sorted(
        t for t in exit_state if isinstance(t, tuple) and t[0] == "acq"
    ):
        acquire = sites[(token[1], token[2])]
        findings.append(
            LinearityFinding("leak", acquire.var, acquire.what, acquire.node)
        )
    # Double finish: a finisher whose token is already consumed on every
    # path reaching it (fin present, acq absent).
    for block in cfg.blocks:
        state = in_states.get(block.index)
        if state is None:
            continue
        for event in events.get(block.index, ()):
            if event.kind != FINISH:
                continue
            already = {
                (t[1], t[2])
                for t in state
                if isinstance(t, tuple) and t[0] == "fin" and t[1] == event.var
            }
            live = {
                (t[1], t[2])
                for t in state
                if isinstance(t, tuple)
                and t[0] in ("acq", "esc")
                and t[1] == event.var
            }
            for var, site in sorted(already - live):
                acquire = sites.get((var, site))
                if acquire is not None:
                    findings.append(
                        LinearityFinding(
                            "double-finish", var, acquire.what, event.node
                        )
                    )
    return findings


def analyze_linearity(cfg: CFG) -> list[LinearityFinding]:
    """All linearity defects of one function body."""
    events, sites = collect_events(cfg)
    if not sites:
        return []
    in_states = run_forward(cfg, _LinearityAnalysis(events))
    return findings_from_states(cfg, events, sites, in_states)


class ResourceLinearityRule(Rule):
    """RL9: acquire/release/transfer linearity under server + storage."""

    code = "RL9"
    name = "resource-linearity"
    description = (
        "a pool buffer / fd / file handle must reach exactly one of "
        "release/transfer/close on every CFG path (exception edges "
        "included) under repro/server and repro/storage"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return len(ctx.effective) >= 2 and ctx.effective[0] == "repro" and (
            ctx.effective[1] in ("server", "storage")
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for func, cfg in iter_function_cfgs(ctx.tree):
            for finding in analyze_linearity(cfg):
                if finding.kind == "leak":
                    yield self.violation(
                        ctx,
                        finding.node,
                        f"{finding.what} {finding.var!r} acquired here may "
                        "reach function exit without release/transfer/close "
                        f"on some path through {func.name!r} (check "
                        "exception edges: wrap in try/finally or release "
                        "in an except)",
                    )
                else:
                    yield self.violation(
                        ctx,
                        finding.node,
                        f"{finding.what} {finding.var!r} is already "
                        "released/closed on every path reaching this "
                        "finisher (double release)",
                    )
