"""Tests for random access into compressed columns."""

import numpy as np
import pytest

from repro.core.access import decode_at, decode_slice
from repro.core.compressor import compress
from repro.data import get_dataset


@pytest.fixture(scope="module")
def column_and_values():
    values = get_dataset("Stocks-USA", n=250_000)
    return compress(values), values


class TestDecodeSlice:
    def test_full_slice(self, column_and_values):
        column, values = column_and_values
        out = decode_slice(column, 0, values.size)
        assert np.array_equal(out.view(np.uint64), values.view(np.uint64))

    def test_mid_vector_slice(self, column_and_values):
        column, values = column_and_values
        out = decode_slice(column, 1500, 1700)
        assert np.array_equal(
            out.view(np.uint64), values[1500:1700].view(np.uint64)
        )

    def test_cross_rowgroup_slice(self, column_and_values):
        column, values = column_and_values
        # 102400 is the row-group boundary.
        out = decode_slice(column, 102_000, 103_000)
        assert np.array_equal(
            out.view(np.uint64), values[102_000:103_000].view(np.uint64)
        )

    def test_clamping(self, column_and_values):
        column, values = column_and_values
        out = decode_slice(column, -50, values.size + 100)
        assert out.size == values.size
        assert decode_slice(column, 10, 10).size == 0
        assert decode_slice(column, 400_000, 500_000).size == 0

    def test_rd_column_slices(self):
        values = get_dataset("POI-lat", n=50_000)
        column = compress(values)
        out = decode_slice(column, 10_000, 10_100)
        assert np.array_equal(
            out.view(np.uint64), values[10_000:10_100].view(np.uint64)
        )

def test_random_slices_property():
    values = get_dataset("City-Temp", n=30_000)
    column = compress(values)
    rng = np.random.default_rng(0)
    for _ in range(50):
        start = int(rng.integers(0, values.size))
        stop = int(min(values.size, start + rng.integers(0, 3000)))
        out = decode_slice(column, start, stop)
        assert np.array_equal(
            out.view(np.uint64), values[start:stop].view(np.uint64)
        )


class TestDecodeAt:
    def test_point_reads(self, column_and_values):
        column, values = column_and_values
        for index in (0, 1, 1023, 1024, 102_399, 102_400, values.size - 1):
            got = decode_at(column, index)
            assert (
                np.float64(got).view(np.uint64)
                == values[index].view(np.uint64)
            ), index

    def test_out_of_range(self, column_and_values):
        column, values = column_and_values
        with pytest.raises(IndexError):
            decode_at(column, values.size)
        with pytest.raises(IndexError):
            decode_at(column, -1)
