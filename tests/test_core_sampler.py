"""Tests for the two-level adaptive sampling (Section 3.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constants import MAX_EXPONENT, RD_SIZE_THRESHOLD_BITS
from repro.core.sampler import (
    SEARCH_SPACE_SIZE,
    ExponentFactor,
    equidistant_indices,
    estimate_sizes_all_combinations,
    find_best_combination,
    first_level_sample,
    sample_vector,
    second_level_sample,
)


class TestExponentFactor:
    def test_valid(self):
        ef = ExponentFactor(14, 10)
        assert ef.exponent == 14 and ef.factor == 10

    def test_factor_above_exponent_rejected(self):
        with pytest.raises(ValueError):
            ExponentFactor(3, 4)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ExponentFactor(3, -1)

    def test_exponent_above_max_rejected(self):
        with pytest.raises(ValueError):
            ExponentFactor(MAX_EXPONENT + 1, 0)


class TestSearchSpace:
    def test_paper_search_space_size(self):
        # f <= e, 0 <= e <= 21 -> sum(e + 1) = 253 combinations (§2.6).
        assert SEARCH_SPACE_SIZE == 253

    def test_all_sizes_shape(self):
        sizes = estimate_sizes_all_combinations(np.array([1.5, 2.5]))
        assert sizes.shape == (253,)

    def test_empty_sample(self):
        sizes = estimate_sizes_all_combinations(np.empty(0))
        assert (sizes == 0).all()


class TestFindBestCombination:
    def test_two_decimals_prefers_factor_matching_precision(self):
        values = np.round(np.random.default_rng(0).uniform(1, 100, 256), 2)
        combo, _ = find_best_combination(values)
        # d should be value * 100 -> e - f == 2.
        assert combo.exponent - combo.factor == 2

    def test_integers_prefer_equal_e_f(self):
        values = np.arange(1000, 1256, dtype=np.float64)
        combo, _ = find_best_combination(values)
        assert combo.exponent == combo.factor  # no decimal shift at all

    def test_ties_prefer_high_exponent(self):
        # All-zero sample: every combination encodes perfectly with width 0,
        # so the tie-break must pick the highest exponent and factor.
        combo, size = find_best_combination(np.zeros(32))
        assert combo.exponent == MAX_EXPONENT
        assert combo.factor == MAX_EXPONENT
        assert size == 0

    def test_incompressible_sample_yields_exceptions(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(0, 1, 64) * np.pi
        _, size = find_best_combination(values)
        assert size / values.size >= RD_SIZE_THRESHOLD_BITS

    def test_best_combination_actually_minimal(self):
        values = np.round(np.random.default_rng(2).uniform(0, 10, 64), 3)
        sizes = estimate_sizes_all_combinations(values)
        _, best_size = find_best_combination(values)
        assert best_size == int(sizes.min())


class TestEquidistantSampling:
    def test_fewer_elements_than_wanted(self):
        assert equidistant_indices(3, 8).tolist() == [0, 1, 2]

    def test_exact(self):
        assert equidistant_indices(8, 8).tolist() == list(range(8))

    def test_spread(self):
        idx = equidistant_indices(1024, 32)
        assert idx[0] == 0 and idx[-1] == 1023 and len(idx) == 32
        assert (np.diff(idx) > 0).all()

    def test_empty(self):
        assert equidistant_indices(0, 5).size == 0

    def test_sample_vector(self):
        values = np.arange(100, dtype=np.float64)
        sample = sample_vector(values, 10)
        assert sample.size == 10
        assert sample[0] == 0.0 and sample[-1] == 99.0


class TestFirstLevel:
    def test_uniform_dataset_single_candidate(self):
        # One decimal everywhere -> a single dominant combination.
        rng = np.random.default_rng(3)
        rowgroup = np.round(rng.uniform(0, 100, 8 * 1024), 1)
        result = first_level_sample(rowgroup)
        assert result.k_prime == 1
        assert not result.use_rd

    def test_mixed_precision_multiple_candidates(self):
        rng = np.random.default_rng(4)
        parts = [
            np.round(rng.uniform(0, 100, 1024), p) for p in (1, 3, 5, 7)
        ] * 2
        rowgroup = np.concatenate(parts)
        result = first_level_sample(rowgroup)
        assert 1 <= result.k_prime <= 5

    def test_real_doubles_trigger_rd(self):
        rng = np.random.default_rng(5)
        rowgroup = rng.uniform(0, 1, 8 * 1024) * np.pi
        result = first_level_sample(rowgroup)
        assert result.use_rd

    def test_candidate_count_capped_at_k(self):
        rng = np.random.default_rng(6)
        parts = [
            np.round(rng.uniform(0, 10**p, 1024), p) for p in range(8)
        ]
        result = first_level_sample(np.concatenate(parts))
        assert result.k_prime <= 5

    def test_empty_rowgroup(self):
        result = first_level_sample(np.empty(0))
        assert result.k_prime >= 1

    def test_small_rowgroup(self):
        result = first_level_sample(np.array([1.5, 2.5, 3.5]))
        assert not result.use_rd


class TestSecondLevel:
    def test_single_candidate_skips(self):
        result = second_level_sample(
            np.arange(10.0), (ExponentFactor(14, 13),)
        )
        assert result.skipped
        assert result.combinations_tried == 0

    def test_picks_better_candidate(self):
        values = np.round(np.random.default_rng(7).uniform(0, 100, 1024), 2)
        good = ExponentFactor(14, 12)
        bad = ExponentFactor(14, 0)
        result = second_level_sample(values, (bad, good))
        assert result.combination == good

    def test_early_exit_after_two_worse(self):
        values = np.round(np.random.default_rng(8).uniform(0, 100, 1024), 2)
        good = ExponentFactor(14, 12)
        worse = (ExponentFactor(14, 0), ExponentFactor(13, 0),
                 ExponentFactor(12, 0), ExponentFactor(11, 0))
        result = second_level_sample(values, (good,) + worse)
        # good, then two worse candidates -> stop at 3 tried.
        assert result.combinations_tried == 3
        assert result.combination == good

    def test_no_candidates_rejected(self):
        with pytest.raises(ValueError):
            second_level_sample(np.arange(4.0), ())

    @given(st.integers(min_value=1, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_tried_never_exceeds_candidates(self, k):
        values = np.round(np.random.default_rng(9).uniform(0, 10, 128), 1)
        candidates = tuple(ExponentFactor(14, 14 - i) for i in range(k))
        result = second_level_sample(values, candidates)
        assert result.combinations_tried <= k


class TestBatchedSamplerEquivalence:
    """The batched samplers must be decision-identical to the loop refs."""

    DATASETS = ("City-Temp", "Stocks-DE", "Gov/10", "POI-lat")

    def _rowgroup(self, name, n=16 * 1024):
        from repro.data import get_dataset

        return get_dataset(name, n=n)

    @pytest.mark.parametrize("name", DATASETS)
    def test_first_level_matches_loop(self, name):
        from repro.core.sampler import first_level_sample_loop

        rowgroup = self._rowgroup(name)
        batched = first_level_sample(rowgroup)
        loop = first_level_sample_loop(rowgroup)
        assert batched.candidates == loop.candidates
        assert batched.use_rd == loop.use_rd
        assert (
            batched.best_estimated_bits_per_value
            == loop.best_estimated_bits_per_value
        )

    def test_first_level_matches_loop_ragged_tail(self):
        # A tail chunk shorter than the sample size forces the
        # per-length batching; estimates must not change.
        from repro.core.sampler import first_level_sample_loop

        rng = np.random.default_rng(10)
        rowgroup = np.round(rng.uniform(0, 100, 4 * 1024 + 7), 2)
        batched = first_level_sample(rowgroup, vector_size=1024)
        loop = first_level_sample_loop(rowgroup, vector_size=1024)
        assert batched.candidates == loop.candidates
        assert batched.use_rd == loop.use_rd

    @pytest.mark.parametrize("name", DATASETS)
    def test_second_level_matches_loop(self, name):
        from repro.core.sampler import second_level_sample_loop

        rowgroup = self._rowgroup(name)
        candidates = first_level_sample(rowgroup).candidates
        if len(candidates) == 1:
            # Force a multi-candidate walk so the comparison is not
            # trivially the skip path.
            base = candidates[0]
            candidates = (
                base,
                ExponentFactor(base.exponent, max(base.factor - 1, 0)),
                ExponentFactor(max(base.exponent - 1, 0), 0),
            )
        for start in range(0, rowgroup.size, 1024):
            chunk = rowgroup[start : start + 1024]
            batched = second_level_sample(chunk, candidates)
            loop = second_level_sample_loop(chunk, candidates)
            assert batched.combination == loop.combination
            assert batched.combinations_tried == loop.combinations_tried
            assert batched.skipped == loop.skipped

    @pytest.mark.parametrize("name", DATASETS)
    def test_second_level_rowgroup_matches_per_vector(self, name):
        from repro.core.sampler import second_level_sample_rowgroup

        rowgroup = self._rowgroup(name)
        candidates = first_level_sample(rowgroup).candidates
        per_rowgroup = second_level_sample_rowgroup(
            rowgroup, candidates, vector_size=1024
        )
        per_vector = [
            second_level_sample(rowgroup[start : start + 1024], candidates)
            for start in range(0, rowgroup.size, 1024)
        ]
        assert per_rowgroup == per_vector

    def test_second_level_rowgroup_ragged_tail(self):
        from repro.core.sampler import second_level_sample_rowgroup

        rng = np.random.default_rng(11)
        rowgroup = np.concatenate(
            [
                np.round(rng.uniform(0, 100, 2 * 1024), 1),
                np.round(rng.uniform(0, 100, 7), 5),
            ]
        )
        candidates = (ExponentFactor(14, 13), ExponentFactor(10, 5))
        per_rowgroup = second_level_sample_rowgroup(
            rowgroup, candidates, vector_size=1024
        )
        per_vector = [
            second_level_sample(rowgroup[start : start + 1024], candidates)
            for start in range(0, rowgroup.size, 1024)
        ]
        assert per_rowgroup == per_vector

    def test_second_level_rowgroup_single_candidate_skips(self):
        from repro.core.sampler import second_level_sample_rowgroup

        results = second_level_sample_rowgroup(
            np.arange(3000.0), (ExponentFactor(14, 13),), vector_size=1024
        )
        assert len(results) == 3
        assert all(r.skipped and r.combinations_tried == 0 for r in results)
