"""Vectorized analytics over compressed columns: who pays what at scan time.

Builds the same column under several compressed formats, then runs SCAN
and SUM through the vector-at-a-time engine and compares throughput —
a miniature of the paper's Table 6 / Figure 6 experiment.

Run:  python examples/analytics_queries.py
"""

import time


from repro.data import get_dataset
from repro.query import make_source, scan_query, sum_query
from repro.query.operators import AggregateOperator, FilterOperator, ScanOperator

values = get_dataset("City-Temp", n=120_000)
print(f"column: City-Temp, {values.size:,} doubles\n")

print(f"{'codec':14s} {'bits/val':>9s} {'SCAN Mv/s':>10s} {'SUM Mv/s':>10s}")
for codec in ("uncompressed", "alp", "pde", "patas", "chimp128", "zlib(gp)"):
    source = make_source(codec, values)

    start = time.perf_counter()
    scanned = scan_query(source)
    scan_speed = scanned / (time.perf_counter() - start) / 1e6

    start = time.perf_counter()
    total = sum_query(source)
    sum_speed = values.size / (time.perf_counter() - start) / 1e6

    assert total == float(values.sum()) or abs(total - values.sum()) < 1e-6
    bits = source.compressed_bits / values.size if source.compressed_bits else 64.0
    print(f"{codec:14s} {bits:9.1f} {scan_speed:10.2f} {sum_speed:10.2f}")

# A filtered aggregation as an operator pipeline: SUM of freezing days.
pipeline = AggregateOperator(
    FilterOperator(
        ScanOperator(make_source("alp", values)), low=-100.0, high=32.0
    ),
    kind="count",
)
freezing = pipeline.result()
print(f"\ndays at or below 32F (filter+count over compressed ALP): "
      f"{int(freezing):,} of {values.size:,}")
