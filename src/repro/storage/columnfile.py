"""A skippable on-disk column format over ALP-compressed row-groups.

File layout (format version 2)::

    "ALPC"  magic (4 bytes)
    u16     format version (2)
    u32     vector size
    ...     row-group sections, back to back (serializer format)
    footer:
      u32   row-group count
      per row-group:
        u64 byte offset, u64 byte length, u64 value count,
        f64 min, f64 max, u8 has_non_finite
      per row-group (vector zone maps):
        u32 vector count, then per vector: f64 min, f64 max, u8 special
    u64     footer offset
    "ALPC"  trailing magic

The footer carries *zone maps* (min/max over finite values) at two
granularities.  Row-group zone maps let :meth:`ColumnFileReader.scan_range`
skip whole row-groups without touching their bytes; vector zone maps let
:meth:`ColumnFileReader.scan_range_vectors` additionally decode only the
qualifying 1024-value vectors inside a surviving row-group — the
"skip through ALP-compressed data at the vector level" capability the
paper contrasts against block-based general-purpose compression.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro import obs
from repro.core.compressor import (
    CompressedRowGroup,
    CompressedRowGroups,
    compress_rowgroup,
    decompress,
)
from repro.core.constants import ROWGROUP_VECTORS, VECTOR_SIZE
from repro.storage.serializer import (
    deserialize_rowgroup,
    empty_stats,
    serialize_rowgroup,
)

MAGIC = b"ALPC"
FORMAT_VERSION = 2


@dataclass(frozen=True)
class VectorZone:
    """Zone map of one 1024-value vector inside a row-group."""

    min_value: float
    max_value: float
    has_non_finite: bool

    def may_contain_range(self, low: float, high: float) -> bool:
        """Could any value of this vector fall inside [low, high]?"""
        if self.has_non_finite:
            return True
        return self.max_value >= low and self.min_value <= high


@dataclass(frozen=True)
class RowGroupMeta:
    """Footer entry for one row-group: location + zone maps."""

    offset: int
    length: int
    count: int
    min_value: float
    max_value: float
    has_non_finite: bool
    vector_zones: tuple[VectorZone, ...] = ()

    def may_contain_range(self, low: float, high: float) -> bool:
        """Zone-map test: could any value fall inside [low, high]?

        Non-finite values (NaN/inf) make the zone map inconclusive, so
        such row-groups are never skipped.
        """
        if self.has_non_finite:
            return True
        if self.count == 0:
            return False
        return self.max_value >= low and self.min_value <= high


def _zone_map(values: np.ndarray) -> tuple[float, float, bool]:
    """Compute (min, max, has_non_finite) over a chunk of values."""
    finite = values[np.isfinite(values)]
    has_non_finite = finite.size != values.size
    if finite.size == 0:
        return float("nan"), float("nan"), has_non_finite
    return float(finite.min()), float(finite.max()), has_non_finite


def _vector_zones(
    values: np.ndarray, vector_size: int
) -> tuple[VectorZone, ...]:
    """Per-vector zone maps of a row-group."""
    zones = []
    for start in range(0, values.size, vector_size):
        lo, hi, special = _zone_map(values[start : start + vector_size])
        zones.append(
            VectorZone(min_value=lo, max_value=hi, has_non_finite=special)
        )
    return tuple(zones)


class ColumnFileWriter:
    """Stream a float64 column into the ALPC format, row-group at a time."""

    def __init__(
        self,
        path: str | os.PathLike,
        vector_size: int = VECTOR_SIZE,
        rowgroup_vectors: int = ROWGROUP_VECTORS,
    ) -> None:
        self._path = os.fspath(path)
        self._vector_size = vector_size
        self._rowgroup_size = vector_size * rowgroup_vectors
        self._file = open(self._path, "wb")
        self._meta: list[RowGroupMeta] = []
        self._file.write(MAGIC)
        self._file.write(struct.pack("<H", FORMAT_VERSION))
        self._file.write(struct.pack("<I", vector_size))
        self._closed = False

    def write_values(self, values: np.ndarray) -> None:
        """Compress and append a column chunk (row-group granularity)."""
        with obs.span("columnfile.write"):
            values = np.ascontiguousarray(values, dtype=np.float64)
            for start in range(0, values.size, self._rowgroup_size):
                chunk = values[start : start + self._rowgroup_size]
                rowgroup, _, _ = compress_rowgroup(
                    chunk, vector_size=self._vector_size
                )
                self._append_rowgroup(rowgroup, chunk)

    def _append_rowgroup(
        self, rowgroup: CompressedRowGroup, values: np.ndarray
    ) -> None:
        payload = serialize_rowgroup(rowgroup)
        offset = self._file.tell()
        self._file.write(payload)
        if obs.ENABLED:
            obs.metrics.counter_add("columnfile.rowgroups_written", 1)
            obs.metrics.counter_add("columnfile.bytes_written", len(payload))
        min_value, max_value, has_non_finite = _zone_map(values)
        self._meta.append(
            RowGroupMeta(
                offset=offset,
                length=len(payload),
                count=values.size,
                min_value=min_value,
                max_value=max_value,
                has_non_finite=has_non_finite,
                vector_zones=_vector_zones(values, self._vector_size),
            )
        )

    def close(self) -> None:
        """Write the footer and close the file."""
        if self._closed:
            return
        footer_offset = self._file.tell()
        self._file.write(struct.pack("<I", len(self._meta)))
        for meta in self._meta:
            self._file.write(
                struct.pack(
                    "<QQQddB",
                    meta.offset,
                    meta.length,
                    meta.count,
                    meta.min_value,
                    meta.max_value,
                    int(meta.has_non_finite),
                )
            )
        for meta in self._meta:
            self._file.write(struct.pack("<I", len(meta.vector_zones)))
            for zone in meta.vector_zones:
                self._file.write(
                    struct.pack(
                        "<ddB",
                        zone.min_value,
                        zone.max_value,
                        int(zone.has_non_finite),
                    )
                )
        self._file.write(struct.pack("<Q", footer_offset))
        self._file.write(MAGIC)
        self._file.close()
        self._closed = True

    def __enter__(self) -> "ColumnFileWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ColumnFileReader:
    """Random-access reader over an ALPC column file."""

    def __init__(self, path: str | os.PathLike) -> None:
        self._path = os.fspath(path)
        with obs.span("columnfile.open"), open(self._path, "rb") as f:
            data = f.read()
        if obs.ENABLED:
            obs.metrics.counter_add("columnfile.bytes_read", len(data))
        if data[:4] != MAGIC or data[-4:] != MAGIC:
            raise ValueError(f"{self._path} is not an ALPC column file")
        version = struct.unpack_from("<H", data, 4)[0]
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported ALPC version {version}")
        self.vector_size = struct.unpack_from("<I", data, 6)[0]
        footer_offset = struct.unpack_from("<Q", data, len(data) - 12)[0]
        n_rowgroups = struct.unpack_from("<I", data, footer_offset)[0]
        pos = footer_offset + 4
        entry = struct.Struct("<QQQddB")
        raw_meta = []
        for _ in range(n_rowgroups):
            raw_meta.append(entry.unpack_from(data, pos))
            pos += entry.size
        zone_entry = struct.Struct("<ddB")
        all_zones: list[tuple[VectorZone, ...]] = []
        for _ in range(n_rowgroups):
            n_vectors = struct.unpack_from("<I", data, pos)[0]
            pos += 4
            zones = []
            for _ in range(n_vectors):
                lo, hi, special = zone_entry.unpack_from(data, pos)
                pos += zone_entry.size
                zones.append(
                    VectorZone(
                        min_value=lo,
                        max_value=hi,
                        has_non_finite=bool(special),
                    )
                )
            all_zones.append(tuple(zones))
        self._meta = [
            RowGroupMeta(
                offset=offset,
                length=length,
                count=count,
                min_value=lo,
                max_value=hi,
                has_non_finite=bool(special),
                vector_zones=zones,
            )
            for (offset, length, count, lo, hi, special), zones in zip(
                raw_meta, all_zones, strict=True
            )
        ]
        self._data = data

    @property
    def rowgroup_count(self) -> int:
        """Number of row-groups in the file."""
        return len(self._meta)

    @property
    def value_count(self) -> int:
        """Total number of values in the column."""
        return sum(m.count for m in self._meta)

    @property
    def metadata(self) -> tuple[RowGroupMeta, ...]:
        """Zone maps and offsets, in row-group order."""
        return tuple(self._meta)

    def read_rowgroup_compressed(self, index: int) -> CompressedRowGroup:
        """Decode the framing of one row-group without decompressing it."""
        meta = self._meta[index]
        rowgroup, consumed = deserialize_rowgroup(self._data, meta.offset)
        if consumed != meta.length:
            raise ValueError(
                f"row-group {index}: read {consumed} bytes, footer says "
                f"{meta.length}"
            )
        obs.counter_add("columnfile.rowgroups_read")
        return rowgroup

    def read_rowgroup(self, index: int) -> np.ndarray:
        """Decompress one row-group to float64."""
        with obs.span("columnfile.read_rowgroup"):
            rowgroup = self.read_rowgroup_compressed(index)
            column = CompressedRowGroups(
                rowgroups=(rowgroup,),
                count=rowgroup.count,
                vector_size=self.vector_size,
                stats=empty_stats(),
            )
            return decompress(column)

    def read_all(self) -> np.ndarray:
        """Decompress the whole column."""
        if not self._meta:
            return np.empty(0, dtype=np.float64)
        return np.concatenate(
            [self.read_rowgroup(i) for i in range(len(self._meta))]
        )

    def scan_range(
        self, low: float, high: float
    ) -> Iterator[tuple[int, np.ndarray]]:
        """Yield (row-group index, values) for groups that may match.

        Row-groups whose zone map excludes ``[low, high]`` are skipped
        without touching their compressed bytes — this is the predicate
        push-down the paper highlights as impossible for block-based
        general-purpose compression.
        """
        for index, meta in enumerate(self._meta):
            if not meta.may_contain_range(low, high):
                obs.counter_add("columnfile.rowgroups_skipped")
                continue
            obs.counter_add("columnfile.rowgroups_scanned")
            yield index, self.read_rowgroup(index)

    def count_skippable(self, low: float, high: float) -> int:
        """How many row-groups the zone maps eliminate for a range."""
        return sum(
            1
            for meta in self._meta
            if not meta.may_contain_range(low, high)
        )

    def scan_range_vectors(
        self, low: float, high: float
    ) -> Iterator[tuple[int, int, np.ndarray]]:
        """Yield (row-group, vector index, values) at vector granularity.

        Inside each surviving row-group, only the vectors whose zone map
        admits ``[low, high]`` are decoded — everything else stays
        compressed.  This is the paper's vector-level skipping in action:
        a selective query pays decode cost proportional to the *selected*
        vectors, not the block size.
        """
        from repro.core.alp import alp_decode_vector
        from repro.core.alprd import decode_vector_bits

        for rg_index, meta in enumerate(self._meta):
            if not meta.may_contain_range(low, high):
                if obs.ENABLED:
                    obs.metrics.counter_add("columnfile.rowgroups_skipped", 1)
                    obs.metrics.counter_add(
                        "columnfile.vectors_skipped", len(meta.vector_zones)
                    )
                continue
            rowgroup = self.read_rowgroup_compressed(rg_index)
            vectors = (
                rowgroup.alp.vectors
                if rowgroup.alp is not None
                else rowgroup.rd.vectors
            )
            for v_index, zone in enumerate(meta.vector_zones):
                if not zone.may_contain_range(low, high):
                    obs.counter_add("columnfile.vectors_skipped")
                    continue
                obs.counter_add("columnfile.vectors_decoded")
                if rowgroup.alp is not None:
                    values = alp_decode_vector(vectors[v_index])
                else:
                    from repro.alputil.bits import bits_to_double

                    values = bits_to_double(
                        decode_vector_bits(
                            vectors[v_index], rowgroup.rd.parameters
                        )
                    )
                yield rg_index, v_index, values

    def count_skippable_vectors(self, low: float, high: float) -> int:
        """How many vectors the two zone-map levels eliminate together."""
        skipped = 0
        for meta in self._meta:
            if not meta.may_contain_range(low, high):
                skipped += len(meta.vector_zones)
                continue
            skipped += sum(
                1
                for zone in meta.vector_zones
                if not zone.may_contain_range(low, high)
            )
        return skipped

    @property
    def vector_count(self) -> int:
        """Total number of vectors across all row-groups."""
        return sum(len(meta.vector_zones) for meta in self._meta)


def write_column_file(
    path: str | os.PathLike,
    values: np.ndarray,
    vector_size: int = VECTOR_SIZE,
    rowgroup_vectors: int = ROWGROUP_VECTORS,
) -> None:
    """Convenience: compress ``values`` into a new ALPC file."""
    with ColumnFileWriter(
        path, vector_size=vector_size, rowgroup_vectors=rowgroup_vectors
    ) as writer:
        writer.write_values(values)


def read_column_file(path: str | os.PathLike) -> np.ndarray:
    """Convenience: decompress an entire ALPC file."""
    return ColumnFileReader(path).read_all()
