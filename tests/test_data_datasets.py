"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.alputil.decimals import decimal_places_array
from repro.data import (
    DATASET_ORDER,
    DATASETS,
    ENDTOEND_DATASETS,
    MODELS,
    get_dataset,
    get_model_weights,
    list_datasets,
)
from repro.data.generators import (
    degrees_to_radians,
    from_pool,
    inject_duplicates,
    iid_lognormal,
    ml_weights,
    random_walk,
    round_mixed_decimals,
    zero_dominated,
)


class TestRegistry:
    def test_thirty_datasets(self):
        assert len(DATASETS) == 30

    def test_thirteen_time_series(self):
        assert len(list_datasets(time_series=True)) == 13

    def test_seventeen_non_time_series(self):
        assert len(list_datasets(time_series=False)) == 17

    def test_order_matches_registry(self):
        assert list(DATASET_ORDER) == list(DATASETS)

    def test_endtoend_subset(self):
        assert set(ENDTOEND_DATASETS) <= set(DATASETS)
        assert len(ENDTOEND_DATASETS) == 5

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            get_dataset("nope")

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_generation_deterministic(self, name):
        a = get_dataset(name, n=2048, seed=7)
        b = get_dataset(name, n=2048, seed=7)
        assert np.array_equal(a.view(np.uint64), b.view(np.uint64))

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_seed_changes_data(self, name):
        # Gov/xx prefixes can be identical all-zero runs: use enough data
        # that non-zero bursts must appear.
        n = 60_000
        a = get_dataset(name, n=n, seed=1)
        b = get_dataset(name, n=n, seed=2)
        assert not np.array_equal(a.view(np.uint64), b.view(np.uint64))

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_size_and_dtype(self, name):
        values = get_dataset(name, n=3000)
        assert values.shape == (3000,)
        assert values.dtype == np.float64
        assert np.isfinite(values).all()


class TestFingerprints:
    def test_poi_datasets_are_full_precision(self):
        for name in ("POI-lat", "POI-lon"):
            values = get_dataset(name, n=4096)
            precisions = decimal_places_array(values)
            assert precisions.mean() > 14, name

    def test_city_temp_is_one_decimal(self):
        values = get_dataset("City-Temp", n=4096)
        assert decimal_places_array(values).max() <= 1

    def test_counts_are_integers(self):
        for name in ("CMS/9", "Medicare/9"):
            values = get_dataset(name, n=4096)
            assert np.array_equal(values, np.floor(values)), name

    def test_gov26_mostly_zero(self):
        values = get_dataset("Gov/26", n=120_000)
        assert (values == 0).mean() > 0.98

    def test_gov30_zero_fraction(self):
        values = get_dataset("Gov/30", n=120_000)
        assert 0.80 < (values == 0).mean() < 0.97

    def test_sd_bench_small_pool(self):
        values = get_dataset("SD-bench", n=8192)
        assert np.unique(values).size <= 30

    def test_stocks_have_temporal_locality(self):
        values = get_dataset("Stocks-USA", n=8192)
        step = np.abs(np.diff(values))
        spread = values.max() - values.min()
        assert np.median(step) < spread / 100

    def test_precision_hints_hold(self):
        for name, spec in DATASETS.items():
            values = spec.generate(n=4096)
            precisions = decimal_places_array(values)
            low, high = spec.precision_hint
            assert precisions.max() <= max(high, 20), name
            # Most values respect the hinted band.
            in_band = (precisions >= low) & (precisions <= high)
            assert in_band.mean() > 0.5, name


class TestPrimitives:
    def test_random_walk_reflects_at_bounds(self):
        rng = np.random.default_rng(0)
        walk = random_walk(50_000, rng, start=0.0, step_std=5.0, low=-10, high=10)
        assert walk.min() >= -10 and walk.max() <= 10
        # Reflection must not create saturation plateaus.
        assert np.unique(np.round(walk, 3)).size > 1000

    def test_round_mixed_decimals(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(0, 1, 1000)
        mixed = round_mixed_decimals(values, (1, 5), (0.5, 0.5), rng)
        precisions = decimal_places_array(mixed)
        assert precisions.max() <= 5
        assert (precisions <= 1).any()

    def test_inject_duplicates_fraction(self):
        rng = np.random.default_rng(2)
        values = rng.uniform(0, 1, 20_000)
        dup = inject_duplicates(values, 0.5, rng)
        non_unique = 1 - np.unique(dup).size / dup.size
        assert 0.35 < non_unique < 0.65

    def test_inject_duplicates_zero_fraction_is_noop(self):
        rng = np.random.default_rng(3)
        values = rng.uniform(0, 1, 100)
        assert np.array_equal(inject_duplicates(values, 0.0, rng), values)

    def test_zero_dominated_fraction(self):
        rng = np.random.default_rng(4)
        out = zero_dominated(
            200_000, rng, 0.95, nonzero=np.array([1.5, 2.5]), period=4096
        )
        assert 0.90 < (out == 0).mean() < 0.99

    def test_zero_dominated_has_long_runs(self):
        rng = np.random.default_rng(5)
        out = zero_dominated(
            100_000, rng, 0.99, nonzero=np.array([7.0])
        )
        # At least one full 1024-vector must be all zeros.
        vectors = out[: 96 * 1024].reshape(96, 1024)
        assert (vectors == 0).all(axis=1).any()

    def test_degrees_to_radians(self):
        rad = degrees_to_radians(np.array([180.0]))
        assert abs(rad[0] - np.pi) < 1e-12

    def test_from_pool_only_pool_values(self):
        rng = np.random.default_rng(6)
        pool = np.array([1.5, 2.5, 3.5])
        out = from_pool(100, rng, pool)
        assert set(out.tolist()) <= set(pool.tolist())

    def test_lognormal_positive(self):
        rng = np.random.default_rng(7)
        assert (iid_lognormal(1000, rng, 10.0, 2.0) > 0).all()


class TestMlWeights:
    def test_four_models(self):
        assert len(MODELS) == 4

    def test_weights_float32(self):
        w = get_model_weights("GPT2")
        assert w.dtype == np.float32
        assert w.size == MODELS["GPT2"].synth_params

    def test_weights_zero_mean_small_scale(self):
        w = get_model_weights("Dino-Vitb16")
        assert abs(float(w.mean())) < 0.01
        assert 0 < float(w.std()) < 1.0

    def test_w2v_tiny(self):
        assert get_model_weights("W2V-Tweets").size == 3000

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_model_weights("bert")

    def test_ml_weights_layer_scales_vary(self):
        rng = np.random.default_rng(8)
        w = ml_weights(100_000, rng)
        first = w[:5000].std()
        assert first > 0
