"""E1 — Figure 1: compression performance scatter (ratio vs speed).

The paper's headline figure plots, for every dataset and scheme, the
compression ratio against compression and decompression speed: ALP sits
alone in the fast-and-small corner.  We regenerate the underlying data
(one dot per dataset per scheme) and print the per-scheme centroids.

Shape claims asserted:

- ALP dominates every other floating-point scheme in decompression
  speed *and* average compression ratio simultaneously (the "up and to
  the right" claim),
- the general-purpose codec is the only one with a comparable ratio.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import (
    alp_vector_speed,
    bench_n,
    codec_speed_on_vector,
    dataset_vector,
    measure_ratio,
)
from repro.bench.report import format_table, shape_check
from repro.data import get_dataset

SCHEMES = (
    "alp",
    "chimp",
    "chimp128",
    "elf",
    "gorilla",
    "patas",
    "pde",
    "zlib(gp)",
)

#: A spread of dataset families; each contributes one dot per scheme.
FIG1_DATASETS = (
    "City-Temp",
    "Stocks-USA",
    "Btc-Price",
    "CMS/9",
    "Food-prices",
    "Blockchain",
    "POI-lat",
    "SD-bench",
)


def _measure():
    dots = []  # (scheme, dataset, bits/value, comp v/s, dec v/s)
    n = min(bench_n(), 20_000)
    for dataset in FIG1_DATASETS:
        ratios = {
            scheme: measure_ratio(scheme, get_dataset(dataset, n=n))
            for scheme in SCHEMES
        }
        vector = dataset_vector(dataset)
        for scheme in SCHEMES:
            if scheme == "alp":
                c, d = alp_vector_speed(vector, repeats=3)
            else:
                c, d = codec_speed_on_vector(scheme, vector, repeats=3)
            dots.append(
                (
                    scheme,
                    dataset,
                    ratios[scheme],
                    c.values_per_second,
                    d.values_per_second,
                )
            )
    return dots


def test_fig1_ratio_vs_speed(benchmark, emit):
    dots = benchmark.pedantic(_measure, rounds=1, iterations=1)

    centroid = {}
    for scheme in SCHEMES:
        mine = [d for d in dots if d[0] == scheme]
        centroid[scheme] = (
            float(np.mean([d[2] for d in mine])),
            float(np.mean([d[3] for d in mine])),
            float(np.mean([d[4] for d in mine])),
        )

    rows = [
        [
            scheme,
            centroid[scheme][0],
            centroid[scheme][1] / 1e6,
            centroid[scheme][2] / 1e6,
        ]
        for scheme in SCHEMES
    ]

    fp = [s for s in SCHEMES if s not in ("alp", "zlib(gp)")]
    checks = [
        shape_check(
            "ALP has better avg ratio AND faster decompression than every "
            "floating-point competitor",
            all(
                centroid["alp"][0] <= centroid[s][0]
                and centroid["alp"][2] >= centroid[s][2]
                for s in fp
            ),
        ),
        shape_check(
            "only the general-purpose codec approaches ALP's ratio "
            "(within 20%)",
            all(
                centroid[s][0] > centroid["alp"][0] * 1.2
                for s in fp
            )
            and centroid["zlib(gp)"][0] <= centroid["alp"][0] * 1.3,
        ),
    ]

    scatter_rows = [
        [f"{d[0]}:{d[1]}", d[2], d[3] / 1e6, d[4] / 1e6] for d in dots
    ]
    report = format_table(
        ["scheme (centroid)", "bits/value", "comp Mv/s", "dec Mv/s"],
        rows,
        float_format="{:.2f}",
        title="Figure 1 — per-scheme centroids (one dot per dataset below)",
    )
    report += "\n\n" + format_table(
        ["dot", "bits/value", "comp Mv/s", "dec Mv/s"],
        scatter_rows,
        float_format="{:.2f}",
    )
    from repro.bench.figures import ascii_scatter

    scatter = ascii_scatter(
        {
            scheme: [(d[4] / 1e6, 64.0 / d[2]) for d in dots if d[0] == scheme]
            for scheme in SCHEMES
        },
        x_label="decompression Mv/s",
        y_label="compression ratio (64/bits)",
        log_x=True,
    )
    report += "\n\nFigure 1 (rendered) — one glyph per dataset:\n" + scatter
    report += "\n" + "\n".join(checks)
    emit("fig1_ratio_vs_speed", report)
    assert all(c.startswith("[PASS]") for c in checks), "\n" + "\n".join(checks)
