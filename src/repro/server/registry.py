"""The served-dataset registry: names -> open, cache-aware column readers.

A server serves what is *registered*: single-column ``.alpc`` files (one
column, named after the file stem), v4 multi-column table files (one
served column per non-nullable float64 schema column), or
``alpc-dataset`` directories (one column per manifest entry).
Registration opens readers eagerly —
header/footer verification happens at startup, not on the first request
— in *degraded* mode by default, so a column with corrupt row-groups
serves its intact remainder (PR 4 quarantine semantics) instead of
failing every request that touches it.

Every :class:`ServedColumn` routes decoded row-groups through the shared
:class:`~repro.server.cache.DecodedVectorCache`, keyed by
``(file path, rowgroup index)`` — the same keying the local query engine
uses, so a server and an in-process scan can share one cache.

The registry also owns the serving tier's zero-copy knobs: ``mmap=True``
memory-maps every registered column file (payloads decode straight out
of the page cache), and a shared :class:`~repro.server.bufferpool
.BufferPool` feeds scan targets and cache fills so steady-state traffic
recycles buffers instead of allocating (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.server import protocol
from repro.server.bufferpool import BufferPool
from repro.server.cache import DecodedVectorCache
from repro.storage.columnfile import ColumnFileReader, ScanReport
from repro.storage.dataset_dir import MANIFEST_NAME, DatasetReader
from repro.storage.schema import FLOAT64, Column, Schema
from repro.storage.tablefile import (
    FORMAT_VERSION_V4,
    TableColumnReader,
    TableFileReader,
    file_format_version,
)

#: Any reader a served column may sit on: the classic single-column
#: reader or the per-column view of a v4 table (identical surface).
ServedReader = ColumnFileReader | TableColumnReader


class ServedColumn:
    """One column under service: a degraded reader plus the shared cache.

    ``pool``, when given, feeds full-column scan buffers: each scan
    decodes into a recycled target, serializes the response while the
    buffer is held, and releases it — zero large allocations on the
    steady-state path (see :meth:`scan_payload`).
    """

    def __init__(
        self,
        dataset: str,
        column: str,
        path: str,
        reader: ServedReader,
        cache: DecodedVectorCache | None,
        pool: BufferPool | None = None,
    ) -> None:
        self.dataset = dataset
        self.column = column
        self.path = path
        self.reader = reader
        self.cache = cache
        self.pool = pool

    @property
    def value_count(self) -> int:
        """Total values per the file footer (quarantine not subtracted)."""
        return self.reader.value_count

    @property
    def compressed_bits(self) -> int:
        """Compressed payload footprint in bits."""
        return sum(meta.length * 8 for meta in self.reader.metadata)

    @property
    def bits_per_value(self) -> float:
        """Compressed bits per value of the served column."""
        return self.compressed_bits / max(self.value_count, 1)

    def all_values(self) -> np.ndarray:
        """Every decodable value, in order (degraded readers skip bad
        row-groups; see :meth:`scan_report`)."""
        return self.reader.read_all(cache=self.cache)

    def scan_payload(
        self,
        bounds: "tuple[float, float] | None" = None,
        rowgroups: "tuple[int, int] | None" = None,
    ) -> tuple[bytes, int]:
        """One scan response, serialized: ``(payload bytes, count)``.

        The full-column shape is the allocation-managed hot path.  With
        a single cached row-group the resident cache array serializes
        directly (zero copies, zero allocations); otherwise, with a
        pool, row-groups decode into a recycled full-column buffer that
        is released once the response bytes exist.  The serialized copy
        ``values_to_bytes`` makes is the one allocation that remains —
        the response frame must outlive the buffer's next reuse.

        ``rowgroups`` scopes the scan to the half-open row-group range
        ``[start, stop)`` — the shard router's partition-sized requests
        (cache keys stay per-(file, row-group), so a partition scoped
        to one backend warms exactly its own row-groups).
        """
        if rowgroups is not None:
            return self._scan_payload_rowgroups(bounds, rowgroups)
        if bounds is not None:
            values = self.values_in_range(*bounds)
            return protocol.values_to_bytes(values), int(values.size)
        single_cached = (
            self.cache is not None and self.reader.rowgroup_count == 1
        )
        if self.pool is None or single_cached:
            values = self.all_values()
            return protocol.values_to_bytes(values), int(values.size)
        buffer = self.pool.acquire(self.value_count)
        try:
            values = self.reader.read_all(cache=self.cache, out=buffer)
            return protocol.values_to_bytes(values), int(values.size)
        finally:
            self.pool.release(buffer)

    def _scan_payload_rowgroups(
        self,
        bounds: "tuple[float, float] | None",
        rowgroups: "tuple[int, int]",
    ) -> tuple[bytes, int]:
        """A partition-scoped scan: row-groups ``[start, stop)`` only.

        Decoded row-groups go through the shared cache (same keys the
        full-column path uses) and degraded readers quarantine corrupt
        ones, so a scoped scan serves exactly the values a full scan
        would serve for those row-groups.
        """
        start, stop = rowgroups
        if bounds is not None:
            low, high = bounds
            chunks = [
                values[(values >= low) & (values <= high)]
                for index, values in self.reader.scan_range(
                    low, high, cache=self.cache
                )
                if start <= index < stop
            ]
        else:
            chunks = [
                values
                for _, values in self.reader.iter_rowgroups(
                    self.cache, start, stop
                )
            ]
        if not chunks:
            return b"", 0
        values = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
        return protocol.values_to_bytes(values), int(values.size)

    def query_source(self, rowgroups: "tuple[int, int] | None" = None):
        """The engine-facing scan source for aggregate ops.

        Deliberately *not* wired to the decoded-vector cache: aggregates
        run the encoded-domain path, and a served sum must not change by
        a ulp depending on whether some row-group happened to be warm.
        Scan ops, whose decoded values are bit-identical either way, keep
        using the cache through :meth:`all_values` /
        :meth:`values_in_range`.  ``rowgroups`` restricts the source to
        the half-open row-group range (partition-scoped aggregates).
        """
        from repro.query.sources import FileColumnSource

        return FileColumnSource(reader=self.reader, rowgroups=rowgroups)

    def values_in_range(self, low: float, high: float) -> np.ndarray:
        """Values inside ``[low, high]``, zone-map-pruned then filtered."""
        chunks = []
        for _, values in self.reader.scan_range(low, high, cache=self.cache):
            mask = (values >= low) & (values <= high)
            chunks.append(values[mask])
        if not chunks:
            return np.empty(0, dtype=np.float64)
        return np.concatenate(chunks)

    def scan_report(self) -> ScanReport:
        """Cumulative quarantine account of this column's reader."""
        return self.reader.scan_report()

    def describe(self) -> dict[str, object]:
        """Metadata for the ``datasets`` op / the CLI listing.

        ``rowgroup_rows`` (per-row-group value counts, footer order) is
        what the shard router partitions on: it derives partition row
        counts — and the degraded-row accounting for missing shards —
        without opening the file itself.
        """
        return {
            "values": self.value_count,
            "rowgroups": self.reader.rowgroup_count,
            "vector_size": self.reader.vector_size,
            "bits_per_value": self.bits_per_value,
            "format_version": self.reader.format_version,
            "rowgroup_rows": [m.count for m in self.reader.metadata],
        }


class DatasetRegistry:
    """Maps served dataset/column names to :class:`ServedColumn` readers."""

    def __init__(
        self,
        cache: DecodedVectorCache | None = None,
        degraded: bool = True,
        *,
        mmap: bool = False,
        pool: BufferPool | None = None,
    ) -> None:
        self.cache = cache
        self.degraded = degraded
        self.mmap = mmap
        self.pool = pool
        #: dataset name -> column name -> ServedColumn
        self._datasets: dict[str, dict[str, ServedColumn]] = {}
        #: dataset name -> schema (synthesized for v2/v3 sources)
        self._schemas: dict[str, Schema] = {}

    def register_file(
        self, path: str | os.PathLike, name: str | None = None
    ) -> str:
        """Serve one ``.alpc`` file (column file or v4 table) as a dataset.

        A v2/v3 single-column file serves one column named after the
        file stem; a v4 table serves every *non-nullable float64*
        schema column (the float query pipeline's domain — nullable,
        integer and string columns are visible in the dataset's schema
        but not servable).
        """
        file_path = Path(path)
        dataset = name or file_path.stem
        if dataset in self._datasets:
            raise ValueError(f"dataset {dataset!r} is already registered")
        if file_format_version(file_path) >= FORMAT_VERSION_V4:
            table = TableFileReader(
                file_path, degraded=self.degraded, mmap=self.mmap
            )
            served = {
                col.name: ServedColumn(
                    dataset=dataset,
                    column=col.name,
                    path=str(file_path),
                    reader=table.column_reader(col.name),
                    cache=self.cache,
                    pool=self.pool,
                )
                for col in table.schema
                if col.type == FLOAT64 and not col.nullable
            }
            if not served:
                table.close()
                raise ValueError(
                    f"{file_path}: no servable (non-nullable float64) "
                    f"columns in schema {list(table.schema.names)}"
                )
            self._datasets[dataset] = served
            self._schemas[dataset] = table.schema
            return dataset
        reader = ColumnFileReader(
            file_path, degraded=self.degraded, mmap=self.mmap
        )
        self._datasets[dataset] = {
            file_path.stem: ServedColumn(
                dataset=dataset,
                column=file_path.stem,
                path=str(file_path),
                reader=reader,
                cache=self.cache,
                pool=self.pool,
            )
        }
        self._schemas[dataset] = Schema((Column(file_path.stem),))
        return dataset

    def register_dataset(
        self, directory: str | os.PathLike, name: str | None = None
    ) -> str:
        """Serve every column of an ``alpc-dataset`` directory."""
        dir_path = Path(directory)
        dataset = name or dir_path.name
        if dataset in self._datasets:
            raise ValueError(f"dataset {dataset!r} is already registered")
        manifest = DatasetReader(dir_path, degraded=self.degraded)
        columns: dict[str, ServedColumn] = {}
        for column in manifest.column_names:
            file_path = dir_path / manifest.column_file(column)
            columns[column] = ServedColumn(
                dataset=dataset,
                column=column,
                path=str(file_path),
                reader=ColumnFileReader(
                    file_path, degraded=self.degraded, mmap=self.mmap
                ),
                cache=self.cache,
                pool=self.pool,
            )
        self._datasets[dataset] = columns
        self._schemas[dataset] = Schema(
            tuple(Column(name) for name in manifest.column_names)
        )
        return dataset

    def register_path(
        self, path: str | os.PathLike, name: str | None = None
    ) -> str:
        """Register a path, auto-detecting file vs dataset directory."""
        p = Path(path)
        if p.is_dir():
            if not (p / MANIFEST_NAME).exists():
                raise ValueError(
                    f"{p} is a directory without a {MANIFEST_NAME}"
                )
            return self.register_dataset(p, name)
        if not p.is_file():
            raise ValueError(f"{p} is neither a file nor a directory")
        return self.register_file(p, name)

    @property
    def dataset_names(self) -> tuple[str, ...]:
        """Registered dataset names, registration order."""
        return tuple(self._datasets)

    def schema(self, dataset: str) -> Schema:
        """The schema of a registered dataset.

        v4 tables report their stored schema (including columns that
        are not servable through the float pipeline); v2/v3 files and
        dataset directories report a synthesized all-float64 schema.
        """
        schema = self._schemas.get(dataset)
        if schema is None:
            raise KeyError(
                f"unknown dataset {dataset!r}; "
                f"registered: {sorted(self._datasets)}"
            )
        return schema

    def column(
        self, dataset: str, column: str | None = None
    ) -> ServedColumn:
        """Resolve a served column; ``column=None`` works for one-column
        datasets.  Raises ``KeyError`` with a message fit for an error
        frame when the name does not resolve."""
        columns = self._datasets.get(dataset)
        if columns is None:
            raise KeyError(
                f"unknown dataset {dataset!r}; "
                f"registered: {sorted(self._datasets)}"
            )
        if column is None:
            if len(columns) == 1:
                return next(iter(columns.values()))
            raise KeyError(
                f"dataset {dataset!r} has {len(columns)} columns; "
                f"specify one of {sorted(columns)}"
            )
        served = columns.get(column)
        if served is None:
            raise KeyError(
                f"unknown column {column!r} of dataset {dataset!r}; "
                f"have {sorted(columns)}"
            )
        return served

    def describe(self) -> dict[str, object]:
        """The ``datasets`` op body: everything served, with metadata."""
        return {
            dataset: {
                column: served.describe()
                for column, served in columns.items()
            }
            for dataset, columns in self._datasets.items()
        }
