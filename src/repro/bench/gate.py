"""The benchmark regression gate run by CI.

``python -m repro.bench.gate CURRENT.json BASELINE.json`` compares two
``BENCH_*.json`` documents record by record (keyed on dataset + codec)
and exits non-zero when the current run regresses beyond tolerance:

- **compression ratio**: ``bits_per_value`` more than 2% *higher* than
  the baseline fails.  Ratios are deterministic (fixed-seed synthetic
  data), so this tolerance only leaves room for intentional trade-offs.
- **throughput**: the machine-relative ``compress_rel`` /
  ``decompress_rel`` fields (codec MB/s divided by a same-process,
  codec-shaped calibration workload — see
  :func:`repro.bench.harness.calibration_mbps`) more than 25% *lower*
  than baseline fail.  Comparing relative numbers keeps slow CI runners
  from reading as codec regressions.

Improvements never fail the gate.  A record present in the baseline but
missing from the current run fails (coverage must not silently shrink);
new records in the current run are reported but pass.

Besides the plain-text report on stdout, the gate renders the same
per-metric delta table as GitHub-flavoured markdown: ``--summary PATH``
appends it to ``PATH``, and when the ``GITHUB_STEP_SUMMARY`` environment
variable is set (as it is inside every Actions step) the table lands in
the job summary automatically, so a reviewer sees baseline vs current
numbers without opening the log.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.bench.records import BenchRecord, read_bench_json

#: Fail when bits_per_value grows by more than this fraction.
RATIO_TOLERANCE = 0.02
#: Fail when relative throughput drops by more than this fraction.
SPEED_TOLERANCE = 0.25


@dataclass(frozen=True)
class Check:
    """One comparison line of the gate report."""

    dataset: str
    codec: str
    metric: str
    baseline: float
    current: float
    change: float  # signed fraction, positive = worse
    tolerance: float

    @property
    def failed(self) -> bool:
        return self.change > self.tolerance

    def format(self) -> str:
        marker = "FAIL" if self.failed else "ok  "
        return (
            f"[{marker}] {self.dataset:14s} {self.codec:8s} "
            f"{self.metric:14s} baseline {self.baseline:10.4f} "
            f"current {self.current:10.4f} "
            f"({self.change:+.1%}, tolerance {self.tolerance:.0%})"
        )


def compare_records(
    current: BenchRecord,
    baseline: BenchRecord,
    ratio_tolerance: float = RATIO_TOLERANCE,
    speed_tolerance: float = SPEED_TOLERANCE,
) -> list[Check]:
    """All regression checks for one (dataset, codec) pair."""
    checks = [
        Check(
            dataset=current.dataset,
            codec=current.codec,
            metric="bits_per_value",
            baseline=baseline.bits_per_value,
            current=current.bits_per_value,
            change=_relative_increase(
                baseline.bits_per_value, current.bits_per_value
            ),
            tolerance=ratio_tolerance,
        )
    ]
    for metric in ("compress_rel", "decompress_rel"):
        base = getattr(baseline, metric)
        cur = getattr(current, metric)
        checks.append(
            Check(
                dataset=current.dataset,
                codec=current.codec,
                metric=metric,
                baseline=base,
                current=cur,
                # For throughput, *lower* is worse.
                change=_relative_increase(cur, base),
                tolerance=speed_tolerance,
            )
        )
    return checks


def _relative_increase(baseline: float, current: float) -> float:
    """(current - baseline) / baseline, with a zero-safe denominator."""
    if baseline <= 0:
        return 0.0 if current <= 0 else float("inf")
    return (current - baseline) / baseline


def run_gate(
    current_path: str,
    baseline_path: str,
    ratio_tolerance: float = RATIO_TOLERANCE,
    speed_tolerance: float = SPEED_TOLERANCE,
) -> tuple[list[Check], list[str]]:
    """Compare two documents; returns (checks, fatal problems)."""
    _, current_records = read_bench_json(current_path)
    _, baseline_records = read_bench_json(baseline_path)
    current_by_key = {record.key: record for record in current_records}
    baseline_by_key = {record.key: record for record in baseline_records}

    problems = [
        f"baseline record {key} missing from current run"
        for key in baseline_by_key
        if key not in current_by_key
    ]
    checks: list[Check] = []
    for key, record in current_by_key.items():
        baseline = baseline_by_key.get(key)
        if baseline is None:
            print(f"[new ] {key[0]} {key[1]}: no baseline yet, passing")
            continue
        checks.extend(
            compare_records(
                record,
                baseline,
                ratio_tolerance=ratio_tolerance,
                speed_tolerance=speed_tolerance,
            )
        )
    return checks, problems


def render_markdown(checks: list[Check], problems: list[str]) -> str:
    """The gate report as a GitHub-flavoured markdown delta table.

    One row per compared metric — baseline, current, signed delta
    (negative = improved), tolerance and pass/fail — followed by any
    structural problems.  This is what lands in the Actions job summary.
    """
    lines = [
        "## Benchmark regression gate",
        "",
        "| dataset | codec | metric | baseline | current | delta "
        "| tolerance | status |",
        "|---|---|---|---:|---:|---:|---:|---|",
    ]
    for check in checks:
        status = ":x: FAIL" if check.failed else ":white_check_mark: ok"
        lines.append(
            f"| {check.dataset} | {check.codec} | {check.metric} "
            f"| {check.baseline:.4f} | {check.current:.4f} "
            f"| {check.change:+.1%} | {check.tolerance:.0%} | {status} |"
        )
    if problems:
        lines.append("")
        for problem in problems:
            lines.append(f"- :x: {problem}")
    failed = sum(1 for check in checks if check.failed)
    lines.append("")
    if failed or problems:
        lines.append(
            f"**Gate FAILED** — {failed} regressed metric(s), "
            f"{len(problems)} structural problem(s)."
        )
    else:
        lines.append(f"**Gate passed** ({len(checks)} checks).")
    return "\n".join(lines) + "\n"


def write_summary(
    checks: list[Check],
    problems: list[str],
    summary_path: str | None,
) -> None:
    """Append the markdown report to ``summary_path`` (or the env default).

    ``GITHUB_STEP_SUMMARY`` names an append-only file inside Actions
    steps; appending (rather than overwriting) lets several gate
    invocations in one job stack their tables.
    """
    path = summary_path or os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    with Path(path).open("a", encoding="utf-8") as handle:
        handle.write(render_markdown(checks, problems))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.gate",
        description="fail when a bench run regresses vs. a baseline JSON",
    )
    parser.add_argument("current", help="BENCH_*.json of this run")
    parser.add_argument("baseline", help="checked-in baseline BENCH_*.json")
    parser.add_argument(
        "--ratio-tolerance",
        type=float,
        default=RATIO_TOLERANCE,
        help="max fractional bits/value increase (default 0.02)",
    )
    parser.add_argument(
        "--speed-tolerance",
        type=float,
        default=SPEED_TOLERANCE,
        help="max fractional relative-throughput drop (default 0.25)",
    )
    parser.add_argument(
        "--summary",
        default=None,
        help=(
            "append the markdown delta table to this file "
            "(default: $GITHUB_STEP_SUMMARY when set)"
        ),
    )
    args = parser.parse_args(argv)

    checks, problems = run_gate(
        args.current,
        args.baseline,
        ratio_tolerance=args.ratio_tolerance,
        speed_tolerance=args.speed_tolerance,
    )
    for check in checks:
        print(check.format())
    for problem in problems:
        print(f"[FAIL] {problem}")
    write_summary(checks, problems, args.summary)
    failed = [check for check in checks if check.failed]
    if failed or problems:
        print(
            f"regression gate FAILED: {len(failed)} regressed metric(s), "
            f"{len(problems)} structural problem(s)"
        )
        return 1
    print(f"regression gate passed ({len(checks)} checks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
