"""Format v4 table files: round-trips, nulls, legacy wrap, integrity.

Covers the storage layer directly (:mod:`repro.storage.tablefile`):
hypothesis round-trips over nullable float/int/string columns
(including all-null and zero-row shapes), v2/v3 files opened through
the table reader, corruption quarantine with row alignment, verify /
repair dispatch, and the mmap read path.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.columnfile import ColumnFileWriter
from repro.storage.errors import CorruptRowGroupError
from repro.storage.schema import FLOAT64, INT64, STRING, Column, Schema
from repro.storage.tablefile import (
    TableFileReader,
    TableFileWriter,
    file_format_version,
)
from repro.storage.verify import repair_column_file, verify_column_file


def _write(path, columns, validity=None, schema=None, **kwargs):
    if schema is None:
        cols = []
        for name, arr in columns.items():
            arr = np.asarray(arr)
            if arr.dtype.kind == "f":
                ctype = FLOAT64
            elif arr.dtype.kind in ("i", "u"):
                ctype = INT64
            else:
                ctype = STRING
            nullable = validity is not None and name in validity
            cols.append(Column(name, ctype, nullable=nullable))
        schema = Schema(tuple(cols))
    with TableFileWriter(path, schema, **kwargs) as writer:
        writer.write_rows(dict(columns), validity=validity)
    return schema


def _fill(arr, ok):
    """The written column as the reader returns it: fill at null slots."""
    arr = np.asarray(arr).copy()
    if arr.dtype.kind == "f":
        arr[~ok] = 0.0
    elif arr.dtype.kind in ("i", "u"):
        arr[~ok] = 0
    else:
        arr[~ok] = ""
    return arr


def _column_equal(a, b):
    a, b = np.asarray(a), np.asarray(b)
    if len(a) != len(b):
        return False
    if a.dtype.kind == "f":
        return np.array_equal(
            a.astype(np.float64).view(np.uint64),
            np.asarray(b, dtype=np.float64).view(np.uint64),
        )
    if a.dtype.kind == "O":
        return all(x == y for x, y in zip(a, b, strict=True))
    return np.array_equal(a, b)


# -- hypothesis round-trips -------------------------------------------

_floats = st.one_of(
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.decimals(
        allow_nan=False,
        allow_infinity=False,
        min_value=-(10**9),
        max_value=10**9,
        places=3,
    ).map(float),
)
_ints = st.integers(min_value=-(2**53), max_value=2**53)
_strings = st.text(max_size=12)


@st.composite
def _nullable_table(draw):
    n = draw(st.integers(min_value=0, max_value=300))
    f = np.array(
        draw(st.lists(_floats, min_size=n, max_size=n)), dtype=np.float64
    )
    i = np.array(
        draw(st.lists(_ints, min_size=n, max_size=n)), dtype=np.int64
    )
    s = np.array(
        draw(st.lists(_strings, min_size=n, max_size=n)), dtype=object
    )
    masks = {
        name: np.array(
            draw(st.lists(st.booleans(), min_size=n, max_size=n)),
            dtype=bool,
        )
        for name in ("f", "i", "s")
    }
    return {"f": f, "i": i, "s": s}, masks


class TestHypothesisRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(_nullable_table())
    def test_nullable_columns_roundtrip(self, tmp_path_factory, table):
        columns, validity = table
        path = tmp_path_factory.mktemp("t") / "t.alpc"
        _write(
            path,
            columns,
            validity=validity,
            vector_size=64,
            rowgroup_vectors=2,
        )
        with TableFileReader(path) as reader:
            values, masks = reader.read_columns()
            assert reader.row_count == len(columns["f"])
            for name in columns:
                assert _column_equal(
                    values[name], _fill(columns[name], validity[name])
                )
                assert np.array_equal(masks[name], validity[name])

    @settings(max_examples=20, deadline=None)
    @given(st.lists(_ints, min_size=1, max_size=400))
    def test_int_column_roundtrip(self, tmp_path_factory, ints):
        path = tmp_path_factory.mktemp("t") / "i.alpc"
        arr = np.array(ints, dtype=np.int64)
        _write(path, {"i": arr}, vector_size=64, rowgroup_vectors=2)
        with TableFileReader(path) as reader:
            values, _ = reader.read_columns()
            assert np.array_equal(values["i"], arr)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(_strings, min_size=1, max_size=400))
    def test_string_column_roundtrip(self, tmp_path_factory, strings):
        path = tmp_path_factory.mktemp("t") / "s.alpc"
        arr = np.array(strings, dtype=object)
        _write(path, {"s": arr}, vector_size=64, rowgroup_vectors=2)
        with TableFileReader(path) as reader:
            values, _ = reader.read_columns()
            assert list(values["s"]) == strings


class TestEdgeShapes:
    def test_zero_rows(self, tmp_path):
        path = tmp_path / "z.alpc"
        _write(
            path,
            {
                "f": np.empty(0, dtype=np.float64),
                "i": np.empty(0, dtype=np.int64),
                "s": np.empty(0, dtype=object),
            },
        )
        with TableFileReader(path) as reader:
            assert reader.row_count == 0
            assert reader.rowgroup_count == 0
            values, _ = reader.read_columns()
            assert all(len(v) == 0 for v in values.values())

    def test_all_null_columns(self, tmp_path):
        path = tmp_path / "n.alpc"
        n = 200
        columns = {
            "f": np.zeros(n),
            "i": np.zeros(n, dtype=np.int64),
            "s": np.array([""] * n, dtype=object),
        }
        validity = {k: np.zeros(n, dtype=bool) for k in columns}
        _write(path, columns, validity=validity, vector_size=64)
        with TableFileReader(path) as reader:
            values, masks = reader.read_columns()
            for name in columns:
                assert not masks[name].any()
                assert len(values[name]) == n
            # All-null zones carry no bounds: any range predicate on
            # the int column prunes everything.
            zone = reader.chunk_meta(0, "i").zone
            assert zone.min_value is None and zone.max_value is None
            assert not zone.may_contain_range(-1e18, 1e18)

    def test_single_value(self, tmp_path):
        path = tmp_path / "one.alpc"
        _write(path, {"v": np.array([42.5])})
        with TableFileReader(path) as reader:
            values, _ = reader.read_columns()
            assert values["v"].tolist() == [42.5]

    def test_empty_schema_rejected(self):
        with pytest.raises(ValueError, match="at least one column"):
            Schema(())


class TestLegacyWrap:
    def test_v3_reads_as_one_column_table(self, tmp_path):
        path = tmp_path / "legacy.alpc"
        values = np.round(np.random.default_rng(0).normal(0, 1, 5000), 2)
        with ColumnFileWriter(path) as writer:
            writer.write_values(values)
        assert file_format_version(path) == 3
        with TableFileReader(path) as reader:
            assert reader.schema.names == ("legacy",)
            assert reader.schema.columns[0].type == FLOAT64
            assert not reader.schema.columns[0].nullable
            got, masks = reader.read_columns()
            assert _column_equal(got["legacy"], values)
            assert masks == {}

    def test_v2_reads_as_one_column_table(self, tmp_path):
        path = tmp_path / "old.alpc"
        values = np.round(np.random.default_rng(1).normal(0, 1, 3000), 2)
        with ColumnFileWriter(path, integrity=False) as writer:
            writer.write_values(values)
        assert file_format_version(path) == 2
        with TableFileReader(path) as reader:
            assert reader.format_version == 2
            got, _ = reader.read_columns()
            assert _column_equal(got["old"], values)


def _damage_chunk(path, rowgroup, column):
    with TableFileReader(path) as reader:
        meta = reader.chunk_meta(rowgroup, column)
    data = bytearray(open(path, "rb").read())
    data[meta.offset + meta.length // 2] ^= 0xFF
    open(path, "wb").write(bytes(data))


class TestIntegrity:
    def _table(self, tmp_path, n=2048):
        rng = np.random.default_rng(9)
        columns = {
            "a": np.round(rng.normal(0, 5, n), 2),
            "b": rng.integers(0, 100, n),
        }
        path = tmp_path / "t.alpc"
        _write(path, columns, vector_size=128, rowgroup_vectors=2)
        return path, columns

    def test_strict_read_raises_on_chunk_damage(self, tmp_path):
        path, _ = self._table(tmp_path)
        _damage_chunk(path, 1, "b")
        with TableFileReader(path) as reader:
            with pytest.raises(CorruptRowGroupError, match="'b'"):
                reader.read_columns()

    def test_degraded_quarantine_is_row_aligned(self, tmp_path):
        path, columns = self._table(tmp_path)
        _damage_chunk(path, 1, "b")
        with TableFileReader(path, degraded=True) as reader:
            values, _ = reader.read_columns()
            report = reader.scan_report()
            assert report.chunks_quarantined == 1
            assert {q.rowgroup for q in report.quarantined} == {1}
            # The damaged chunk removes its row-group's rows from BOTH
            # columns — projections stay row-aligned.
            rows = reader.rowgroup_rows(0)
            keep = np.ones(len(columns["a"]), dtype=bool)
            keep[rows : 2 * rows] = False
            assert _column_equal(values["a"], columns["a"][keep])
            assert _column_equal(values["b"], columns["b"][keep])

    def test_verify_attributes_damage_to_column(self, tmp_path):
        path, _ = self._table(tmp_path)
        report = verify_column_file(path)
        assert report.ok
        assert report.format_version == 4
        _damage_chunk(path, 1, "b")
        report = verify_column_file(path)
        assert not report.ok
        bad = report.bad_sections
        assert all(s.section == "chunk" for s in bad)
        assert {s.column for s in bad} == {"b"}

    def test_repair_drops_damaged_rowgroup(self, tmp_path):
        path, columns = self._table(tmp_path)
        _damage_chunk(path, 0, "a")
        fixed = tmp_path / "fixed.alpc"
        report = repair_column_file(path, fixed)
        assert report.rowgroups_dropped == 1
        assert verify_column_file(fixed).ok
        with TableFileReader(fixed) as reader:
            values, _ = reader.read_columns()
            rows = reader.rowgroup_rows(0)
            # Row-group 0 was dropped; everything after it survives.
            assert _column_equal(values["a"], columns["a"][rows:])
            assert _column_equal(values["b"], columns["b"][rows:])


class TestMmap:
    def test_mmap_roundtrip(self, tmp_path):
        rng = np.random.default_rng(4)
        n = 200_000  # large enough to clear the mmap threshold
        columns = {"a": np.round(rng.normal(0, 5, n), 2)}
        path = tmp_path / "m.alpc"
        _write(path, columns)
        with TableFileReader(path, mmap=True) as reader:
            assert reader.mapped
            values, _ = reader.read_columns()
            assert _column_equal(values["a"], columns["a"])
