"""Tests for the multi-column dataset directory format."""

import json

import numpy as np
import pytest

from repro.query.table import FilterPredicate
from repro.storage.dataset_dir import (
    DatasetReader,
    write_dataset,
)


@pytest.fixture
def trades(tmp_path):
    rng = np.random.default_rng(0)
    n = 120_000
    columns = {
        "price": np.round(np.cumsum(rng.normal(0, 0.05, n)) + 100.0, 2),
        "volume": rng.integers(1, 500, n).astype(np.float64),
        "weird/name with spaces": np.round(rng.uniform(0, 1, n), 3),
    }
    directory = tmp_path / "trades"
    write_dataset(directory, columns)
    return directory, columns


class TestWrite:
    def test_manifest_written(self, trades):
        directory, columns = trades
        manifest = json.loads((directory / "manifest.json").read_text())
        assert manifest["format"] == "alpc-dataset"
        assert manifest["rows"] == 120_000
        assert set(manifest["columns"]) == set(columns)

    def test_weird_names_sanitized(self, trades):
        directory, _ = trades
        manifest = json.loads((directory / "manifest.json").read_text())
        filename = manifest["columns"]["weird/name with spaces"]
        assert "/" not in filename and " " not in filename
        assert (directory / filename).exists()

    def test_mismatched_lengths_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_dataset(
                tmp_path / "bad",
                {"a": np.zeros(5), "b": np.zeros(6)},
            )

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_dataset(tmp_path / "bad", {})


class TestRead:
    def test_columns_roundtrip(self, trades):
        directory, columns = trades
        reader = DatasetReader(directory)
        assert set(reader.column_names) == set(columns)
        assert reader.row_count == 120_000
        for name, expected in columns.items():
            got = reader.read_column(name)
            assert np.array_equal(
                got.view(np.uint64), expected.view(np.uint64)
            ), name

    def test_unknown_column(self, trades):
        directory, _ = trades
        with pytest.raises(KeyError):
            DatasetReader(directory).read_column("nope")

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ValueError):
            DatasetReader(tmp_path)

    def test_compressed_smaller_than_raw(self, trades):
        directory, columns = trades
        reader = DatasetReader(directory)
        raw = sum(a.nbytes for a in columns.values())
        assert reader.compressed_bytes() < raw / 2


class TestTableIntegration:
    def test_filtered_aggregate_over_files(self, trades):
        directory, columns = trades
        table = DatasetReader(directory).table(["price", "volume"])
        predicate = FilterPredicate("price", 100.0, 101.0)
        mask = (columns["price"] >= 100.0) & (columns["price"] <= 101.0)
        expected = float(columns["volume"][mask].sum())
        got = table.aggregate("volume", "sum", predicate=predicate)
        assert got == pytest.approx(expected, rel=1e-9)

    def test_partial_table(self, trades):
        directory, _ = trades
        table = DatasetReader(directory).table(["volume"])
        assert table.column_names == ("volume",)
