"""The registered observability names RL3 validates against.

Every span/counter/gauge name literal used with :mod:`repro.obs` must
appear here, and ``docs/OBSERVABILITY.md`` documents this same set —
``tests/test_lint_self.py`` cross-checks both, so a metric cannot be
added (or renamed) without the registry and the docs following along.

To add a metric: use it in code, add its name to the matching set below,
and document it in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

#: Span names (``with obs.span("...")``), one per instrumented phase.
SPAN_NAMES: frozenset[str] = frozenset(
    {
        "alp.decode_vector",
        "alp.encode_rowgroup",
        "alp.encode_vector",
        "alprd.decode",
        "alprd.encode",
        "alprd.fit_parameters",
        "columnfile.open",
        "columnfile.read_rowgroup",
        "columnfile.verify",
        "columnfile.write",
        "compressor.compress",
        "compressor.compress_parallel",
        "compressor.decompress",
        "compressor.decompress_parallel",
        "compressor.rowgroup",
        "query.comp",
        "query.range_count",
        "query.range_sum",
        "query.scan",
        "query.sum",
        "sampler.first_level",
        "sampler.second_level",
        "server.request",
        "shard.scatter",
        "tablefile.open",
        "tablefile.scan",
        "tablefile.write",
    }
)

#: Counter names (``obs.counter_add("...", n)``).
COUNTER_NAMES: frozenset[str] = frozenset(
    {
        "alp.exceptions",
        "alp.vectors_decoded",
        "alp.vectors_encoded",
        "alp.vectors_summed_encoded",
        "alprd.exceptions",
        "alprd.vectors_decoded",
        "alprd.vectors_encoded",
        "bitpack.pack_bytes",
        "bitpack.pack_calls",
        "bitpack.pack_values",
        "bitpack.unpack_bytes",
        "bitpack.unpack_calls",
        "bitpack.unpack_sum_calls",
        "bitpack.unpack_values",
        "cache.evictions",
        "cache.hits",
        "cache.misses",
        "columnfile.bytes_mapped",
        "columnfile.bytes_read",
        "columnfile.bytes_written",
        "columnfile.checksum_failures",
        "columnfile.rowgroups_quarantined",
        "columnfile.rowgroups_read",
        "columnfile.rowgroups_scanned",
        "columnfile.rowgroups_skipped",
        "columnfile.rowgroups_written",
        "columnfile.values_quarantined",
        "columnfile.vectors_decoded",
        "columnfile.vectors_skipped",
        "compressor.combinations_tried",
        "compressor.compressed_bits",
        "compressor.exceptions_patched",
        "compressor.rowgroups",
        "compressor.scheme.alp",
        "compressor.scheme.alprd",
        "compressor.second_level_skipped",
        "compressor.values",
        "compressor.values_decoded",
        "compressor.vectors_encoded",
        "ffor.bit_width_sum",
        "ffor.filter_fused",
        "ffor.packed_bytes",
        "ffor.sum_fused",
        "ffor.sum_range_fused",
        "ffor.vectors_decoded",
        "ffor.vectors_encoded",
        "predicates.vectors_accepted",
        "predicates.vectors_skipped",
        "query.batches_fallback",
        "query.dispatch_fallback",
        "query.dispatch_fastpath",
        "query.range_queries",
        "query.rowgroups_pruned",
        "query.sum_encoded",
        "query.sum_queries",
        "query.values_scanned",
        "query.vectors_pruned",
        "query.vectors_scanned",
        "sampler.candidates_kept",
        "sampler.combinations_tried",
        "sampler.early_exits",
        "sampler.first_level_runs",
        "sampler.first_level_vectors",
        "pool.hits",
        "pool.misses",
        "sampler.second_level_runs",
        "sampler.second_level_skipped",
        "server.bytes_in",
        "server.bytes_out",
        "server.connections",
        "server.deadline_exceeded",
        "server.errors",
        "server.overloaded",
        "server.requests",
        "server.shutdown_rejected",
        "server.slow_clients",
        "shard.backend_ejected",
        "shard.backend_readmitted",
        "shard.failovers",
        "shard.partial_responses",
        "shard.scatter_rpcs",
        "shard.shards_missed",
        "tablefile.bytes_mapped",
        "tablefile.bytes_read",
        "tablefile.bytes_written",
        "tablefile.checksum_failures",
        "tablefile.chunks_quarantined",
        "tablefile.chunks_read",
        "tablefile.chunks_written",
        "tablefile.rowgroups_pruned",
        "tablefile.values_quarantined",
        "tablefile.vectors_decoded",
        "tablefile.vectors_pruned",
    }
)

#: Gauge names (``obs.gauge_set("...", value)``).
GAUGE_NAMES: frozenset[str] = frozenset(
    {
        "cache.bytes",
        "compressor.bits_per_value",
        "pool.bytes",
        "pool.outstanding",
        "server.inflight",
        "shard.backends_healthy",
    }
)

#: Everything together, for docs cross-checking.
ALL_METRIC_NAMES: frozenset[str] = SPAN_NAMES | COUNTER_NAMES | GAUGE_NAMES
