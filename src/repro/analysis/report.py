"""Human-readable compressibility report for an arbitrary column.

:func:`compressibility_report` runs the Section 2 analysis on any
float64 array and explains — in the paper's terms — which encoding the
adaptive compressor will pick and why: visible decimal precision,
per-vector precision deviation, duplicate structure, exponent variance,
XOR zero counts, and the predicted ALP parameters.

This is the diagnostic a storage engineer would reach for when a column
compresses worse than expected.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.metrics import DatasetMetrics, compute_metrics
from repro.core.constants import RD_SIZE_THRESHOLD_BITS
from repro.core.sampler import first_level_sample


@dataclass(frozen=True)
class ColumnDiagnosis:
    """Outcome of :func:`diagnose_column`."""

    metrics: DatasetMetrics
    predicted_scheme: str  # "alp" or "alprd"
    candidates: tuple  # (e, f) candidates from the first sampling level
    estimated_bits_per_value: float

    @property
    def decimal_origin(self) -> bool:
        """True when the data looks like it was generated from decimals."""
        return self.predicted_scheme == "alp"


def diagnose_column(values: np.ndarray) -> ColumnDiagnosis:
    """Analyze a column and predict the compressor's behaviour."""
    values = np.ascontiguousarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot diagnose an empty column")
    metrics = compute_metrics(values)
    first = first_level_sample(values)
    return ColumnDiagnosis(
        metrics=metrics,
        predicted_scheme="alprd" if first.use_rd else "alp",
        candidates=first.candidates,
        estimated_bits_per_value=first.best_estimated_bits_per_value,
    )


def compressibility_report(values: np.ndarray, name: str = "column") -> str:
    """Render a plain-text compressibility report."""
    diagnosis = diagnose_column(values)
    m = diagnosis.metrics

    lines = [
        f"Compressibility report — {name}",
        f"  values analyzed          : {m.count:,}",
        "",
        "  decimal structure",
        f"    visible precision      : {m.precision_min}..{m.precision_max} "
        f"(avg {m.precision_avg:.1f}, per-vector dev "
        f"{m.precision_std_per_vector:.2f})",
        f"    P_enc/P_dec @ visible  : {m.success_per_value:.1%}",
        f"    P_enc/P_dec @ best e   : {m.success_best_exponent:.1%} "
        f"(e = {m.best_exponent})",
        f"    P_enc/P_dec @ e/vector : {m.success_per_vector:.1%}",
        "",
        "  value structure",
        f"    non-unique per vector  : {m.non_unique_fraction:.1%}",
        f"    IEEE exponent          : avg {m.exponent_avg:.1f}, "
        f"per-vector dev {m.exponent_std_per_vector:.2f}",
        f"    XOR with previous      : {m.xor_leading_zeros_avg:.1f} leading / "
        f"{m.xor_trailing_zeros_avg:.1f} trailing zero bits",
        "",
        "  prediction",
        f"    scheme                 : "
        + (
            "ALP (decimal encoding)"
            if diagnosis.decimal_origin
            else "ALP_rd (front-bit encoding — data is 'real doubles')"
        ),
        f"    estimated bits/value   : "
        f"{diagnosis.estimated_bits_per_value:.1f} "
        f"(rd threshold: {RD_SIZE_THRESHOLD_BITS})",
    ]
    if diagnosis.decimal_origin:
        combos = ", ".join(
            f"(e={c.exponent}, f={c.factor})" for c in diagnosis.candidates
        )
        lines.append(f"    candidate (e, f)       : {combos}")
    if m.non_unique_fraction > 0.75:
        lines.append(
            "    hint                   : heavy duplication — consider the "
            "DICT/RLE cascade (lwc+alp)"
        )
    return "\n".join(lines)
