"""Aggregate summary — collects every experiment's claim lines.

Runs last (``zz``) and writes ``benchmarks/results/SUMMARY.txt`` with
one section per experiment: every ``[PASS]/[FAIL]`` shape-claim line
from the results the preceding benches persisted.  The single file is
the at-a-glance answer to "did the reproduction hold?".
"""

from __future__ import annotations

from pathlib import Path


def test_zz_summary(benchmark, emit, results_dir):
    def build() -> str:
        sections = []
        total_pass = total_fail = 0
        for path in sorted(Path(results_dir).glob("*.txt")):
            if path.name == "SUMMARY.txt":
                continue
            claims = [
                line
                for line in path.read_text().splitlines()
                if line.startswith("[PASS]") or line.startswith("[FAIL]")
            ]
            if not claims:
                continue
            total_pass += sum(1 for c in claims if c.startswith("[PASS]"))
            total_fail += sum(1 for c in claims if c.startswith("[FAIL]"))
            sections.append(f"## {path.stem}\n" + "\n".join(claims))
        header = (
            "# Reproduction summary — shape claims across all experiments\n"
            f"# {total_pass} PASS / {total_fail} FAIL\n"
        )
        return header + "\n\n".join(sections), total_fail

    (text, failures) = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("SUMMARY", text)
    # The individual benches already assert their own claims; this
    # aggregate only requires that at least the core experiments ran.
    assert "table4_compression_ratio" in text
    assert failures == 0, f"{failures} shape claims failed; see SUMMARY.txt"
