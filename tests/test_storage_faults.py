"""Corruption tests for column format v3: checksums, quarantine, repair.

The contract under test: *no silent garbage*.  Any single-byte flip in
any section of a v3 file, and any truncation, must either raise a typed
integrity error or (in degraded mode) quarantine exactly the damaged
row-group while every remaining value reads back bit-exactly.
"""

import os

import numpy as np
import pytest

from repro import api, obs
from repro.bench.faults import (
    enumerate_sections,
    run_fault_sweep,
)
from repro.storage.columnfile import (
    FORMAT_VERSION,
    FORMAT_VERSION_V2,
    ColumnFileReader,
    ColumnFileWriter,
)
from repro.storage.errors import (
    CorruptFileError,
    CorruptRowGroupError,
    IntegrityError,
)

VECTOR_SIZE = 128
ROWGROUP_VECTORS = 4
RG_VALUES = VECTOR_SIZE * ROWGROUP_VECTORS
N_ROWGROUPS = 4

OPTIONS = api.CompressionOptions(
    vector_size=VECTOR_SIZE, rowgroup_vectors=ROWGROUP_VECTORS
)


def _values():
    rng = np.random.default_rng(3)
    return np.round(
        np.cumsum(rng.normal(0, 0.2, N_ROWGROUPS * RG_VALUES)) + 40.0, 2
    )


def bitwise_equal(a, b):
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return a.shape == b.shape and np.array_equal(
        a.view(np.uint64), b.view(np.uint64)
    )


@pytest.fixture
def column_file(tmp_path):
    values = _values()
    path = tmp_path / "col.alpc"
    api.write(path, values, OPTIONS)
    return path, values


def _flip(path, offset, mask=0x20):
    data = bytearray(path.read_bytes())
    data[offset] ^= mask
    path.write_bytes(bytes(data))


class TestBitFlipEverySection:
    """One flipped byte in any section must never read back silently."""

    @pytest.mark.parametrize("rel", [0.0, 0.33, 0.66, 0.999])
    @pytest.mark.parametrize(
        "section_name",
        ["header", "rowgroup[0]", "rowgroup[2]", "footer", "trailer"],
    )
    def test_flip_detected_strict(self, column_file, section_name, rel):
        path, values = column_file
        sections = {
            s.name: s for s in enumerate_sections(str(path))
        }
        section = sections[section_name]
        offset = section.offset + min(
            int(section.length * rel), section.length - 1
        )
        _flip(path, offset)
        with pytest.raises(IntegrityError):
            ColumnFileReader(path).read_all()

    def test_flipped_rowgroup_raises_typed_error(self, column_file):
        path, values = column_file
        section = enumerate_sections(str(path))[2]  # rowgroup[1]
        _flip(path, section.offset + section.length // 2)
        reader = ColumnFileReader(path)
        with pytest.raises(CorruptRowGroupError) as excinfo:
            reader.read_rowgroup(1)
        assert excinfo.value.index == 1
        assert excinfo.value.offset == section.offset

    def test_flipped_header_raises_file_error(self, column_file):
        path, _ = column_file
        _flip(path, 5)  # inside the version/vector-size fields
        with pytest.raises(CorruptFileError):
            ColumnFileReader(path)

    def test_whole_sweep_has_zero_silent_garbage(self, tmp_path):
        outcomes = run_fault_sweep(directory=str(tmp_path))
        garbage = [o for o in outcomes if o.outcome == "silent-garbage"]
        assert garbage == []
        assert len(outcomes) > 30  # the sweep actually swept


class TestTruncation:
    def test_truncation_at_every_section_boundary(self, column_file):
        path, values = column_file
        pristine = path.read_bytes()
        cuts = sorted(
            {s.offset for s in enumerate_sections(str(path))}
            | {len(pristine) - 1, len(pristine) - 5}
        )
        for cut in cuts:
            path.write_bytes(pristine[:cut])
            with pytest.raises(IntegrityError):
                ColumnFileReader(path).read_all()
        path.write_bytes(pristine)
        assert bitwise_equal(api.read(path), values)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.alpc"
        path.write_bytes(b"")
        with pytest.raises(CorruptFileError):
            ColumnFileReader(path)


class TestDegradedScan:
    """The acceptance scenario: one corrupt row-group, rest survives."""

    def _corrupt_rowgroup(self, path, index):
        section = enumerate_sections(str(path))[1 + index]
        _flip(path, section.offset + section.length // 2)

    def test_degraded_read_keeps_rest_and_reports_one(self, column_file):
        path, values = column_file
        self._corrupt_rowgroup(path, 1)
        reader = ColumnFileReader(path, degraded=True)
        restored = reader.read_all()
        expected = np.concatenate(
            [values[:RG_VALUES], values[2 * RG_VALUES :]]
        )
        assert bitwise_equal(restored, expected)
        report = reader.scan_report()
        assert report.rowgroups_quarantined == 1
        assert report.values_quarantined == RG_VALUES
        assert report.quarantined[0].index == 1
        assert not report.clean
        as_dict = report.as_dict()
        assert as_dict["rowgroups_quarantined"] == 1
        assert as_dict["quarantined"][0]["index"] == 1

    def test_obs_counters_count_exactly_one_quarantine(self, column_file):
        path, _ = column_file
        self._corrupt_rowgroup(path, 2)
        obs.enable()
        obs.reset()
        try:
            reader = ColumnFileReader(path, degraded=True)
            reader.read_all()
            reader.read_all()  # second pass must not double-count
            counters = obs.snapshot()["counters"]
        finally:
            obs.disable()
            obs.reset()
        assert counters["columnfile.rowgroups_quarantined"] == 1
        assert counters["columnfile.values_quarantined"] == RG_VALUES
        assert counters["columnfile.checksum_failures"] >= 1

    def test_degraded_range_scan_skips_quarantined(self, column_file):
        path, values = column_file
        self._corrupt_rowgroup(path, 0)
        reader = ColumnFileReader(path, degraded=True)
        lo, hi = float(values.min()), float(values.max())
        scanned = [index for index, _ in reader.scan_range(lo, hi)]
        assert 0 not in scanned
        assert reader.scan_report().rowgroups_quarantined == 1

    def test_degraded_query_source_skips_quarantined(self, column_file):
        from repro.query.sources import FileColumnSource

        path, values = column_file
        self._corrupt_rowgroup(path, 1)
        source = FileColumnSource.open(path, degraded=True)
        total = sum(float(v.sum()) for v in source.vectors())
        expected = np.concatenate(
            [values[:RG_VALUES], values[2 * RG_VALUES :]]
        )
        assert total == pytest.approx(float(expected.sum()))

    def test_strict_mode_still_raises(self, column_file):
        path, _ = column_file
        self._corrupt_rowgroup(path, 1)
        with pytest.raises(CorruptRowGroupError):
            ColumnFileReader(path).read_all()


class TestVerifyRepair:
    def test_verify_names_the_damaged_section(self, column_file):
        path, _ = column_file
        section = enumerate_sections(str(path))[2]  # rowgroup[1]
        _flip(path, section.offset + 3)
        report = api.verify(path)
        assert not report.ok
        bad = report.bad_sections
        assert len(bad) == 1
        assert bad[0].section == "rowgroup"
        assert bad[0].index == 1
        assert bad[0].offset == section.offset
        assert "checksum" in bad[0].error

    def test_verify_json_shape(self, column_file):
        path, _ = column_file
        _flip(path, enumerate_sections(str(path))[1].offset)
        as_dict = api.verify(path).as_dict()
        assert as_dict["ok"] is False
        assert any(
            not section["ok"] for section in as_dict["sections"]
        )

    def test_repair_drops_only_the_damaged_group(self, column_file, tmp_path):
        path, values = column_file
        section = enumerate_sections(str(path))[3]  # rowgroup[2]
        _flip(path, section.offset + 1)
        fixed = tmp_path / "fixed.alpc"
        report = api.repair(path, fixed)
        assert report.rowgroups_kept == N_ROWGROUPS - 1
        assert report.rowgroups_dropped == 1
        assert report.values_dropped == RG_VALUES
        assert report.dropped[0]["index"] == 2
        assert api.verify(fixed).ok
        expected = np.concatenate(
            [values[: 2 * RG_VALUES], values[3 * RG_VALUES :]]
        )
        assert bitwise_equal(api.read(fixed), expected)

    def test_repair_onto_itself_refused(self, column_file):
        path, _ = column_file
        with pytest.raises(ValueError):
            api.repair(path, path)


class TestV2BackCompat:
    def test_v2_roundtrip(self, tmp_path):
        values = _values()
        path = tmp_path / "legacy.alpc"
        api.write(
            path,
            values,
            api.CompressionOptions(
                vector_size=VECTOR_SIZE,
                rowgroup_vectors=ROWGROUP_VECTORS,
                integrity=False,
            ),
        )
        reader = ColumnFileReader(path)
        assert reader.format_version == FORMAT_VERSION_V2
        assert bitwise_equal(reader.read_all(), values)

    def test_v2_verify_reports_unchecksummed(self, tmp_path):
        path = tmp_path / "legacy.alpc"
        api.write(
            path, _values(), api.CompressionOptions(integrity=False)
        )
        report = api.verify(path)
        assert report.ok
        assert not report.checksummed

    def test_repair_upgrades_v2_to_v3(self, tmp_path):
        values = _values()
        src = tmp_path / "legacy.alpc"
        dst = tmp_path / "upgraded.alpc"
        api.write(
            src,
            values,
            api.CompressionOptions(
                vector_size=VECTOR_SIZE,
                rowgroup_vectors=ROWGROUP_VECTORS,
                integrity=False,
            ),
        )
        api.repair(src, dst)
        reader = ColumnFileReader(dst)
        assert reader.format_version == FORMAT_VERSION
        assert bitwise_equal(reader.read_all(), values)


class TestWriterSafety:
    def test_close_is_idempotent(self, tmp_path):
        path = tmp_path / "col.alpc"
        writer = ColumnFileWriter(path)
        writer.write_values(_values())
        writer.close()
        writer.close()  # must be a no-op, not an error
        assert bitwise_equal(api.read(path), _values())

    def test_write_after_close_rejected(self, tmp_path):
        path = tmp_path / "col.alpc"
        writer = ColumnFileWriter(path)
        writer.close()
        with pytest.raises(ValueError):
            writer.write_values(_values())

    def test_exception_leaves_no_file_at_target(self, tmp_path):
        path = tmp_path / "col.alpc"
        with pytest.raises(RuntimeError):
            with ColumnFileWriter(path) as writer:
                writer.write_values(_values()[:RG_VALUES])
                raise RuntimeError("boom")
        assert not path.exists()
        assert os.listdir(tmp_path) == []  # temp file cleaned up too

    def test_abort_after_close_is_noop(self, tmp_path):
        path = tmp_path / "col.alpc"
        writer = ColumnFileWriter(path)
        writer.write_values(_values())
        writer.close()
        writer.abort()
        assert path.exists()

    def test_no_partial_file_visible_before_close(self, tmp_path):
        path = tmp_path / "col.alpc"
        writer = ColumnFileWriter(path)
        writer.write_values(_values())
        assert not path.exists()  # atomic publish happens at close
        writer.close()
        assert path.exists()
