"""Unit tests for decimal-representation helpers."""

import math

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.alputil.decimals import (
    MAX_DOUBLE_DECIMALS,
    decimal_places,
    decimal_places_array,
    magnitude10,
    shortest_round,
)


class TestDecimalPlaces:
    def test_paper_example(self):
        # 8.0605 from Section 2.5 has visible precision 4.
        assert decimal_places(8.0605) == 4

    def test_integer_valued(self):
        assert decimal_places(3.0) == 0
        assert decimal_places(-120.0) == 0

    def test_one_decimal(self):
        assert decimal_places(71.3) == 1

    def test_small_scientific(self):
        assert decimal_places(1e-5) == 5
        assert decimal_places(1.5e-3) == 4

    def test_large_scientific_has_no_decimals(self):
        assert decimal_places(1e20) == 0

    def test_full_precision_double(self):
        # A value that needs all 17 significant digits.
        assert decimal_places(0.1234567890123456) == 16

    def test_nan_and_inf_are_sentinel(self):
        assert decimal_places(float("nan")) == MAX_DOUBLE_DECIMALS + 1
        assert decimal_places(float("inf")) == MAX_DOUBLE_DECIMALS + 1

    def test_zero(self):
        assert decimal_places(0.0) == 0

    def test_array_wrapper_matches_scalar(self):
        values = np.array([8.0605, 3.0, 71.3, 1e-5])
        assert decimal_places_array(values).tolist() == [4, 0, 1, 5]

    @given(
        st.integers(min_value=-(10**6), max_value=10**6),
        st.integers(min_value=0, max_value=6),
    )
    def test_decimal_origin_values(self, digits, places):
        value = digits / (10**places)
        assert decimal_places(value) <= max(places, 0) or not math.isclose(
            value, round(value, places)
        )


class TestMagnitude10:
    def test_examples(self):
        assert magnitude10(146.1) == 3
        assert magnitude10(9.9) == 1
        assert magnitude10(1000.0) == 4

    def test_below_one(self):
        assert magnitude10(0.5) == 1
        assert magnitude10(0.0001) == 1

    def test_zero_and_nonfinite(self):
        assert magnitude10(0.0) == 1
        assert magnitude10(float("inf")) == 1

    def test_negative(self):
        assert magnitude10(-73.97) == 2


class TestShortestRound:
    def test_rounding_recovers_decimal_origin(self):
        assert shortest_round(8.060500000001, 4) == 8.0605

    def test_zero_places(self):
        assert shortest_round(2.7, 0) == 3.0

    def test_nonfinite_passthrough(self):
        assert math.isinf(shortest_round(float("inf"), 3))

    @given(
        st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
        ),
        st.integers(min_value=0, max_value=10),
    )
    def test_idempotent(self, value, places):
        once = shortest_round(value, places)
        assert shortest_round(once, places) == once
