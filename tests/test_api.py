"""Tests for the repro.api facade and CompressionOptions plumbing."""

import numpy as np
import pytest

from repro import api
from repro.storage.columnfile import (
    FORMAT_VERSION,
    FORMAT_VERSION_V2,
    ColumnFileReader,
)


def _column(n=30_000, seed=0):
    rng = np.random.default_rng(seed)
    return np.round(np.cumsum(rng.normal(0, 0.3, n)) + 20.0, 2)


def bitwise_equal(a, b):
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return a.shape == b.shape and np.array_equal(
        a.view(np.uint64), b.view(np.uint64)
    )


class TestCompressionOptions:
    def test_defaults(self):
        opts = api.CompressionOptions()
        assert opts.vector_size == 1024
        assert opts.threads == 1
        assert opts.force_scheme is None
        assert opts.integrity

    def test_bad_force_scheme_rejected(self):
        with pytest.raises(ValueError):
            api.CompressionOptions(force_scheme="gzip")

    def test_bad_threads_rejected(self):
        with pytest.raises(ValueError):
            api.CompressionOptions(threads=0)

    def test_bad_rowgroup_vectors_rejected(self):
        with pytest.raises(ValueError):
            api.CompressionOptions(rowgroup_vectors=0)

    def test_frozen(self):
        opts = api.CompressionOptions()
        with pytest.raises(Exception):
            opts.threads = 4


class TestCompress:
    def test_roundtrip(self):
        values = _column()
        column = api.compress(values)
        assert bitwise_equal(api.decompress(column), values)

    def test_threads_bit_identical(self):
        values = _column(60_000)
        serial = api.compress(values)
        parallel = api.compress(
            values, api.CompressionOptions(threads=2)
        )
        assert serial.size_bits() == parallel.size_bits()
        assert bitwise_equal(api.decompress(parallel), values)

    def test_decompress_honors_threads(self):
        # threads applies to decompression too: the threaded decoder
        # writes row-groups into disjoint slices of one output array and
        # must match the serial path bit for bit.
        values = _column(60_000)
        column = api.compress(values)
        serial = api.decompress(column)
        threaded = api.decompress(column, api.CompressionOptions(threads=4))
        assert bitwise_equal(serial, threaded)
        assert bitwise_equal(threaded, values)

    def test_decompress_threads_with_non_finite_and_rd(self):
        values = _column(20_000)
        values[::97] = np.nan
        values[5::101] = np.inf
        values[7::103] = -0.0
        opts = api.CompressionOptions(
            vector_size=256, rowgroup_vectors=4, threads=3
        )
        column = api.compress(values, opts)
        assert bitwise_equal(api.decompress(column, opts), values)
        rd = api.compress(
            values,
            api.CompressionOptions(
                vector_size=256, rowgroup_vectors=4, force_scheme="alprd"
            ),
        )
        assert rd.uses_rd
        assert bitwise_equal(
            api.decompress(rd, api.CompressionOptions(threads=2)), values
        )

    def test_force_scheme(self):
        values = _column()
        column = api.compress(
            values, api.CompressionOptions(force_scheme="alprd")
        )
        assert column.uses_rd
        assert bitwise_equal(api.decompress(column), values)

    def test_custom_geometry(self):
        values = _column(10_000)
        opts = api.CompressionOptions(vector_size=256, rowgroup_vectors=4)
        column = api.compress(values, opts)
        assert column.vector_size == 256
        assert len(column.rowgroups) == int(np.ceil(10_000 / (256 * 4)))
        assert bitwise_equal(api.decompress(column), values)


class TestFileRoundtrip:
    def test_write_read(self, tmp_path):
        values = _column()
        path = tmp_path / "col.alpc"
        api.write(path, values)
        assert bitwise_equal(api.read(path), values)

    def test_writes_v3_by_default(self, tmp_path):
        path = tmp_path / "col.alpc"
        api.write(path, _column())
        assert ColumnFileReader(path).format_version == FORMAT_VERSION

    def test_integrity_off_writes_v2(self, tmp_path):
        path = tmp_path / "col.alpc"
        values = _column()
        api.write(path, values, api.CompressionOptions(integrity=False))
        reader = ColumnFileReader(path)
        assert reader.format_version == FORMAT_VERSION_V2
        assert bitwise_equal(reader.read_all(), values)

    def test_open_reader(self, tmp_path):
        path = tmp_path / "col.alpc"
        values = _column()
        api.write(path, values)
        reader = api.open(path)
        assert reader.value_count == values.size
        assert bitwise_equal(reader.read_all(), values)

    def test_geometry_flows_to_file(self, tmp_path):
        path = tmp_path / "col.alpc"
        opts = api.CompressionOptions(vector_size=512, rowgroup_vectors=8)
        api.write(path, _column(20_000), opts)
        reader = api.open(path)
        assert reader.vector_size == 512
        assert reader.rowgroup_count == int(np.ceil(20_000 / (512 * 8)))


class TestDataset:
    def test_roundtrip(self, tmp_path):
        columns = {"a": _column(8_000, 1), "b": _column(8_000, 2)}
        directory = tmp_path / "ds"
        api.write_dataset(directory, columns)
        reader = api.open_dataset(directory)
        assert sorted(reader.column_names) == ["a", "b"]
        for name, values in columns.items():
            assert bitwise_equal(reader.read_column(name), values)

    def test_verify_clean_dataset(self, tmp_path):
        directory = tmp_path / "ds"
        api.write_dataset(directory, {"a": _column(8_000)})
        report = api.verify(directory)
        assert report.ok
        assert report.as_dict()["ok"] is True


class TestVerifyRepair:
    def test_verify_clean_file(self, tmp_path):
        path = tmp_path / "col.alpc"
        api.write(path, _column())
        report = api.verify(path)
        assert report.ok
        assert not report.bad_sections

    def test_repair_clean_file_keeps_everything(self, tmp_path):
        src = tmp_path / "col.alpc"
        dst = tmp_path / "fixed.alpc"
        values = _column()
        api.write(src, values)
        report = api.repair(src, dst)
        assert report.rowgroups_dropped == 0
        assert bitwise_equal(api.read(dst), values)


class TestShimsRemoved:
    def test_write_column_file_is_gone(self):
        # The deprecation shims were removed with format v4; the
        # replacements are api.write/api.read (and write_table for
        # multi-column data).
        import repro.storage.columnfile as columnfile

        assert not hasattr(columnfile, "write_column_file")
        assert not hasattr(columnfile, "read_column_file")
