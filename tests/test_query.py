"""Tests for the vectorized query engine."""

import numpy as np
import pytest

from repro.data import get_dataset
from repro.query.engine import (
    comp_query,
    run_partitioned,
    scan_query,
    sum_query,
)
from repro.query.operators import (
    AggregateOperator,
    FilterOperator,
    ScanOperator,
)
from repro.query.sources import (
    BlockCodecSource,
    UncompressedSource,
    make_source,
)


@pytest.fixture(scope="module")
def city_temp():
    return get_dataset("City-Temp", n=50_000)


class TestSources:
    def test_uncompressed_vectors(self, city_temp):
        source = UncompressedSource(city_temp)
        vectors = list(source.vectors())
        assert sum(v.size for v in vectors) == city_temp.size
        assert all(v.size <= 1024 for v in vectors)
        assert np.array_equal(np.concatenate(vectors), city_temp)

    def test_alp_source_bit_exact(self, city_temp):
        source = make_source("alp", city_temp)
        rebuilt = np.concatenate(list(source.vectors()))
        assert np.array_equal(
            rebuilt.view(np.uint64), city_temp.view(np.uint64)
        )
        assert source.compressed_bits > 0

    @pytest.mark.parametrize("codec", ["gorilla", "patas", "pde"])
    def test_per_vector_sources(self, city_temp, codec):
        values = city_temp[:10_240]
        source = make_source(codec, values)
        rebuilt = np.concatenate(list(source.vectors()))
        assert np.array_equal(
            rebuilt.view(np.uint64), values.view(np.uint64)
        )

    def test_block_source_gp(self, city_temp):
        source = make_source("zlib(gp)", city_temp)
        assert isinstance(source, BlockCodecSource)
        rebuilt = np.concatenate(list(source.vectors()))
        assert np.array_equal(
            rebuilt.view(np.uint64), city_temp.view(np.uint64)
        )

    def test_partitions_cover_everything(self, city_temp):
        source = make_source("alp", city_temp)
        parts = source.partition(4)
        total = sum(p.value_count for p in parts)
        assert total == city_temp.size
        rebuilt = np.concatenate(
            [np.concatenate(list(p.vectors())) for p in parts]
        )
        assert np.array_equal(
            rebuilt.view(np.uint64), city_temp.view(np.uint64)
        )

    def test_partition_more_than_rowgroups(self, city_temp):
        source = make_source("alp", city_temp[:2048])
        parts = source.partition(8)
        assert 1 <= len(parts) <= 8


class TestOperators:
    def test_scan_counts(self, city_temp):
        scanned = scan_query(UncompressedSource(city_temp))
        assert scanned == city_temp.size

    def test_sum_matches_numpy(self, city_temp):
        total = sum_query(make_source("alp", city_temp))
        assert total == pytest.approx(float(city_temp.sum()), rel=1e-9)

    def test_sum_on_baseline_source(self, city_temp):
        values = city_temp[:8192]
        total = sum_query(make_source("chimp", values))
        assert total == pytest.approx(float(values.sum()), rel=1e-9)

    def test_filter_range(self, city_temp):
        scan = ScanOperator(UncompressedSource(city_temp))
        filtered = FilterOperator(scan, 50.0, 60.0)
        out = np.concatenate(list(filtered))
        expected = city_temp[(city_temp >= 50.0) & (city_temp <= 60.0)]
        assert np.array_equal(out, expected)

    def test_filter_empty_result(self, city_temp):
        scan = ScanOperator(UncompressedSource(city_temp))
        filtered = FilterOperator(scan, 1e9, 2e9)
        assert list(filtered) == []

    def test_aggregates(self, city_temp):
        for kind, expected in (
            ("count", city_temp.size),
            ("min", float(city_temp.min())),
            ("max", float(city_temp.max())),
        ):
            agg = AggregateOperator(
                ScanOperator(UncompressedSource(city_temp)), kind=kind
            )
            assert agg.result() == pytest.approx(expected)

    def test_unknown_aggregate(self):
        with pytest.raises(ValueError):
            AggregateOperator(
                ScanOperator(UncompressedSource(np.zeros(4))), kind="avg"
            )

    def test_filter_then_sum_pipeline(self, city_temp):
        scan = ScanOperator(make_source("alp", city_temp))
        pipeline = AggregateOperator(
            FilterOperator(scan, 0.0, 50.0), kind="sum"
        )
        mask = (city_temp >= 0.0) & (city_temp <= 50.0)
        assert pipeline.result() == pytest.approx(
            float(city_temp[mask].sum()), rel=1e-9
        )


class TestEngine:
    def test_comp_query_alp_serialized(self, city_temp):
        bits = comp_query("alp", city_temp)
        assert 0 < bits < city_temp.size * 64

    def test_comp_query_baseline(self, city_temp):
        bits = comp_query("patas", city_temp[:8192])
        assert bits > 0

    def test_partitioned_sum_matches_serial(self, city_temp):
        source = make_source("alp", city_temp)
        parts = run_partitioned(source, sum_query, threads=2)
        assert sum(parts) == pytest.approx(float(city_temp.sum()), rel=1e-9)

    def test_partitioned_scan_counts(self, city_temp):
        source = make_source("uncompressed", city_temp)
        parts = run_partitioned(source, scan_query, threads=4)
        assert sum(parts) == city_temp.size
