"""Client retry semantics against a deliberately flaky fake server.

The fake accepts real TCP connections and speaks just enough of the
framed protocol to answer ``ping`` — but drops the first N connections
(accept-then-close) or the first N requests (read-then-close), which is
what a crashing/restarting backend looks like from the client side.
Pins the satellite contract: bounded connect/request retries with
jittered exponential backoff, and a typed
:class:`~repro.server.client.ServerUnavailableError` once the budget is
spent.
"""

from __future__ import annotations

import os
import random
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro import api
from repro.server import protocol
from repro.server.client import (
    ServerClient,
    ServerUnavailableError,
)


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return int(sock.getsockname()[1])


class FlakyServer:
    """A real listener that fails the first N connections or requests."""

    def __init__(self, drop_connections: int = 0, drop_requests: int = 0):
        self._drop_connections = drop_connections
        self._drop_requests = drop_requests
        self.connections = 0
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.port = int(self._listener.getsockname()[1])
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            self.connections += 1
            if self._drop_connections > 0:
                self._drop_connections -= 1
                conn.close()
                continue
            threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            while True:
                try:
                    header, _ = protocol.read_frame(
                        lambda n: self._read_exactly(conn, n)
                    )
                except (protocol.ProtocolError, ConnectionError, OSError):
                    return
                if self._drop_requests > 0:
                    self._drop_requests -= 1
                    return  # close mid-exchange: request died in flight
                frame = protocol.ok_frame(
                    {"pong": True}, b"", header.get("id")
                )
                try:
                    conn.sendall(frame)
                except OSError:
                    return

    @staticmethod
    def _read_exactly(conn: socket.socket, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = conn.recv(remaining)
            if not chunk:
                raise ConnectionError("peer closed")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def close(self) -> None:
        self._stop.set()
        self._listener.close()
        self._thread.join(timeout=5)


class TestConnectRetry:
    def test_unreachable_raises_typed_error(self):
        port = _free_port()  # nothing listens here
        start = time.perf_counter()
        with pytest.raises(ServerUnavailableError) as excinfo:
            ServerClient(
                "127.0.0.1",
                port,
                connect_retries=2,
                retry_backoff_s=0.01,
                rng=random.Random(0),
            )
        elapsed = time.perf_counter() - start
        err = excinfo.value
        assert err.attempts == 3
        assert err.port == port
        assert err.host == "127.0.0.1"
        assert isinstance(err.__cause__, OSError)
        # Two backoffs happened: >= 0.01 + 0.02 (jitter only adds).
        assert elapsed >= 0.03

    def test_is_a_connection_error(self):
        # Callers catching the broad class keep working.
        with pytest.raises(ConnectionError):
            ServerClient("127.0.0.1", _free_port())

    def test_no_retries_by_default(self):
        with pytest.raises(ServerUnavailableError) as excinfo:
            ServerClient("127.0.0.1", _free_port())
        assert excinfo.value.attempts == 1

    def test_flaky_accept_recovers_within_budget(self):
        server = FlakyServer(drop_connections=2)
        try:
            # The first two connects are accepted then dropped; the
            # dropped connection surfaces on first use, and the request
            # retry budget covers the reconnect.
            with ServerClient(
                "127.0.0.1",
                server.port,
                request_retries=2,
                retry_backoff_s=0.01,
            ) as client:
                assert client.ping()
            assert server.connections == 3
        finally:
            server.close()


class TestRequestRetry:
    def test_request_resent_after_midflight_close(self):
        server = FlakyServer(drop_requests=1)
        try:
            with ServerClient(
                "127.0.0.1",
                server.port,
                request_retries=1,
                retry_backoff_s=0.01,
            ) as client:
                assert client.ping()
            assert server.connections == 2
        finally:
            server.close()

    def test_no_request_retries_by_default(self):
        server = FlakyServer(drop_requests=1)
        try:
            with ServerClient("127.0.0.1", server.port) as client:
                with pytest.raises((ConnectionError, OSError)):
                    client.ping()
        finally:
            server.close()

    def test_budget_exhaustion_propagates(self):
        server = FlakyServer(drop_requests=5)
        try:
            with ServerClient(
                "127.0.0.1",
                server.port,
                request_retries=2,
                retry_backoff_s=0.01,
            ) as client:
                with pytest.raises((ConnectionError, OSError)):
                    client.ping()
        finally:
            server.close()

    def test_per_request_deadline_reaches_the_wire(self):
        """deadline_ms on request() overrides the client default."""
        seen: list[object] = []

        class Recorder(FlakyServer):
            def _serve_connection(self, conn: socket.socket) -> None:
                with conn:
                    header, _ = protocol.read_frame(
                        lambda n: self._read_exactly(conn, n)
                    )
                    seen.append(header.get("deadline_ms"))
                    conn.sendall(
                        protocol.ok_frame(
                            {"pong": True}, b"", header.get("id")
                        )
                    )

        server = Recorder()
        try:
            with ServerClient(
                "127.0.0.1", server.port, deadline_ms=9000.0
            ) as client:
                client.request("ping", deadline_ms=1234.0)
            assert seen == [1234.0]
        finally:
            server.close()


class TestEphemeralPortFile:
    def test_serve_port_zero_writes_port_file(self, tmp_path):
        """`alp-repro serve --port 0 --port-file` hands the bound port
        to scripts without racing on fixed port numbers (the CI
        shard-smoke job's backend bring-up depends on this)."""
        values = np.arange(512, dtype=np.float64)
        data = tmp_path / "col.alpc"
        api.write(data, values)
        port_file = tmp_path / "port.txt"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                str(data),
                "--port",
                "0",
                "--port-file",
                str(port_file),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            deadline = time.monotonic() + 30
            while not port_file.exists() and time.monotonic() < deadline:
                if proc.poll() is not None:
                    raise AssertionError(
                        f"serve exited early:\n{proc.stdout.read()}"
                    )
                time.sleep(0.05)
            assert port_file.exists(), "port file never appeared"
            port = int(port_file.read_text().strip())
            assert port > 0
            with ServerClient("127.0.0.1", port) as client:
                assert client.ping()
                values_back, _ = client.scan("col")
            assert np.array_equal(values_back, values)
        finally:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=30)
