"""Checked-in v2/v3/v4 golden files must keep reading bit-identically.

The binaries under ``tests/golden/`` were written once per format
generation and are never regenerated casually — they are the contract
that today's reader accepts yesterday's bytes.  Expected values are
re-derived deterministically by ``tests.golden.generate`` (fixed PCG64
seeds, stream-stable methods only), so a mismatch here means the
*reader* changed behaviour, not the fixture.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.storage.tablefile import TableFileReader, file_format_version
from repro.storage.verify import verify_column_file
from tests.golden import generate as golden

V2 = golden.GOLDEN_DIR / "golden_v2.alpc"
V3 = golden.GOLDEN_DIR / "golden_v3.alpc"
V4 = golden.GOLDEN_DIR / "golden_v4.alpc"


def _bits_equal(a, b):
    return np.array_equal(
        np.asarray(a, dtype=np.float64).view(np.uint64),
        np.asarray(b, dtype=np.float64).view(np.uint64),
    )


class TestFormatVersions:
    def test_checked_in_versions(self):
        assert file_format_version(V2) == 2
        assert file_format_version(V3) == 3
        assert file_format_version(V4) == 4


class TestSingleColumnGoldens:
    @pytest.mark.parametrize("path", [V2, V3], ids=["v2", "v3"])
    def test_api_read_bit_identical(self, path):
        assert _bits_equal(api.read(path), golden.single_column_values())

    @pytest.mark.parametrize("path", [V2, V3], ids=["v2", "v3"])
    def test_table_reader_wraps_legacy(self, path):
        want = golden.single_column_values()
        with TableFileReader(path) as reader:
            assert reader.schema.names == (path.stem,)
            assert reader.row_count == len(want)
            values, masks = reader.read_columns()
            assert _bits_equal(values[path.stem], want)
            assert masks == {}

    def test_v3_verifies_clean(self):
        report = verify_column_file(V3)
        assert report.ok
        assert report.format_version == 3


class TestTableGolden:
    def test_schema(self):
        with TableFileReader(V4) as reader:
            assert reader.schema.names == ("f", "i", "s")
            types = {c.name: (c.type, c.nullable) for c in reader.schema}
            assert types == {
                "f": ("float64", False),
                "i": ("int64", True),
                "s": ("string", False),
            }

    def test_read_columns_bit_identical(self):
        columns, validity = golden.table_arrays()
        with TableFileReader(V4) as reader:
            values, masks = reader.read_columns()
            assert _bits_equal(values["f"], columns["f"])
            assert np.array_equal(values["i"], columns["i"])
            assert list(values["s"]) == list(columns["s"])
            assert np.array_equal(masks["i"], validity["i"])

    def test_api_read_table(self):
        columns, validity = golden.table_arrays()
        table = api.read_table(V4)
        assert _bits_equal(table.column("f"), columns["f"])
        assert np.array_equal(table.column_validity("i"), validity["i"])

    def test_predicate_scan_on_golden(self):
        columns, _ = golden.table_arrays()
        f = columns["f"]
        lo, hi = float(f[40]), float(f[80])
        table = api.read_table(
            V4,
            columns=["i"],
            predicate=api.FilterPredicate("f", low=lo, high=hi),
        )
        want = columns["i"][(f >= lo) & (f <= hi)]
        assert np.array_equal(table.column("i"), want)

    def test_verifies_clean(self):
        report = verify_column_file(V4)
        assert report.ok
        assert report.format_version == 4


class TestGeneratorIsDeterministic:
    def test_regeneration_is_byte_identical(self, tmp_path, monkeypatch):
        # Guards the fixture itself: if regeneration stopped being
        # reproducible, a future re-pin would silently rewrite history.
        monkeypatch.setattr(golden, "GOLDEN_DIR", tmp_path)
        golden.main()
        for name in ("golden_v2", "golden_v3", "golden_v4"):
            fresh = (tmp_path / f"{name}.alpc").read_bytes()
            checked_in = (
                golden.__file__.replace("generate.py", f"{name}.alpc")
            )
            assert fresh == open(checked_in, "rb").read(), name
