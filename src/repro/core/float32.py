"""32-bit ports of ALP and ALP_rd (Section 4.4).

The float port mirrors the double pipeline with narrower tables:

- decimal exponents only reach ``e <= 10`` (10**11 is no longer exact in
  float32),
- the fast-rounding sweet spot becomes ``2**22 + 2**23``,
- encoded integers are verified against the original *32-bit* patterns.

ALP_rd-32 (used for ML weights in Table 7) cuts the 32 bits at
``p >= 16`` so the left part still fits the 16-bit skewed dictionary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alputil.bits import bits_to_float32, float32_to_bits
from repro.core.alprd import (
    AlpRdParameters,
    AlpRdVector,
    decode_vector_bits,
    encode_vector_bits,
    find_best_cut,
)
from repro.core.constants import VECTOR_SIZE
from repro.core.sampler import equidistant_indices
from repro.encodings.ffor import FforEncoded, ffor_decode, ffor_encode

#: Largest decimal exponent searched for float32 (10**10 is exact).
MAX_EXPONENT_F32 = 10

#: Multiplier tables in float32 precision.
F10_F32 = np.array([10.0**i for i in range(MAX_EXPONENT_F32 + 1)], dtype=np.float32)
IF10_F32 = np.array(
    [10.0**-i for i in range(MAX_EXPONENT_F32 + 1)], dtype=np.float32
)

#: Sweet spot of fast rounding for floats: 2**22 + 2**23.
SWEET_SPOT_F32 = np.float32((1 << 22) + (1 << 23))

#: Exception cost: 32-bit raw value + 16-bit position.
EXCEPTION_SIZE_BITS_F32 = 32 + 16


def fast_round_f32(values: np.ndarray) -> np.ndarray:
    """Float32 sweet-spot rounding; returns int32."""
    values = np.asarray(values, dtype=np.float32)
    shifted = (values + SWEET_SPOT_F32) - SWEET_SPOT_F32
    safe = np.where(np.isfinite(shifted), shifted, np.float32(0.0))
    safe = np.clip(safe, np.float32(-(2.0**30)), np.float32(2.0**30))
    return safe.astype(np.int32)


@dataclass(frozen=True)
class AlpFloatVector:
    """One ALP-encoded float32 vector."""

    ffor: FforEncoded
    exponent: int
    factor: int
    exc_values: np.ndarray  # float32
    exc_positions: np.ndarray  # uint16
    count: int

    @property
    def exception_count(self) -> int:
        """Number of exceptions in this vector."""
        return int(self.exc_positions.size)

    def size_bits(self) -> int:
        """FFOR payload + exceptions + header (e, f, count)."""
        return (
            self.ffor.size_bits()
            + self.exception_count * EXCEPTION_SIZE_BITS_F32
            + 32
        )


def alp32_analyze(
    values: np.ndarray, exponent: int, factor: int
) -> tuple[np.ndarray, np.ndarray]:
    """Float32 ALP_enc/ALP_dec with bitwise exception detection."""
    values = np.ascontiguousarray(values, dtype=np.float32)
    with np.errstate(over="ignore", invalid="ignore"):
        encoded = fast_round_f32(
            values * F10_F32[exponent] * IF10_F32[factor]
        )
        decoded = (
            encoded.astype(np.float32) * F10_F32[factor] * IF10_F32[exponent]
        )
    exceptions = decoded.view(np.uint32) != values.view(np.uint32)
    return encoded, exceptions


def estimate_size_bits_f32(
    values: np.ndarray, exponent: int, factor: int
) -> int:
    """Sampler objective for the float port."""
    encoded, exceptions = alp32_analyze(values, exponent, factor)
    n_exc = int(exceptions.sum())
    valid = encoded[~exceptions]
    width = (
        (int(valid.max()) - int(valid.min())).bit_length() if valid.size else 32
    )
    return (values.size - n_exc) * width + n_exc * EXCEPTION_SIZE_BITS_F32


def find_best_combination_f32(sample: np.ndarray) -> tuple[int, int, int]:
    """Full search of (e, f) for floats; returns (e, f, est. bits)."""
    best = (0, 0, 1 << 62)
    for e in range(MAX_EXPONENT_F32, -1, -1):
        for f in range(e, -1, -1):
            size = estimate_size_bits_f32(sample, e, f)
            if size < best[2]:
                best = (e, f, size)
    return best


def alp32_encode_vector(
    values: np.ndarray, exponent: int, factor: int
) -> AlpFloatVector:
    """Encode one float32 vector under a fixed (e, f)."""
    values = np.ascontiguousarray(values, dtype=np.float32)
    encoded, exceptions = alp32_analyze(values, exponent, factor)
    exc_positions = np.flatnonzero(exceptions)
    if exc_positions.size:
        non_exc = np.flatnonzero(~exceptions)
        first_encoded = int(encoded[non_exc[0]]) if non_exc.size else 0
        encoded = encoded.copy()
        encoded[exc_positions] = first_encoded
        exc_values = values[exc_positions].copy()
    else:
        exc_values = np.empty(0, dtype=np.float32)
    return AlpFloatVector(
        ffor=ffor_encode(encoded.astype(np.int64)),
        exponent=exponent,
        factor=factor,
        exc_values=exc_values,
        # fits: positions < vector size <= 65535 (checked at compress time)
        exc_positions=exc_positions.astype(np.uint16),
        count=values.size,
    )


def alp32_decode_vector(vector: AlpFloatVector) -> np.ndarray:
    """Decode one float32 vector (UNFFOR, ALP_dec, patch)."""
    # fits: encoder verified every encoded value fits int32 before packing
    encoded = ffor_decode(vector.ffor).astype(np.int32)
    decoded = (
        encoded.astype(np.float32)
        * F10_F32[vector.factor]
        * IF10_F32[vector.exponent]
    )
    if vector.exc_positions.size:
        decoded[vector.exc_positions.astype(np.int64)] = vector.exc_values
    return decoded


@dataclass(frozen=True)
class CompressedFloatColumn:
    """A compressed float32 column: either ALP-32 vectors or ALP_rd-32."""

    scheme: str  # "alp" or "alprd"
    vectors: tuple[AlpFloatVector, ...] | tuple[AlpRdVector, ...]
    rd_parameters: AlpRdParameters | None
    count: int

    def size_bits(self) -> int:
        """Total compressed footprint."""
        if self.scheme == "alp":
            return sum(v.size_bits() for v in self.vectors) + 8
        if self.rd_parameters is None:
            raise ValueError("ALP_rd float32 column is missing its parameters")
        return (
            sum(v.size_bits(self.rd_parameters) for v in self.vectors)
            + self.rd_parameters.size_bits()
            + 8
        )

    def bits_per_value(self) -> float:
        """Compressed bits per value (uncompressed is 32)."""
        return self.size_bits() / self.count if self.count else 0.0


#: Above this estimated bits/value the float port falls back to ALP_rd-32
#: (the 32-bit analogue of the 48-bit threshold: 48/64 * 32).
RD_THRESHOLD_BITS_F32 = 24.0


def compress_f32(
    values: np.ndarray,
    vector_size: int = VECTOR_SIZE,
    force_scheme: str | None = None,
) -> CompressedFloatColumn:
    """Compress a float32 column with adaptive ALP-32 / ALP_rd-32."""
    values = np.ascontiguousarray(values, dtype=np.float32)
    sample = values[equidistant_indices(values.size, 256)]
    e, f, est = find_best_combination_f32(sample)
    est_bpv = est / max(sample.size, 1)

    use_rd = (
        force_scheme == "alprd"
        if force_scheme is not None
        else est_bpv >= RD_THRESHOLD_BITS_F32
    )
    if use_rd:
        bits = float32_to_bits(values).astype(np.uint64)
        params = find_best_cut(
            bits[equidistant_indices(bits.size, 256)], total_bits=32
        )
        vectors = tuple(
            encode_vector_bits(bits[s : s + vector_size], params)
            for s in range(0, values.size, vector_size)
        )
        return CompressedFloatColumn(
            scheme="alprd",
            vectors=vectors,
            rd_parameters=params,
            count=values.size,
        )

    vectors = tuple(
        alp32_encode_vector(values[s : s + vector_size], e, f)
        for s in range(0, values.size, vector_size)
    )
    return CompressedFloatColumn(
        scheme="alp", vectors=vectors, rd_parameters=None, count=values.size
    )


def decompress_f32(column: CompressedFloatColumn) -> np.ndarray:
    """Decompress a float32 column back to float32, bit-exactly."""
    if column.count == 0:
        return np.empty(0, dtype=np.float32)
    if column.scheme == "alp":
        return np.concatenate(
            [alp32_decode_vector(v) for v in column.vectors]
        )
    if column.rd_parameters is None:
        raise ValueError("ALP_rd float32 column is missing its parameters")
    bits = np.concatenate(
        [decode_vector_bits(v, column.rd_parameters) for v in column.vectors]
    )
    # fits: each element is a 32-bit float pattern glued from right | left
    return bits_to_float32(bits.astype(np.uint32))
