"""Command-line interface: ``python -m repro`` (or the ``alp-repro`` script).

Subcommands:

- ``compress IN.f64 OUT.alpc`` — compress a raw little-endian float64
  file (or ``.npy``) into the ALPC column format,
- ``decompress IN.alpc OUT.f64`` — decompress back to raw float64,
- ``inspect FILE.alpc`` — print row-group metadata, zone maps and the
  per-row-group scheme/size breakdown,
- ``ratio [--codec ...] [--n N] DATASET...`` — measure bits/value of
  any registered codec on the synthetic paper datasets,
- ``datasets`` — list the 30 synthetic datasets and their fingerprints,
- ``stats [INPUT]`` — run an instrumented compress / file round-trip /
  range scan and print the :mod:`repro.obs` metrics snapshot as JSON,
- ``verify PATH`` — walk a column file or dataset directory and report
  every corrupt section (``--json`` for machine-readable output;
  nonzero exit when damage is found),
- ``repair IN.alpc OUT.alpc`` — rewrite a damaged file keeping every
  intact row-group,
- ``bench [--out BENCH.json] [--kernels]`` — run the structured
  benchmark sweep (optionally plus the kernel micro-benchmarks) and
  emit the machine-readable ``BENCH_*.json`` record document,
- ``lint [PATHS...]`` — run reprolint, the repo-specific static
  analysis (see ``docs/STATIC_ANALYSIS.md``),
- ``serve PATH...`` — serve column files / dataset directories over the
  framed TCP protocol (see ``docs/SERVING.md``),
- ``shard-serve BACKEND...`` — a consistent-hash shard router over N
  running servers: scatter-gathers scans/sums by row-group partition
  with replica failover (``docs/SHARDING.md``).
- ``loadgen --port P`` — closed-loop concurrent load test against a
  running server or router; reports p50/p95/p99 latency and can emit a
  ``BENCH_*.json`` record.

The CLI is deliberately thin: each subcommand is a few lines over the
library's public API, so it doubles as usage documentation.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np


def _load_doubles(path: Path) -> np.ndarray:
    """Read a float64 column from .npy or raw little-endian bytes."""
    if path.suffix == ".npy":
        values = np.load(path)
        return np.ascontiguousarray(values, dtype=np.float64)
    data = path.read_bytes()
    if len(data) % 8:
        raise SystemExit(
            f"{path}: raw float64 input must be a multiple of 8 bytes"
        )
    return np.frombuffer(data, dtype="<f8").copy()


def _cmd_compress(args: argparse.Namespace) -> int:
    from repro import api

    values = _load_doubles(Path(args.input))
    api.write(args.output, values)
    raw = values.nbytes
    compressed = Path(args.output).stat().st_size
    print(
        f"{values.size:,} values: {raw:,} B -> {compressed:,} B "
        f"({8 * compressed / max(values.size, 1):.2f} bits/value, "
        f"{raw / max(compressed, 1):.1f}x)"
    )
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    from repro import api

    values = api.read(args.input)
    out = Path(args.output)
    if out.suffix == ".npy":
        np.save(out, values)
    else:
        out.write_bytes(values.astype("<f8").tobytes())
    print(f"wrote {values.size:,} values to {out}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.storage import ColumnFileReader
    from repro.storage.tablefile import (
        FORMAT_VERSION_V4,
        file_format_version,
    )

    if file_format_version(args.input) >= FORMAT_VERSION_V4:
        return _inspect_table(args)
    reader = ColumnFileReader(args.input)
    print(f"{args.input}: {reader.value_count:,} values in "
          f"{reader.rowgroup_count} row-groups "
          f"(vector size {reader.vector_size})")
    print(f"{'rg':>4} {'scheme':>7} {'values':>9} {'bytes':>10} "
          f"{'bits/val':>9} {'min':>14} {'max':>14}")
    for index, meta in enumerate(reader.metadata):
        rowgroup = reader.read_rowgroup_compressed(index)
        bits = 8 * meta.length / max(meta.count, 1)
        print(
            f"{index:>4} {rowgroup.scheme:>7} {meta.count:>9,} "
            f"{meta.length:>10,} {bits:>9.2f} "
            f"{meta.min_value:>14.6g} {meta.max_value:>14.6g}"
            + ("  [non-finite]" if meta.has_non_finite else "")
        )
    return 0


def _inspect_table(args: argparse.Namespace) -> int:
    from repro.storage.tablefile import TableFileReader

    with TableFileReader(args.input) as reader:
        schema = reader.schema
        print(
            f"{args.input}: format v{reader.format_version} table, "
            f"{reader.row_count:,} rows x {len(schema)} columns in "
            f"{reader.rowgroup_count} row-groups "
            f"(vector size {reader.vector_size})"
        )
        print("schema:")
        for col in schema:
            codec = f", codec={col.codec}" if col.codec else ""
            print(
                f"  {col.name}: {col.type}"
                f"{' NULL' if col.nullable else ''}{codec}"
            )
        print(
            f"{'rg':>4} {'column':>16} {'rows':>9} {'bytes':>10} "
            f"{'bits/val':>9} {'nulls':>8} {'min':>14} {'max':>14}"
        )
        def fmt(v):
            if v is None:
                return "-"
            return f"{v:.6g}" if isinstance(v, float) else f"{v:d}"

        for rg in range(reader.rowgroup_count):
            rows = reader.rowgroup_rows(rg)
            for col in schema.names:
                meta = reader.chunk_meta(rg, col)
                zone = meta.zone
                bits = 8 * meta.length / max(rows, 1)
                print(
                    f"{rg:>4} {col:>16} {rows:>9,} {meta.length:>10,} "
                    f"{bits:>9.2f} {zone.null_count:>8,} "
                    f"{fmt(zone.min_value):>14} {fmt(zone.max_value):>14}"
                    + ("  [non-finite]" if zone.has_non_finite else "")
                )
    return 0


def _cmd_ratio(args: argparse.Namespace) -> int:
    from repro.baselines.registry import get_codec, list_codecs
    from repro.data import DATASET_ORDER, get_dataset

    names = args.datasets or list(DATASET_ORDER)
    codecs = args.codec or ["alp"]
    for codec_name in codecs:
        if codec_name not in list_codecs():
            raise SystemExit(
                f"unknown codec {codec_name!r}; known: "
                + ", ".join(list_codecs())
            )
    print(f"{'dataset':16s} " + " ".join(f"{c:>10s}" for c in codecs))
    for name in names:
        values = get_dataset(name, n=args.n)
        cells = []
        for codec_name in codecs:
            codec = get_codec(codec_name)
            cells.append(codec.roundtrip_bits_per_value(values))
        print(
            f"{name:16s} " + " ".join(f"{b:10.2f}" for b in cells)
        )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.report import compressibility_report
    from repro.data import DATASETS, EXTENSION_DATASETS

    if args.input in DATASETS or args.input in EXTENSION_DATASETS:
        from repro.data import get_dataset

        values = get_dataset(args.input, n=args.n)
        name = args.input
    else:
        values = _load_doubles(Path(args.input))
        if values.size > args.n:
            values = values[: args.n]
        name = Path(args.input).name
    print(compressibility_report(values, name=name))
    return 0


def _cmd_choose(args: argparse.Namespace) -> int:
    from repro.core.autotune import choose_codec
    from repro.data import DATASETS, EXTENSION_DATASETS

    if args.input in DATASETS or args.input in EXTENSION_DATASETS:
        from repro.data import get_dataset

        values = get_dataset(args.input, n=args.n)
    else:
        values = _load_doubles(Path(args.input))
    choice = choose_codec(values)
    print(f"chosen codec : {choice.name}")
    print(f"projected    : {choice.projected_bits_per_value:.2f} bits/value")
    for name, bits in sorted(choice.trials.items(), key=lambda kv: kv[1]):
        shown = "n/a" if bits == float("inf") else f"{bits:.2f}"
        print(f"  trial {name:8s}: {shown}")
    return 0


def _load_values_or_dataset(name: str, n: int) -> np.ndarray:
    """Resolve ``name`` as a synthetic dataset or a doubles file."""
    from repro.data import DATASETS, EXTENSION_DATASETS

    if name in DATASETS or name in EXTENSION_DATASETS:
        from repro.data import get_dataset

        return get_dataset(name, n=n)
    path = Path(name)
    if not path.exists():
        raise SystemExit(
            f"{name!r} is neither a known dataset nor a file "
            f"(see `datasets` for the dataset list)"
        )
    values = _load_doubles(path)
    return values[:n] if values.size > n else values


def _cmd_stats(args: argparse.Namespace) -> int:
    """Instrumented end-to-end run, then the metrics snapshot as JSON.

    Exercises every instrumented layer once — adaptive compression
    (sampler + ALP/ALP_rd + FFOR + bitpack), decompression, the on-disk
    column format (write, open, zone-map range scan) and a query-engine
    aggregation — so the snapshot shows per-stage spans and counters
    for the full pipeline.
    """
    import json
    import tempfile

    from repro import api, obs
    from repro.query.engine import sum_query
    from repro.query.sources import FileColumnSource

    values = _load_values_or_dataset(args.input, args.n)
    obs.enable()
    obs.reset()

    column = api.compress(values)
    restored = api.decompress(column)
    if not np.array_equal(
        restored.view(np.uint64), values.view(np.uint64)
    ):
        raise SystemExit("round-trip mismatch: refusing to report stats")

    with tempfile.TemporaryDirectory() as tmp:
        path = str(Path(tmp) / "stats.alpc")
        api.write(path, values)
        reader = api.open(path)
        reader.read_all()
        finite = values[np.isfinite(values)]
        if finite.size:
            # A selective range over the middle of the domain, so the
            # zone-map skip counters have something to count.
            low = float(np.quantile(finite, 0.45))
            high = float(np.quantile(finite, 0.55))
            for _ in reader.scan_range_vectors(low, high):
                pass
        sum_query(FileColumnSource.open(path))

    snapshot = obs.snapshot()
    obs.disable()
    obs.reset()
    print(json.dumps(snapshot, indent=args.indent))
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    """Integrity-walk a column file or dataset; exit 1 on any damage."""
    import json

    from repro import api

    report = api.verify(args.path)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
        return 0 if report.ok else 1
    if report.ok:
        print(f"{args.path}: ok")
        return 0
    from repro.storage.verify import DatasetVerifyReport

    if isinstance(report, DatasetVerifyReport):
        if report.manifest_error is not None:
            print(f"{report.path}: {report.manifest_error}")
        file_reports = report.files
    else:
        file_reports = (report,)
    for file_report in file_reports:
        for section in file_report.bad_sections:
            where = (
                f"row-group {section.index}"
                if section.section == "rowgroup"
                else section.section
            )
            print(
                f"{file_report.path}: {where} "
                f"(offset {section.offset}, {section.length} bytes): "
                f"{section.error}"
            )
    return 1


def _cmd_repair(args: argparse.Namespace) -> int:
    """Rewrite a damaged column file, keeping every intact row-group."""
    import json

    from repro import api

    report = api.repair(args.input, args.output)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(
            f"{args.output}: kept {report.rowgroups_kept} row-groups "
            f"({report.values_kept:,} values), dropped "
            f"{report.rowgroups_dropped} ({report.values_dropped:,} values)"
        )
        for item in report.dropped:
            print(
                f"  dropped row-group {item['index']} "
                f"(offset {item['offset']}, {item['length']} bytes): "
                f"{item['reason']}"
            )
    return 0 if report.rowgroups_dropped == 0 else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    """Structured benchmark sweep emitting a BENCH_*.json document."""
    from repro.baselines.registry import list_codecs
    from repro.bench.harness import run_structured_bench
    from repro.bench.smoke import SMOKE_DATASETS
    from repro.data import DATASET_ORDER

    datasets = args.datasets or list(SMOKE_DATASETS)
    codecs = args.codec or ["alp"]
    for name in datasets:
        if name not in DATASET_ORDER:
            raise SystemExit(
                f"unknown dataset {name!r}; see `alp-repro datasets`"
            )
    for codec_name in codecs:
        if codec_name not in list_codecs():
            raise SystemExit(
                f"unknown codec {codec_name!r}; known: "
                + ", ".join(list_codecs())
            )
    _, records = run_structured_bench(
        datasets,
        codecs,
        n=args.n,
        repeats=args.repeats,
        out_path=args.out,
        include_kernels=args.kernels,
    )
    for record in records:
        print(
            f"{record.dataset:18s} {record.codec:8s} "
            f"{record.bits_per_value:7.2f} bits/value  "
            f"C {record.compress_mbps:8.1f} MB/s  "
            f"D {record.decompress_mbps:8.1f} MB/s"
        )
    print(f"wrote {len(records)} records to {args.out}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import main as lint_main

    argv: list[str] = [str(path) for path in args.paths]
    if args.root is not None:
        argv += ["--root", str(args.root)]
    argv += ["--format", args.format]
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv)


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve registered datasets over the framed TCP protocol."""
    import json
    import signal
    import threading

    from repro import obs
    from repro.server import BufferPool, DatasetRegistry, DecodedVectorCache
    from repro.server.service import ServerConfig, ServerHandle

    if args.obs:
        obs.enable()
    pool = (
        BufferPool(byte_budget=args.pool_mb * (1 << 20))
        if args.pool_mb > 0
        else None
    )
    cache = DecodedVectorCache(
        byte_budget=args.cache_mb * (1 << 20), pool=pool
    )
    registry = DatasetRegistry(
        cache=cache,
        degraded=not args.strict,
        mmap=args.mmap,
        pool=pool,
    )
    for spec in args.data:
        name: str | None = None
        path = spec
        if "=" in spec:
            name, path = spec.split("=", 1)
        registered = registry.register_path(path, name=name)
        print(f"serving {registered!r} from {path}")
    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_inflight=args.max_inflight,
        default_deadline_ms=args.deadline_ms,
    )
    handle = ServerHandle(registry, config)
    print(f"listening on {handle.host}:{handle.port}", flush=True)
    if args.port_file:
        # Multi-backend scripts (CI above all) start servers on port 0
        # and read the real port back from here instead of racing on
        # fixed port numbers.
        Path(args.port_file).write_text(f"{handle.port}\n")

    stop = threading.Event()

    def _on_signal(signum: int, frame: object) -> None:
        stop.set()

    signal.signal(signal.SIGINT, _on_signal)
    signal.signal(signal.SIGTERM, _on_signal)
    stop.wait()
    print("draining...", flush=True)
    handle.shutdown()
    print(f"cache: {json.dumps(cache.stats().as_dict())}")
    if pool is not None:
        print(f"pool: {json.dumps(pool.stats().as_dict())}")
    return 0


def _cmd_shard_serve(args: argparse.Namespace) -> int:
    """Route requests across repro.server backends (scatter-gather)."""
    import signal
    import threading

    from repro import obs
    from repro.server.service import ServerConfig
    from repro.shard.router import RouterConfig, RouterHandle

    if args.obs:
        obs.enable()
    config = RouterConfig(
        backends=tuple(args.backends),
        replication=args.replication,
        partition_rowgroups=args.partition_rowgroups,
        fanout=args.fanout,
        server=ServerConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            max_inflight=args.max_inflight,
            default_deadline_ms=args.deadline_ms,
        ),
    )
    handle = RouterHandle(config)
    shards = sum(len(parts) for parts in handle.router.shard_map.values())
    print(
        f"routing {shards} partition(s) across "
        f"{len(config.backends)} backend(s), replication "
        f"{min(config.replication, len(config.backends))}"
    )
    print(f"listening on {handle.host}:{handle.port}", flush=True)
    if args.port_file:
        Path(args.port_file).write_text(f"{handle.port}\n")

    stop = threading.Event()

    def _on_signal(signum: int, frame: object) -> None:
        stop.set()

    signal.signal(signal.SIGINT, _on_signal)
    signal.signal(signal.SIGTERM, _on_signal)
    stop.wait()
    print("draining...", flush=True)
    handle.shutdown()
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    """Closed-loop load test against a running server."""
    import json

    from repro.server.loadgen import (
        LoadgenConfig,
        discover_targets,
        run_loadgen,
        write_loadgen_json,
    )

    from repro.server.loadgen import DEFAULT_OPS

    ops = (
        tuple(op.strip() for op in args.ops.split(",") if op.strip())
        if args.ops
        else DEFAULT_OPS
    )
    config = LoadgenConfig(
        host=args.host,
        port=args.port,
        clients=args.clients,
        requests_per_client=args.requests,
        ops=ops,
        deadline_ms=args.deadline_ms,
        overload_retries=args.overload_retries,
        zipf_s=args.zipf_s,
        seed=args.seed,
    )
    targets = discover_targets(config)
    result = run_loadgen(config, targets)
    summary = result.summary()
    print(json.dumps(summary, indent=2))
    if args.out:
        write_loadgen_json(
            args.out, config, result, record_name=args.record_name
        )
        print(f"wrote {args.out}")
    if args.fail_on_errors and result.error_count:
        print(f"FAIL: {result.error_count} request errors")
        return 1
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    from repro.data import DATASETS

    print(f"{'name':16s} {'kind':6s} {'precision':>10s}  semantics")
    for name, spec in DATASETS.items():
        kind = "TS" if spec.time_series else "non-TS"
        lo, hi = spec.precision_hint
        print(f"{name:16s} {kind:6s} {f'{lo}..{hi}':>10s}  {spec.semantics}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="alp-repro",
        description="ALP adaptive lossless floating-point compression",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compress", help="compress doubles into ALPC")
    p.add_argument("input", help="input .npy or raw little-endian float64")
    p.add_argument("output", help="output .alpc file")
    p.set_defaults(fn=_cmd_compress)

    p = sub.add_parser("decompress", help="decompress ALPC to doubles")
    p.add_argument("input", help="input .alpc file")
    p.add_argument("output", help="output .npy or raw float64 file")
    p.set_defaults(fn=_cmd_decompress)

    p = sub.add_parser("inspect", help="show ALPC file structure")
    p.add_argument("input", help=".alpc file")
    p.set_defaults(fn=_cmd_inspect)

    p = sub.add_parser("ratio", help="measure bits/value on datasets")
    p.add_argument("datasets", nargs="*", help="dataset names (default all)")
    p.add_argument(
        "--codec",
        action="append",
        help="codec to measure (repeatable; default alp)",
    )
    p.add_argument("--n", type=int, default=20_000, help="values per dataset")
    p.set_defaults(fn=_cmd_ratio)

    p = sub.add_parser(
        "analyze", help="compressibility report (Section 2 analysis)"
    )
    p.add_argument("input", help="dataset name, .npy or raw float64 file")
    p.add_argument("--n", type=int, default=20_000, help="values to analyze")
    p.set_defaults(fn=_cmd_analyze)

    p = sub.add_parser("choose", help="auto-select a codec from a sample")
    p.add_argument("input", help="dataset name, .npy or raw float64 file")
    p.add_argument("--n", type=int, default=20_000, help="values to sample")
    p.set_defaults(fn=_cmd_choose)

    p = sub.add_parser(
        "stats",
        help="print a JSON metrics snapshot of an instrumented run",
    )
    p.add_argument(
        "input",
        nargs="?",
        default="City-Temp",
        help="dataset name, .npy or raw float64 file (default City-Temp)",
    )
    p.add_argument(
        "--n", type=int, default=20_000, help="values to run through"
    )
    p.add_argument(
        "--indent", type=int, default=2, help="JSON indent (default 2)"
    )
    p.set_defaults(fn=_cmd_stats)

    p = sub.add_parser(
        "verify",
        help="check every checksum/section of a column file or dataset",
    )
    p.add_argument("path", help=".alpc file or alpc-dataset directory")
    p.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    p.set_defaults(fn=_cmd_verify)

    p = sub.add_parser(
        "repair",
        help="rewrite a damaged column file keeping intact row-groups",
    )
    p.add_argument("input", help="damaged .alpc file")
    p.add_argument("output", help="destination for the repaired file")
    p.add_argument(
        "--json", action="store_true", help="emit the repair report as JSON"
    )
    p.set_defaults(fn=_cmd_repair)

    p = sub.add_parser(
        "bench", help="structured benchmark sweep (emits BENCH_*.json)"
    )
    p.add_argument(
        "datasets", nargs="*", help="dataset names (default: smoke subset)"
    )
    p.add_argument(
        "--codec",
        action="append",
        help="codec to measure (repeatable; default alp)",
    )
    p.add_argument(
        "--out",
        default="BENCH_cli.json",
        help="output JSON path (default BENCH_cli.json)",
    )
    p.add_argument("--n", type=int, default=65_536, help="values per dataset")
    p.add_argument("--repeats", type=int, default=5, help="timing repeats")
    p.add_argument(
        "--kernels",
        action="store_true",
        help="also run the kernel micro-benchmarks (pack/unpack, FFOR, "
        "per-vector ALP) and append their kernels/* records",
    )
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser(
        "lint",
        help="run reprolint, the repo-specific static-analysis pass",
    )
    p.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src tests benchmarks)",
    )
    p.add_argument(
        "--root", default=None, help="repository root used for rule scoping"
    )
    p.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    p.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser(
        "serve", help="serve datasets over the framed TCP protocol"
    )
    p.add_argument(
        "data",
        nargs="+",
        help="column file or dataset directory to serve; "
        "NAME=PATH to pick the served name",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port", type=int, default=8642, help="TCP port (0 = ephemeral)"
    )
    p.add_argument(
        "--workers", type=int, default=4, help="blocking-work threads"
    )
    p.add_argument(
        "--max-inflight",
        type=int,
        default=32,
        help="admission bound before `overloaded` rejections",
    )
    p.add_argument(
        "--deadline-ms",
        type=float,
        default=30_000.0,
        help="default per-request deadline",
    )
    p.add_argument(
        "--cache-mb",
        type=int,
        default=256,
        help="decoded-vector cache budget in MiB",
    )
    p.add_argument(
        "--pool-mb",
        type=int,
        default=64,
        help="decode buffer-pool idle budget in MiB (0 disables pooling)",
    )
    p.add_argument(
        "--mmap",
        action="store_true",
        help="memory-map served column files for zero-copy payload reads",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="fail requests on corrupt row-groups instead of quarantining",
    )
    p.add_argument(
        "--obs", action="store_true", help="enable metrics recording"
    )
    p.add_argument(
        "--port-file",
        default=None,
        help="write the bound port to this file (for --port 0 scripts)",
    )
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "shard-serve",
        help="route requests across repro.server backends "
        "(consistent-hash scatter-gather)",
    )
    p.add_argument(
        "backends",
        nargs="+",
        help="backend addresses, host:port each; all must serve "
        "identical datasets",
    )
    p.add_argument(
        "--replication",
        type=int,
        default=2,
        help="replicas per partition (capped at the backend count)",
    )
    p.add_argument(
        "--partition-rowgroups",
        type=int,
        default=1,
        help="row-groups per partition (the scatter granularity)",
    )
    p.add_argument(
        "--fanout",
        type=int,
        default=8,
        help="concurrent backend RPCs across all in-flight requests",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port", type=int, default=8641, help="TCP port (0 = ephemeral)"
    )
    p.add_argument(
        "--workers", type=int, default=4, help="frontend worker threads"
    )
    p.add_argument(
        "--max-inflight",
        type=int,
        default=32,
        help="admission bound before `overloaded` rejections",
    )
    p.add_argument(
        "--deadline-ms",
        type=float,
        default=30_000.0,
        help="default per-request deadline (budgeted across shards)",
    )
    p.add_argument(
        "--obs", action="store_true", help="enable metrics recording"
    )
    p.add_argument(
        "--port-file",
        default=None,
        help="write the bound port to this file (for --port 0 scripts)",
    )
    p.set_defaults(fn=_cmd_shard_serve)

    p = sub.add_parser(
        "loadgen", help="closed-loop load test against a running server"
    )
    p.add_argument("--host", default="127.0.0.1", help="server address")
    p.add_argument("--port", type=int, required=True, help="server port")
    p.add_argument(
        "--clients", type=int, default=4, help="concurrent closed-loop clients"
    )
    p.add_argument(
        "--requests", type=int, default=50, help="requests per client"
    )
    p.add_argument(
        "--deadline-ms", type=float, default=None, help="per-request deadline"
    )
    p.add_argument(
        "--overload-retries",
        type=int,
        default=0,
        help="retries per request after `overloaded` rejections",
    )
    p.add_argument(
        "--ops",
        default=None,
        help="comma-separated op trace cycled per worker "
        "(scan/sum/comp; default scan,sum,sum,scan)",
    )
    p.add_argument(
        "--zipf-s",
        type=float,
        default=0.0,
        help="zipfian target-skew exponent (0 = round-robin)",
    )
    p.add_argument(
        "--seed", type=int, default=0, help="seed for the zipfian trace"
    )
    p.add_argument(
        "--out", default=None, help="write a BENCH_*.json record document"
    )
    p.add_argument(
        "--record-name",
        default="loadgen",
        help="codec field of the BENCH record (gate comparisons key "
        "on it; use e.g. shard_loadgen for routed runs)",
    )
    p.add_argument(
        "--fail-on-errors",
        action="store_true",
        help="exit nonzero if any request failed (backpressure excluded)",
    )
    p.set_defaults(fn=_cmd_loadgen)

    p = sub.add_parser("datasets", help="list the synthetic datasets")
    p.set_defaults(fn=_cmd_datasets)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
