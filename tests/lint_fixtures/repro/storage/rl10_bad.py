"""Seeded RL10 violations: payload views escaping their reader's lifetime."""

_STASH = {}


class PayloadHoarder:
    def __init__(self, reader):
        self._reader = reader
        self._views = []
        self._last = None

    def keep(self, index):
        view = self._reader.rowgroup_payload(index)
        self._last = view  # view stored into self
        self._views.append(view)  # view stored into a self container

    def stash_global(self, index):
        view = self._reader.rowgroup_payload(index)
        _STASH[index] = view  # view stored into a module container


def stream(path, opener):
    with opener(path) as reader:
        view = reader.rowgroup_payload(0)
        yield view  # yielded past the owning with-scope


def deferred(path, opener):
    with opener(path) as reader:
        view = reader.rowgroup_payload(0)
        return lambda: view[0]  # captured by a closure that outlives the view
