"""Patas — DuckDB's byte-aligned variant of Chimp128.

Patas trades compression ratio for decode speed: one single encoding
mode, byte-aligned payloads and a fixed 16-bit packed header per value,
so decoding has no bit-level branching.  Our header packs:

- 7 bits: ring index of the XOR reference (previous 128 values,
  found via the same low-bit hash as Chimp128),
- 4 bits: number of significant payload bytes (0..8),
- 4 bits: number of trailing zero *bytes* removed (0..8),
- 1 bit: reserved.

A zero XOR stores zero payload bytes.  The exact DuckDB field widths
differ slightly (they squeeze trailing zero *bits* into 6 bits); the
byte-aligned single-mode structure — which is what gives Patas its speed
profile — is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alputil.bits import double_to_bits
from repro.baselines.chimp128 import KEY_MASK, RING_SIZE


@dataclass(frozen=True)
class PatasEncoded:
    """A Patas-compressed block of doubles."""

    headers: bytes  # 2 bytes per value (little-endian uint16)
    payload: bytes  # concatenated significant bytes
    first_value: int
    count: int

    def size_bits(self) -> int:
        """Headers + payload + the 64-bit first value."""
        return (len(self.headers) + len(self.payload)) * 8 + 64

    def bits_per_value(self) -> float:
        """Compressed bits per value."""
        return self.size_bits() / self.count if self.count else 0.0


def _pack_header(index: int, byte_count: int, trailing_bytes: int) -> int:
    """Pack (index, byte count, trailing zero bytes) into 16 bits."""
    return index | (byte_count << 7) | (trailing_bytes << 11)


def _unpack_header(header: int) -> tuple[int, int, int]:
    """Inverse of :func:`_pack_header`."""
    return header & 0x7F, (header >> 7) & 0xF, (header >> 11) & 0xF


def patas_compress(values: np.ndarray) -> PatasEncoded:
    """Compress a float64 array with Patas."""
    values = np.ascontiguousarray(values, dtype=np.float64)
    if values.size == 0:
        return PatasEncoded(headers=b"", payload=b"", first_value=0, count=0)

    bits_list = double_to_bits(values).tolist()
    headers = bytearray()
    payload = bytearray()
    ring = [0] * RING_SIZE
    ring[0] = bits_list[0]
    last_seen: dict[int, int] = {bits_list[0] & KEY_MASK: 0}

    for i in range(1, len(bits_list)):
        value = bits_list[i]
        candidate_pos = last_seen.get(value & KEY_MASK, -1)
        if candidate_pos < 0 or i - candidate_pos > RING_SIZE:
            candidate_pos = i - 1  # fall back to the previous value
        reference = ring[candidate_pos % RING_SIZE]
        xor = value ^ reference
        if xor == 0:
            header = _pack_header(candidate_pos % RING_SIZE, 0, 0)
        else:
            trailing_bytes = 0
            while xor & 0xFF == 0:
                xor >>= 8
                trailing_bytes += 1
            byte_count = (xor.bit_length() + 7) // 8
            header = _pack_header(
                candidate_pos % RING_SIZE, byte_count, trailing_bytes
            )
            payload += xor.to_bytes(byte_count, "little")
        headers += header.to_bytes(2, "little")
        ring[i % RING_SIZE] = value
        last_seen[value & KEY_MASK] = i

    return PatasEncoded(
        headers=bytes(headers),
        payload=bytes(payload),
        first_value=bits_list[0],
        count=values.size,
    )


def patas_decompress(encoded: PatasEncoded) -> np.ndarray:
    """Decompress a :class:`PatasEncoded` block back to float64."""
    if encoded.count == 0:
        return np.empty(0, dtype=np.float64)
    out = np.empty(encoded.count, dtype=np.uint64)
    ring = [0] * RING_SIZE
    current = encoded.first_value
    out[0] = current
    ring[0] = current
    headers = np.frombuffer(encoded.headers, dtype="<u2").tolist()
    payload = encoded.payload
    offset = 0
    for i in range(1, encoded.count):
        index, byte_count, trailing_bytes = _unpack_header(headers[i - 1])
        reference = ring[index]
        if byte_count == 0:
            current = reference
        else:
            xor = int.from_bytes(
                payload[offset : offset + byte_count], "little"
            )
            offset += byte_count
            current = reference ^ (xor << (8 * trailing_bytes))
        ring[i % RING_SIZE] = current
        out[i] = current
    return out.view(np.float64)
