"""Column sources: per-codec vector delivery out of compressed storage.

A :class:`ColumnSource` is the scan-side contract of the engine: it
yields 1024-value float64 vectors.  How expensive that is depends on the
codec's granularity — which is exactly what the paper's end-to-end
experiment (Table 6 / Figure 6) measures:

- ALP and PDE decode *one vector at a time* (vector-granular skipping);
- the XOR family (Gorilla/Chimp/Chimp128/Patas/Elf) is compressed per
  vector here, like the paper's standalone ports, and stream-decodes
  each vector with per-value Python work;
- the general-purpose codec stores row-group-sized blocks — reading any
  vector of a block decompresses the whole block (the paper's "one has
  to decompress 32 8KB vectors even if 31 are not needed"), which the
  source models with a block cache;
- uncompressed data just slices a raw array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Protocol

import numpy as np

from repro import obs
from repro.baselines.registry import get_codec
from repro.core.alp import AlpVector, alp_decode_vector
from repro.core.alprd import decode_vector_bits
from repro.core.compressor import CompressedRowGroups, compress
from repro.core.constants import VECTOR_SIZE
from repro.query.dispatch import register
from repro.query.operators import register_encoded_source


@dataclass(frozen=True)
class EncodedBatch:
    """One scan batch of the late-materialization pipeline.

    Exactly one payload field is set: ``alp`` carries a still-compressed
    ALP vector for encoded-domain execution; ``values`` carries decoded
    float64 values for payloads without an ALP integer domain (ALP_rd
    row-groups, foreign codecs) so every source can participate in the
    encoded pipeline, just without the fast math for those batches.
    """

    alp: AlpVector | None = None
    values: np.ndarray | None = None

    @property
    def count(self) -> int:
        """Number of values in this batch."""
        if self.alp is not None:
            return self.alp.count
        return int(self.values.size) if self.values is not None else 0

    def decode(self) -> np.ndarray:
        """Materialize the batch as float64 (the escape hatch)."""
        if self.alp is not None:
            return alp_decode_vector(self.alp)
        if self.values is None:
            return np.empty(0, dtype=np.float64)
        return self.values


class ColumnSource(Protocol):
    """Anything that can feed vectors to a scan."""

    def vectors(self) -> Iterator[np.ndarray]:
        """Yield consecutive float64 vectors."""
        ...

    def partition(self, parts: int) -> list["ColumnSource"]:
        """Split into ~equal independent sources for parallel scans."""
        ...

    @property
    def value_count(self) -> int:
        """Total number of values."""
        ...

    @property
    def compressed_bits(self) -> int:
        """Compressed footprint in bits (0 for uncompressed)."""
        ...


@dataclass
class UncompressedSource:
    """Raw float64 array, sliced into vectors."""

    values: np.ndarray
    vector_size: int = VECTOR_SIZE

    def vectors(self) -> Iterator[np.ndarray]:
        for start in range(0, self.values.size, self.vector_size):
            yield self.values[start : start + self.vector_size]

    def partition(self, parts: int) -> list["UncompressedSource"]:
        return [
            UncompressedSource(chunk, self.vector_size)
            for chunk in _split_array(self.values, parts, self.vector_size)
        ]

    @property
    def value_count(self) -> int:
        return int(self.values.size)

    @property
    def compressed_bits(self) -> int:
        return 0


@dataclass
class AlpSource:
    """Vector-at-a-time decode out of a compressed ALP column."""

    column: CompressedRowGroups

    def vectors(self) -> Iterator[np.ndarray]:
        from repro.alputil.bits import bits_to_double

        for rowgroup in self.column.rowgroups:
            if rowgroup.alp is not None:
                for vector in rowgroup.alp.vectors:
                    yield alp_decode_vector(vector)
            else:
                if rowgroup.rd is None:
                    raise ValueError(
                        "row-group has neither ALP nor ALP_rd payload"
                    )
                parameters = rowgroup.rd.parameters
                for vector in rowgroup.rd.vectors:
                    yield bits_to_double(
                        decode_vector_bits(vector, parameters)
                    )

    def encoded_batches(
        self, value_range: tuple[float, float] | None = None
    ) -> Iterator[EncodedBatch]:
        """Yield batches without decoding the ALP payloads.

        ``value_range`` is a push-down hint this source cannot exploit
        (in-memory columns carry no zone maps); per-vector FFOR-header
        rejection inside the encoded operators covers the skipping.
        """
        from repro.alputil.bits import bits_to_double

        del value_range
        for rowgroup in self.column.rowgroups:
            if rowgroup.alp is not None:
                for vector in rowgroup.alp.vectors:
                    yield EncodedBatch(alp=vector)
            else:
                if rowgroup.rd is None:
                    raise ValueError(
                        "row-group has neither ALP nor ALP_rd payload"
                    )
                parameters = rowgroup.rd.parameters
                for vector in rowgroup.rd.vectors:
                    obs.counter_add("query.batches_fallback")
                    yield EncodedBatch(
                        values=bits_to_double(
                            decode_vector_bits(vector, parameters)
                        )
                    )

    def partition(self, parts: int) -> list["AlpSource"]:
        groups = _split_list(list(self.column.rowgroups), parts)
        return [
            AlpSource(
                CompressedRowGroups(
                    rowgroups=tuple(group),
                    count=sum(rg.count for rg in group),
                    vector_size=self.column.vector_size,
                    stats=self.column.stats,
                )
            )
            for group in groups
        ]

    @property
    def value_count(self) -> int:
        return self.column.count

    @property
    def compressed_bits(self) -> int:
        return self.column.size_bits()


@dataclass
class PerVectorCodecSource:
    """One compressed blob per vector (the XOR-family integration)."""

    blobs: list[Any]
    decode: Callable[[Any], np.ndarray]
    _count: int
    _bits: int

    @classmethod
    def build(
        cls, codec_name: str, values: np.ndarray, vector_size: int = VECTOR_SIZE
    ) -> "PerVectorCodecSource":
        codec = get_codec(codec_name)
        blobs = [
            codec.compress(values[start : start + vector_size])
            for start in range(0, values.size, vector_size)
        ]
        bits = sum(blob.size_bits() for blob in blobs)
        return cls(
            blobs=blobs,
            decode=codec.decompress,
            _count=int(values.size),
            _bits=bits,
        )

    def vectors(self) -> Iterator[np.ndarray]:
        for blob in self.blobs:
            yield self.decode(blob)

    def partition(self, parts: int) -> list["PerVectorCodecSource"]:
        out = []
        for group in _split_list(self.blobs, parts):
            count = sum(blob.count for blob in group)
            bits = sum(blob.size_bits() for blob in group)
            out.append(
                PerVectorCodecSource(
                    blobs=group, decode=self.decode, _count=count, _bits=bits
                )
            )
        return out

    @property
    def value_count(self) -> int:
        return self._count

    @property
    def compressed_bits(self) -> int:
        return self._bits


@dataclass
class BlockCodecSource:
    """Row-group-sized general-purpose blocks with a one-block cache.

    Reading any vector decompresses its whole block; consecutive vectors
    of the same block reuse the cache.  A scan therefore pays the block
    decompression once per row-group — but a *selective* read pays it for
    a single vector, which is the skipping disadvantage the paper
    describes.
    """

    blobs: list[Any]
    decode: Callable[[Any], np.ndarray]
    vector_size: int
    _count: int
    _bits: int

    @classmethod
    def build(
        cls,
        codec_name: str,
        values: np.ndarray,
        vector_size: int = VECTOR_SIZE,
        block_vectors: int = 100,
    ) -> "BlockCodecSource":
        codec = get_codec(codec_name)
        block = vector_size * block_vectors
        blobs = [
            codec.compress(values[start : start + block])
            for start in range(0, values.size, block)
        ]
        return cls(
            blobs=blobs,
            decode=codec.decompress,
            vector_size=vector_size,
            _count=int(values.size),
            _bits=sum(blob.size_bits() for blob in blobs),
        )

    def vectors(self) -> Iterator[np.ndarray]:
        for blob in self.blobs:
            block = self.decode(blob)  # whole-block decompression
            for start in range(0, block.size, self.vector_size):
                yield block[start : start + self.vector_size]

    def partition(self, parts: int) -> list["BlockCodecSource"]:
        out = []
        for group in _split_list(self.blobs, parts):
            count = sum(blob.count for blob in group)
            bits = sum(blob.size_bits() for blob in group)
            out.append(
                BlockCodecSource(
                    blobs=group,
                    decode=self.decode,
                    vector_size=self.vector_size,
                    _count=count,
                    _bits=bits,
                )
            )
        return out

    @property
    def value_count(self) -> int:
        return self._count

    @property
    def compressed_bits(self) -> int:
        return self._bits


def _split_list(items: list, parts: int) -> list[list]:
    """Split a list into ``parts`` contiguous, non-empty-ish chunks."""
    parts = max(1, min(parts, max(len(items), 1)))
    bounds = np.linspace(0, len(items), parts + 1, dtype=int)
    return [
        items[bounds[i] : bounds[i + 1]]
        for i in range(parts)
        if bounds[i] < bounds[i + 1]
    ] or [items]


def _split_array(
    values: np.ndarray, parts: int, vector_size: int
) -> list[np.ndarray]:
    """Split an array into vector-aligned contiguous chunks."""
    n_vectors = (values.size + vector_size - 1) // vector_size
    groups = _split_list(list(range(n_vectors)), parts)
    return [
        values[g[0] * vector_size : (g[-1] + 1) * vector_size]
        for g in groups
        if g
    ]


@dataclass
class FileColumnSource:
    """Scan source over an on-disk ALPC column file.

    Decodes vector-at-a-time directly from the file's row-groups; with
    ``value_range`` set, vector zone maps prune non-qualifying vectors
    before any decoding happens (push-down into storage).
    """

    reader: object  # repro.storage.columnfile.ColumnFileReader
    value_range: tuple[float, float] | None = None
    #: Optional decoded-row-group cache (the serving layer's
    #: ``DecodedVectorCache``); full scans reuse decoded values across
    #: sources/requests keyed by (file, rowgroup).
    cache: object | None = None
    #: Optional half-open ``(start, stop)`` row-group restriction: the
    #: source covers only those row-groups.  The sharded serving tier
    #: scopes each backend's scan/sum to its partition through this.
    rowgroups: tuple[int, int] | None = None

    @classmethod
    def open(
        cls,
        path,
        value_range: tuple[float, float] | None = None,
        degraded: bool = False,
        cache=None,
    ) -> "FileColumnSource":
        """Open a file source; ``degraded`` quarantines corrupt row-groups.

        A degraded scan yields every vector of the intact row-groups and
        skips quarantined ones — the reader's ``scan_report()`` carries
        the structured account of what was dropped.
        """
        from repro.storage.columnfile import ColumnFileReader

        return cls(
            reader=ColumnFileReader(path, degraded=degraded),
            value_range=value_range,
            cache=cache,
        )

    def _rg_bounds(self) -> tuple[int, int]:
        """The half-open row-group range this source covers."""
        if self.rowgroups is None:
            return 0, self.reader.rowgroup_count
        return self.rowgroups

    def vectors(self) -> Iterator[np.ndarray]:
        rg_start, rg_stop = self._rg_bounds()
        if self.value_range is not None:
            low, high = self.value_range
            for rg, _, values in self.reader.scan_range_vectors(low, high):
                if rg_start <= rg < rg_stop:
                    yield values
            return
        size = self.reader.vector_size
        for _, rowgroup in self.reader.iter_rowgroups(
            self.cache, rg_start, rg_stop
        ):
            for start in range(0, rowgroup.size, size):
                yield rowgroup[start : start + size]

    def encoded_batches(
        self, value_range: tuple[float, float] | None = None
    ) -> Iterator[EncodedBatch]:
        """Yield still-compressed batches straight off the file bytes.

        Covers the same values as :meth:`vectors`: the source's own
        ``value_range`` restriction prunes by zone map exactly as the
        decoded scan does, and a caller-supplied ``value_range`` hint
        (from a filtered op) prunes further — withheld vectors cannot
        contain qualifying values, so filtered results are unchanged.
        Degraded readers quarantine corrupt row-groups on both paths.
        """
        from repro.alputil.bits import bits_to_double

        restrictions = [
            bounds
            for bounds in (self.value_range, value_range)
            if bounds is not None
        ]
        rg_start, rg_stop = self._rg_bounds()
        for _, meta, rowgroup in self.reader.iter_rowgroups_compressed(
            rg_start, rg_stop
        ):
            if any(
                not meta.may_contain_range(low, high)
                for low, high in restrictions
            ):
                obs.counter_add("query.rowgroups_pruned")
                continue
            zones = meta.vector_zones
            if rowgroup.alp is not None:
                vectors = rowgroup.alp.vectors
            else:
                if rowgroup.rd is None:
                    raise ValueError(
                        "row-group has neither ALP nor ALP_rd payload"
                    )
                vectors = rowgroup.rd.vectors
            for v_index, vector in enumerate(vectors):
                zone = zones[v_index] if v_index < len(zones) else None
                if zone is not None and any(
                    not zone.may_contain_range(low, high)
                    for low, high in restrictions
                ):
                    obs.counter_add("query.vectors_pruned")
                    continue
                if rowgroup.alp is not None:
                    yield EncodedBatch(alp=vector)
                else:
                    obs.counter_add("query.batches_fallback")
                    yield EncodedBatch(
                        values=bits_to_double(
                            decode_vector_bits(
                                vector, rowgroup.rd.parameters
                            )
                        )
                    )

    def partition(self, parts: int) -> list["FileColumnSource"]:
        # Partitioning a file source would need per-partition row-group
        # ranges; single-partition is sufficient for the engine tests.
        return [self]

    @property
    def value_count(self) -> int:
        if self.rowgroups is None:
            return self.reader.value_count
        start, stop = self.rowgroups
        return sum(m.count for m in self.reader.metadata[start:stop])

    @property
    def compressed_bits(self) -> int:
        start, stop = self._rg_bounds()
        return sum(
            meta.length * 8 for meta in self.reader.metadata[start:stop]
        )


def _comp_alp_serialized(source: AlpSource) -> int:
    """COMP fast path for ALP sources: serialized on-disk bits.

    Mirrors the paper's note that COMP "also writes extra meta-data for
    the compressed blocks" — the serialized layout, not the in-memory
    size, is what counts.
    """
    from repro.storage.serializer import serialize_rowgroup

    total = 0
    for rowgroup in source.column.rowgroups:
        total += len(serialize_rowgroup(rowgroup)) * 8
    return total


# Dispatch wiring: the engine resolves fast paths through the registry,
# so new encoded sources only need a registration line here (or next to
# their own definition) — never an engine edit.
register("comp", AlpSource, _comp_alp_serialized)
register_encoded_source(AlpSource)
register_encoded_source(FileColumnSource)


def make_source(
    codec_name: str, values: np.ndarray, vector_size: int = VECTOR_SIZE
) -> ColumnSource:
    """Compress ``values`` under ``codec_name`` and wrap a scan source.

    ``"uncompressed"`` returns the raw-array source; ``"alp"`` uses the
    adaptive row-group compressor; XOR/PDE codecs get per-vector blobs;
    general-purpose codecs get row-group blocks.
    """
    values = np.ascontiguousarray(values, dtype=np.float64)
    if codec_name == "uncompressed":
        return UncompressedSource(values, vector_size)
    if codec_name in ("alp", "lwc+alp"):
        return AlpSource(compress(values, vector_size=vector_size))
    if codec_name.endswith("(gp)"):
        return BlockCodecSource.build(codec_name, values, vector_size)
    return PerVectorCodecSource.build(codec_name, values, vector_size)
