"""Tests for the FPC predictive baseline."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.fpc import (
    _leading_zero_bytes,
    fpc_compress,
    fpc_decompress,
)


def bitwise_equal(a, b):
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return a.shape == b.shape and np.array_equal(
        a.view(np.uint64), b.view(np.uint64)
    )


class TestLeadingZeroBytes:
    def test_zero(self):
        assert _leading_zero_bytes(0) == 8

    def test_one_byte(self):
        assert _leading_zero_bytes(0xFF) == 7

    def test_full(self):
        assert _leading_zero_bytes(1 << 63) == 0

    def test_boundaries(self):
        assert _leading_zero_bytes(0x100) == 6
        assert _leading_zero_bytes(0xFFFF) == 6


class TestRoundTrip:
    def test_empty(self):
        assert fpc_decompress(fpc_compress(np.empty(0))).size == 0

    def test_single(self):
        values = np.array([math.pi])
        assert bitwise_equal(fpc_decompress(fpc_compress(values)), values)

    def test_time_series(self):
        rng = np.random.default_rng(0)
        values = np.round(np.cumsum(rng.normal(0, 0.1, 5000)) + 50.0, 2)
        assert bitwise_equal(fpc_decompress(fpc_compress(values)), values)

    def test_special_values(self):
        values = np.array(
            [0.0, -0.0, math.nan, math.inf, -math.inf, 5e-324] * 5
        )
        assert bitwise_equal(fpc_decompress(fpc_compress(values)), values)

    def test_odd_count_header_packing(self):
        # Odd value counts exercise the half-filled final header byte.
        values = np.linspace(0, 1, 777)
        assert bitwise_equal(fpc_decompress(fpc_compress(values)), values)

    @given(
        st.lists(
            st.floats(allow_nan=True, allow_infinity=True, width=64),
            max_size=300,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_arbitrary(self, xs):
        values = np.array(xs, dtype=np.float64)
        assert bitwise_equal(fpc_decompress(fpc_compress(values)), values)


class TestCompressionBehaviour:
    def test_repetitive_data_compresses(self):
        values = np.tile(np.array([1.5, 2.5, 3.5, 4.5]), 1000)
        bits = fpc_compress(values).bits_per_value()
        # Predictors lock onto the cycle: far below 64 bits.
        assert bits < 20

    def test_constant_data_near_header_floor(self):
        values = np.full(4000, 7.25)
        bits = fpc_compress(values).bits_per_value()
        assert bits <= 5.0  # 4-bit header + occasional residual

    def test_random_mantissas_incompressible(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(0, 1, 2000) * math.pi
        bits = fpc_compress(values).bits_per_value()
        assert bits > 50

    def test_registered_in_registry(self):
        from repro.baselines.registry import get_codec

        values = np.round(np.random.default_rng(2).uniform(0, 9, 1000), 1)
        bits = get_codec("fpc").roundtrip_bits_per_value(values)
        assert 0 < bits < 70
