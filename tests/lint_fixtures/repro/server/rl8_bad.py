"""Seeded RL8 violations: every lock-discipline sub-rule fires here."""

import asyncio
import threading
import time


class GuardedCounter:
    """``_count`` is locked in ``add`` but mutated bare in ``wipe``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0

    def add(self, n: int) -> None:
        with self._lock:
            self._count += n

    def wipe(self) -> None:
        self._count = 0  # guarded field mutated without the lock

    def slow_flush(self) -> None:
        with self._lock:
            time.sleep(0.01)  # blocking call while holding the lock

    def re_enter(self) -> None:
        with self._lock:
            with self._lock:  # re-entrant acquisition of the same lock
                self._count += 1


class AsyncHolder:
    """Suspends while holding its lock."""

    def __init__(self) -> None:
        self._lock = asyncio.Lock()

    async def tick(self) -> None:
        async with self._lock:
            await asyncio.sleep(0)  # await while the lock is held


class Crossed:
    """Acquires its two locks in both orders — a deadlock cycle."""

    def __init__(self) -> None:
        self._front_lock = threading.Lock()
        self._back_lock = threading.Lock()
        self.depth = 0

    def forward(self) -> None:
        with self._front_lock:
            with self._back_lock:
                self.depth += 1

    def backward(self) -> None:
        with self._back_lock:
            with self._front_lock:
                self.depth -= 1
