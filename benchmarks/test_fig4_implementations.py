"""E6 — Figure 4: decompression speed across implementations.

The paper sweeps ALP decode over five CPU architectures in three builds
(explicit SIMD, auto-vectorized, forced-scalar) and shows vectorized
execution winning everywhere.  The Python analogue (DESIGN.md,
substitution 4) compares the same decode implemented as

- ``numpy`` array kernels (the auto-vectorized/SIMD stand-in), and
- a pure-Python scalar loop (the ``-fno-vectorize`` stand-in),

over a sweep of datasets.  Shape claim: the vectorized implementation
wins on every dataset, by a large factor.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import dataset_vector, time_callable
from repro.bench.report import format_table, shape_check
from repro.core.alp import (
    alp_decode_vector,
    alp_decode_vector_scalar,
    alp_encode_vector,
)
from repro.core.sampler import find_best_combination
from repro.data import DATASET_ORDER, DATASETS

DATASETS_SWEPT = tuple(
    name for name in DATASET_ORDER if not DATASETS[name].expects_rd
)


def _measure():
    out = {}
    for name in DATASETS_SWEPT:
        vector = dataset_vector(name)
        combo, _ = find_best_combination(vector)
        encoded = alp_encode_vector(vector, combo.exponent, combo.factor)
        vec_speed = time_callable(
            lambda: alp_decode_vector(encoded), vector.size, repeats=3
        )
        scalar_speed = time_callable(
            lambda: alp_decode_vector_scalar(encoded), vector.size, repeats=3
        )
        out[name] = (
            vec_speed.values_per_second,
            scalar_speed.values_per_second,
        )
    return out


def test_fig4_implementations(benchmark, emit):
    speeds = benchmark.pedantic(_measure, rounds=1, iterations=1)

    rows = [
        [
            name,
            speeds[name][0] / 1e6,
            speeds[name][1] / 1e6,
            speeds[name][0] / speeds[name][1],
        ]
        for name in DATASETS_SWEPT
    ]
    speedups = np.array([speeds[n][0] / speeds[n][1] for n in DATASETS_SWEPT])

    checks = [
        shape_check(
            "vectorized decode beats scalar decode on every dataset",
            bool((speedups > 1.0).all()),
        ),
        shape_check(
            f"median vectorized speedup is large ({np.median(speedups):.0f}x;"
            " require >= 5x)",
            float(np.median(speedups)) >= 5.0,
        ),
    ]

    report = format_table(
        ["dataset", "numpy Mv/s", "scalar Mv/s", "speedup"],
        rows,
        float_format="{:.2f}",
        title="Figure 4 — ALP decode: vectorized (numpy) vs scalar "
        "implementation, one vector per dataset",
    )
    report += "\n" + "\n".join(checks)
    emit("fig4_implementations", report)
    assert all(c.startswith("[PASS]") for c in checks), "\n" + "\n".join(checks)
