"""End-to-end serving tests: ops, backpressure, deadlines, drain, degraded.

Everything runs against a real server on an ephemeral port
(``run_in_thread``), talked to with the real blocking client — the same
stack ``alp-repro serve`` / ``loadgen`` use.  Timing-sensitive semantics
(overload, drain, shutting-down) are made deterministic with an
Event-gated injected op rather than sleeps.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import api, obs
from repro.server import (
    protocol,
)
from repro.server import (
    DatasetRegistry,
    DecodedVectorCache,
    ServerClient,
    ServerConfig,
    ServerError,
    run_in_thread,
)
from repro.server.loadgen import (
    LoadgenConfig,
    discover_targets,
    run_loadgen,
    write_loadgen_json,
)
from repro.server.ops import OpResult
from repro.storage.columnfile import ColumnFileReader

VECTOR_SIZE = 128
ROWGROUP_VECTORS = 4
OPTIONS = api.CompressionOptions(
    vector_size=VECTOR_SIZE, rowgroup_vectors=ROWGROUP_VECTORS
)


def bitwise_equal(a, b):
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return a.shape == b.shape and np.array_equal(
        a.view(np.uint64), b.view(np.uint64)
    )


def _values(n=20_000, seed=0):
    rng = np.random.default_rng(seed)
    return np.round(np.cumsum(rng.normal(0, 0.3, n)) + 30.0, 2)


@pytest.fixture
def served(tmp_path):
    """A running server over one column file plus its client factory."""
    values = _values()
    path = tmp_path / "temps.alpc"
    api.write(path, values, OPTIONS)
    cache = DecodedVectorCache(byte_budget=64 << 20)
    registry = DatasetRegistry(cache=cache)
    registry.register_path(path)
    handle = run_in_thread(
        registry, ServerConfig(port=0, workers=2, max_inflight=4)
    )
    try:
        yield handle, values, cache
    finally:
        handle.shutdown()


def _client(handle, **kwargs):
    return ServerClient("127.0.0.1", handle.port, **kwargs)


class TestOps:
    def test_ping_and_datasets(self, served):
        handle, _, _ = served
        with _client(handle) as client:
            assert client.ping()
            described = client.datasets()
            assert "temps" in described
            assert described["temps"]["temps"]["values"] == 20_000

    def test_scan_full_column_bitexact(self, served):
        handle, values, _ = served
        with _client(handle) as client:
            got, fields = client.scan("temps")
            assert bitwise_equal(got, values)
            assert fields["count"] == values.size
            assert fields["rowgroups_quarantined"] == 0

    def test_scan_range_filters_values(self, served):
        handle, values, _ = served
        low, high = 28.0, 31.0
        with _client(handle) as client:
            got, _ = client.scan("temps", low=low, high=high)
        expect = values[(values >= low) & (values <= high)]
        assert bitwise_equal(got, expect)

    def test_sum_matches_numpy(self, served):
        handle, values, _ = served
        with _client(handle) as client:
            total, fields = client.sum("temps")
            assert total == pytest.approx(float(values.sum()), rel=1e-12)
            assert fields["count"] == values.size
            ranged, _ = client.sum("temps", low=28.0, high=31.0)
        mask = (values >= 28.0) & (values <= 31.0)
        assert ranged == pytest.approx(float(values[mask].sum()), rel=1e-12)

    def test_comp_reports_bits(self, served):
        handle, values, _ = served
        with _client(handle) as client:
            response = client.comp("temps", codec="alp")
        assert response["codec"] == "alp"
        assert response["count"] == values.size
        assert 0 < response["bits_per_value"] < 64

    def test_compress_decompress_roundtrip(self, served):
        handle, values, _ = served
        with _client(handle) as client:
            column, fields = client.compress(values[:4096])
            assert fields["count"] == 4096
            back = client.decompress(column)
        assert bitwise_equal(back, values[:4096])

    def test_explicit_column_name(self, served):
        handle, values, _ = served
        with _client(handle) as client:
            got, _ = client.scan("temps", column="temps")
        assert bitwise_equal(got, values)


class TestErrors:
    def test_unknown_op(self, served):
        handle, _, _ = served
        with _client(handle) as client:
            with pytest.raises(ServerError) as err:
                client.request("nope")
        assert err.value.code == "bad_request"

    def test_unknown_dataset(self, served):
        handle, _, _ = served
        with _client(handle) as client:
            with pytest.raises(ServerError) as err:
                client.scan("missing")
        assert err.value.code == "not_found"

    def test_unknown_column(self, served):
        handle, _, _ = served
        with _client(handle) as client:
            with pytest.raises(ServerError) as err:
                client.scan("temps", column="other")
        assert err.value.code == "not_found"

    def test_half_open_range_rejected(self, served):
        handle, _, _ = served
        with _client(handle) as client:
            with pytest.raises(ServerError) as err:
                client.request("scan", {"dataset": "temps", "low": 1.0})
        assert err.value.code == "bad_request"

    def test_unknown_codec_rejected(self, served):
        handle, _, _ = served
        with _client(handle) as client:
            with pytest.raises(ServerError) as err:
                client.comp("temps", codec="middle-out")
        assert err.value.code == "bad_request"

    def test_malformed_decompress_payload(self, served):
        handle, _, _ = served
        with _client(handle) as client:
            with pytest.raises(ServerError) as err:
                client.request("decompress", payload=b"\x00" * 24)
        assert err.value.code == "bad_request"

    def test_bad_frame_answers_then_disconnects(self, served):
        handle, _, _ = served
        client = _client(handle)
        try:
            client._sock.sendall(b"XXXX" + b"\x00" * 12)
            header, _ = protocol.read_frame(client._read_exactly)
            assert header["ok"] is False
            assert header["error"] == "bad_request"
            # Framing is unrecoverable: the server hangs up afterwards.
            with pytest.raises(ConnectionError):
                protocol.read_frame(client._read_exactly)
        finally:
            client.close()


class TestDeadlines:
    def test_deadline_zero_expires(self, served):
        handle, _, _ = served
        with _client(handle) as client:
            with pytest.raises(ServerError) as err:
                client.request("ping", {"deadline_ms": 0})
        assert err.value.code == "deadline_exceeded"

    def test_client_default_deadline_applies(self, served):
        handle, _, _ = served
        with _client(handle, deadline_ms=0) as client:
            with pytest.raises(ServerError) as err:
                client.request("ping")
        assert err.value.code == "deadline_exceeded"

    def test_connection_survives_deadline(self, served):
        handle, _, _ = served
        with _client(handle) as client:
            with pytest.raises(ServerError):
                client.request("ping", {"deadline_ms": 0})
            assert client.ping()  # same connection keeps working


def _wait_until(predicate, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.005)


class _GatedOp:
    """An injected op that blocks until released — deterministic load."""

    def __init__(self, server):
        self.gate = threading.Event()
        server.register_op("block", self)

    def __call__(self, header, payload):
        if not self.gate.wait(timeout=30):
            raise RuntimeError("gated op leaked past its test")
        return OpResult(fields={"blocked": True})

    def fill(self, handle, count):
        """Occupy ``count`` admission slots; returns (threads, results)."""
        results: dict[int, object] = {}

        def fire(i):
            try:
                with ServerClient("127.0.0.1", handle.port) as client:
                    results[i], _ = client.request("block")
            except ServerError as exc:
                results[i] = exc.code

        threads = [
            threading.Thread(target=fire, args=(i,)) for i in range(count)
        ]
        for t in threads:
            t.start()
        # Admission happens at submit time, before a worker thread is
        # free, so poll the inflight gauge rather than op starts.
        _wait_until(lambda: handle.server.inflight >= count)
        return threads, results


class TestBackpressure:
    def test_overloaded_frame_when_full(self, served):
        handle, _, _ = served
        gated = _GatedOp(handle.server)
        threads, results = gated.fill(handle, 4)  # max_inflight=4
        try:
            with _client(handle) as client:
                with pytest.raises(ServerError) as err:
                    client.ping()
            assert err.value.code == "overloaded"
            assert err.value.is_overloaded
        finally:
            gated.gate.set()
            for t in threads:
                t.join(timeout=10)
        # Every admitted request still completed successfully.
        assert all(
            isinstance(r, dict) and r.get("blocked") for r in results.values()
        )

    def test_capacity_recovers_after_release(self, served):
        handle, _, _ = served
        gated = _GatedOp(handle.server)
        threads, _ = gated.fill(handle, 4)
        gated.gate.set()
        for t in threads:
            t.join(timeout=10)
        with _client(handle) as client:
            assert client.ping()


class TestGracefulShutdown:
    def test_drain_completes_inflight(self, tmp_path):
        values = _values(4_000)
        path = tmp_path / "v.alpc"
        api.write(path, values, OPTIONS)
        registry = DatasetRegistry()
        registry.register_path(path)
        handle = run_in_thread(
            registry, ServerConfig(port=0, workers=2, max_inflight=4)
        )
        gated = _GatedOp(handle.server)
        threads, results = gated.fill(handle, 2)
        shut = threading.Thread(target=handle.shutdown)
        shut.start()
        try:
            # Shutdown must be draining, not done: both ops still gated.
            shut.join(timeout=0.5)
            assert shut.is_alive()
        finally:
            gated.gate.set()
        for t in threads:
            t.join(timeout=10)
        shut.join(timeout=10)
        assert not shut.is_alive()
        # No dropped requests: both responses arrived after the drain.
        assert all(
            isinstance(r, dict) and r.get("blocked") for r in results.values()
        )

    def test_new_requests_rejected_while_draining(self, tmp_path):
        values = _values(4_000)
        path = tmp_path / "v.alpc"
        api.write(path, values, OPTIONS)
        registry = DatasetRegistry()
        registry.register_path(path)
        handle = run_in_thread(
            registry, ServerConfig(port=0, workers=2, max_inflight=4)
        )
        gated = _GatedOp(handle.server)
        threads, _ = gated.fill(handle, 1)
        # An idle connection opened before the drain starts.  One ping
        # first: a connect alone may still sit in the accept backlog
        # when the listener closes, never reaching a handler.
        bystander = ServerClient("127.0.0.1", handle.port)
        assert bystander.ping()
        shut = threading.Thread(target=handle.shutdown)
        shut.start()
        try:
            shut.join(timeout=0.5)
            assert shut.is_alive()
            with pytest.raises(ServerError) as err:
                bystander.ping()
            assert err.value.code == "shutting_down"
        finally:
            gated.gate.set()
            bystander.close()
        for t in threads:
            t.join(timeout=10)
        shut.join(timeout=10)


class TestDegradedServing:
    def test_corrupt_rowgroup_quarantined_not_fatal(self, tmp_path):
        values = _values(VECTOR_SIZE * ROWGROUP_VECTORS * 4)
        path = tmp_path / "c.alpc"
        api.write(path, values, OPTIONS)
        meta = ColumnFileReader(path).metadata[1]
        data = bytearray(path.read_bytes())
        data[meta.offset] ^= 0x20
        path.write_bytes(bytes(data))

        registry = DatasetRegistry(degraded=True)
        registry.register_path(path, name="dmg")
        handle = run_in_thread(registry, ServerConfig(port=0, workers=2))
        try:
            with _client(handle) as client:
                got, fields = client.scan("dmg")
            assert fields["rowgroups_quarantined"] == 1
            assert fields["values_quarantined"] == meta.count
            rg = VECTOR_SIZE * ROWGROUP_VECTORS
            expect = np.concatenate([values[:rg], values[2 * rg :]])
            assert bitwise_equal(got, expect)
        finally:
            handle.shutdown()


class TestCacheWarmth:
    def test_second_scan_hits_cache(self, served):
        handle, values, cache = served
        with _client(handle) as client:
            client.scan("temps")
            cold = cache.stats()
            client.scan("temps")
            warm = cache.stats()
        assert cold.misses > 0
        assert warm.misses == cold.misses
        assert warm.hits >= cold.misses


class TestObsCounters:
    def test_request_counters_recorded(self, served):
        handle, _, _ = served
        obs.enable()
        obs.reset()
        try:
            with _client(handle) as client:
                client.ping()
                client.scan("temps")
                with pytest.raises(ServerError):
                    client.request("ping", {"deadline_ms": 0})
            # The expired request's worker slot is released slightly
            # after its deadline frame; wait before reading the gauge.
            _wait_until(lambda: handle.server.inflight == 0)
            snap = obs.snapshot()
            counters = snap["counters"]
            assert counters["server.requests"] == 3
            assert counters["server.deadline_exceeded"] == 1
            assert counters["server.bytes_out"] > 0
            assert snap["gauges"]["server.inflight"] == 0
        finally:
            obs.disable()
            obs.reset()


class TestLoadgen:
    def test_closed_loop_run_clean(self, served, tmp_path):
        handle, _, _ = served
        config = LoadgenConfig(
            port=handle.port, clients=3, requests_per_client=8
        )
        targets = discover_targets(config)
        assert targets == [("temps", "temps")]
        result = run_loadgen(config, targets)
        assert result.requests == 24
        assert result.error_count == 0
        summary = result.summary()
        assert summary["latency_p50_ms"] <= summary["latency_p99_ms"]
        assert summary["requests_per_s"] > 0

        out = tmp_path / "BENCH_loadgen.json"
        write_loadgen_json(out, config, result)
        from repro.bench.records import read_bench_json

        document, records = read_bench_json(out)
        assert document["config"]["mode"] == "loadgen"
        assert records[0].key == ("served", "loadgen")
        assert records[0].counters["requests"] == 24

    def test_warm_cache_speeds_up_scans(self, served):
        # Acceptance: a warm-cache loadgen pass must beat the cold pass
        # on scan throughput.  Wall-clock comparisons flake under CI
        # noise, so compare decode work instead: the cold pass decodes
        # row-groups, the warm pass serves them from cache.
        handle, _, cache = served
        config = LoadgenConfig(
            port=handle.port,
            clients=2,
            requests_per_client=6,
            ops=("scan",),
        )
        before = cache.stats()
        run_loadgen(config)
        cold = cache.stats()
        run_loadgen(config)
        warm = cache.stats()
        assert cold.misses > before.misses  # cold pass paid decodes
        assert warm.misses == cold.misses  # warm pass paid none
        assert warm.hits > cold.hits

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LoadgenConfig(clients=0)
        with pytest.raises(ValueError):
            LoadgenConfig(ops=("scan", "explode"))


class TestServerConfigValidation:
    def test_bad_workers(self):
        with pytest.raises(ValueError):
            ServerConfig(workers=0)

    def test_bad_max_inflight(self):
        with pytest.raises(ValueError):
            ServerConfig(max_inflight=0)
