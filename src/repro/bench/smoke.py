"""The CI benchmark smoke run: a small, fixed-seed bench subset.

``python -m repro.bench.smoke --out BENCH_smoke.json`` measures ALP on
four synthetic datasets chosen to cover both schemes — decimal-heavy
columns (``City-Temp``, ``Stocks-DE``, ``Gov/10``) that take the main
ALP path and ``POI-lat`` whose full-precision mantissas force the
ALP_rd fallback — and writes the structured document the regression
gate (:mod:`repro.bench.gate`) checks against the checked-in baseline
``benchmarks/baselines/BENCH_smoke_baseline.json``.

The synthetic generators are deterministic (fixed seeds derived from
the dataset name), so ``bits_per_value`` is bit-for-bit reproducible
across machines; only the throughput fields vary, which is why the gate
compares the calibration-relative ``*_rel`` numbers.

The document also carries the kernel micro-benchmark records
(:mod:`repro.bench.kernels`) under ``kernels/*`` pseudo-dataset keys,
so a regression in the bit-packing or FFOR kernels is caught even when
the end-to-end numbers hide it.
"""

from __future__ import annotations

import argparse
import sys

#: The fixed smoke subset (dataset names from :mod:`repro.data`).
SMOKE_DATASETS = ["City-Temp", "Stocks-DE", "Gov/10", "POI-lat"]
SMOKE_CODECS = ["alp"]
#: Large enough that one decompress is milliseconds, not microseconds —
#: best-of-N over sub-millisecond timings is scheduler noise.
SMOKE_N = 65_536
SMOKE_REPEATS = 7


def run_smoke(
    out_path: str,
    n: int = SMOKE_N,
    repeats: int = SMOKE_REPEATS,
) -> dict:
    """Run the smoke subset and write ``out_path``; returns the document."""
    from repro.bench.harness import run_structured_bench

    document, records = run_structured_bench(
        SMOKE_DATASETS,
        SMOKE_CODECS,
        n=n,
        repeats=repeats,
        out_path=out_path,
        include_kernels=True,
    )
    for record in records:
        print(
            f"{record.dataset:18s} {record.codec:6s} "
            f"{record.bits_per_value:6.2f} bits/value  "
            f"compress {record.compress_mbps:8.1f} MB/s "
            f"(rel {record.compress_rel:.4f})  "
            f"decompress {record.decompress_mbps:8.1f} MB/s "
            f"(rel {record.decompress_rel:.4f})"
        )
    print(f"wrote {len(records)} records to {out_path}")
    return document


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.smoke",
        description="fixed-seed benchmark smoke run (emits BENCH_*.json)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_smoke.json",
        help="output JSON path (default BENCH_smoke.json)",
    )
    parser.add_argument(
        "--n", type=int, default=SMOKE_N, help="values per dataset"
    )
    parser.add_argument(
        "--repeats", type=int, default=SMOKE_REPEATS, help="timing repeats"
    )
    args = parser.parse_args(argv)
    run_smoke(args.out, n=args.n, repeats=args.repeats)
    return 0


if __name__ == "__main__":
    sys.exit(main())
