"""Unit tests for the bit-packing primitive."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.encodings.bitpack import (
    bit_width_required,
    pack_bits,
    packed_size_bytes,
    unpack_bits,
)


class TestBitWidthRequired:
    def test_empty(self):
        assert bit_width_required(np.empty(0, dtype=np.uint64)) == 0

    def test_all_zero(self):
        assert bit_width_required(np.zeros(5, dtype=np.uint64)) == 0

    def test_powers_of_two(self):
        for w in range(1, 64):
            arr = np.array([(1 << w) - 1], dtype=np.uint64)
            assert bit_width_required(arr) == w

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bit_width_required(np.array([-1], dtype=np.int64))

    def test_rejects_mixed_sign(self):
        # Regression: the old guard checked ``values.max() < 0``, so an
        # array whose *max* was positive slipped past even with negative
        # entries, and numpy's int→uint view made the width nonsense.
        with pytest.raises(ValueError):
            bit_width_required(np.array([-1, 5], dtype=np.int64))

    def test_signed_nonnegative_ok(self):
        assert bit_width_required(np.array([0, 5, 7], dtype=np.int64)) == 3

    def test_unsigned_full_range(self):
        # uint64 can hold 2**64 - 1, which a signed min() check would
        # misread; the dtype-kind guard must skip the sign test entirely.
        arr = np.array([0, 2**64 - 1], dtype=np.uint64)
        assert bit_width_required(arr) == 64

    def test_python_list_input(self):
        assert bit_width_required([1, 2, 255]) == 8
        with pytest.raises(ValueError):
            bit_width_required([3, -2])


class TestPackUnpack:
    def test_simple(self):
        values = np.array([1, 2, 3], dtype=np.uint64)
        assert np.array_equal(unpack_bits(pack_bits(values, 2), 2, 3), values)

    def test_zero_width(self):
        assert pack_bits(np.zeros(10, dtype=np.uint64), 0) == b""
        assert np.array_equal(
            unpack_bits(b"", 0, 10), np.zeros(10, dtype=np.uint64)
        )

    def test_zero_width_rejects_nonzero_values(self):
        with pytest.raises(ValueError):
            pack_bits(np.array([1], dtype=np.uint64), 0)

    def test_width_64(self):
        values = np.array([0, 2**64 - 1, 123456789], dtype=np.uint64)
        assert np.array_equal(
            unpack_bits(pack_bits(values, 64), 64, 3), values
        )

    def test_overflow_detected(self):
        with pytest.raises(ValueError):
            pack_bits(np.array([4], dtype=np.uint64), 2)

    def test_packed_size(self):
        values = np.arange(100, dtype=np.uint64)
        width = bit_width_required(values)
        payload = pack_bits(values, width)
        assert len(payload) == packed_size_bytes(100, width)

    def test_unpack_short_buffer_rejected(self):
        with pytest.raises(ValueError):
            unpack_bits(b"\x00", 8, 2)

    def test_invalid_widths_rejected(self):
        with pytest.raises(ValueError):
            pack_bits(np.array([0], dtype=np.uint64), 65)
        with pytest.raises(ValueError):
            unpack_bits(b"", -1, 0)

    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=0, max_value=300),
        st.randoms(use_true_random=False),
    )
    def test_roundtrip_random(self, width, count, rnd):
        values = np.array(
            [rnd.getrandbits(width) for _ in range(count)], dtype=np.uint64
        )
        assert np.array_equal(
            unpack_bits(pack_bits(values, width), width, count), values
        )

    def test_every_width_roundtrips(self):
        rng = np.random.default_rng(3)
        for width in range(1, 65):
            if width == 64:
                values = rng.integers(
                    0, 2**63, size=17, dtype=np.uint64
                ) * np.uint64(2) + rng.integers(0, 2, size=17, dtype=np.uint64)
            else:
                values = rng.integers(
                    0, 1 << width, size=17, dtype=np.uint64
                )
            assert np.array_equal(
                unpack_bits(pack_bits(values, width), width, 17), values
            ), f"width {width} failed"


def _pattern_values(pattern: str, width: int, count: int) -> np.ndarray:
    """Deterministic test vectors per (pattern, width)."""
    if width == 0:
        return np.zeros(count, dtype=np.uint64)
    mask = np.uint64((1 << width) - 1) if width < 64 else np.uint64(2**64 - 1)
    if pattern == "all-ones":
        return np.full(count, mask, dtype=np.uint64)
    if pattern == "alternating-max-zero":
        values = np.zeros(count, dtype=np.uint64)
        values[::2] = mask
        return values
    if pattern == "alternating-bits":
        return np.full(
            count, np.uint64(0x5555555555555555) & mask, dtype=np.uint64
        )
    raise AssertionError(pattern)


PATTERNS = ("all-ones", "alternating-max-zero", "alternating-bits")


class TestWordParallelPacking:
    """Round-trips and byte-equivalence of the word-parallel kernel.

    Counts 1 / 7 / 1024 cover a single field, a last word reachable only
    by a straddling field's spill (the reduceat edge case), and the full
    vector size; widths 0..64 cover every straddle geometry, including
    the byte-aligned cast and byte-column fast paths.
    """

    @pytest.mark.parametrize("count", [1, 7, 1024])
    @pytest.mark.parametrize("width", range(65))
    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_roundtrip(self, pattern, width, count):
        values = _pattern_values(pattern, width, count)
        payload = pack_bits(values, width)
        assert len(payload) == packed_size_bytes(count, width)
        assert np.array_equal(unpack_bits(payload, width, count), values)

    @pytest.mark.parametrize("count", [1, 7, 1024])
    @pytest.mark.parametrize("width", range(65))
    def test_byte_identical_to_bitmatrix(self, width, count):
        from repro.encodings.bitpack import pack_bits_bitmatrix

        rng = np.random.default_rng(width * 131 + count)
        if width == 0:
            values = np.zeros(count, dtype=np.uint64)
        elif width == 64:
            values = rng.integers(
                0, 2**63, size=count, dtype=np.uint64
            ) * np.uint64(2) + rng.integers(0, 2, size=count, dtype=np.uint64)
        else:
            values = rng.integers(0, 1 << width, size=count, dtype=np.uint64)
        assert pack_bits(values, width) == pack_bits_bitmatrix(values, width)

    @pytest.mark.parametrize("width", [3, 16, 48, 57, 63, 64])
    def test_bitmatrix_payload_decodes_identically(self, width):
        # The new gather must read the old packer's bytes bit-exactly
        # (stored columns written before the rewrite stay readable).
        from repro.encodings.bitpack import pack_bits_bitmatrix

        rng = np.random.default_rng(width)
        values = rng.integers(0, 2**63, size=200, dtype=np.uint64) >> np.uint64(
            64 - width
        )
        payload = pack_bits_bitmatrix(values, width)
        assert np.array_equal(unpack_bits(payload, width, 200), values)

    def test_word_straddle_boundaries(self):
        # Width 63: field i straddles words i-1/i for every i >= 1, the
        # densest straddle geometry; all-ones makes any dropped or
        # doubled spill bit visible.
        values = np.full(65, (1 << 63) - 1, dtype=np.uint64)
        payload = pack_bits(values, 63)
        assert np.array_equal(unpack_bits(payload, 63, 65), values)

    def test_known_min_short_circuits(self):
        values = np.array([3, 5, 9], dtype=np.int64)
        assert bit_width_required(values, known_min=3) == 4

    def test_plan_cache_isolated_between_shapes(self):
        # Same width, different counts, interleaved: cached plans must
        # not leak across shapes.
        a = np.arange(7, dtype=np.uint64)
        b = np.arange(100, dtype=np.uint64)
        for values in (a, b, a, b):
            payload = pack_bits(values, 7)
            assert np.array_equal(
                unpack_bits(payload, 7, values.size), values
            )
