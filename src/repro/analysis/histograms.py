"""Distribution views over a column's bit patterns and decimals.

Section 2 of the paper motivates ALP with distributions: decimal
precision per value, IEEE 754 exponents, XOR leading/trailing zeros.
These helpers compute those distributions as plain ``dict`` histograms
and render compact ASCII bar charts, powering the
``examples/dataset_analysis.py`` walkthrough and the diagnosis report.
"""

from __future__ import annotations

import numpy as np

from repro.alputil.bits import (
    ieee754_exponent,
    leading_zeros64,
    trailing_zeros64,
    xor_with_previous,
)
from repro.alputil.decimals import decimal_places_array


def precision_histogram(values: np.ndarray) -> dict[int, int]:
    """Histogram of visible decimal precision per value."""
    precisions = decimal_places_array(np.asarray(values, dtype=np.float64))
    unique, counts = np.unique(precisions, return_counts=True)
    return dict(zip(unique.tolist(), counts.tolist(), strict=True))


def exponent_histogram(
    values: np.ndarray, bucket: int = 1
) -> dict[int, int]:
    """Histogram of biased IEEE 754 exponents (optionally bucketed)."""
    exponents = ieee754_exponent(np.asarray(values, dtype=np.float64))
    if bucket > 1:
        exponents = (exponents // bucket) * bucket
    unique, counts = np.unique(exponents, return_counts=True)
    return dict(zip(unique.tolist(), counts.tolist(), strict=True))


def xor_zero_histograms(
    values: np.ndarray, bucket: int = 4
) -> tuple[dict[int, int], dict[int, int]]:
    """(leading, trailing) zero-bit histograms of XOR-with-previous."""
    xors = xor_with_previous(np.asarray(values, dtype=np.float64))[1:]
    if xors.size == 0:
        return {}, {}
    lead = (leading_zeros64(xors) // bucket) * bucket
    trail = (trailing_zeros64(xors) // bucket) * bucket
    lead_u, lead_c = np.unique(lead, return_counts=True)
    trail_u, trail_c = np.unique(trail, return_counts=True)
    return (
        dict(zip(lead_u.tolist(), lead_c.tolist(), strict=True)),
        dict(zip(trail_u.tolist(), trail_c.tolist(), strict=True)),
    )


def render_histogram(
    histogram: dict[int, int],
    title: str,
    width: int = 40,
    label: str = "",
) -> str:
    """ASCII bar chart of a histogram, keys sorted ascending."""
    if not histogram:
        return f"{title}\n  (empty)"
    total = sum(histogram.values())
    peak = max(histogram.values())
    lines = [title]
    for key in sorted(histogram):
        count = histogram[key]
        bar = "#" * max(1, round(width * count / peak))
        share = count / total
        lines.append(f"  {label}{key:>5} {bar:<{width}} {share:6.1%}")
    return "\n".join(lines)
