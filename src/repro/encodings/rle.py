"""Run-Length Encoding (FastLanes building block).

Stores each maximal run of equal values once, together with its length.
Run values and run lengths are each bit-packed with FOR, following the
paper's observation that a cascading format can "use RLE and then
separately encode Run Lengths and Run Values" (Section 3.1).

RLE operates on int64 payloads; the cascade layer applies it to the raw
*bit patterns* of doubles (so NaNs and -0.0 round-trip exactly) before
handing the distinct run values to ALP.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.encodings.for_ import ForEncoded, for_decode, for_encode


@dataclass(frozen=True)
class RleEncoded:
    """An RLE-encoded integer vector."""

    run_values: ForEncoded
    run_lengths: ForEncoded
    count: int

    @property
    def run_count(self) -> int:
        """Number of runs found in the input."""
        return self.run_values.count

    def size_bits(self) -> int:
        """Footprint of both FOR-compressed streams."""
        return self.run_values.size_bits() + self.run_lengths.size_bits()


def run_boundaries(values: np.ndarray) -> np.ndarray:
    """Indices at which a new run starts (always includes index 0)."""
    values = np.asarray(values)
    if values.size == 0:
        return np.empty(0, dtype=np.int64)
    changes = np.flatnonzero(values[1:] != values[:-1]) + 1
    return np.concatenate(([0], changes)).astype(np.int64)


def rle_encode(values: np.ndarray) -> RleEncoded:
    """Encode int64 values as (run value, run length) pairs."""
    values = np.ascontiguousarray(values, dtype=np.int64)
    starts = run_boundaries(values)
    if starts.size == 0:
        empty = for_encode(np.empty(0, dtype=np.int64))
        return RleEncoded(run_values=empty, run_lengths=empty, count=0)
    ends = np.concatenate((starts[1:], [values.size]))
    lengths = (ends - starts).astype(np.int64)
    return RleEncoded(
        run_values=for_encode(values[starts]),
        run_lengths=for_encode(lengths),
        count=values.size,
    )


def rle_decode(encoded: RleEncoded) -> np.ndarray:
    """Decode a :class:`RleEncoded` vector back to int64."""
    if encoded.count == 0:
        return np.empty(0, dtype=np.int64)
    run_values = for_decode(encoded.run_values)
    run_lengths = for_decode(encoded.run_lengths)
    return np.repeat(run_values, run_lengths)
