"""Machine-readable benchmark records (the ``BENCH_*.json`` format).

The text tables under ``benchmarks/results/`` are for humans; CI and
trend tooling consume this JSON instead.  One document holds a list of
:class:`BenchRecord` — one per (dataset, codec) — plus the run
configuration and a *calibration* throughput measured in the same
process (a codec-shaped per-vector numpy workload — see
:func:`repro.bench.harness.calibration_mbps`), so that speed
comparisons across machines can use the machine-relative ``*_rel``
fields rather than raw MB/s.

Document layout (``SCHEMA_VERSION`` = 1)::

    {
      "kind": "alp-repro-bench",
      "schema_version": 1,
      "created_unix": 1754000000.0,
      "environment": {"python": "...", "numpy": "...", "platform": "..."},
      "config": {"n": 16384, "repeats": 3, ...},
      "calibration_mbps": 9000.0,
      "records": [
        {
          "dataset": "City-Temp", "codec": "alp", "n": 16384,
          "bits_per_value": 10.7, "compression_ratio": 5.98,
          "compress_mbps": 350.0, "decompress_mbps": 2100.0,
          "compress_rel": 0.039, "decompress_rel": 0.23,
          "spans": {"compressor.compress": {"count": 1, ...}, ...},
          "counters": {"alp.vectors_encoded": 16, ...}
        }, ...
      ]
    }

``spans`` / ``counters`` are the :mod:`repro.obs` snapshot of one
instrumented compress + decompress of that record's column, giving the
per-stage breakdown the regression gate and EXPERIMENTS.md discuss.

:func:`validate_document` is deliberately dependency-free (no
jsonschema): it returns a list of human-readable problems, empty when
the document conforms.
"""

from __future__ import annotations

import json
import math
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

SCHEMA_VERSION = 1
DOCUMENT_KIND = "alp-repro-bench"

#: Required numeric fields of one record (all must be finite and >= 0).
RECORD_NUMERIC_FIELDS = (
    "bits_per_value",
    "compression_ratio",
    "compress_mbps",
    "decompress_mbps",
    "compress_rel",
    "decompress_rel",
)

#: Optional memory-accounting fields (absent in pre-zero-copy documents
#: and in records that did not measure them).  ``peak_rss_bytes`` is the
#: process high-water mark (``ru_maxrss``); ``large_allocs`` is the
#: tracemalloc-derived count of large-allocation-equivalents per
#: measured operation (see :func:`repro.bench.harness.traced_large_allocs`)
#: — the field the trajectory watches so a reintroduced payload copy
#: shows up as a number, not a vibe.
RECORD_MEMORY_FIELDS = ("peak_rss_bytes", "large_allocs")


@dataclass(frozen=True)
class BenchRecord:
    """One (dataset, codec) measurement with its per-stage breakdown."""

    dataset: str
    codec: str
    n: int
    bits_per_value: float
    compression_ratio: float
    compress_mbps: float
    decompress_mbps: float
    compress_rel: float
    decompress_rel: float
    spans: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    peak_rss_bytes: int | None = None
    large_allocs: int | None = None

    def to_dict(self) -> dict:
        out = {
            "dataset": self.dataset,
            "codec": self.codec,
            "n": self.n,
            "bits_per_value": self.bits_per_value,
            "compression_ratio": self.compression_ratio,
            "compress_mbps": self.compress_mbps,
            "decompress_mbps": self.decompress_mbps,
            "compress_rel": self.compress_rel,
            "decompress_rel": self.decompress_rel,
            "spans": self.spans,
            "counters": self.counters,
        }
        for name in RECORD_MEMORY_FIELDS:
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        return out

    @classmethod
    def from_dict(cls, raw: dict) -> "BenchRecord":
        return cls(
            dataset=raw["dataset"],
            codec=raw["codec"],
            n=int(raw["n"]),
            bits_per_value=float(raw["bits_per_value"]),
            compression_ratio=float(raw["compression_ratio"]),
            compress_mbps=float(raw["compress_mbps"]),
            decompress_mbps=float(raw["decompress_mbps"]),
            compress_rel=float(raw["compress_rel"]),
            decompress_rel=float(raw["decompress_rel"]),
            spans=dict(raw.get("spans", {})),
            counters=dict(raw.get("counters", {})),
            peak_rss_bytes=(
                int(raw["peak_rss_bytes"])
                if raw.get("peak_rss_bytes") is not None
                else None
            ),
            large_allocs=(
                int(raw["large_allocs"])
                if raw.get("large_allocs") is not None
                else None
            ),
        )

    @property
    def key(self) -> tuple[str, str]:
        """Identity of the measurement inside a document."""
        return (self.dataset, self.codec)


def environment_info() -> dict:
    """Interpreter/library/platform fingerprint stored in the document."""
    import numpy

    return {
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "platform": platform.platform(),
    }


def build_document(
    records: list[BenchRecord],
    config: dict,
    calibration_mbps: float,
) -> dict:
    """Assemble a schema-conforming document from finished records."""
    return {
        "kind": DOCUMENT_KIND,
        "schema_version": SCHEMA_VERSION,
        "created_unix": time.time(),
        "environment": environment_info(),
        "config": dict(config),
        "calibration_mbps": calibration_mbps,
        "records": [record.to_dict() for record in records],
    }


def write_bench_json(
    path: str | Path,
    records: list[BenchRecord],
    config: dict,
    calibration_mbps: float,
) -> dict:
    """Write a ``BENCH_*.json`` document; returns the written dict."""
    document = build_document(records, config, calibration_mbps)
    problems = validate_document(document)
    if problems:
        raise ValueError(
            "refusing to write non-conforming bench JSON:\n  "
            + "\n  ".join(problems)
        )
    Path(path).write_text(json.dumps(document, indent=2) + "\n")
    return document


def read_bench_json(path: str | Path) -> tuple[dict, list[BenchRecord]]:
    """Load and validate a ``BENCH_*.json``; returns (document, records)."""
    document = json.loads(Path(path).read_text())
    problems = validate_document(document)
    if problems:
        raise ValueError(
            f"{path} is not a valid bench document:\n  "
            + "\n  ".join(problems)
        )
    records = [BenchRecord.from_dict(raw) for raw in document["records"]]
    return document, records


def validate_document(document: object) -> list[str]:
    """Structural validation; returns a list of problems (empty = valid)."""
    problems: list[str] = []
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    if document.get("kind") != DOCUMENT_KIND:
        problems.append(f"kind must be {DOCUMENT_KIND!r}")
    if document.get("schema_version") != SCHEMA_VERSION:
        problems.append(f"schema_version must be {SCHEMA_VERSION}")
    calibration = document.get("calibration_mbps")
    if not isinstance(calibration, (int, float)) or calibration <= 0:
        problems.append("calibration_mbps must be a positive number")
    if not isinstance(document.get("config"), dict):
        problems.append("config must be an object")
    if not isinstance(document.get("environment"), dict):
        problems.append("environment must be an object")
    records = document.get("records")
    if not isinstance(records, list) or not records:
        problems.append("records must be a non-empty list")
        return problems
    seen: set[tuple[str, str]] = set()
    for i, record in enumerate(records):
        problems.extend(_validate_record(i, record, seen))
    return problems


def _validate_record(
    index: int, record: object, seen: set[tuple[str, str]]
) -> list[str]:
    where = f"records[{index}]"
    if not isinstance(record, dict):
        return [f"{where} is not an object"]
    problems = []
    for name in ("dataset", "codec"):
        if not isinstance(record.get(name), str) or not record.get(name):
            problems.append(f"{where}.{name} must be a non-empty string")
    if not isinstance(record.get("n"), int) or record.get("n", 0) <= 0:
        problems.append(f"{where}.n must be a positive integer")
    for name in RECORD_NUMERIC_FIELDS:
        value = record.get(name)
        if (
            not isinstance(value, (int, float))
            or isinstance(value, bool)
            or not math.isfinite(value)
            or value < 0
        ):
            problems.append(
                f"{where}.{name} must be a finite non-negative number"
            )
    for name in ("spans", "counters"):
        if not isinstance(record.get(name), dict):
            problems.append(f"{where}.{name} must be an object")
    for name in RECORD_MEMORY_FIELDS:
        value = record.get(name)
        if value is not None and (
            isinstance(value, bool)
            or not isinstance(value, int)
            or value < 0
        ):
            problems.append(
                f"{where}.{name} must be a non-negative integer when present"
            )
    key = (record.get("dataset"), record.get("codec"))
    if all(isinstance(part, str) for part in key):
        if key in seen:
            problems.append(f"{where} duplicates (dataset, codec) {key}")
        seen.add(key)  # type: ignore[arg-type]
    return problems
