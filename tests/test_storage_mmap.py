"""The zero-copy mmap read path: parity, fallbacks, lifetime guards."""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.storage.columnfile import (
    MMAP_MIN_BYTES,
    ColumnFileReader,
    ColumnFileWriter,
)
from repro.storage.errors import BufferLifetimeError


def special_values(n: int, seed: int = 7) -> np.ndarray:
    """Decimal-like doubles salted with the IEEE special cases."""
    rng = np.random.default_rng(seed)
    values = np.round(rng.normal(20.0, 8.0, n), 3)
    values[::97] = np.nan
    values[1::151] = np.inf
    values[2::163] = -np.inf
    values[3::119] = -0.0
    return values


@pytest.fixture(scope="module")
def large_file(tmp_path_factory):
    """A v3 file comfortably above the mmap threshold (several rowgroups)."""
    path = tmp_path_factory.mktemp("mmap") / "large.alpc"
    values = special_values(120_000)
    with ColumnFileWriter(path, rowgroup_vectors=10) as writer:
        writer.write_values(values)
    assert path.stat().st_size >= MMAP_MIN_BYTES
    return path, values


class TestParity:
    def test_mapped_reader_is_mapped(self, large_file):
        path, _ = large_file
        with ColumnFileReader(path, mmap=True) as reader:
            assert reader.mapped
            assert not reader.closed

    def test_mmap_buffered_bit_identical(self, large_file):
        path, values = large_file
        with ColumnFileReader(path) as buffered:
            expect = buffered.read_all()
        with ColumnFileReader(path, mmap=True) as mapped:
            got = mapped.read_all()
        np.testing.assert_array_equal(
            expect.view(np.uint64), got.view(np.uint64)
        )
        np.testing.assert_array_equal(
            expect.view(np.uint64), values.view(np.uint64)
        )

    @pytest.mark.parametrize("mmap", [False, True])
    def test_read_all_out_matches_alloc(self, large_file, mmap):
        path, values = large_file
        with ColumnFileReader(path, mmap=mmap) as reader:
            target = np.empty(reader.value_count, dtype=np.float64)
            got = reader.read_all(out=target)
            assert got is target
            np.testing.assert_array_equal(
                got.view(np.uint64), values.view(np.uint64)
            )

    def test_read_rowgroup_out_matches_alloc(self, large_file):
        path, _ = large_file
        with ColumnFileReader(path, mmap=True) as reader:
            expect = reader.read_rowgroup(1)
            target = np.empty(expect.size, dtype=np.float64)
            got = reader.read_rowgroup(1, out=target)
            assert got is target
            np.testing.assert_array_equal(
                expect.view(np.uint64), got.view(np.uint64)
            )

    def test_api_open_mmap_flag(self, large_file):
        path, values = large_file
        with api.open(path, mmap=True) as reader:
            assert reader.mapped
            np.testing.assert_array_equal(
                reader.read_all().view(np.uint64), values.view(np.uint64)
            )


class TestFallback:
    def test_small_file_falls_back_to_buffered(self, tmp_path):
        path = tmp_path / "small.alpc"
        with ColumnFileWriter(path) as writer:
            writer.write_values(special_values(2048))
        assert path.stat().st_size < MMAP_MIN_BYTES
        with ColumnFileReader(path, mmap=True) as reader:
            assert not reader.mapped
            assert reader.read_all().size == 2048

    def test_v2_file_falls_back_to_buffered(self, tmp_path):
        path = tmp_path / "v2.alpc"
        values = special_values(120_000)
        with ColumnFileWriter(
            path, rowgroup_vectors=10, integrity=False
        ) as writer:
            writer.write_values(values)
        assert path.stat().st_size >= MMAP_MIN_BYTES
        with ColumnFileReader(path, mmap=True) as reader:
            assert reader.format_version == 2
            assert not reader.mapped
            np.testing.assert_array_equal(
                reader.read_all().view(np.uint64), values.view(np.uint64)
            )


class TestPayloadViews:
    def test_payload_is_memoryview_not_copy(self, large_file):
        path, _ = large_file
        with ColumnFileReader(path, mmap=True) as reader:
            first = reader.rowgroup_payload(0)
            second = reader.rowgroup_payload(0)
            try:
                assert isinstance(first, memoryview)
                assert first.readonly
                # Both views alias the same underlying map — no
                # per-call materialization happened.
                assert first.obj is second.obj
                assert len(first) == reader.metadata[0].length
            finally:
                # Live views pin the map; drop them so the context
                # manager's close succeeds (TestLifetime covers the
                # refusal path).
                first.release()
                second.release()

    def test_buffered_payload_is_also_a_view(self, large_file):
        path, _ = large_file
        with ColumnFileReader(path) as reader:
            view = reader.rowgroup_payload(0)
            assert isinstance(view, memoryview)
            assert view.obj is reader.rowgroup_payload(1).obj


class TestLifetime:
    def test_close_with_live_view_raises_typed_error(self, large_file):
        path, _ = large_file
        reader = ColumnFileReader(path, mmap=True)
        view = reader.rowgroup_payload(0)
        with pytest.raises(BufferLifetimeError):
            reader.close()
        # The refused close leaves the reader fully usable.
        assert not reader.closed
        assert reader.read_rowgroup(0).size > 0
        view.release()
        reader.close()
        assert reader.closed

    def test_close_is_idempotent(self, large_file):
        path, _ = large_file
        reader = ColumnFileReader(path, mmap=True)
        reader.close()
        reader.close()
        assert reader.closed

    @pytest.mark.parametrize("mmap", [False, True])
    def test_closed_reader_raises_value_error(self, large_file, mmap):
        path, _ = large_file
        reader = ColumnFileReader(path, mmap=mmap)
        reader.close()
        with pytest.raises(ValueError, match="closed"):
            reader.read_all()
        with pytest.raises(ValueError, match="closed"):
            reader.rowgroup_payload(0)
        with pytest.raises(ValueError, match="closed"):
            reader.read_rowgroup(0)
        with pytest.raises(ValueError, match="closed"):
            reader.read_rowgroup_compressed(0)

    def test_decoded_arrays_do_not_pin_the_map(self, large_file):
        # Decoding copies out of the map into float64 arrays, so holding
        # the *results* must never block close.
        path, _ = large_file
        reader = ColumnFileReader(path, mmap=True)
        decoded = reader.read_all()
        reader.close()
        assert decoded.size > 0

    def test_bad_out_buffer_raises_plain_value_error(self, large_file):
        path, _ = large_file
        with ColumnFileReader(path, mmap=True) as reader:
            wrong = np.empty(3, dtype=np.float64)
            with pytest.raises(ValueError, match="out must"):
                reader.read_rowgroup(0, out=wrong)
            # ...and the failure is not cached as corruption.
            assert reader.check_rowgroup(0) is None
            with pytest.raises(ValueError, match="out must"):
                reader.read_all(out=np.empty(1, dtype=np.float32))
