"""ALP-pi: an extension mode for pi-multiplied coordinate data.

The paper's Discussion observes that the only two datasets ALP cannot
encode as decimals (POI-lat/POI-lon) are GPS coordinates *in radians* —
short decimals multiplied by pi/180 — and muses that "it would go too
far to define a specific ALP mode that deals with pi-multiplied data".
This module defines exactly that mode, as the obvious future-work
extension:

    ALPpi_enc = round(n / (pi/180) * 10^e * 10^-f)
    ALPpi_dec = d * 10^f * 10^-e * (pi/180)

The extra multiplication is just one more vectorized operation in both
directions, and the usual bitwise verification turns every value the
transform cannot reproduce into a plain exception — so the mode is
lossless by the same argument as core ALP.  On GPS-accuracy radians
(degrees with <= ~7 visible decimals) it recovers decimal-grade ratios
where ALP_rd can only shave a few front bits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.alp import AlpVector
from repro.core.constants import (
    EXCEPTION_SIZE_BITS,
    F10,
    IF10,
    VECTOR_SIZE,
)
from repro.core.fastround import fast_round
from repro.core.sampler import (
    ExponentFactor,
    equidistant_indices,
    sample_vector,
)
from repro.encodings.ffor import ffor_decode, ffor_encode

#: The transform constant: radians per degree.
RAD_PER_DEG = math.pi / 180.0

#: Inverse, precomputed the same way the decoder will use it.
DEG_PER_RAD = 1.0 / RAD_PER_DEG


def alppi_analyze(
    values: np.ndarray, exponent: int, factor: int
) -> tuple[np.ndarray, np.ndarray]:
    """ALPpi_enc + ALPpi_dec; returns (encoded ints, exception mask).

    The decode chain multiplies back by pi/180 *after* the decimal
    reconstruction, and the exception test is bitwise against the
    original radians.
    """
    values = np.ascontiguousarray(values, dtype=np.float64)
    with np.errstate(over="ignore", invalid="ignore"):
        degrees = values * DEG_PER_RAD
        encoded = fast_round(degrees * F10[exponent] * IF10[factor])
        decoded = encoded * F10[factor] * IF10[exponent] * RAD_PER_DEG
    exceptions = decoded.view(np.uint64) != values.view(np.uint64)
    return encoded, exceptions


@dataclass(frozen=True)
class AlpPiVector:
    """One ALP-pi-encoded vector (same layout as AlpVector + mode tag)."""

    inner: AlpVector

    def size_bits(self) -> int:
        """Vector footprint (the pi-mode tag lives on the row-group)."""
        return self.inner.size_bits()


def alppi_encode_vector(
    values: np.ndarray, exponent: int, factor: int
) -> AlpPiVector:
    """Encode one vector in pi mode under a fixed (e, f)."""
    values = np.ascontiguousarray(values, dtype=np.float64)
    encoded, exceptions = alppi_analyze(values, exponent, factor)
    exc_positions = np.flatnonzero(exceptions)
    if exc_positions.size:
        non_exc = np.flatnonzero(~exceptions)
        first_encoded = int(encoded[non_exc[0]]) if non_exc.size else 0
        encoded = encoded.copy()
        encoded[exc_positions] = first_encoded
        exc_values = values[exc_positions].copy()
    else:
        exc_values = np.empty(0, dtype=np.float64)
    return AlpPiVector(
        inner=AlpVector(
            ffor=ffor_encode(encoded),
            exponent=exponent,
            factor=factor,
            exc_values=exc_values,
            # fits: positions < vector size <= 65535 (checked at compress time)
            exc_positions=exc_positions.astype(np.uint16),
            count=values.size,
        )
    )


def alppi_decode_vector(vector: AlpPiVector) -> np.ndarray:
    """Decode one pi-mode vector back to radians, bit-exactly."""
    inner = vector.inner
    encoded = ffor_decode(inner.ffor)
    decoded = (
        encoded * F10[inner.factor] * IF10[inner.exponent] * RAD_PER_DEG
    )
    if inner.exc_positions.size:
        decoded[inner.exc_positions.astype(np.int64)] = inner.exc_values
    return decoded


def estimate_pi_size_bits(
    values: np.ndarray, exponent: int, factor: int
) -> int:
    """Sampler objective for pi mode."""
    encoded, exceptions = alppi_analyze(values, exponent, factor)
    n_exc = int(exceptions.sum())
    valid = encoded[~exceptions]
    width = (
        (int(valid.max()) - int(valid.min())).bit_length() if valid.size else 64
    )
    return (values.size - n_exc) * width + n_exc * EXCEPTION_SIZE_BITS


def find_best_pi_combination(
    sample: np.ndarray,
) -> tuple[ExponentFactor, int]:
    """Full search of (e, f) under the pi transform."""
    best_combo = ExponentFactor(0, 0)
    best_size = 1 << 62
    for e in range(18, -1, -1):
        for f in range(e, -1, -1):
            size = estimate_pi_size_bits(sample, e, f)
            if size < best_size:
                best_size = size
                best_combo = ExponentFactor(e, f)
    return best_combo, best_size


@dataclass(frozen=True)
class AlpPiColumn:
    """A column compressed entirely in pi mode."""

    vectors: tuple[AlpPiVector, ...]
    combination: ExponentFactor
    count: int

    def size_bits(self) -> int:
        """Vector footprints + the row-group pi tag and combination."""
        return sum(v.size_bits() for v in self.vectors) + 24

    def bits_per_value(self) -> float:
        """Compressed bits per value."""
        return self.size_bits() / self.count if self.count else 0.0


def pi_mode_viable(
    values: np.ndarray,
    sample_size: int = 256,
    max_bits_per_value: float = 40.0,
) -> tuple[bool, ExponentFactor]:
    """Sample a column and decide whether pi mode pays off.

    Viability means the pi transform encodes the sample below
    ``max_bits_per_value`` — i.e. clearly better than what ALP_rd could
    achieve on the same data (>= 49 bits by construction).
    """
    values = np.ascontiguousarray(values, dtype=np.float64)
    sample = values[equidistant_indices(values.size, sample_size)]
    combo, size = find_best_pi_combination(sample)
    if sample.size == 0:
        return False, combo
    return size / sample.size <= max_bits_per_value, combo


def alppi_compress(
    values: np.ndarray, vector_size: int = VECTOR_SIZE
) -> AlpPiColumn:
    """Compress a column in pi mode with a per-vector (e, f) search."""
    values = np.ascontiguousarray(values, dtype=np.float64)
    vectors = []
    _, column_combo = pi_mode_viable(values)
    for start in range(0, values.size, vector_size):
        chunk = values[start : start + vector_size]
        combo, _ = find_best_pi_combination(sample_vector(chunk, 32))
        vectors.append(
            alppi_encode_vector(chunk, combo.exponent, combo.factor)
        )
    return AlpPiColumn(
        vectors=tuple(vectors), combination=column_combo, count=values.size
    )


def alppi_decompress(column: AlpPiColumn) -> np.ndarray:
    """Decompress a pi-mode column back to float64."""
    if column.count == 0:
        return np.empty(0, dtype=np.float64)
    return np.concatenate(
        [alppi_decode_vector(v) for v in column.vectors]
    )
