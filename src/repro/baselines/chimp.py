"""Chimp floating-point compression (Liakos et al., VLDB 2022).

Chimp refines Gorilla with four explicit flag-coded cases driven by the
leading/trailing zero structure of the XOR with the previous value:

- ``00`` — XOR is zero (identical value);
- ``01`` — more than 6 trailing zeros: store a 3-bit leading-zero code,
  a 6-bit significant-bit count and only the center bits;
- ``10`` — leading-zero class unchanged from the previous value: store
  the ``64 - leading`` low bits;
- ``11`` — new leading-zero class: store the 3-bit code plus the
  ``64 - leading`` low bits.

Leading-zero counts are quantized to the reference table
``{0, 8, 12, 16, 18, 20, 22, 24}`` so they fit a 3-bit code.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alputil.bits import (
    double_to_bits,
    leading_zeros64,
    trailing_zeros64,
)
from repro.alputil.bitstream import BitReader, BitWriter

#: Quantized leading-zero classes (reference Chimp table).
LEADING_CLASSES = (0, 8, 12, 16, 18, 20, 22, 24)

#: Map an exact leading-zero count (0..64) to its class.
_ROUND_DOWN = []
for _lz in range(65):
    _cls = 0
    for candidate in LEADING_CLASSES:
        if candidate <= _lz:
            _cls = candidate
    _ROUND_DOWN.append(_cls)

#: Map a class value to its 3-bit code and back.
CLASS_TO_CODE = {cls: i for i, cls in enumerate(LEADING_CLASSES)}
CODE_TO_CLASS = dict(enumerate(LEADING_CLASSES))

#: Trailing-zero threshold for the "center bits" case.
TRAILING_THRESHOLD = 6


@dataclass(frozen=True)
class ChimpEncoded:
    """A Chimp-compressed block of doubles."""

    payload: bytes
    count: int

    def size_bits(self) -> int:
        """Compressed footprint in bits."""
        return len(self.payload) * 8

    def bits_per_value(self) -> float:
        """Compressed bits per value."""
        return self.size_bits() / self.count if self.count else 0.0


def chimp_compress(values: np.ndarray) -> ChimpEncoded:
    """Compress a float64 array with Chimp."""
    values = np.ascontiguousarray(values, dtype=np.float64)
    writer = BitWriter()
    if values.size == 0:
        return ChimpEncoded(payload=writer.finish(), count=0)

    bits = double_to_bits(values)
    prev = np.empty_like(bits)
    prev[0] = 0
    prev[1:] = bits[:-1]
    xors = bits ^ prev
    leads = leading_zeros64(xors)
    trails = trailing_zeros64(xors)

    writer.write(int(bits[0]), 64)
    stored_leading = -1  # invalid: forces flag 11 on the first XOR
    xors_list = xors.tolist()
    leads_list = leads.tolist()
    trails_list = trails.tolist()
    for i in range(1, values.size):
        xor = xors_list[i]
        if xor == 0:
            writer.write(0b00, 2)
            stored_leading = -1
            continue
        lead_class = _ROUND_DOWN[leads_list[i]]
        trail = trails_list[i]
        if trail > TRAILING_THRESHOLD:
            writer.write(0b01, 2)
            significant = 64 - lead_class - trail
            writer.write(CLASS_TO_CODE[lead_class], 3)
            writer.write(significant, 6)
            writer.write(xor >> trail, significant)
            stored_leading = -1
        elif lead_class == stored_leading:
            writer.write(0b10, 2)
            writer.write(xor, 64 - lead_class)
        else:
            writer.write(0b11, 2)
            writer.write(CLASS_TO_CODE[lead_class], 3)
            writer.write(xor, 64 - lead_class)
            stored_leading = lead_class
    return ChimpEncoded(payload=writer.finish(), count=values.size)


def chimp_decompress(encoded: ChimpEncoded) -> np.ndarray:
    """Decompress a :class:`ChimpEncoded` block back to float64."""
    if encoded.count == 0:
        return np.empty(0, dtype=np.float64)
    reader = BitReader(encoded.payload)
    out = np.empty(encoded.count, dtype=np.uint64)
    current = reader.read(64)
    out[0] = current
    stored_leading = -1
    for i in range(1, encoded.count):
        flag = reader.read(2)
        if flag == 0b00:
            stored_leading = -1
        elif flag == 0b01:
            lead_class = CODE_TO_CLASS[reader.read(3)]
            significant = reader.read(6)
            trail = 64 - lead_class - significant
            current ^= reader.read(significant) << trail
            stored_leading = -1
        elif flag == 0b10:
            current ^= reader.read(64 - stored_leading)
        else:
            lead_class = CODE_TO_CLASS[reader.read(3)]
            current ^= reader.read(64 - lead_class)
            stored_leading = lead_class
        out[i] = current
    return out.view(np.float64)
