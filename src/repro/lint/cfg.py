"""Intraprocedural control-flow graphs + forward dataflow for reprolint.

The per-statement AST rules (RL1–RL7) cannot see *paths*: whether a
buffer acquired before a branch is released on both arms, whether a lock
is still held when an ``await`` runs, whether an exception edge skips a
``release()``.  This module gives rules that view.

**CFG shape.**  One statement per basic block (``Block.node`` is the
statement; compound statements contribute only their *header* — the
evaluated test/iterable/context expression — to the block, their bodies
become separate blocks).  Synthetic blocks mark function entry/exit,
``with`` enter/exit, loop heads, exception dispatch and ``finally``
entry.  Edges carry a kind:

- ``NORMAL`` — the statement completed;
- ``EXCEPTION`` — the statement raised (the dataflow applies
  :meth:`ForwardAnalysis.transfer_exception`, which by default is the
  identity: "the statement did not take effect");
- ``BACK`` — a loop back edge.

``try``/``finally`` (and ``with``, modeled as a ``try``/``finally``
around the body) use a *shared* ``finally`` body: every way into the
``finally`` funnels through one chain of blocks whose exits fan out to
every recorded continuation (fall-through, ``return``, ``break``,
``continue``, re-raise).  That merges states from different entries —
a deliberate over-approximation that keeps the graph linear in the
source size; the dataflow below is a *may* analysis with union join and
distributive transfers, so its fixpoint still equals the union over all
graph paths (the property ``tests/test_lint_cfg_property.py`` pins
against brute-force path enumeration).

**Dataflow.**  :func:`run_forward` runs a classic worklist iteration of
a :class:`ForwardAnalysis` (gen/kill over frozensets, or any lattice
with a monotone ``join``) and returns the in-state of every reachable
block.  Rules then re-apply ``transfer`` locally to inspect states *at*
a statement of interest.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Iterator, Sequence

# --------------------------------------------------------------- edge kinds

NORMAL = "normal"
EXCEPTION = "exception"
BACK = "back"

# -------------------------------------------------------------- block kinds

ENTRY = "entry"
EXIT = "exit"
STMT = "stmt"
LOOP_HEAD = "loop-head"
WITH_ENTER = "with-enter"
WITH_EXIT = "with-exit"
EXCEPT_DISPATCH = "except-dispatch"
FINALLY_ENTRY = "finally-entry"
JOIN = "join"


@dataclass
class Block:
    """One basic block: a single statement (or a synthetic marker)."""

    index: int
    kind: str
    node: ast.AST | None = None
    #: For ``with``-enter/exit blocks: the specific context-manager item.
    item: ast.withitem | None = None

    @property
    def line(self) -> int:
        """Best-effort source line (synthetic blocks inherit their node's)."""
        return getattr(self.node, "lineno", 0)


class CFG:
    """A control-flow graph over one function body."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.func = func
        self.blocks: list[Block] = []
        self._succs: list[list[tuple[int, str]]] = []
        self._preds: list[list[tuple[int, str]]] = []
        self.entry = self.new_block(ENTRY, func).index
        self.exit = self.new_block(EXIT, func).index

    def new_block(
        self,
        kind: str,
        node: ast.AST | None = None,
        item: ast.withitem | None = None,
    ) -> Block:
        block = Block(index=len(self.blocks), kind=kind, node=node, item=item)
        self.blocks.append(block)
        self._succs.append([])
        self._preds.append([])
        return block

    def add_edge(self, src: int, dst: int, kind: str = NORMAL) -> None:
        if (dst, kind) not in self._succs[src]:
            self._succs[src].append((dst, kind))
            self._preds[dst].append((src, kind))

    def succs(self, index: int) -> Sequence[tuple[int, str]]:
        return self._succs[index]

    def preds(self, index: int) -> Sequence[tuple[int, str]]:
        return self._preds[index]


# ------------------------------------------------------- builder internals

#: Abrupt-completion kinds routed through enclosing ``finally`` blocks.
_RETURN = "return"
_BREAK = "break"
_CONTINUE = "continue"
_RERAISE = "reraise"


@dataclass
class _Finally:
    """One pending ``finally`` (or ``with``-exit) funnel.

    ``entry`` exists from the moment the ``try``/``with`` starts being
    built, so nested abrupt jumps and exception edges can target it
    immediately; the funnel's out-edges are resolved once the statement
    is fully built and every requested continuation is known.
    """

    entry: int
    outer: "_Ctx"
    conts: set[str] = field(default_factory=set)


@dataclass(frozen=True)
class _Ctx:
    """Builder context: where exceptions and abrupt exits go from here."""

    exc: int
    loop_head: int | None = None
    loop_after: int | None = None
    finallies: tuple[_Finally, ...] = ()
    #: ``len(finallies)`` at the innermost loop entry — ``break`` and
    #: ``continue`` only run finallies *above* this watermark.
    loop_finally_base: int = 0


class _Builder:
    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.cfg = CFG(func)

    def build(self) -> CFG:
        ctx = _Ctx(exc=self.cfg.exit)
        frontier = self._stmts(self.cfg.func.body, [self.cfg.entry], ctx)
        for src in frontier:
            self.cfg.add_edge(src, self.cfg.exit, NORMAL)
        return self.cfg

    # -- frontier plumbing -------------------------------------------------

    def _connect(self, frontier: Sequence[int], dst: int, kind: str = NORMAL) -> None:
        for src in frontier:
            self.cfg.add_edge(src, dst, kind)

    def _stmts(
        self, stmts: Sequence[ast.stmt], frontier: list[int], ctx: _Ctx
    ) -> list[int]:
        for stmt in stmts:
            if not frontier:
                break  # unreachable code after return/raise/break
            frontier = self._stmt(stmt, frontier, ctx)
        return frontier

    def _exc_edge(self, block: Block, ctx: _Ctx) -> None:
        """Add the exception edge if this block can plausibly raise."""
        if _block_can_raise(block):
            self.cfg.add_edge(block.index, ctx.exc, EXCEPTION)

    # -- abrupt-exit routing ----------------------------------------------

    def _abrupt_target(self, kind: str, ctx: _Ctx) -> int:
        """Where an abrupt exit jumps, funneling through finallies."""
        if kind in (_BREAK, _CONTINUE):
            if len(ctx.finallies) > ctx.loop_finally_base:
                record = ctx.finallies[-1]
                record.conts.add(kind)
                return record.entry
            target = ctx.loop_after if kind == _BREAK else ctx.loop_head
            if target is None:
                raise SyntaxError(f"{kind!r} outside loop")
            return target
        # _RETURN: through every enclosing finally, then function exit.
        if ctx.finallies:
            record = ctx.finallies[-1]
            record.conts.add(_RETURN)
            return record.entry
        return self.cfg.exit

    def _resolve_finally(self, record: _Finally, frontier: Sequence[int]) -> None:
        """Fan the funnel's exit out to every recorded continuation."""
        if any(kind == EXCEPTION for _, kind in self.cfg.preds(record.entry)):
            record.conts.add(_RERAISE)
        for kind in sorted(record.conts):
            if kind == _RERAISE:
                target = record.outer.exc
            else:
                target = self._abrupt_target(kind, record.outer)
            # The finally body itself completed *normally*; the edge kind
            # reflects the last finally statement, not the propagating
            # exception, so transfers apply correctly.
            self._connect(frontier, target, NORMAL)

    # -- statement dispatch ------------------------------------------------

    def _stmt(self, stmt: ast.stmt, frontier: list[int], ctx: _Ctx) -> list[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier, ctx)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, frontier, ctx)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, stmt.items, frontier, ctx)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier, ctx)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, frontier, ctx)
        return self._simple(stmt, frontier, ctx)

    def _simple(self, stmt: ast.stmt, frontier: list[int], ctx: _Ctx) -> list[int]:
        block = self.cfg.new_block(STMT, stmt)
        self._connect(frontier, block.index)
        if isinstance(stmt, (ast.Break, ast.Continue, ast.Pass)):
            if isinstance(stmt, ast.Pass):
                return [block.index]
            kind = _BREAK if isinstance(stmt, ast.Break) else _CONTINUE
            edge = BACK if (kind == _CONTINUE and not ctx.finallies) else NORMAL
            self.cfg.add_edge(block.index, self._abrupt_target(kind, ctx), edge)
            return []
        self._exc_edge(block, ctx)
        if isinstance(stmt, ast.Return):
            self.cfg.add_edge(block.index, self._abrupt_target(_RETURN, ctx), NORMAL)
            return []
        if isinstance(stmt, ast.Raise):
            return []
        return [block.index]

    def _if(self, stmt: ast.If, frontier: list[int], ctx: _Ctx) -> list[int]:
        test = self.cfg.new_block(STMT, stmt)
        self._connect(frontier, test.index)
        self._exc_edge(test, ctx)
        out = self._stmts(stmt.body, [test.index], ctx)
        if stmt.orelse:
            out += self._stmts(stmt.orelse, [test.index], ctx)
        else:
            out.append(test.index)
        return out

    def _loop(
        self,
        stmt: ast.While | ast.For | ast.AsyncFor,
        frontier: list[int],
        ctx: _Ctx,
    ) -> list[int]:
        head = self.cfg.new_block(LOOP_HEAD, stmt)
        after = self.cfg.new_block(JOIN, stmt)
        self._connect(frontier, head.index)
        self._exc_edge(head, ctx)
        body_ctx = replace(
            ctx,
            loop_head=head.index,
            loop_after=after.index,
            loop_finally_base=len(ctx.finallies),
        )
        body_out = self._stmts(stmt.body, [head.index], body_ctx)
        self._connect(body_out, head.index, BACK)
        # Loop-ends edge (condition false / iterator exhausted), through
        # the else clause when present.  ``while True`` still gets the
        # edge — constant-condition pruning is not this graph's job.
        if stmt.orelse:
            else_out = self._stmts(stmt.orelse, [head.index], ctx)
            self._connect(else_out, after.index)
        else:
            self.cfg.add_edge(head.index, after.index, NORMAL)
        return [after.index]

    def _with(
        self,
        stmt: ast.With | ast.AsyncWith,
        items: Sequence[ast.withitem],
        frontier: list[int],
        ctx: _Ctx,
    ) -> list[int]:
        item = items[0]
        enter = self.cfg.new_block(WITH_ENTER, stmt, item)
        self._connect(frontier, enter.index)
        self.cfg.add_edge(enter.index, ctx.exc, EXCEPTION)
        exit_block = self.cfg.new_block(WITH_EXIT, stmt, item)
        record = _Finally(entry=exit_block.index, outer=ctx)
        body_ctx = replace(
            ctx, exc=exit_block.index, finallies=ctx.finallies + (record,)
        )
        if len(items) > 1:
            body_out = self._with(stmt, items[1:], [enter.index], body_ctx)
        else:
            body_out = self._stmts(stmt.body, [enter.index], body_ctx)
        self._connect(body_out, exit_block.index, NORMAL)
        self._resolve_finally(record, [exit_block.index])
        return [exit_block.index]

    def _try(self, stmt: ast.Try, frontier: list[int], ctx: _Ctx) -> list[int]:
        fin_entry: Block | None = None
        record: _Finally | None = None
        if stmt.finalbody:
            fin_entry = self.cfg.new_block(FINALLY_ENTRY, stmt)
            record = _Finally(entry=fin_entry.index, outer=ctx)
        after_exc = fin_entry.index if fin_entry is not None else ctx.exc
        finallies = ctx.finallies + (record,) if record is not None else ctx.finallies

        dispatch: Block | None = None
        if stmt.handlers:
            dispatch = self.cfg.new_block(EXCEPT_DISPATCH, stmt)
        body_exc = dispatch.index if dispatch is not None else after_exc
        body_ctx = replace(ctx, exc=body_exc, finallies=finallies)
        body_out = self._stmts(stmt.body, list(frontier), body_ctx)

        part_ctx = replace(ctx, exc=after_exc, finallies=finallies)
        normal_out: list[int] = []
        if stmt.orelse:
            normal_out += self._stmts(stmt.orelse, body_out, part_ctx)
        else:
            normal_out += body_out

        if dispatch is not None:
            catch_all = False
            for handler in stmt.handlers:
                hblock = self.cfg.new_block(STMT, handler)
                self.cfg.add_edge(dispatch.index, hblock.index, NORMAL)
                if _block_can_raise(hblock):
                    self.cfg.add_edge(hblock.index, after_exc, EXCEPTION)
                normal_out += self._stmts(handler.body, [hblock.index], part_ctx)
                if _is_catch_all(handler):
                    catch_all = True
            if not catch_all:
                self.cfg.add_edge(dispatch.index, after_exc, EXCEPTION)

        if fin_entry is not None and record is not None:
            self._connect(normal_out, fin_entry.index, NORMAL)
            fin_out = self._stmts(stmt.finalbody, [fin_entry.index], ctx)
            self._resolve_finally(record, fin_out)
            return fin_out
        return normal_out

    def _match(self, stmt: ast.Match, frontier: list[int], ctx: _Ctx) -> list[int]:
        subject = self.cfg.new_block(STMT, stmt)
        self._connect(frontier, subject.index)
        self._exc_edge(subject, ctx)
        out: list[int] = [subject.index]  # no case may match
        for case in stmt.cases:
            out += self._stmts(case.body, [subject.index], ctx)
        return out


def _block_can_raise(block: Block) -> bool:
    """Whether this block's statement can plausibly raise.

    Giving *every* statement an exception edge drowns path-sensitive
    rules in impossible paths (``if x is y:`` "raising" between an
    acquire and its release).  Name loads, constants, tuple/list
    display, ``not``/``and``/``or`` and identity comparisons cannot
    raise; anything else — calls, attribute/subscript access,
    arithmetic, ``await``, ``yield`` (``throw()`` injection) — can.
    ``raise`` and ``assert`` always can.
    """
    node = block.node
    if isinstance(node, (ast.Raise, ast.Assert)):
        return True
    if block.kind == LOOP_HEAD and isinstance(node, (ast.For, ast.AsyncFor)):
        return True  # the implicit __next__ call
    if block.kind == WITH_ENTER:
        return True  # the implicit __enter__ call
    for sub in iter_evaluated(block):
        if not isinstance(sub, ast.expr):
            continue  # statement wrappers, contexts, operators
        if isinstance(sub, (ast.Name, ast.Constant, ast.Tuple, ast.List, ast.Starred)):
            continue
        if isinstance(sub, ast.UnaryOp) and isinstance(sub.op, ast.Not):
            continue
        if isinstance(sub, ast.BoolOp):
            continue
        if isinstance(sub, ast.Compare) and all(
            isinstance(op, (ast.Is, ast.IsNot)) for op in sub.ops
        ):
            continue
        return True
    return False


def _is_catch_all(handler: ast.ExceptHandler) -> bool:
    """``except:`` or ``except BaseException`` — nothing gets past it."""
    if handler.type is None:
        return True
    node = handler.type
    if isinstance(node, ast.Attribute):
        return node.attr == "BaseException"
    return isinstance(node, ast.Name) and node.id == "BaseException"


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the CFG of one function body (nested defs are opaque)."""
    return _Builder(func).build()


def iter_function_cfgs(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, CFG]]:
    """Yield ``(function, cfg)`` for every def in the module, any depth."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, build_cfg(node)


# ------------------------------------------------------ header expressions


def header_exprs(block: Block) -> list[ast.AST]:
    """The AST actually *evaluated* in this block.

    Compound statements own only their header (test / iterable / context
    expression); their bodies live in other blocks.  Synthetic blocks
    evaluate nothing.  Rules should event-extract from these nodes via
    :func:`iter_evaluated` rather than walking ``block.node`` raw.
    """
    node = block.node
    if node is None or block.kind in (ENTRY, EXIT, JOIN, FINALLY_ENTRY, EXCEPT_DISPATCH):
        return []
    if block.kind == WITH_ENTER and block.item is not None:
        exprs: list[ast.AST] = [block.item.context_expr]
        if block.item.optional_vars is not None:
            exprs.append(block.item.optional_vars)
        return exprs
    if block.kind == WITH_EXIT:
        return []
    if isinstance(node, (ast.If, ast.While)):
        return [node.test]
    if isinstance(node, (ast.For, ast.AsyncFor)):
        return [node.iter, node.target]
    if isinstance(node, ast.Match):
        return [node.subject]
    if isinstance(node, ast.ExceptHandler):
        return [node.type] if node.type is not None else []
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        # Executing a def/class evaluates decorators and defaults only;
        # the body is a separate scope (rules treat it as a closure).
        return list(node.decorator_list)
    return [node]


def iter_evaluated(block: Block) -> Iterator[ast.AST]:
    """Walk the expressions evaluated in ``block``.

    Like ``ast.walk`` over :func:`header_exprs`, but does *not* descend
    into nested function/lambda bodies or comprehensions — code in those
    runs in another frame (or another time) and must not contribute
    events to this block.
    """
    stack: list[ast.AST] = list(header_exprs(block))
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
            ):
                continue
            if isinstance(
                child, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                continue
            stack.append(child)


def block_awaits(block: Block) -> list[ast.AST]:
    """``await`` / ``async for`` / ``async with`` suspension points."""
    marks: list[ast.AST] = []
    node = block.node
    if block.kind == LOOP_HEAD and isinstance(node, ast.AsyncFor):
        marks.append(node)
    if block.kind in (WITH_ENTER, WITH_EXIT) and isinstance(node, ast.AsyncWith):
        marks.append(node)
    for sub in iter_evaluated(block):
        if isinstance(sub, ast.Await):
            marks.append(sub)
    return marks


# ----------------------------------------------------------- dataflow layer


class ForwardAnalysis:
    """A forward may/must dataflow over frozenset-like states.

    Subclasses implement :meth:`initial`, :meth:`join` and
    :meth:`transfer`; :meth:`transfer_exception` describes what still
    happens when the block's statement *raises* instead of completing
    (default: nothing — the identity).  ``join`` must be monotone over a
    finite lattice for the worklist to terminate.
    """

    def initial(self) -> frozenset[object]:
        return frozenset()

    def join(
        self, a: frozenset[object], b: frozenset[object]
    ) -> frozenset[object]:
        return a | b

    def transfer(
        self, block: Block, state: frozenset[object]
    ) -> frozenset[object]:
        return state

    def transfer_exception(
        self, block: Block, state: frozenset[object]
    ) -> frozenset[object]:
        return state


def run_forward(
    cfg: CFG, analysis: ForwardAnalysis
) -> dict[int, frozenset[object]]:
    """Worklist fixpoint; returns in-states of reachable blocks."""
    in_states: dict[int, frozenset[object]] = {cfg.entry: analysis.initial()}
    work: deque[int] = deque([cfg.entry])
    queued = {cfg.entry}
    steps = 0
    limit = 64 * (len(cfg.blocks) + 1) * (len(cfg.blocks) + 1)
    while work:
        steps += 1
        if steps > limit:  # pragma: no cover - defensive fixpoint guard
            raise RuntimeError("dataflow failed to converge")
        index = work.popleft()
        queued.discard(index)
        state = in_states[index]
        block = cfg.blocks[index]
        out_normal = analysis.transfer(block, state)
        out_exc = analysis.transfer_exception(block, state)
        for dst, kind in cfg.succs(index):
            out = out_exc if kind == EXCEPTION else out_normal
            current = in_states.get(dst)
            merged = out if current is None else analysis.join(current, out)
            if current is None or merged != current:
                in_states[dst] = merged
                if dst not in queued:
                    queued.add(dst)
                    work.append(dst)
    return in_states
