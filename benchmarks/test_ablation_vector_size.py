"""Ablation — vector size (the paper fixes v = 1024).

Section 4 fixes the vector size at 1024 "to comfortably fit in the CPU
cache".  This ablation sweeps v over 256..4096 and measures both sides
of the trade-off:

- smaller vectors amortize headers worse but adapt (e, f) and FFOR
  ranges more locally (sometimes better ratio),
- larger vectors amortize better but widen the in-vector integer range.

Shape claim: 1024 is within a few percent of the best sweep point on
ratio — i.e. the paper's choice is on the plateau, not a cliff.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import bench_n, time_callable
from repro.bench.report import format_table, shape_check
from repro.core.compressor import compress, decompress
from repro.core.constants import ROWGROUP_SIZE, VECTOR_SIZE

# The sweep deliberately spells out its sizes (the published 1024 among
# them) — that is the ablation, not a format constant leak.
VECTOR_SIZES = (256, 512, 1024, 2048, 4096)  # reprolint: ignore[RL4]
SWEEP_DATASETS = ("City-Temp", "Stocks-USA", "Food-prices", "CMS/25")


def _measure(dataset_cache):
    n = min(bench_n(), 32_768)
    out = {}
    for name in SWEEP_DATASETS:
        values = dataset_cache(name, n)
        per_size = {}
        for v in VECTOR_SIZES:
            column = compress(values, vector_size=v, rowgroup_vectors=max(1, ROWGROUP_SIZE // v))
            decoded = decompress(column)
            assert np.array_equal(
                decoded.view(np.uint64), values.view(np.uint64)
            ), (name, v)
            speed = time_callable(
                lambda: decompress(column), values.size, repeats=3
            )
            per_size[v] = (
                column.bits_per_value(),
                speed.values_per_second,
            )
        out[name] = per_size
    return out


def test_ablation_vector_size(benchmark, emit, dataset_cache):
    results = benchmark.pedantic(
        lambda: _measure(dataset_cache), rounds=1, iterations=1
    )

    rows = []
    for name in SWEEP_DATASETS:
        for v in VECTOR_SIZES:
            bits, speed = results[name][v]
            rows.append([f"{name} @ v={v}", bits, speed / 1e6])

    plateau = []
    for name in SWEEP_DATASETS:
        best = min(bits for bits, _ in results[name].values())
        at_1024 = results[name][VECTOR_SIZE][0]
        plateau.append(at_1024 <= best * 1.10 + 0.2)

    checks = [
        shape_check(
            "v=1024 within 10% of the best vector size on every dataset",
            all(plateau),
        ),
        shape_check(
            "ratio varies by less than 2x across the whole sweep",
            all(
                max(b for b, _ in results[name].values())
                <= 2 * min(b for b, _ in results[name].values())
                for name in SWEEP_DATASETS
            ),
        ),
    ]

    report = format_table(
        ["dataset @ vector size", "bits/value", "decode Mv/s"],
        rows,
        float_format="{:.2f}",
        title="Ablation — vector size sweep (paper fixes v = 1024)",
    )
    report += "\n" + "\n".join(checks)
    emit("ablation_vector_size", report)
    assert all(c.startswith("[PASS]") for c in checks), "\n" + "\n".join(checks)
