"""The 30 evaluation datasets, synthesized from their paper fingerprints.

Each :class:`DatasetSpec` reproduces what Table 1 (semantics, scale) and
Table 2 (decimal precision, magnitude, duplicate fraction, exponent
variance) report for the corresponding real dataset.  DESIGN.md records
this substitution; the defining compression-relevant property of every
dataset is preserved:

- time-series columns are random walks (temporal locality),
- monetary/measurement columns are decimal-origin with the reported
  precision distribution and duplicate fraction,
- the Gov/xx columns are zero-run dominated,
- POI-lat/POI-lon are degree coordinates multiplied by pi/180 — true
  "real doubles" that force ALP_rd,
- CMS/25 carries computed (high-precision) values, NYC/29 carries
  13-decimal longitudes from a duplicate-heavy pool.

All generators are deterministic given (name, seed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.data import generators as g

#: Default number of values generated per dataset.  Large enough for
#: several row-groups of sampling behaviour, small enough for the pure-
#: Python baselines to finish a full Table 4 sweep.
DEFAULT_N = 120_000


@dataclass(frozen=True)
class DatasetSpec:
    """A synthetic stand-in for one paper dataset."""

    name: str
    time_series: bool
    semantics: str
    make: Callable[[np.random.Generator, int], np.ndarray]
    #: Expected visible decimal precision range (for analysis tests).
    precision_hint: tuple[int, int]
    #: True when the paper used ALP_rd on this dataset.
    expects_rd: bool = False

    def generate(self, n: int = DEFAULT_N, seed: int = 42) -> np.ndarray:
        """Materialize ``n`` values deterministically from ``seed``.

        The per-dataset entropy uses CRC32 of the name (not ``hash()``,
        which is randomized per process) so runs are reproducible.
        """
        import zlib

        rng = np.random.default_rng(
            np.random.SeedSequence([seed, zlib.crc32(self.name.encode())])
        )
        values = self.make(rng, n)
        if values.size != n:
            raise RuntimeError(
                f"{self.name} generated {values.size} != {n}"
            )
        return np.ascontiguousarray(values, dtype=np.float64)


def _air_pressure(rng: np.random.Generator, n: int) -> np.ndarray:
    walk = g.random_walk(n, rng, start=93.4, step_std=0.0004, low=90, high=96)
    return g.inject_duplicates(g.round_decimals(walk, 5), 0.74, rng)


def _basel_temp(rng: np.random.Generator, n: int) -> np.ndarray:
    walk = g.random_walk(n, rng, start=11.4, step_std=0.8, low=-15, high=38)
    mixed = g.round_mixed_decimals(
        walk, (5, 6, 7, 8, 11), (0.10, 0.62, 0.18, 0.06, 0.04), rng
    )
    return g.inject_duplicates(mixed, 0.26, rng)


def _basel_wind(rng: np.random.Generator, n: int) -> np.ndarray:
    walk = g.random_walk(n, rng, start=7.1, step_std=0.9, low=0, high=35)
    mixed = g.round_mixed_decimals(
        walk, (0, 4, 6, 7, 8), (0.06, 0.10, 0.56, 0.18, 0.10), rng
    )
    return g.inject_duplicates(mixed, 0.60, rng)


def _bird_migration(rng: np.random.Generator, n: int) -> np.ndarray:
    walk = g.random_walk(n, rng, start=26.6, step_std=0.02, low=20, high=34)
    mixed = g.round_mixed_decimals(walk, (3, 4, 5), (0.1, 0.3, 0.6), rng)
    return g.inject_duplicates(mixed, 0.55, rng)


def _bitcoin_price(rng: np.random.Generator, n: int) -> np.ndarray:
    walk = g.random_walk(n, rng, start=19187.0, step_std=12.0, low=15000, high=23000)
    return g.round_mixed_decimals(walk, (3, 4), (0.2, 0.8), rng)


def _city_temp(rng: np.random.Generator, n: int) -> np.ndarray:
    walk = g.random_walk(n, rng, start=56.0, step_std=1.6, low=-30, high=115)
    return g.inject_duplicates(g.round_decimals(walk, 1), 0.60, rng)


def _dew_point_temp(rng: np.random.Generator, n: int) -> np.ndarray:
    walk = g.random_walk(n, rng, start=14.4, step_std=0.12, low=-10, high=30)
    return g.inject_duplicates(g.round_decimals(walk, 3), 0.19, rng)


def _ir_bio_temp(rng: np.random.Generator, n: int) -> np.ndarray:
    walk = g.random_walk(n, rng, start=12.7, step_std=0.5, low=-20, high=50)
    return g.inject_duplicates(g.round_decimals(walk, 2), 0.49, rng)


def _pm10_dust(rng: np.random.Generator, n: int) -> np.ndarray:
    walk = g.random_walk(n, rng, start=1.5, step_std=0.02, low=0, high=8)
    return g.inject_duplicates(g.round_decimals(walk, 3), 0.93, rng)


def _stocks_de(rng: np.random.Generator, n: int) -> np.ndarray:
    walk = g.random_walk(n, rng, start=63.8, step_std=0.05, low=30, high=110)
    mixed = g.round_mixed_decimals(walk, (2, 3), (0.5, 0.5), rng)
    return g.inject_duplicates(mixed, 0.89, rng)


def _stocks_uk(rng: np.random.Generator, n: int) -> np.ndarray:
    walk = g.random_walk(n, rng, start=1593.7, step_std=0.8, low=900, high=2400)
    mixed = g.round_mixed_decimals(walk, (0, 1, 2), (0.2, 0.4, 0.4), rng)
    return g.inject_duplicates(mixed, 0.88, rng)


def _stocks_usa(rng: np.random.Generator, n: int) -> np.ndarray:
    walk = g.random_walk(n, rng, start=146.1, step_std=0.05, low=80, high=220)
    return g.inject_duplicates(g.round_decimals(walk, 2), 0.91, rng)


def _wind_dir(rng: np.random.Generator, n: int) -> np.ndarray:
    angles = g.iid_uniform(n, rng, 0.0, 360.0)
    return g.round_decimals(angles, 2)


def _arade4(rng: np.random.Generator, n: int) -> np.ndarray:
    values = g.iid_lognormal(n, rng, median=600.0, sigma=0.7)
    return g.round_mixed_decimals(values, (3, 4), (0.4, 0.6), rng)


def _blockchain_tr(rng: np.random.Generator, n: int) -> np.ndarray:
    # BTC amounts: wildly varying magnitude, up to 4 visible decimals here
    # (the real column holds satoshi-precision outliers as well).
    values = g.iid_lognormal(n, rng, median=0.5, sigma=3.0)
    return g.round_mixed_decimals(values, (2, 3, 4), (0.2, 0.3, 0.5), rng)


def _cms1(rng: np.random.Generator, n: int) -> np.ndarray:
    values = g.iid_lognormal(n, rng, median=97.0, sigma=0.9)
    mixed = g.round_mixed_decimals(
        values,
        (0, 1, 2, 4, 6, 8, 10),
        (0.18, 0.12, 0.40, 0.10, 0.08, 0.06, 0.06),
        rng,
    )
    return g.inject_duplicates(mixed, 0.54, rng)


def _cms25(rng: np.random.Generator, n: int) -> np.ndarray:
    # Standard deviations: computed values with ~9 visible decimals and a
    # huge exponent spread (Table 2 reports exponent std-dev 179).  A
    # minority at lower precision keeps PDE partially effective, like the
    # paper's 63.9 bits (just below the all-exception floor).
    base = g.iid_lognormal(n, rng, median=12.6, sigma=2.2)
    scale = np.where(rng.random(n) < 0.12, 1e-12, 1.0)  # near-zero cluster
    mixed = g.round_mixed_decimals(
        base * scale,
        (4, 5, 7, 8, 9, 10),
        (0.08, 0.08, 0.12, 0.15, 0.32, 0.25),
        rng,
    )
    return g.inject_duplicates(mixed, 0.05, rng)


def _counts(
    rng: np.random.Generator, n: int, dup: float
) -> np.ndarray:
    counts = rng.pareto(1.2, n) * 30.0
    values = np.floor(counts).astype(np.float64)
    return g.inject_duplicates(values, dup, rng)


def _cms9(rng: np.random.Generator, n: int) -> np.ndarray:
    return _counts(rng, n, 0.71)


def _medicare9(rng: np.random.Generator, n: int) -> np.ndarray:
    return _counts(rng, n, 0.70)


def _food_prices(rng: np.random.Generator, n: int) -> np.ndarray:
    values = g.iid_lognormal(n, rng, median=300.0, sigma=2.0)
    mixed = g.round_mixed_decimals(
        values, (0, 1, 2, 4), (0.45, 0.30, 0.23, 0.02), rng
    )
    return g.inject_duplicates(mixed, 0.52, rng)


def _gov10(rng: np.random.Generator, n: int) -> np.ndarray:
    values = g.iid_lognormal(n, rng, median=5000.0, sigma=3.2)
    zeroed = np.where(rng.random(n) < 0.20, 0.0, values)  # exponent avg 873
    mixed = g.round_mixed_decimals(zeroed, (0, 1, 2), (0.5, 0.3, 0.2), rng)
    return g.inject_duplicates(mixed, 0.26, rng)


def _gov_zero_runs(
    rng: np.random.Generator,
    n: int,
    zero_fraction: float,
    decimals: tuple[tuple[int, ...], tuple[float, ...]],
    period: int,
) -> np.ndarray:
    nonzero = g.round_mixed_decimals(
        g.iid_lognormal(n // 16 + 16, rng, median=900.0, sigma=2.0),
        decimals[0],
        decimals[1],
        rng,
    )
    return g.zero_dominated(n, rng, zero_fraction, nonzero, period=period)


def _gov26(rng: np.random.Generator, n: int) -> np.ndarray:
    return _gov_zero_runs(
        rng, n, 0.995, ((0, 1, 2), (0.7, 0.2, 0.1)), period=16_384
    )


def _gov30(rng: np.random.Generator, n: int) -> np.ndarray:
    return _gov_zero_runs(
        rng, n, 0.90, ((0, 1, 2), (0.85, 0.1, 0.05)), period=6_144
    )


def _gov31(rng: np.random.Generator, n: int) -> np.ndarray:
    return _gov_zero_runs(
        rng, n, 0.96, ((0, 1, 2), (0.9, 0.07, 0.03)), period=10_240
    )


def _gov40(rng: np.random.Generator, n: int) -> np.ndarray:
    return _gov_zero_runs(
        rng, n, 0.991, ((0, 1, 2), (0.95, 0.04, 0.01)), period=14_336
    )


def _medicare1(rng: np.random.Generator, n: int) -> np.ndarray:
    values = g.iid_lognormal(n, rng, median=97.0, sigma=1.1)
    mixed = g.round_mixed_decimals(
        values,
        (0, 1, 2, 4, 6, 8, 10),
        (0.20, 0.10, 0.38, 0.10, 0.08, 0.07, 0.07),
        rng,
    )
    return g.inject_duplicates(mixed, 0.41, rng)


def _nyc29(rng: np.random.Generator, n: int) -> np.ndarray:
    # Longitudes around -73.9 with 13 visible decimals, drawn from a
    # Zipf-weighted pool of distinct locations: frequent places repeat
    # within Chimp128's 128-value window (the paper's ~51% non-unique
    # values per vector and Chimp128's strong showing on this column).
    pool = g.round_decimals(-73.9 - rng.uniform(0.0, 0.3, 600), 13)
    weights = 1.0 / np.arange(1, pool.size + 1) ** 1.1
    return g.from_pool(n, rng, pool, weights)


def _poi_lat(rng: np.random.Generator, n: int) -> np.ndarray:
    return g.degrees_to_radians(rng.uniform(-90.0, 90.0, n))


def _poi_lon(rng: np.random.Generator, n: int) -> np.ndarray:
    return g.degrees_to_radians(rng.uniform(-180.0, 180.0, n))


def _sd_bench(rng: np.random.Generator, n: int) -> np.ndarray:
    pool = np.array(
        [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 100.0, 120.0, 128.0,
         240.0, 250.0, 256.0, 480.0, 500.0, 512.0, 750.0, 960.0, 1000.0,
         1024.0, 2000.0, 0.2, 0.3, 1.5, 3.2, 6.4]
    )
    weights = rng.pareto(1.0, pool.size) + 0.2
    return g.from_pool(n, rng, pool, weights)


DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec("Air-Pressure", True, "Barometric pressure (kPa)", _air_pressure, (4, 5)),
        DatasetSpec("Basel-Temp", True, "Temperature (C)", _basel_temp, (5, 11)),
        DatasetSpec("Basel-Wind", True, "Wind speed (km/h)", _basel_wind, (0, 8)),
        DatasetSpec("Bird-Mig", True, "Coordinates (lat, lon)", _bird_migration, (3, 5)),
        DatasetSpec("Btc-Price", True, "Exchange rate (BTC-USD)", _bitcoin_price, (3, 4)),
        DatasetSpec("City-Temp", True, "Temperature (F)", _city_temp, (0, 1)),
        DatasetSpec("Dew-Temp", True, "Temperature (C)", _dew_point_temp, (2, 3)),
        DatasetSpec("Bio-Temp", True, "Temperature (C)", _ir_bio_temp, (1, 2)),
        DatasetSpec("PM10-dust", True, "Dust content (mg/m3)", _pm10_dust, (2, 3)),
        DatasetSpec("Stocks-DE", True, "Monetary (stocks)", _stocks_de, (2, 3)),
        DatasetSpec("Stocks-UK", True, "Monetary (stocks)", _stocks_uk, (0, 2)),
        DatasetSpec("Stocks-USA", True, "Monetary (stocks)", _stocks_usa, (1, 2)),
        DatasetSpec("Wind-dir", True, "Angle degrees (0-360)", _wind_dir, (1, 2)),
        DatasetSpec("Arade/4", False, "Energy", _arade4, (3, 4)),
        DatasetSpec("Blockchain", False, "Monetary (BTC)", _blockchain_tr, (2, 4)),
        DatasetSpec("CMS/1", False, "Monetary average (USD)", _cms1, (0, 10)),
        DatasetSpec("CMS/25", False, "Monetary std-dev (USD)", _cms25, (7, 10)),
        DatasetSpec("CMS/9", False, "Discrete count", _cms9, (0, 0)),
        DatasetSpec("Food-prices", False, "Monetary (USD)", _food_prices, (0, 4)),
        DatasetSpec("Gov/10", False, "Monetary (USD)", _gov10, (0, 2)),
        DatasetSpec("Gov/26", False, "Monetary (USD), mostly zero", _gov26, (0, 2)),
        DatasetSpec("Gov/30", False, "Monetary (USD), mostly zero", _gov30, (0, 2)),
        DatasetSpec("Gov/31", False, "Monetary (USD), mostly zero", _gov31, (0, 2)),
        DatasetSpec("Gov/40", False, "Monetary (USD), mostly zero", _gov40, (0, 2)),
        DatasetSpec("Medicare/1", False, "Monetary average (USD)", _medicare1, (0, 10)),
        DatasetSpec("Medicare/9", False, "Discrete count", _medicare9, (0, 0)),
        DatasetSpec("NYC/29", False, "Coordinates (lon)", _nyc29, (12, 13)),
        DatasetSpec("POI-lat", False, "Coordinates (lat, radians)", _poi_lat, (0, 20), expects_rd=True),
        DatasetSpec("POI-lon", False, "Coordinates (lon, radians)", _poi_lon, (0, 20), expects_rd=True),
        DatasetSpec("SD-bench", False, "Storage capacity (GB)", _sd_bench, (0, 1)),
    )
}

#: Paper order, used by every table-producing bench.
DATASET_ORDER: tuple[str, ...] = tuple(DATASETS)


def _poi_lat_gps(rng: np.random.Generator, n: int) -> np.ndarray:
    # GPS-accuracy coordinates: ~7 decimal digits of degrees (the paper's
    # Discussion: GPS resolves meters, the Earth spans 8 digits of them),
    # then converted to radians.  The pi-multiplied structure is intact
    # but the underlying decimals are short — ALP-pi's target.
    degrees = g.round_decimals(rng.uniform(-90.0, 90.0, n), 7)
    return g.degrees_to_radians(degrees)


def _poi_lon_gps(rng: np.random.Generator, n: int) -> np.ndarray:
    degrees = g.round_decimals(rng.uniform(-180.0, 180.0, n), 7)
    return g.degrees_to_radians(degrees)


#: Extension datasets beyond the paper's 30 (used by the ALP-pi
#: future-work experiments; not part of DATASET_ORDER).
EXTENSION_DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec(
            "POI-lat-gps",
            False,
            "Coordinates (lat, radians, GPS accuracy)",
            _poi_lat_gps,
            (0, 20),
            expects_rd=True,
        ),
        DatasetSpec(
            "POI-lon-gps",
            False,
            "Coordinates (lon, radians, GPS accuracy)",
            _poi_lon_gps,
            (0, 20),
            expects_rd=True,
        ),
    )
}

#: The five datasets of the end-to-end evaluation (Table 6 / Figure 6).
ENDTOEND_DATASETS: tuple[str, ...] = (
    "Gov/26",
    "City-Temp",
    "Food-prices",
    "Blockchain",
    "NYC/29",
)


def get_dataset(
    name: str, n: int = DEFAULT_N, seed: int = 42
) -> np.ndarray:
    """Generate dataset ``name`` (paper or extension) with ``n`` values."""
    spec = DATASETS.get(name) or EXTENSION_DATASETS.get(name)
    if spec is None:
        known = ", ".join(list(DATASETS) + list(EXTENSION_DATASETS))
        raise KeyError(f"unknown dataset {name!r}; known: {known}") from None
    return spec.generate(n=n, seed=seed)


def list_datasets(time_series: bool | None = None) -> list[str]:
    """Dataset names, optionally filtered by category."""
    return [
        name
        for name, spec in DATASETS.items()
        if time_series is None or spec.time_series == time_series
    ]
