"""The two-level adaptive sampling of ALP (Section 3.2).

Level one runs once per row-group: ``m = 8`` equidistant vectors are
sampled, ``n = 32`` equidistant values from each, and for every sampled
vector the *entire* (e, f) search space (253 combinations) is scanned.
The up-to-``k = 5`` combinations that win most often become the
row-group's candidate set; ties prefer higher exponents and factors.

Level two runs once per vector: ``s = 32`` equidistant values are
sampled and the candidates from level one are tried *in order of
frequency*, with a greedy early exit — if two consecutive candidates do
no better than the best seen, the search stops.  When level one produced
a single candidate, level two is skipped entirely.

The level-one scan also powers the ALP vs ALP_rd decision: a best
estimate above ``RD_SIZE_THRESHOLD_BITS`` bits/value marks the row-group
as "real doubles".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.alputil.bits import leading_zeros64
from repro.core.constants import (
    EXCEPTION_SIZE_BITS,
    F10,
    IF10,
    MAX_COMBINATIONS,
    MAX_EXPONENT,
    SAMPLES_PER_ROWGROUP,
    SAMPLES_PER_VECTOR_FIRST_LEVEL,
    SAMPLES_PER_VECTOR_SECOND_LEVEL,
    VECTOR_SIZE,
)
from repro.core.fastround import fast_round


@dataclass(frozen=True, order=True)
class ExponentFactor:
    """One (exponent e, factor f) combination, ``f <= e``."""

    exponent: int
    factor: int

    def __post_init__(self) -> None:
        if not 0 <= self.factor <= self.exponent <= MAX_EXPONENT:
            raise ValueError(
                f"invalid combination e={self.exponent}, f={self.factor}"
            )


def _build_search_space() -> tuple[np.ndarray, np.ndarray]:
    """All (e, f) combinations, highest exponent/factor first.

    Ordering matters: the full search takes the *first* minimum, so
    enumerating high-e/high-f first implements the paper's tie-break
    ("prioritize combinations with higher exponents and higher factors").
    """
    exponents, factors = [], []
    for e in range(MAX_EXPONENT, -1, -1):
        for f in range(e, -1, -1):
            exponents.append(e)
            factors.append(f)
    return (
        np.asarray(exponents, dtype=np.int64),
        np.asarray(factors, dtype=np.int64),
    )


_E_ALL, _F_ALL = _build_search_space()

#: Number of combinations in the full search space (253 in the paper).
SEARCH_SPACE_SIZE = _E_ALL.size


def estimate_sizes_all_combinations(sample: np.ndarray) -> np.ndarray:
    """Estimated bits for ``sample`` under *every* (e, f) combination.

    Fully vectorized over the (combinations x samples) matrix.  Returns an
    array aligned with the module's search-space ordering.
    """
    sample = np.ascontiguousarray(sample, dtype=np.float64)
    if sample.size == 0:
        return np.zeros(SEARCH_SPACE_SIZE, dtype=np.int64)
    # The multiplication structure must match alp_analyze exactly (two
    # separate multiplies, not a precomputed product): a different rounding
    # path would make the sampler mispredict the encoder's exceptions.
    e_mul = F10[_E_ALL][:, None]
    f_inv = IF10[_F_ALL][:, None]
    f_mul = F10[_F_ALL][:, None]
    e_inv = IF10[_E_ALL][:, None]
    with np.errstate(over="ignore", invalid="ignore"):
        encoded = fast_round(sample[None, :] * e_mul * f_inv)
        decoded = encoded * f_mul * e_inv
    exceptions = decoded.view(np.uint64) != sample.view(np.uint64)

    int_min = np.iinfo(np.int64).min
    int_max = np.iinfo(np.int64).max
    masked_max = np.where(exceptions, int_min, encoded).max(axis=1)
    masked_min = np.where(exceptions, int_max, encoded).min(axis=1)
    n_exc = exceptions.sum(axis=1)
    n_valid = sample.size - n_exc

    spread = np.where(
        n_valid > 0, masked_max - masked_min, 0
    ).astype(np.uint64)
    width = 64 - leading_zeros64(spread)
    return (n_valid * width + n_exc * EXCEPTION_SIZE_BITS).astype(np.int64)


def find_best_combination(sample: np.ndarray) -> tuple[ExponentFactor, int]:
    """Full-search the best (e, f) for a sample; returns (combo, est. bits)."""
    sizes = estimate_sizes_all_combinations(sample)
    best = int(np.argmin(sizes))
    combo = ExponentFactor(int(_E_ALL[best]), int(_F_ALL[best]))
    return combo, int(sizes[best])


def equidistant_indices(total: int, wanted: int) -> np.ndarray:
    """``wanted`` equidistant indices into a range of ``total`` elements."""
    if total <= 0:
        return np.empty(0, dtype=np.int64)
    wanted = min(wanted, total)
    return np.linspace(0, total - 1, num=wanted, dtype=np.int64)


def sample_vector(values: np.ndarray, wanted: int) -> np.ndarray:
    """Sample ``wanted`` equidistant values from a vector."""
    return values[equidistant_indices(values.size, wanted)]


@dataclass(frozen=True)
class FirstLevelResult:
    """Outcome of the row-group (first) sampling level.

    Attributes:
        candidates: up to ``k`` combinations, most frequent first.
        use_rd: True when the row-group should fall back to ALP_rd.
        best_estimated_bits_per_value: size estimate of the winning combo.
    """

    candidates: tuple[ExponentFactor, ...]
    use_rd: bool
    best_estimated_bits_per_value: float

    @property
    def k_prime(self) -> int:
        """Number of surviving candidates (the paper's k')."""
        return len(self.candidates)


def first_level_sample(
    rowgroup: np.ndarray,
    vector_size: int = VECTOR_SIZE,
    vectors_sampled: int = SAMPLES_PER_ROWGROUP,
    values_per_vector: int = SAMPLES_PER_VECTOR_FIRST_LEVEL,
    max_candidates: int = MAX_COMBINATIONS,
    rd_threshold_bits: float | None = None,
) -> FirstLevelResult:
    """Row-group sampling: full search on m x n sampled values (§3.2)."""
    from repro.core.constants import RD_SIZE_THRESHOLD_BITS

    if rd_threshold_bits is None:
        rd_threshold_bits = float(RD_SIZE_THRESHOLD_BITS)

    with obs.span("sampler.first_level"):
        rowgroup = np.ascontiguousarray(rowgroup, dtype=np.float64)
        n_vectors = max(1, (rowgroup.size + vector_size - 1) // vector_size)
        vector_indices = equidistant_indices(n_vectors, vectors_sampled)

        votes: Counter[ExponentFactor] = Counter()
        best_ratio = float("inf")
        sampled = 0
        for vi in vector_indices.tolist():
            chunk = rowgroup[vi * vector_size : (vi + 1) * vector_size]
            if chunk.size == 0:
                continue
            sample = sample_vector(chunk, values_per_vector)
            combo, est_bits = find_best_combination(sample)
            votes[combo] += 1
            sampled += 1
            best_ratio = min(best_ratio, est_bits / sample.size)

    if obs.ENABLED:
        obs.metrics.counter_add("sampler.first_level_runs", 1)
        obs.metrics.counter_add("sampler.first_level_vectors", sampled)
    if not votes:
        return FirstLevelResult(
            candidates=(ExponentFactor(0, 0),),
            use_rd=False,
            best_estimated_bits_per_value=0.0,
        )

    # Most frequent first; ties prefer higher exponent, then higher factor.
    ranked = sorted(
        votes.items(),
        key=lambda item: (-item[1], -item[0].exponent, -item[0].factor),
    )
    candidates = tuple(combo for combo, _ in ranked[:max_candidates])
    if obs.ENABLED:
        obs.metrics.counter_add("sampler.candidates_kept", len(candidates))
    return FirstLevelResult(
        candidates=candidates,
        use_rd=best_ratio >= rd_threshold_bits,
        best_estimated_bits_per_value=best_ratio,
    )


@dataclass(frozen=True)
class SecondLevelResult:
    """Outcome of the per-vector (second) sampling level."""

    combination: ExponentFactor
    combinations_tried: int
    skipped: bool  # True when k' == 1 and no sampling happened


def _estimate_for_candidates(
    sample: np.ndarray, candidate: ExponentFactor
) -> int:
    """Size estimate of one candidate on the per-vector sample."""
    from repro.core.alp import estimate_size_bits

    return estimate_size_bits(sample, candidate.exponent, candidate.factor)


def second_level_sample(
    vector: np.ndarray,
    candidates: tuple[ExponentFactor, ...],
    samples: int = SAMPLES_PER_VECTOR_SECOND_LEVEL,
) -> SecondLevelResult:
    """Per-vector sampling with greedy early exit (§3.2).

    Candidates are evaluated in the order level one ranked them.  If two
    consecutive candidates perform no better than the best so far, the
    search stops and the best so far wins.  With a single candidate the
    whole step is skipped.
    """
    if not candidates:
        raise ValueError("second_level_sample needs at least one candidate")
    if len(candidates) == 1:
        obs.counter_add("sampler.second_level_skipped")
        return SecondLevelResult(
            combination=candidates[0], combinations_tried=0, skipped=True
        )

    with obs.span("sampler.second_level"):
        sample = sample_vector(
            np.ascontiguousarray(vector, dtype=np.float64), samples
        )
        best_combo = candidates[0]
        best_size = _estimate_for_candidates(sample, best_combo)
        worse_streak = 0
        tried = 1
        early_exit = False
        for candidate in candidates[1:]:
            size = _estimate_for_candidates(sample, candidate)
            tried += 1
            if size < best_size:
                best_size = size
                best_combo = candidate
                worse_streak = 0
            else:
                worse_streak += 1
                if worse_streak >= 2:
                    early_exit = True
                    break
    if obs.ENABLED:
        obs.metrics.counter_add("sampler.second_level_runs", 1)
        obs.metrics.counter_add("sampler.combinations_tried", tried)
        if early_exit:
            obs.metrics.counter_add("sampler.early_exits", 1)
    return SecondLevelResult(
        combination=best_combo, combinations_tried=tried, skipped=False
    )
