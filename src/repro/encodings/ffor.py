"""Fused Frame-Of-Reference (FFOR), the kernel under ALP.

FastLanes' FFOR fuses the FOR subtraction/addition with bit-[un]packing
into a single kernel, saving a SIMD store and load between the two loops.
The paper's Figure 5 measures a median ~40% decompression speedup from
this fusion.

In this numpy port the *fused* decoder folds the reference add into the
horizontal reduction of the unpack (one pass, no intermediate residual
array), while the *unfused* path (:func:`ffor_decode_unfused`) first
materializes the residual vector and then runs a second add pass —
the same distinction, one allocation apart.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.constants import U64_MASK
from repro.encodings.bitpack import (
    Buffer,
    pack_bits,
    uint64_sum_bounded,
    unpack_bits,
    unpack_sum,
    unpack_sum_excluding,
)


@dataclass(frozen=True)
class FforEncoded:
    """An FFOR-encoded integer vector (same storage layout as FOR).

    ``payload`` is any buffer-protocol object — ``bytes`` from the
    in-memory encoder, or a ``memoryview`` slice of an mmap when the
    vector was deserialized from a mapped column file (see
    ``docs/PERFORMANCE.md``, "zero-copy read path").
    """

    payload: Buffer
    reference: int
    bit_width: int
    count: int

    def size_bits(self) -> int:
        """Packed payload + 64-bit reference + 8-bit width, per vector."""
        return len(self.payload) * 8 + 64 + 8


def ffor_encode(values: np.ndarray) -> FforEncoded:
    """Encode int64 values: subtract min and bit-pack, in one fused pass."""
    values = np.ascontiguousarray(values, dtype=np.int64)
    if values.size == 0:
        return FforEncoded(payload=b"", reference=0, bit_width=0, count=0)
    reference = int(values.min())
    ref64 = np.uint64(reference & U64_MASK)
    residuals = values.view(np.uint64) - ref64
    # One reduction serves width computation *and* pack validation; the
    # residual minimum is 0 by construction, so no sign check is needed.
    residual_max = int(residuals.max())
    width = residual_max.bit_length()
    payload = pack_bits(residuals, width, max_value=residual_max)
    if obs.ENABLED:
        obs.metrics.counter_add("ffor.vectors_encoded", 1)
        obs.metrics.counter_add("ffor.packed_bytes", len(payload))
        obs.metrics.counter_add("ffor.bit_width_sum", width)
    return FforEncoded(
        payload=payload, reference=reference, bit_width=width, count=values.size
    )


def ffor_decode(
    encoded: FforEncoded, out: np.ndarray | None = None
) -> np.ndarray:
    """Fused decode: unpack and add the reference in a single kernel.

    The reference addition is folded into the same expression that
    reconstitutes values from their bit rows, so no intermediate residual
    array is written back to memory before the add.  ``out``, when given,
    must be a writable C-contiguous int64 (or uint64) array of exactly
    ``encoded.count`` values; the decode then allocates nothing.
    """
    obs.counter_add("ffor.vectors_decoded")
    width, count = encoded.bit_width, encoded.count
    ref64 = np.uint64(encoded.reference & U64_MASK)
    if out is None:
        target = None
    else:
        target = out if out.dtype == np.uint64 else out.view(np.uint64)
        if target.ndim != 1 or target.size != count:
            raise ValueError(
                f"out must be a 1-D array of exactly {count} values, "
                f"got shape {out.shape}"
            )
    if width == 0:
        if target is not None:
            target[...] = ref64
            return target.view(np.int64)
        return np.full(count, ref64, dtype=np.uint64).view(np.int64)
    # The reference is added *in place* on the unpacker's fresh output —
    # no intermediate residual array is materialized and re-read, which
    # is the numpy rendering of FastLanes' fused subtract+unpack kernel.
    target = unpack_bits(encoded.payload, width, count, out=target)
    target += ref64
    return target.view(np.int64)


def ffor_sum(
    encoded: FforEncoded, exclude: np.ndarray | None = None
) -> int:
    """Exact integer sum of the decoded values, without decoding them.

    ``sum(v_i) = reference * count + sum(residual_i)`` — the reference
    contribution is one multiplication and the residual sum is the fused
    :func:`~repro.encodings.bitpack.unpack_sum` reduction, so no int64
    column (let alone a float64 one) is materialized for the caller.

    ``exclude``, when given, is a sorted array of positions whose values
    are omitted from the sum — the sparse correction encoded-domain SUM
    applies for ALP exception slots, whose packed payload holds a
    placeholder rather than a real value.  The result is an exact Python
    int in every case.
    """
    if obs.ENABLED:
        obs.metrics.counter_add("ffor.sum_fused", 1)
    count = encoded.count
    if exclude is None or exclude.size == 0:
        if encoded.bit_width == 0:
            return encoded.reference * count
        residual_total = unpack_sum(
            encoded.payload, encoded.bit_width, count
        )
        return encoded.reference * count + residual_total
    kept = count - int(exclude.size)
    if encoded.bit_width == 0:
        return encoded.reference * kept
    residual_total = unpack_sum_excluding(
        encoded.payload, encoded.bit_width, count, exclude
    )
    return encoded.reference * kept + residual_total


def ffor_sum_reference(
    encoded: FforEncoded, exclude: np.ndarray | None = None
) -> int:
    """Scalar oracle for :func:`ffor_sum`: decode, then sum per value."""
    values = ffor_decode_unfused(encoded)
    skip = (
        set(exclude.astype(np.int64).tolist())
        if exclude is not None
        else set()
    )
    total = 0
    for position, value in enumerate(values.tolist()):
        if position not in skip:
            total += value
    return total


def ffor_range_state(
    encoded: FforEncoded, d_low: int, d_high: int
) -> str:
    """Classify a vector against integer bounds from its header alone.

    The decoded values all lie in ``[reference, reference + 2^width)``,
    so (reference, bit width) decide many vectors without touching the
    packed payload:

    - ``"reject"`` — no decoded value can fall inside ``[d_low, d_high]``;
    - ``"accept"`` — every decoded value falls inside the bounds;
    - ``"partial"`` — the payload must be inspected.
    """
    if d_low > d_high or encoded.count == 0:
        return "reject"
    vec_min = encoded.reference
    vec_max = encoded.reference + (
        (1 << encoded.bit_width) - 1 if encoded.bit_width else 0
    )
    if vec_max < d_low or vec_min > d_high:
        return "reject"
    if d_low <= vec_min and vec_max <= d_high:
        return "accept"
    return "partial"


def ffor_filter_range(
    encoded: FforEncoded, d_low: int, d_high: int
) -> np.ndarray:
    """Fused unpack-compare: bool mask of values in ``[d_low, d_high]``.

    The comparison runs on the *packed residuals*: the constant bounds
    are translated by the frame of reference once (two Python-int
    subtractions), then clamped into the residual domain, so the kernel
    never performs the FOR add, never converts to float64 and never
    materializes the decoded integers for the caller.  Vectors decided
    by :func:`ffor_range_state` short-circuit without unpacking at all.
    """
    obs.counter_add("ffor.filter_fused")
    count = encoded.count
    state = ffor_range_state(encoded, d_low, d_high)
    if state == "reject":
        return np.zeros(count, dtype=bool)
    if state == "accept":
        return np.ones(count, dtype=bool)
    # Translate the bounds into residual space and clamp; the clamped
    # bounds stay within [0, 2^width), so the uint64 compares are exact.
    r_low = max(d_low - encoded.reference, 0)
    r_high = min(
        d_high - encoded.reference, (1 << encoded.bit_width) - 1
    )
    residuals = unpack_bits(encoded.payload, encoded.bit_width, count)
    mask: np.ndarray = (residuals >= np.uint64(r_low)) & (
        residuals <= np.uint64(r_high)
    )
    return mask


def ffor_sum_range(
    encoded: FforEncoded,
    d_low: int,
    d_high: int,
    exclude: np.ndarray | None = None,
) -> tuple[int, int]:
    """Fused filtered sum: ``(sum, count)`` of values in ``[d_low, d_high]``.

    One unpack feeds both the range mask and the reduction — the
    filter+aggregate pipeline collapses into a single kernel with no
    decoded column in between.  ``exclude`` positions are dropped from
    the selection before summing (ALP exception slots carry placeholder
    payloads; the caller re-checks their raw doubles separately).  Both
    outputs are exact Python ints.
    """
    obs.counter_add("ffor.sum_range_fused")
    count = encoded.count
    state = ffor_range_state(encoded, d_low, d_high)
    if state == "reject":
        return 0, 0
    has_exclude = exclude is not None and exclude.size > 0
    if encoded.bit_width == 0:
        # Every value equals the reference; non-reject means it's in range.
        kept = count - (int(exclude.size) if has_exclude else 0)
        return encoded.reference * kept, kept
    if state == "accept":
        # Header-decided: every value qualifies, so the filtered sum IS
        # the plain fused sum — the payload is folded, never unpacked.
        kept = count - (int(exclude.size) if has_exclude else 0)
        return ffor_sum(encoded, exclude=exclude), kept
    residuals = unpack_bits(encoded.payload, encoded.bit_width, count)
    r_low = max(d_low - encoded.reference, 0)
    r_high = min(
        d_high - encoded.reference, (1 << encoded.bit_width) - 1
    )
    mask = (residuals >= np.uint64(r_low)) & (
        residuals <= np.uint64(r_high)
    )
    if exclude is not None and exclude.size:
        mask[exclude.astype(np.int64)] = False
    kept = int(np.count_nonzero(mask))
    if kept == 0:
        return 0, 0
    if encoded.bit_width + count.bit_length() <= 64:
        # Bool-multiply zeroes the dropped lanes in place of a gather —
        # one fused pass, exact while the total cannot wrap uint64.
        residual_sum = int((residuals * mask).sum(dtype=np.uint64))
    else:
        residual_sum = uint64_sum_bounded(
            residuals[mask], encoded.bit_width
        )
    return encoded.reference * kept + residual_sum, kept


def ffor_sum_range_reference(
    encoded: FforEncoded,
    d_low: int,
    d_high: int,
    exclude: np.ndarray | None = None,
) -> tuple[int, int]:
    """Scalar oracle for :func:`ffor_sum_range` (decode, test, sum)."""
    values = ffor_decode_unfused(encoded)
    skip = (
        set(exclude.astype(np.int64).tolist())
        if exclude is not None
        else set()
    )
    total = 0
    kept = 0
    for position, value in enumerate(values.tolist()):
        if position not in skip and d_low <= value <= d_high:
            total += value
            kept += 1
    return total, kept


def ffor_filter_range_reference(
    encoded: FforEncoded, d_low: int, d_high: int
) -> np.ndarray:
    """Scalar oracle for :func:`ffor_filter_range` (decode, then test)."""
    values = ffor_decode_unfused(encoded)
    mask = np.zeros(encoded.count, dtype=bool)
    for position, value in enumerate(values.tolist()):
        mask[position] = d_low <= value <= d_high
    return mask


def ffor_decode_unfused(encoded: FforEncoded) -> np.ndarray:
    """Unfused decode: unpack to a residual array, then a second add pass.

    Reference implementation for the Figure 5 fusion ablation.  Produces
    bit-identical output to :func:`ffor_decode`.
    """
    residuals = unpack_bits(encoded.payload, encoded.bit_width, encoded.count)
    residuals = np.ascontiguousarray(residuals)  # materialized store
    out = residuals + np.uint64(encoded.reference & U64_MASK)
    return out.view(np.int64)
