"""Binary layout for compressed float32 columns (§4.4 / Table 7 data).

Model-weight columns compressed with ALP-32 / ALP_rd-32 get the same
byte-exact treatment as doubles, so checkpoints can be stored and
reloaded losslessly.

Layout::

    "ALPF" magic, u16 version,
    u8  scheme (0 = ALP-32, 1 = ALP_rd-32), u32 value count
    -- ALP-32: u16 vector count, then per vector:
       u8 e, u8 f, u16 count,
       i64 ffor reference, u8 ffor width, u32 len, payload,
       u16 exc count, positions (u16), values (f32)
    -- ALP_rd-32: u8 right width, u8 dict size, entries (u16),
       u16 vector count, then per vector (shared with the 64-bit rd
       layout: left/right payloads + 16-bit exceptions)
"""

from __future__ import annotations

import numpy as np

from repro.core.alprd import AlpRdParameters
from repro.core.float32 import (
    AlpFloatVector,
    CompressedFloatColumn,
)
from repro.encodings.dictionary import SkewedDictionary
from repro.encodings.ffor import FforEncoded
from repro.storage.serializer import ByteReader, ByteWriter

MAGIC_F32 = b"ALPF"
VERSION_F32 = 1

_SCHEME_ALP32 = 0
_SCHEME_ALPRD32 = 1


def _write_float_vector(w: ByteWriter, vector: AlpFloatVector) -> None:
    w.u8(vector.exponent)
    w.u8(vector.factor)
    w.u16(vector.count)
    w.i64(vector.ffor.reference)
    w.u8(vector.ffor.bit_width)
    w.u32(len(vector.ffor.payload))
    w.raw(vector.ffor.payload)
    w.u32(vector.ffor.count)
    w.u16(vector.exc_positions.size)
    w.array(vector.exc_positions.astype("<u2"))
    w.array(vector.exc_values.astype("<f4"))


def _read_float_vector(r: ByteReader) -> AlpFloatVector:
    exponent = r.u8()
    factor = r.u8()
    count = r.u16()
    reference = r.i64()
    width = r.u8()
    payload = r.raw(r.u32())
    ffor_count = r.u32()
    n_exc = r.u16()
    exc_positions = r.array(np.dtype("<u2"), n_exc).astype(np.uint16)
    exc_values = r.array(np.dtype("<f4"), n_exc).astype(np.float32)
    return AlpFloatVector(
        ffor=FforEncoded(
            payload=payload,
            reference=reference,
            bit_width=width,
            count=ffor_count,
        ),
        exponent=exponent,
        factor=factor,
        exc_values=exc_values,
        exc_positions=exc_positions,
        count=count,
    )


def serialize_float_column(column: CompressedFloatColumn) -> bytes:
    """Serialize a compressed float32 column to bytes."""
    from repro.storage.serializer import _write_rd_vector

    w = ByteWriter()
    w.raw(MAGIC_F32)
    w.u16(VERSION_F32)
    if column.scheme == "alp":
        w.u8(_SCHEME_ALP32)
        w.u32(column.count)
        w.u16(len(column.vectors))
        for vector in column.vectors:
            _write_float_vector(w, vector)
    else:
        if column.rd_parameters is None:
            raise ValueError("ALP_rd float32 column is missing its parameters")
        w.u8(_SCHEME_ALPRD32)
        w.u32(column.count)
        w.u8(column.rd_parameters.right_bit_width)
        entries = column.rd_parameters.dictionary.entries
        w.u8(entries.size)
        w.array(entries.astype("<u2"))
        w.u16(len(column.vectors))
        for vector in column.vectors:
            _write_rd_vector(w, vector)
    return w.getvalue()


def deserialize_float_column(buffer: bytes) -> CompressedFloatColumn:
    """Inverse of :func:`serialize_float_column`."""
    from repro.storage.serializer import _read_rd_vector

    r = ByteReader(buffer)
    if r.raw(4) != MAGIC_F32:
        raise ValueError("not an ALPF float32 column")
    version = r.u16()
    if version != VERSION_F32:
        raise ValueError(f"unsupported ALPF version {version}")
    scheme = r.u8()
    count = r.u32()
    if scheme == _SCHEME_ALP32:
        n_vectors = r.u16()
        vectors = tuple(_read_float_vector(r) for _ in range(n_vectors))
        return CompressedFloatColumn(
            scheme="alp", vectors=vectors, rd_parameters=None, count=count
        )
    if scheme == _SCHEME_ALPRD32:
        right_width = r.u8()
        n_entries = r.u8()
        entries = r.array(np.dtype("<u2"), n_entries).astype(np.uint16)
        width = max(int(entries.size - 1).bit_length(), 0)
        parameters = AlpRdParameters(
            right_bit_width=right_width,
            dictionary=SkewedDictionary(entries=entries, code_width=width),
            total_bits=32,
        )
        n_vectors = r.u16()
        vectors = tuple(_read_rd_vector(r) for _ in range(n_vectors))
        return CompressedFloatColumn(
            scheme="alprd",
            vectors=vectors,
            rd_parameters=parameters,
            count=count,
        )
    raise ValueError(f"unknown ALPF scheme tag {scheme}")
