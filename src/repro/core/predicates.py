"""Predicate evaluation directly on ALP-encoded integers.

Because ALP's mapping ``d = round(n * 10^e * 10^-f)`` is monotone in
``n``, a range predicate on the doubles translates to a range predicate
on the *encoded integers*: decode can be skipped entirely for filtering.
For a predicate ``low <= n <= high`` the integer bounds are

    d_low  = ceil-equivalent of ALP_enc(low)
    d_high = floor-equivalent of ALP_enc(high)

computed conservatively (off-by-one-ulp tolerant) so the integer filter
*over-approximates*: candidate positions are then confirmed against the
exactly-decoded values, and exception slots are always re-checked.  The
result is exact while the bulk comparison runs on bit-packed integers —
the deepest form of the paper's predicate-push-down story.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.alp import AlpVector, alp_decode_vector
from repro.core.compressor import CompressedRowGroups
from repro.core.constants import F10, IF10
from repro.encodings.ffor import ffor_decode


def encoded_bounds(
    low: float, high: float, exponent: int, factor: int
) -> tuple[int, int]:
    """Conservative integer bounds for ``[low, high]`` under (e, f).

    The returned range is widened by one to absorb the rounding of
    ALP_enc at the boundaries, so it may admit false positives but never
    false negatives among *successfully encoded* values.
    """
    scale = float(F10[exponent] * IF10[factor])
    d_low = math.floor(low * scale) - 1
    d_high = math.ceil(high * scale) + 1
    return d_low, d_high


def filter_vector_encoded(
    vector: AlpVector, low: float, high: float
) -> np.ndarray:
    """Positions in a vector whose value lies in ``[low, high]``.

    The bulk test runs on the encoded integers; only candidate
    positions (plus exceptions) are verified on decoded doubles.
    """
    d_low, d_high = encoded_bounds(
        low, high, vector.exponent, vector.factor
    )
    encoded = ffor_decode(vector.ffor)
    candidates = (encoded >= d_low) & (encoded <= d_high)
    if vector.exc_positions.size:
        # Exceptions carry arbitrary doubles: always candidates.
        candidates[vector.exc_positions.astype(np.int64)] = True
    if not candidates.any():
        return np.empty(0, dtype=np.int64)
    # Confirm candidates exactly. Decoding only the candidate slots
    # would need a gather; decoding the vector is one vector op and
    # keeps the fast path branch-free.
    decoded = alp_decode_vector(vector)
    confirmed = candidates & (decoded >= low) & (decoded <= high)
    return np.flatnonzero(confirmed).astype(np.int64)


def count_range_encoded(
    column: CompressedRowGroups, low: float, high: float
) -> int:
    """Count of values in ``[low, high]`` using encoded-space filtering.

    ALP row-groups use the integer fast path (vectors whose integer
    range excludes the predicate are rejected after UNFFOR alone, with
    no floating-point work); ALP_rd row-groups fall back to decoding.
    """
    from repro.core.alprd import decode_vector_bits
    from repro.alputil.bits import bits_to_double

    total = 0
    for rowgroup in column.rowgroups:
        if rowgroup.alp is not None:
            for vector in rowgroup.alp.vectors:
                total += filter_vector_encoded(vector, low, high).size
        else:
            if rowgroup.rd is None:
                raise ValueError(
                    "row-group has neither ALP nor ALP_rd payload"
                )
            for vector in rowgroup.rd.vectors:
                values = bits_to_double(
                    decode_vector_bits(vector, rowgroup.rd.parameters)
                )
                total += int(((values >= low) & (values <= high)).sum())
    return total


def vector_may_match(
    vector: AlpVector, low: float, high: float
) -> bool:
    """Cheap per-vector test from the FFOR header alone.

    Uses only (reference, bit width) — no unpacking at all: the encoded
    integers all lie in ``[reference, reference + 2^width)``.  Vectors
    with exceptions are always possible matches.
    """
    if vector.exception_count:
        return True
    d_low, d_high = encoded_bounds(
        low, high, vector.exponent, vector.factor
    )
    vec_min = vector.ffor.reference
    vec_max = vector.ffor.reference + (
        (1 << vector.ffor.bit_width) - 1 if vector.ffor.bit_width else 0
    )
    return vec_max >= d_low and vec_min <= d_high
