"""Random access into compressed columns without full decompression.

Columnar engines routinely fetch a row range (LIMIT/OFFSET, rowid join
back-pointers) out of a compressed column.  Because ALP decodes
vector-at-a-time, a slice only needs the vectors it overlaps:

- :func:`decode_slice` — values ``[start, stop)`` of a compressed
  column, decoding ceil(len/1024) + 1 vectors at most,
- :func:`decode_at` — a single value.

Both are bit-exact and never materialize untouched vectors.
"""

from __future__ import annotations

import numpy as np

from repro.alputil.bits import bits_to_double
from repro.core.alp import alp_decode_vector
from repro.core.alprd import decode_vector_bits
from repro.core.compressor import CompressedRowGroup, CompressedRowGroups


def _rowgroup_vector_counts(rowgroup: CompressedRowGroup) -> list[int]:
    """Value counts of the row-group's vectors, in order."""
    if rowgroup.alp is not None:
        return [v.count for v in rowgroup.alp.vectors]
    if rowgroup.rd is None:
        raise ValueError("row-group has neither ALP nor ALP_rd payload")
    return [v.count for v in rowgroup.rd.vectors]


def _decode_rowgroup_vector(
    rowgroup: CompressedRowGroup, index: int
) -> np.ndarray:
    """Decode one vector of a row-group."""
    if rowgroup.alp is not None:
        return alp_decode_vector(rowgroup.alp.vectors[index])
    if rowgroup.rd is None:
        raise ValueError("row-group has neither ALP nor ALP_rd payload")
    return bits_to_double(
        decode_vector_bits(
            rowgroup.rd.vectors[index], rowgroup.rd.parameters
        )
    )


def decode_slice(
    column: CompressedRowGroups, start: int, stop: int
) -> np.ndarray:
    """Decode values ``[start, stop)`` touching only overlapping vectors.

    Negative or out-of-range bounds are clamped like Python slicing.
    """
    start = max(0, min(start, column.count))
    stop = max(start, min(stop, column.count))
    if start == stop:
        return np.empty(0, dtype=np.float64)

    parts: list[np.ndarray] = []
    position = 0
    for rowgroup in column.rowgroups:
        if position >= stop:
            break
        if position + rowgroup.count <= start:
            position += rowgroup.count
            continue
        for v_index, v_count in enumerate(_rowgroup_vector_counts(rowgroup)):
            if position >= stop:
                break
            if position + v_count <= start:
                position += v_count
                continue
            vector = _decode_rowgroup_vector(rowgroup, v_index)
            lo = max(start - position, 0)
            hi = min(stop - position, v_count)
            parts.append(vector[lo:hi])
            position += v_count
    return np.concatenate(parts) if parts else np.empty(0, dtype=np.float64)


def decode_at(column: CompressedRowGroups, index: int) -> float:
    """Decode the single value at ``index`` (bit-exact)."""
    if not 0 <= index < column.count:
        raise IndexError(
            f"index {index} out of range for column of {column.count}"
        )
    return float(decode_slice(column, index, index + 1)[0])
