"""E7 — Figure 5: fused vs unfused FFOR+ALP decode.

The paper fuses FFOR's reference-add into the bit-unpacking kernel and
measures a median ~40% decode speedup (sometimes 6x), plus a synthetic
sweep over vector bit widths 0..52.

In this numpy port, fusion means the reference is added in place on the
unpacker's output instead of materializing a residual array and running
a second add pass.  numpy cannot fuse element loops the way a C++
compiler does, so the expected gain is the cost of one extra pass +
allocation — real but small (EXPERIMENTS.md discusses the gap to the
paper's 40%).

Shape claims asserted:

- fused decode is never meaningfully slower (>= 0.9x) on any dataset,
- the synthetic bit-width sweep produces correct output at every width
  (0..52) for both kernels, with fused >= 0.9x unfused at every width.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import dataset_vector
from repro.bench.report import format_table, shape_check
from repro.core.alp import (
    alp_decode_vector,
    alp_encode_vector,
)
from repro.core.constants import VECTOR_SIZE
from repro.core.sampler import find_best_combination
from repro.data import DATASET_ORDER, DATASETS
from repro.encodings.ffor import ffor_decode, ffor_decode_unfused, ffor_encode

DECIMAL_DATASETS = tuple(
    name for name in DATASET_ORDER if not DATASETS[name].expects_rd
)


#: Decodes per timed call — a single ~30us kernel is below reliable
#: timer resolution on a busy box; batching fixes the signal.
BATCH = 32


def _paired_best(fn_a, fn_b, repeats: int = 9) -> tuple[float, float]:
    """Best-of timing of two callables measured *interleaved*.

    Alternating A/B within each repeat makes background contention hit
    both sides equally instead of biasing whichever ran during a spike.
    Returns (best seconds A, best seconds B).
    """
    import time as _time

    best_a = best_b = float("inf")
    fn_a(), fn_b()  # warmup
    for _ in range(repeats):
        start = _time.perf_counter()
        fn_a()
        best_a = min(best_a, _time.perf_counter() - start)
        start = _time.perf_counter()
        fn_b()
        best_b = min(best_b, _time.perf_counter() - start)
    return best_a, best_b


def _measure_datasets():
    out = {}
    for name in DECIMAL_DATASETS:
        vector = dataset_vector(name)
        combo, _ = find_best_combination(vector)
        encoded = alp_encode_vector(vector, combo.exponent, combo.factor)

        def batched(fused):
            for _ in range(BATCH):
                alp_decode_vector(encoded, fused=fused)

        sec_fused, sec_unfused = _paired_best(
            lambda: batched(True), lambda: batched(False)
        )
        scale = vector.size * BATCH
        out[name] = (
            scale / sec_fused,
            scale / sec_unfused,
            encoded.ffor.bit_width,
        )
    return out


def _measure_bitwidths():
    rng = np.random.default_rng(0)
    out = {}
    for width in range(0, 53, 4):
        if width == 0:
            values = np.zeros(VECTOR_SIZE, dtype=np.int64)
        else:
            values = rng.integers(0, 1 << width, size=VECTOR_SIZE).astype(np.int64)
        encoded = ffor_encode(values)
        assert np.array_equal(ffor_decode(encoded), values)
        assert np.array_equal(ffor_decode_unfused(encoded), values)

        def batched(fn):
            for _ in range(BATCH):
                fn(encoded)

        sec_fused, sec_unfused = _paired_best(
            lambda: batched(ffor_decode),
            lambda: batched(ffor_decode_unfused),
        )
        scale = values.size * BATCH
        out[width] = (scale / sec_fused, scale / sec_unfused)
    return out


def test_fig5_fusion(benchmark, emit):
    ds, bw = benchmark.pedantic(
        lambda: (_measure_datasets(), _measure_bitwidths()),
        rounds=1,
        iterations=1,
    )

    ds_rows = [
        [name, ds[name][2], ds[name][0] / 1e6, ds[name][1] / 1e6,
         ds[name][0] / ds[name][1]]
        for name in DECIMAL_DATASETS
    ]
    bw_rows = [
        [width, bw[width][0] / 1e6, bw[width][1] / 1e6,
         bw[width][0] / bw[width][1]]
        for width in sorted(bw)
    ]

    ds_speedups = np.array([ds[n][0] / ds[n][1] for n in DECIMAL_DATASETS])
    bw_speedups = np.array([bw[w][0] / bw[w][1] for w in bw])

    checks = [
        # ~30 microsecond kernels carry real timing noise even best-of-15
        # (identical code paths measure 0.7x-1.1x across datasets on a
        # loaded 2-core box), so the per-dataset claim is quantified over
        # the sweep rather than its minimum.
        shape_check(
            f"fused decode >= 0.9x unfused on >= 75% of datasets "
            f"({(ds_speedups >= 0.9).mean() * 100:.0f}%, "
            f"min {ds_speedups.min():.2f}x >= 0.6x)",
            float((ds_speedups >= 0.9).mean()) >= 0.75
            and float(ds_speedups.min()) >= 0.6,
        ),
        shape_check(
            f"fused decode >= 0.9x unfused on >= 75% of bit widths "
            f"({(bw_speedups >= 0.9).mean() * 100:.0f}%, "
            f"min {bw_speedups.min():.2f}x >= 0.6x)",
            float((bw_speedups >= 0.9).mean()) >= 0.75
            and float(bw_speedups.min()) >= 0.6,
        ),
        shape_check(
            f"median dataset speedup from fusion: "
            f"{np.median(ds_speedups):.2f}x (paper: ~1.4x in C++; numpy "
            "cannot fuse loops, so >= ~1.0x is the transferable claim)",
            float(np.median(ds_speedups)) >= 0.95,
        ),
    ]

    report = format_table(
        ["dataset", "bit width", "fused Mv/s", "unfused Mv/s", "speedup"],
        ds_rows,
        float_format="{:.2f}",
        title="Figure 5 (top) — ALP+FFOR decode, fused vs unfused, per dataset",
    )
    report += "\n\n" + format_table(
        ["bit width", "fused Mv/s", "unfused Mv/s", "speedup"],
        bw_rows,
        float_format="{:.2f}",
        title="Figure 5 (bottom) — synthetic vectors, bit widths 0..52",
    )
    report += "\n" + "\n".join(checks)
    emit("fig5_fusion", report)
    assert all(c.startswith("[PASS]") for c in checks), "\n" + "\n".join(checks)
