"""RL5 — bare ``assert`` is forbidden in library code.

``python -O`` strips every ``assert`` statement, so an assert used for
input validation silently stops validating in optimized runs — the
compressor would then write corrupt payloads instead of raising.
Library code under ``src/repro/`` must raise ``ValueError`` /
``TypeError`` / ``RuntimeError`` explicitly; asserts stay welcome in
``tests/`` and ``benchmarks/``, which this rule does not scope.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Rule, Violation


class BareAssertRule(Rule):
    """RL5: ``assert`` statements outside tests."""

    code = "RL5"
    name = "bare-assert"
    description = (
        "assert statements in library code (stripped under python -O); "
        "raise ValueError/TypeError instead"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return bool(ctx.effective) and ctx.effective[0] == "repro"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                yield self.violation(
                    ctx,
                    node,
                    "assert in library code vanishes under python -O; "
                    "raise ValueError/TypeError explicitly",
                )
