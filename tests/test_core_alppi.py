"""Tests for the ALP-pi extension mode (pi-multiplied coordinates)."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alppi import (
    alppi_analyze,
    alppi_compress,
    alppi_decode_vector,
    alppi_decompress,
    alppi_encode_vector,
    find_best_pi_combination,
    pi_mode_viable,
)
from repro.data import get_dataset


def bitwise_equal(a, b):
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return a.shape == b.shape and np.array_equal(
        a.view(np.uint64), b.view(np.uint64)
    )


def gps_radians(n, seed=0, places=7):
    # NB: one multiply by the precomputed constant (pi/180), matching the
    # decoder's chain; `deg * math.pi / 180.0` would round twice and
    # produce values one ulp off from anything the transform can emit.
    rng = np.random.default_rng(seed)
    return np.round(rng.uniform(-90, 90, n), places) * (math.pi / 180.0)


class TestAnalyze:
    def test_gps_values_mostly_encode(self):
        values = gps_radians(1024)
        combo, _ = find_best_pi_combination(values[:64])
        _, exceptions = alppi_analyze(values, combo.exponent, combo.factor)
        assert exceptions.mean() < 0.2

    def test_non_pi_values_become_exceptions(self):
        values = np.array([math.pi, 0.123456789012345678])
        _, exceptions = alppi_analyze(values, 14, 7)
        # pi radians = exactly 180 degrees, so pi itself encodes!
        assert not exceptions[0]
        assert exceptions[1]

    def test_known_transform(self):
        # 45.5 degrees in radians, e-f = 1 digit.
        values = np.array([45.5 * math.pi / 180.0])
        encoded, exceptions = alppi_analyze(values, 14, 13)
        assert not exceptions[0]
        assert encoded[0] == 455


class TestVectorRoundTrip:
    def test_clean_vector(self):
        values = gps_radians(1024)
        combo, _ = find_best_pi_combination(values[:64])
        vector = alppi_encode_vector(values, combo.exponent, combo.factor)
        assert bitwise_equal(alppi_decode_vector(vector), values)

    def test_exceptions_patched(self):
        values = gps_radians(512)
        values[7] = 0.777777777777  # not pi-multiplied
        values[100] = math.nan
        combo, _ = find_best_pi_combination(values[:64])
        vector = alppi_encode_vector(values, combo.exponent, combo.factor)
        assert vector.inner.exception_count >= 2
        assert bitwise_equal(alppi_decode_vector(vector), values)


class TestViability:
    def test_gps_data_viable(self):
        viable, _ = pi_mode_viable(gps_radians(8192))
        assert viable

    def test_full_precision_radians_not_viable(self):
        # The paper's actual POI data: full-precision degrees.
        values = get_dataset("POI-lat", n=8192)
        viable, _ = pi_mode_viable(values)
        assert not viable

    def test_plain_decimals_viable_but_unnecessary(self):
        # Decimal data also passes through the transform fine — pi mode
        # should not be *worse*, just unnecessary.
        values = np.round(np.random.default_rng(1).uniform(0, 90, 4096), 2)
        viable, _ = pi_mode_viable(values * math.pi / 180.0)
        assert viable


class TestColumnRoundTrip:
    def test_compress_decompress(self):
        values = gps_radians(10_000)
        column = alppi_compress(values)
        assert bitwise_equal(alppi_decompress(column), values)

    def test_beats_alprd_on_gps_data(self):
        from repro.core.compressor import compress

        values = get_dataset("POI-lat-gps", n=20_000)
        pi_bits = alppi_compress(values).bits_per_value()
        rd_bits = compress(values, force_scheme="alprd").bits_per_value()
        # The Discussion's premise: the data has ~8 significant digits,
        # so decimal-grade encoding should roughly halve ALP_rd's size.
        assert pi_bits < rd_bits * 0.75

    def test_empty(self):
        column = alppi_compress(np.empty(0))
        assert alppi_decompress(column).size == 0

    @given(
        st.lists(
            st.floats(allow_nan=True, allow_infinity=True, width=64),
            max_size=200,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_doubles_roundtrip(self, xs):
        values = np.array(xs, dtype=np.float64)
        column = alppi_compress(values)
        assert bitwise_equal(alppi_decompress(column), values)
