"""Tests for the benchmark harness utilities and figure rendering."""

import math

import numpy as np
import pytest

from repro.bench.figures import ascii_scatter, ascii_series
from repro.bench.harness import (
    SpeedResult,
    bench_n,
    codec_speed_on_vector,
    dataset_vector,
    measure_ratio,
    time_callable,
)
from repro.bench.report import format_table, shape_check


class TestHarness:
    def test_bench_n_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_N", "1234")
        assert bench_n() == 1234

    def test_bench_n_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_N", raising=False)
        assert bench_n(777) == 777

    def test_measure_ratio_verifies(self):
        values = np.round(np.random.default_rng(0).uniform(0, 9, 4096), 1)
        bits = measure_ratio("alp", values)
        assert 0 < bits < 64

    def test_time_callable_counts(self):
        result = time_callable(lambda: sum(range(1000)), 1000, repeats=2)
        assert result.count == 1000
        assert result.values_per_second > 0
        assert result.seconds > 0

    def test_tuples_per_cycle_proxy(self):
        result = SpeedResult(values_per_second=3.5e9, seconds=1.0, count=1)
        assert result.tuples_per_cycle_proxy == pytest.approx(1.0)

    def test_codec_speed_on_vector(self):
        vector = dataset_vector("City-Temp")
        comp, dec = codec_speed_on_vector("patas", vector, repeats=1)
        assert comp.values_per_second > 0
        assert dec.values_per_second > 0


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 10.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "10.2" in text or "10.3" in text

    def test_title(self):
        text = format_table(["x"], [["y"]], title="The Title")
        assert text.splitlines()[0] == "The Title"

    def test_shape_check(self):
        assert shape_check("ok", True).startswith("[PASS]")
        assert shape_check("bad", False).startswith("[FAIL]")


class TestAsciiFigures:
    def test_scatter_has_legend_and_axes(self):
        text = ascii_scatter(
            {"alp": [(1.0, 2.0), (3.0, 4.0)], "pde": [(2.0, 1.0)]},
            x_label="speed",
            y_label="ratio",
        )
        assert "A=alp" in text and "P=pde" in text
        assert "x: speed" in text and "y: ratio" in text

    def test_scatter_empty(self):
        assert ascii_scatter({}, "x", "y") == "(no points)"

    def test_log_axis_label(self):
        text = ascii_scatter(
            {"s": [(1.0, 1.0), (1000.0, 2.0)]}, "x", "y", log_x=True
        )
        assert "(log)" in text

    def test_non_finite_points_dropped(self):
        text = ascii_scatter(
            {"s": [(math.inf, 1.0), (1.0, 1.0)]}, "x", "y"
        )
        assert "S" in text

    def test_collision_marker(self):
        text = ascii_scatter(
            {"a": [(0.0, 0.0)], "b": [(0.0, 0.0)]}, "x", "y", width=8, height=4
        )
        assert "*" in text

    def test_glyph_collision_falls_back(self):
        text = ascii_scatter(
            {"alp": [(0.0, 0.0)], "abc": [(1.0, 1.0)]}, "x", "y"
        )
        assert "A=alp" in text and "a=abc" in text

    def test_series_renders(self):
        text = ascii_series(
            {"fused": [(0, 1.0), (10, 2.0)], "plain": [(0, 0.5), (10, 1.0)]},
            "bit width",
            "Mv/s",
        )
        assert "F=fused" in text
