"""Quickstart: compress a float64 column with ALP and get it back.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import compress, decompress

# A realistic sensor column: temperatures with one visible decimal.
rng = np.random.default_rng(7)
temperatures = np.round(np.cumsum(rng.normal(0, 0.3, 200_000)) + 21.0, 1)

column = compress(temperatures)

print(f"values            : {column.count:,}")
print(f"compressed size   : {column.size_bits() / 8 / 1024:.1f} KiB "
      f"(raw: {temperatures.nbytes / 1024:.1f} KiB)")
print(f"bits per value    : {column.bits_per_value():.2f}  (raw: 64)")
print(f"compression ratio : {column.compression_ratio():.1f}x")
print(f"scheme            : "
      f"{'ALP_rd fallback used' if column.uses_rd else 'ALP decimal encoding'}")

restored = decompress(column)
assert np.array_equal(
    restored.view(np.uint64), temperatures.view(np.uint64)
), "round-trip must be bit-exact"
print("round-trip        : bit-exact ✓")

# Every vector of 1024 values carries its own (exponent, factor) pair,
# chosen by the two-level sampler:
first = column.rowgroups[0].alp.vectors[0]
print(f"first vector      : e={first.exponent}, f={first.factor}, "
      f"{first.exception_count} exceptions, "
      f"{first.bits_per_value():.2f} bits/value")
