"""Tests for the 32-bit XOR baselines (Table 7 comparators)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.xor32 import (
    chimp32_compress,
    chimp32_decompress,
    gorilla32_compress,
    gorilla32_decompress,
    patas32_compress,
    patas32_decompress,
)
from repro.data import get_model_weights

SCHEMES32 = {
    "gorilla32": (gorilla32_compress, gorilla32_decompress),
    "chimp32": (chimp32_compress, chimp32_decompress),
    "patas32": (patas32_compress, patas32_decompress),
}


def bitwise_equal32(a, b):
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    return a.shape == b.shape and np.array_equal(
        a.view(np.uint32), b.view(np.uint32)
    )


@pytest.mark.parametrize("name", sorted(SCHEMES32))
class TestRoundTrips:
    def test_empty(self, name):
        compress, decompress = SCHEMES32[name]
        assert decompress(compress(np.empty(0, dtype=np.float32))).size == 0

    def test_single(self, name):
        compress, decompress = SCHEMES32[name]
        values = np.array([math.pi], dtype=np.float32)
        assert bitwise_equal32(decompress(compress(values)), values)

    def test_time_series(self, name):
        compress, decompress = SCHEMES32[name]
        rng = np.random.default_rng(0)
        values = np.round(
            np.cumsum(rng.normal(0, 0.1, 3000)) + 20.0, 1
        ).astype(np.float32)
        assert bitwise_equal32(decompress(compress(values)), values)

    def test_special_values(self, name):
        compress, decompress = SCHEMES32[name]
        values = np.array(
            [0.0, -0.0, math.nan, math.inf, -math.inf, 1e-45], dtype=np.float32
        )
        assert bitwise_equal32(decompress(compress(values)), values)

    def test_ml_weights(self, name):
        compress, decompress = SCHEMES32[name]
        weights = get_model_weights("W2V-Tweets")
        assert bitwise_equal32(decompress(compress(weights)), weights)


class TestArbitrary:
    @given(
        st.lists(
            st.floats(width=32, allow_nan=True, allow_infinity=True),
            max_size=200,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_all_schemes(self, xs):
        values = np.array(xs, dtype=np.float32)
        for name, (compress, decompress) in SCHEMES32.items():
            assert bitwise_equal32(
                decompress(compress(values)), values
            ), name


class TestTable7Shape:
    def test_no_compression_on_weights(self):
        # Paper Table 7: Gorilla/Chimp ~33-34 bits, Patas ~45 bits, on
        # 32-bit weights — i.e. all at or above the uncompressed size.
        weights = get_model_weights("GPT2")[:50_000]
        for name, (compress, _) in SCHEMES32.items():
            bits = compress(weights).bits_per_value()
            assert bits >= 31.5, (name, bits)
            assert bits <= 50.0, (name, bits)

    def test_patas_worst_gorilla_chimp_close(self):
        weights = get_model_weights("Dino-Vitb16")[:50_000]
        gorilla_bits = gorilla32_compress(weights).bits_per_value()
        chimp_bits = chimp32_compress(weights).bits_per_value()
        patas_bits = patas32_compress(weights).bits_per_value()
        assert patas_bits > gorilla_bits
        assert patas_bits > chimp_bits

    def test_repetitive_floats_compress(self):
        values = np.full(4000, np.float32(1.5))
        for name, (compress, _) in SCHEMES32.items():
            assert compress(values).bits_per_value() < 20, name
