"""Shared pytest hooks.

Setting ``REPRO_LOCK_SANITIZER=1`` wraps every test in the runtime
lock-order sanitizer (:mod:`repro.lint.sanitizer`): locks created via
:func:`repro.concurrency.create_lock` during the test are instrumented,
and any observed lock-order inversion, re-entrant acquisition, or
``time.sleep``-while-holding fails the test.  CI runs the server /
cache / bufferpool / concurrent-reader suites under this flag (the
``sanitize-concurrency`` step); locally it is off by default so the
sanitizer's own unit tests can install their private instances without
nesting.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(autouse=True)
def _lock_sanitizer(request: pytest.FixtureRequest):
    if os.environ.get("REPRO_LOCK_SANITIZER") != "1":
        yield
        return
    if request.node.get_closest_marker("no_lock_sanitizer") is not None:
        yield
        return
    from repro.lint.sanitizer import LockOrderSanitizer

    sanitizer = LockOrderSanitizer()
    sanitizer.install()
    try:
        yield
    finally:
        sanitizer.uninstall()
    if sanitizer.reports:
        details = "\n".join(
            f"  [{report.kind}] {report.detail}"
            for report in sanitizer.reports
        )
        pytest.fail(
            f"lock sanitizer observed {len(sanitizer.reports)} "
            f"hazard(s):\n{details}"
        )


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "no_lock_sanitizer: opt a test out of the REPRO_LOCK_SANITIZER "
        "wrapper (used by tests that install their own sanitizer)",
    )
