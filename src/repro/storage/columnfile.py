"""A skippable, checksummed on-disk column format over ALP row-groups.

File layout (format version 3)::

    header:
      "ALPC" magic (4 bytes)
      u16    format version (3)
      u32    vector size
      u32    CRC32C of the 10 header bytes above
    ...      row-group sections, back to back (serializer format)
    footer:
      u32    row-group count
      per row-group:
        u64 byte offset, u64 byte length, u64 value count,
        f64 min, f64 max, u8 has_non_finite, u32 payload CRC32C
      per row-group (vector zone maps):
        u32 vector count, then per vector: f64 min, f64 max, u8 special
    trailer:
      u32    CRC32C of the footer bytes
      u64    footer offset
      "ALPC" trailing magic

Version 2 files (no checksums, 41-byte footer entries, 12-byte trailer)
remain readable; the checksum steps are version-gated.  The full byte
layout, integrity and quarantine semantics are specified in
``docs/STORAGE.md``.

Integrity model
---------------

Writes are atomic: the writer streams into a temp file next to the
target and only renames it over the target after the footer is written
and fsynced, so a crash (or an exception inside a ``with`` block) never
leaves a half-written file at the destination.  Reads verify the header
and footer checksums eagerly at open — they are small and everything
else depends on them — and each row-group payload lazily on first
touch.  Corruption raises the typed errors of
:mod:`repro.storage.errors`; a reader opened with ``degraded=True``
instead *quarantines* bad row-groups: bulk reads and range scans skip
them, :data:`repro.obs` counters tally them, and
:meth:`ColumnFileReader.scan_report` returns the structured account
(count + offsets) a caller needs to alert on.

The footer carries *zone maps* (min/max over finite values) at two
granularities.  Row-group zone maps let :meth:`ColumnFileReader.scan_range`
skip whole row-groups without touching their bytes; vector zone maps let
:meth:`ColumnFileReader.scan_range_vectors` additionally decode only the
qualifying 1024-value vectors inside a surviving row-group — the
"skip through ALP-compressed data at the vector level" capability the
paper contrasts against block-based general-purpose compression.
"""

from __future__ import annotations

import itertools
import mmap as _mmaplib
import os
import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Hashable, Iterator, Protocol

import numpy as np

from repro import obs
from repro.concurrency import create_lock
from repro.core.compressor import (
    CompressedRowGroup,
    CompressedRowGroups,
    coerce_decode_out,
    compress_rowgroup,
    decompress,
)
from repro.core.constants import ROWGROUP_VECTORS, VECTOR_SIZE
from repro.storage.errors import (
    BufferLifetimeError,
    CorruptFileError,
    CorruptRowGroupError,
)
from repro.storage.integrity import crc32c
from repro.storage.serializer import (
    deserialize_rowgroup,
    empty_stats,
    serialize_rowgroup,
)

if TYPE_CHECKING:
    from repro.api import CompressionOptions

MAGIC = b"ALPC"
#: Current (checksummed) format version.
FORMAT_VERSION = 3
#: The pre-integrity format; still fully readable, checksum steps skipped.
FORMAT_VERSION_V2 = 2
SUPPORTED_VERSIONS = (FORMAT_VERSION_V2, FORMAT_VERSION)

#: Bytes of header before the (v3-only) header checksum field.
_HEADER_BODY = struct.calcsize("<4sHI")
_HEADER_LEN = {FORMAT_VERSION_V2: _HEADER_BODY, FORMAT_VERSION: _HEADER_BODY + 4}
#: Trailer: [footer CRC (v3 only)] + footer offset + trailing magic.
_TRAILER_LEN = {FORMAT_VERSION_V2: 12, FORMAT_VERSION: 16}
_FOOTER_ENTRY = {
    FORMAT_VERSION_V2: struct.Struct("<QQQddB"),
    FORMAT_VERSION: struct.Struct("<QQQddBI"),
}
_ZONE_ENTRY = struct.Struct("<ddB")

#: Files smaller than this stay on the buffered (slurp) read path even
#: when ``mmap=True`` is requested: mapping cost and page-fault overhead
#: beat one small sequential read only past a few pages.
MMAP_MIN_BYTES = 1 << 16

#: Exceptions a corrupted payload may raise out of the deserializer /
#: decoder before (v2) or despite (never, in practice) checksums.
_DECODE_ERRORS = (ValueError, IndexError, KeyError, OverflowError, struct.error)

_TMP_COUNTER = itertools.count()


class RowGroupCache(Protocol):
    """The cache contract bulk reads accept (see
    :class:`repro.server.cache.DecodedVectorCache`): decoded row-group
    values memoized under a ``(file path, rowgroup index)`` key."""

    def get_or_load(
        self, key: "Hashable", loader: "Callable[[], np.ndarray]"
    ) -> np.ndarray:
        ...


@dataclass(frozen=True)
class VectorZone:
    """Zone map of one 1024-value vector inside a row-group."""

    min_value: float
    max_value: float
    has_non_finite: bool

    def may_contain_range(self, low: float, high: float) -> bool:
        """Could any value of this vector fall inside [low, high]?"""
        if self.has_non_finite:
            return True
        return self.max_value >= low and self.min_value <= high


@dataclass(frozen=True)
class RowGroupMeta:
    """Footer entry for one row-group: location, checksum + zone maps."""

    offset: int
    length: int
    count: int
    min_value: float
    max_value: float
    has_non_finite: bool
    vector_zones: tuple[VectorZone, ...] = ()
    #: CRC32C of the serialized payload (0 in version-2 files).
    payload_crc: int = 0

    def may_contain_range(self, low: float, high: float) -> bool:
        """Zone-map test: could any value fall inside [low, high]?

        Non-finite values (NaN/inf) make the zone map inconclusive, so
        such row-groups are never skipped.
        """
        if self.has_non_finite:
            return True
        if self.count == 0:
            return False
        return self.max_value >= low and self.min_value <= high


@dataclass(frozen=True)
class QuarantinedRowGroup:
    """One corrupt row-group a degraded reader skipped."""

    index: int
    offset: int
    length: int
    count: int
    reason: str

    def as_dict(self) -> dict[str, object]:
        return {
            "index": self.index,
            "offset": self.offset,
            "length": self.length,
            "count": self.count,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class ScanReport:
    """Structured account of what a (degraded) reader quarantined."""

    path: str
    format_version: int
    rowgroups_total: int
    rowgroups_quarantined: int
    values_quarantined: int
    quarantined: tuple[QuarantinedRowGroup, ...]

    @property
    def clean(self) -> bool:
        """True when nothing was quarantined."""
        return self.rowgroups_quarantined == 0

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "format_version": self.format_version,
            "rowgroups_total": self.rowgroups_total,
            "rowgroups_quarantined": self.rowgroups_quarantined,
            "values_quarantined": self.values_quarantined,
            "quarantined": [entry.as_dict() for entry in self.quarantined],
        }


def _zone_map(values: np.ndarray) -> tuple[float, float, bool]:
    """Compute (min, max, has_non_finite) over a chunk of values."""
    finite = values[np.isfinite(values)]
    has_non_finite = finite.size != values.size
    if finite.size == 0:
        return float("nan"), float("nan"), has_non_finite
    return float(finite.min()), float(finite.max()), has_non_finite


def _vector_zones(
    values: np.ndarray, vector_size: int
) -> tuple[VectorZone, ...]:
    """Per-vector zone maps of a row-group."""
    zones = []
    for start in range(0, values.size, vector_size):
        lo, hi, special = _zone_map(values[start : start + vector_size])
        zones.append(
            VectorZone(min_value=lo, max_value=hi, has_non_finite=special)
        )
    return tuple(zones)


class ColumnFileWriter:
    """Stream a float64 column into the ALPC format, row-group at a time.

    The writer is crash-safe: all bytes go to a temp file in the target
    directory, which is fsynced and atomically renamed over ``path``
    only when :meth:`close` completes.  Exiting the ``with`` block on an
    exception (or calling :meth:`abort`) removes the temp file and
    leaves the target path untouched.  :meth:`close` and :meth:`abort`
    are both idempotent.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        vector_size: int = VECTOR_SIZE,
        rowgroup_vectors: int = ROWGROUP_VECTORS,
        *,
        options: "CompressionOptions | None" = None,
        integrity: bool = True,
    ) -> None:
        if options is not None:
            vector_size = options.vector_size
            rowgroup_vectors = options.rowgroup_vectors
            integrity = options.integrity
        self._force_scheme = options.force_scheme if options else None
        self._path = os.fspath(path)
        self._tmp_path = (
            f"{self._path}.tmp-{os.getpid()}-{next(_TMP_COUNTER)}"
        )
        self._version = FORMAT_VERSION if integrity else FORMAT_VERSION_V2
        self._vector_size = vector_size
        self._rowgroup_size = vector_size * rowgroup_vectors
        self._meta: list[RowGroupMeta] = []
        self._closed = False
        self._file = open(self._tmp_path, "wb")
        try:
            header = MAGIC + struct.pack("<HI", self._version, vector_size)
            self._file.write(header)
            if self._version >= FORMAT_VERSION:
                self._file.write(struct.pack("<I", crc32c(header)))
        except BaseException:
            self.abort()
            raise

    @property
    def path(self) -> str:
        """The destination path (materializes on successful close)."""
        return self._path

    @property
    def format_version(self) -> int:
        """The format version being written (3, or 2 without integrity)."""
        return self._version

    def write_values(self, values: np.ndarray) -> None:
        """Compress and append a column chunk (row-group granularity)."""
        if self._closed:
            raise ValueError(f"writer for {self._path} is closed")
        with obs.span("columnfile.write"):
            values = np.ascontiguousarray(values, dtype=np.float64)
            for start in range(0, values.size, self._rowgroup_size):
                chunk = values[start : start + self._rowgroup_size]
                rowgroup, _, _ = compress_rowgroup(
                    chunk,
                    vector_size=self._vector_size,
                    force_scheme=self._force_scheme,
                )
                self._append_rowgroup(rowgroup, chunk)

    def _append_rowgroup(
        self, rowgroup: CompressedRowGroup, values: np.ndarray
    ) -> None:
        payload = serialize_rowgroup(rowgroup)
        min_value, max_value, has_non_finite = _zone_map(values)
        self._append_payload(
            payload,
            count=values.size,
            min_value=min_value,
            max_value=max_value,
            has_non_finite=has_non_finite,
            vector_zones=_vector_zones(values, self._vector_size),
        )

    def append_serialized(self, payload: bytes, meta: RowGroupMeta) -> None:
        """Append an already-serialized row-group, reusing its zone maps.

        This is the repair path: intact sections of a damaged file are
        copied byte-for-byte (no recompression) while checksums are
        recomputed from the bytes actually written.
        """
        if self._closed:
            raise ValueError(f"writer for {self._path} is closed")
        self._append_payload(
            payload,
            count=meta.count,
            min_value=meta.min_value,
            max_value=meta.max_value,
            has_non_finite=meta.has_non_finite,
            vector_zones=meta.vector_zones,
        )

    def _append_payload(
        self,
        payload: bytes,
        *,
        count: int,
        min_value: float,
        max_value: float,
        has_non_finite: bool,
        vector_zones: tuple[VectorZone, ...],
    ) -> None:
        offset = self._file.tell()
        self._file.write(payload)
        if obs.ENABLED:
            obs.metrics.counter_add("columnfile.rowgroups_written", 1)
            obs.metrics.counter_add("columnfile.bytes_written", len(payload))
        self._meta.append(
            RowGroupMeta(
                offset=offset,
                length=len(payload),
                count=count,
                min_value=min_value,
                max_value=max_value,
                has_non_finite=has_non_finite,
                vector_zones=vector_zones,
                payload_crc=(
                    crc32c(payload)
                    if self._version >= FORMAT_VERSION
                    else 0
                ),
            )
        )

    def _footer_bytes(self) -> bytes:
        parts = [struct.pack("<I", len(self._meta))]
        entry = _FOOTER_ENTRY[self._version]
        for meta in self._meta:
            fields: tuple[object, ...] = (
                meta.offset,
                meta.length,
                meta.count,
                meta.min_value,
                meta.max_value,
                int(meta.has_non_finite),
            )
            if self._version >= FORMAT_VERSION:
                fields += (meta.payload_crc,)
            parts.append(entry.pack(*fields))
        for meta in self._meta:
            parts.append(struct.pack("<I", len(meta.vector_zones)))
            for zone in meta.vector_zones:
                parts.append(
                    _ZONE_ENTRY.pack(
                        zone.min_value,
                        zone.max_value,
                        int(zone.has_non_finite),
                    )
                )
        return b"".join(parts)

    def close(self) -> None:
        """Write footer + trailer, fsync, and atomically publish the file.

        Idempotent; on any error the temp file is removed and the
        target path is left exactly as it was.
        """
        if self._closed:
            return
        try:
            footer_offset = self._file.tell()
            footer = self._footer_bytes()
            self._file.write(footer)
            if self._version >= FORMAT_VERSION:
                self._file.write(struct.pack("<I", crc32c(footer)))
            self._file.write(struct.pack("<Q", footer_offset))
            self._file.write(MAGIC)
            self._file.flush()
            os.fsync(self._file.fileno())
            self._file.close()
            os.replace(self._tmp_path, self._path)
            _fsync_directory(os.path.dirname(self._path) or ".")
        except BaseException:
            self.abort()
            raise
        self._closed = True

    def abort(self) -> None:
        """Discard everything written so far; the target path is untouched."""
        if self._closed:
            return
        self._closed = True
        try:
            self._file.close()
        finally:
            try:
                os.unlink(self._tmp_path)
            except OSError:
                pass

    def __enter__(self) -> "ColumnFileWriter":
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.close()


def _fsync_directory(directory: str) -> None:
    """Best-effort fsync of a directory entry after a rename."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class ColumnFileReader:
    """Random-access reader over an ALPC column file.

    Header and footer checksums are verified at open; row-group payload
    checksums are verified lazily, on the first access of each group
    (and cached).  With ``degraded=True``, bulk reads and scans skip
    corrupt row-groups instead of raising, recording them for
    :meth:`scan_report`; direct access via :meth:`read_rowgroup` /
    :meth:`read_rowgroup_compressed` always raises so a caller asking
    for specific bytes never silently gets nothing.

    With ``mmap=True`` the file is memory-mapped instead of slurped,
    and every payload access — :meth:`rowgroup_payload`, the
    deserialized ``FforEncoded.payload`` buffers, checksum
    verification — runs over zero-copy ``memoryview`` slices of the
    map.  Small files and v2 files silently fall back to the buffered
    path (see :meth:`_mmap_eligible`).  Mapped readers have an explicit
    lifetime: :meth:`close` invalidates the map, refuses with a typed
    :class:`BufferLifetimeError` while payload views are still alive
    (no dangling-view undefined behaviour), and every later access
    raises ``ValueError``.  The reader is a context manager.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        degraded: bool = False,
        mmap: bool = False,
    ) -> None:
        self._path = os.fspath(path)
        self._degraded = degraded
        self._closed = False
        self._mmap: _mmaplib.mmap | None = None
        # One reader may be hammered from many threads (the serving
        # layer shares readers across requests): the integrity
        # bookkeeping below is lock-protected so checksum results and
        # quarantine entries — and their obs counters — stay exact
        # under concurrency.
        self._integrity_lock = create_lock("ColumnFileReader._integrity_lock")
        self._quarantined: dict[int, CorruptRowGroupError] = {}
        self._checked: dict[int, CorruptRowGroupError | None] = {}
        with obs.span("columnfile.open"):
            if mmap and self._mmap_eligible():
                with open(self._path, "rb") as f:
                    self._mmap = _mmaplib.mmap(
                        f.fileno(), 0, access=_mmaplib.ACCESS_READ
                    )
                # The reader IS the owner of this view: close() refuses
                # to run while exported slices are live, so the stored
                # view cannot dangle.  # reprolint: ignore[RL10]
                self._data: bytes | memoryview = memoryview(self._mmap)
                if obs.ENABLED:
                    obs.metrics.counter_add(
                        "columnfile.bytes_mapped", len(self._data)
                    )
            else:
                with open(self._path, "rb") as f:
                    data = f.read()
                if obs.ENABLED:
                    obs.metrics.counter_add(
                        "columnfile.bytes_read", len(data)
                    )
                self._data = data
        try:
            self._parse_header_and_trailer()
            self._parse_footer()
        except BaseException:
            # A failed open must not leak the map (there are no caller
            # views yet, so this close cannot raise BufferLifetimeError).
            self._release_data()
            raise

    def _mmap_eligible(self) -> bool:
        """Whether this file takes the zero-copy mapped path.

        The buffered fallback covers two cases the map cannot win:
        files below :data:`MMAP_MIN_BYTES` (mapping overhead beats one
        small read) and v2 files (no payload checksums — their payloads
        are re-verified structurally on every decode, so handing out
        long-lived views of unverifiable bytes buys nothing).  Anything
        unparseable falls back too, so open-time corruption errors are
        identical on both paths.
        """
        try:
            if os.path.getsize(self._path) < MMAP_MIN_BYTES:
                return False
            with open(self._path, "rb") as f:
                head = f.read(_HEADER_BODY)
        except OSError:
            return False
        if len(head) < _HEADER_BODY or head[:4] != MAGIC:
            return False
        version = struct.unpack_from("<H", head, 4)[0]
        return version >= FORMAT_VERSION

    # -- lifetime -----------------------------------------------------

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has released the underlying buffer."""
        return self._closed

    @property
    def mapped(self) -> bool:
        """True when this reader serves payloads from an mmap."""
        return self._mmap is not None

    def _release_data(self) -> None:
        data, self._data = self._data, b""
        if isinstance(data, memoryview):
            data.release()
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None

    def close(self) -> None:
        """Release the underlying buffer (idempotent).

        On the mmap path every payload ``memoryview`` (and every numpy
        array borrowing one) aliases the map, so closing while such
        views are live would dangle them; CPython guards this with a
        ``BufferError`` deep inside ``mmap``, which is re-surfaced here
        as the typed :class:`BufferLifetimeError`.  The reader stays
        open and fully usable after that error — drop the views and
        close again.
        """
        if self._closed:
            return
        data, self._data = self._data, b""
        if isinstance(data, memoryview):
            data.release()
        if self._mmap is not None:
            try:
                self._mmap.close()
            except BufferError:
                # Refused close: re-arm the owner's view so the reader
                # stays usable.  # reprolint: ignore[RL10]
                self._data = memoryview(self._mmap)
                raise BufferLifetimeError(self._path) from None
            self._mmap = None
        self._closed = True

    def __enter__(self) -> "ColumnFileReader":
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise ValueError(f"{self._path}: reader is closed")

    # -- open-time parsing (header, trailer, footer) ------------------

    def _corrupt(self, reason: str) -> CorruptFileError:
        return CorruptFileError(self._path, reason)

    def _parse_header_and_trailer(self) -> None:
        data = self._data
        if len(data) < _HEADER_LEN[FORMAT_VERSION_V2] + _TRAILER_LEN[
            FORMAT_VERSION_V2
        ] or data[:4] != MAGIC:
            raise self._corrupt("not an ALPC column file (bad magic)")
        version = struct.unpack_from("<H", data, 4)[0]
        if version not in SUPPORTED_VERSIONS:
            hint = (
                " (a v4 multi-column table: open it with "
                "TableFileReader / repro.api.open_table)"
                if version == 4
                else ""
            )
            raise self._corrupt(f"unsupported ALPC version {version}{hint}")
        self.format_version = version
        self.vector_size = struct.unpack_from("<I", data, 6)[0]
        header_len = _HEADER_LEN[version]
        trailer_len = _TRAILER_LEN[version]
        if len(data) < header_len + trailer_len:
            raise self._corrupt("file truncated inside header/trailer")
        if version >= FORMAT_VERSION:
            stored = struct.unpack_from("<I", data, _HEADER_BODY)[0]
            actual = crc32c(data[:_HEADER_BODY])
            if stored != actual:
                obs.counter_add("columnfile.checksum_failures")
                raise self._corrupt(
                    f"header checksum mismatch "
                    f"(stored 0x{stored:08x}, computed 0x{actual:08x})"
                )
        if data[-4:] != MAGIC:
            raise self._corrupt("missing trailing magic (truncated file?)")
        self._footer_offset = struct.unpack_from(
            "<Q", data, len(data) - 12
        )[0]
        footer_end = len(data) - trailer_len
        if not header_len <= self._footer_offset <= footer_end:
            raise self._corrupt(
                f"footer offset {self._footer_offset} outside file bounds"
            )
        self._header_len = header_len
        self._footer_end = footer_end
        if version >= FORMAT_VERSION:
            # The v3 trailer is crc(4) | footer_offset(8) | magic(4): the
            # footer ends at len-16 and its checksum sits right after it.
            stored = struct.unpack_from("<I", data, footer_end)[0]
            actual = crc32c(data[self._footer_offset : footer_end])
            if stored != actual:
                obs.counter_add("columnfile.checksum_failures")
                raise self._corrupt(
                    f"footer checksum mismatch "
                    f"(stored 0x{stored:08x}, computed 0x{actual:08x})"
                )

    def _parse_footer(self) -> None:
        data = self._data
        try:
            n_rowgroups = struct.unpack_from(
                "<I", data, self._footer_offset
            )[0]
            pos = self._footer_offset + 4
            entry = _FOOTER_ENTRY[self.format_version]
            raw_meta = []
            for _ in range(n_rowgroups):
                if pos + entry.size > self._footer_end:
                    raise self._corrupt("footer truncated (row-group table)")
                raw_meta.append(entry.unpack_from(data, pos))
                pos += entry.size
            all_zones: list[tuple[VectorZone, ...]] = []
            for _ in range(n_rowgroups):
                n_vectors = struct.unpack_from("<I", data, pos)[0]
                pos += 4
                if pos + n_vectors * _ZONE_ENTRY.size > self._footer_end:
                    raise self._corrupt("footer truncated (zone maps)")
                zones = []
                for _ in range(n_vectors):
                    lo, hi, special = _ZONE_ENTRY.unpack_from(data, pos)
                    pos += _ZONE_ENTRY.size
                    zones.append(
                        VectorZone(
                            min_value=lo,
                            max_value=hi,
                            has_non_finite=bool(special),
                        )
                    )
                all_zones.append(tuple(zones))
        except struct.error as exc:
            raise self._corrupt(f"footer does not parse: {exc}") from exc
        self._meta = []
        for fields, zones in zip(raw_meta, all_zones, strict=True):
            if self.format_version >= FORMAT_VERSION:
                offset, length, count, lo, hi, special, payload_crc = fields
            else:
                offset, length, count, lo, hi, special = fields
                payload_crc = 0
            if not (
                self._header_len <= offset
                and offset + length <= self._footer_offset
            ):
                raise self._corrupt(
                    f"row-group {len(self._meta)} section "
                    f"[{offset}, {offset + length}) outside the payload area"
                )
            self._meta.append(
                RowGroupMeta(
                    offset=offset,
                    length=length,
                    count=count,
                    min_value=lo,
                    max_value=hi,
                    has_non_finite=bool(special),
                    vector_zones=zones,
                    payload_crc=payload_crc,
                )
            )

    # -- integrity ----------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True when bulk reads quarantine corrupt row-groups."""
        return self._degraded

    def check_rowgroup(self, index: int) -> CorruptRowGroupError | None:
        """Checksum-verify one row-group payload (cached; no raise).

        Returns the typed error the payload would raise, or ``None``
        when the section is intact.  Version-2 files carry no payload
        checksums, so only decode failures can be detected there.
        """
        self._require_open()
        with self._integrity_lock:
            if index in self._checked:
                return self._checked[index]
        meta = self._meta[index]
        err: CorruptRowGroupError | None = None
        if self.format_version >= FORMAT_VERSION:
            actual = crc32c(
                self._data[meta.offset : meta.offset + meta.length]
            )
            if actual != meta.payload_crc:
                err = CorruptRowGroupError(
                    self._path,
                    index,
                    meta.offset,
                    meta.length,
                    f"payload checksum mismatch (stored "
                    f"0x{meta.payload_crc:08x}, computed 0x{actual:08x})",
                )
        with self._integrity_lock:
            if index not in self._checked:
                self._checked[index] = err
                if err is not None:
                    obs.counter_add("columnfile.checksum_failures")
            return self._checked[index]

    def _decode_error(
        self, index: int, reason: str
    ) -> CorruptRowGroupError:
        meta = self._meta[index]
        err = CorruptRowGroupError(
            self._path, index, meta.offset, meta.length, reason
        )
        with self._integrity_lock:
            self._checked[index] = err
        return err

    def _quarantine(self, index: int, err: CorruptRowGroupError) -> None:
        with self._integrity_lock:
            if index in self._quarantined:
                return
            self._quarantined[index] = err
        if obs.ENABLED:
            obs.metrics.counter_add("columnfile.rowgroups_quarantined", 1)
            obs.metrics.counter_add(
                "columnfile.values_quarantined", self._meta[index].count
            )

    def scan_report(self) -> ScanReport:
        """The structured quarantine account of this reader so far."""
        with self._integrity_lock:
            quarantined = sorted(self._quarantined.items())
        entries = tuple(
            QuarantinedRowGroup(
                index=index,
                offset=self._meta[index].offset,
                length=self._meta[index].length,
                count=self._meta[index].count,
                reason=err.reason,
            )
            for index, err in quarantined
        )
        return ScanReport(
            path=self._path,
            format_version=self.format_version,
            rowgroups_total=len(self._meta),
            rowgroups_quarantined=len(entries),
            values_quarantined=sum(entry.count for entry in entries),
            quarantined=entries,
        )

    # -- access -------------------------------------------------------

    @property
    def header_length(self) -> int:
        """Byte length of the file header."""
        return self._header_len

    @property
    def footer_offset(self) -> int:
        """Byte offset where the footer starts."""
        return self._footer_offset

    @property
    def footer_length(self) -> int:
        """Byte length of the footer (checksum/trailer excluded)."""
        return self._footer_end - self._footer_offset

    def rowgroup_payload(self, index: int) -> memoryview:
        """A zero-copy ``memoryview`` of one row-group section.

        On the mmap path the view aliases the map itself (and pins it:
        :meth:`close` raises :class:`BufferLifetimeError` while it is
        alive); on the buffered path it aliases the in-memory file
        image.  Callers that need an independent copy — e.g. to outlive
        the reader — must take ``bytes(view)`` themselves; the read
        path never materializes one (lint rule RL7 enforces this
        module-wide, see ``docs/STATIC_ANALYSIS.md``).
        """
        self._require_open()
        meta = self._meta[index]
        data = self._data
        view = data if isinstance(data, memoryview) else memoryview(data)
        return view[meta.offset : meta.offset + meta.length]

    @property
    def rowgroup_count(self) -> int:
        """Number of row-groups in the file."""
        return len(self._meta)

    @property
    def value_count(self) -> int:
        """Total number of values in the column (per the footer)."""
        return sum(m.count for m in self._meta)

    @property
    def metadata(self) -> tuple[RowGroupMeta, ...]:
        """Zone maps, checksums and offsets, in row-group order."""
        return tuple(self._meta)

    def read_rowgroup_compressed(self, index: int) -> CompressedRowGroup:
        """Decode the framing of one row-group without decompressing it.

        Raises :class:`CorruptRowGroupError` on checksum or framing
        damage, even in degraded mode (direct access is explicit).
        """
        self._require_open()
        err = self.check_rowgroup(index)
        if err is not None:
            raise err
        meta = self._meta[index]
        try:
            rowgroup, consumed = deserialize_rowgroup(
                self._data, meta.offset
            )
        except _DECODE_ERRORS as exc:
            raise self._decode_error(
                index, f"payload does not decode: {exc}"
            ) from exc
        if consumed != meta.length:
            raise self._decode_error(
                index,
                f"payload framing mismatch: read {consumed} bytes, "
                f"footer says {meta.length}",
            )
        obs.counter_add("columnfile.rowgroups_read")
        return rowgroup

    def read_rowgroup(
        self, index: int, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Decompress one row-group to float64 (raises on corruption).

        ``out``, when given, must be a writable C-contiguous float64
        array (or slice) of exactly the row-group's value count; the
        decode writes in place and returns ``out``.
        """
        with obs.span("columnfile.read_rowgroup"):
            rowgroup = self.read_rowgroup_compressed(index)
            column = CompressedRowGroups(
                rowgroups=(rowgroup,),
                count=rowgroup.count,
                vector_size=self.vector_size,
                stats=empty_stats(),
            )
            # Validate out *before* the decode try-block: a bad caller
            # buffer must raise as a plain ValueError, not masquerade
            # as (and be cached as) payload corruption.
            out = coerce_decode_out(column, out)
            try:
                return decompress(column, out=out)
            except _DECODE_ERRORS as exc:
                raise self._decode_error(
                    index, f"payload does not decompress: {exc}"
                ) from exc

    def cached_rowgroup(
        self, index: int, cache: RowGroupCache | None = None
    ) -> np.ndarray:
        """Decompress one row-group through an optional decoded cache.

        The cache key is ``(file path, rowgroup index)`` — the keying
        the serving layer and the local query engine share.  Corruption
        raises exactly as :meth:`read_rowgroup` does; errors are never
        cached as values.
        """
        if cache is None:
            return self.read_rowgroup(index)
        load_into = getattr(cache, "load_into", None)
        if load_into is not None:
            # Pool-aware caches (DecodedVectorCache with a BufferPool)
            # hand us a fill target, so a cache miss decodes into a
            # recycled buffer instead of a fresh allocation.
            return load_into(
                (self._path, index),
                self._meta[index].count,
                lambda out: self.read_rowgroup(index, out=out),
            )
        return cache.get_or_load(
            (self._path, index), lambda: self.read_rowgroup(index)
        )

    def iter_rowgroups(
        self,
        cache: RowGroupCache | None = None,
        start: int = 0,
        stop: int | None = None,
    ) -> Iterator[tuple[int, np.ndarray]]:
        """Yield (index, values) per row-group; degraded mode skips bad ones.

        ``start``/``stop`` restrict the walk to the half-open row-group
        range ``[start, stop)`` — the sharded serving tier scopes a
        backend's scan to its partition this way.
        """
        for index in self._rowgroup_range(start, stop):
            try:
                yield index, self.cached_rowgroup(index, cache)
            except CorruptRowGroupError as err:
                if not self._degraded:
                    raise
                self._quarantine(index, err)

    def _rowgroup_range(self, start: int, stop: int | None) -> range:
        """Validate a half-open row-group range against the footer."""
        count = len(self._meta)
        if stop is None:
            stop = count
        if not (0 <= start <= stop <= count):
            raise ValueError(
                f"row-group range [{start}, {stop}) outside "
                f"[0, {count})"
            )
        return range(start, stop)

    def iter_rowgroups_compressed(
        self,
        start: int = 0,
        stop: int | None = None,
    ) -> Iterator[tuple[int, RowGroupMeta, CompressedRowGroup]]:
        """Yield (index, meta, compressed row-group) without decompressing.

        The late-materialization scan path: framing is decoded (and the
        payload checksum verified) but the ALP payload stays in its
        integer-compressed form for encoded-domain execution.  Degraded
        readers quarantine corrupt row-groups exactly as
        :meth:`iter_rowgroups` does, so an encoded scan and a decoded
        scan of the same damaged file cover the same values.
        ``start``/``stop`` restrict the walk exactly as in
        :meth:`iter_rowgroups`.
        """
        for index in self._rowgroup_range(start, stop):
            try:
                rowgroup = self.read_rowgroup_compressed(index)
            except CorruptRowGroupError as err:
                if not self._degraded:
                    raise
                self._quarantine(index, err)
                continue
            yield index, self._meta[index], rowgroup

    def read_all(
        self,
        cache: RowGroupCache | None = None,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Decompress the whole column.

        In degraded mode, quarantined row-groups are omitted (the
        result holds every remaining value, in order); consult
        :meth:`scan_report` for what was skipped.

        Allocation behaviour (the serving hot path leans on all three):

        - Without a cache, each row-group decodes *directly into its
          slice* of one output array — no per-group arrays, no
          concatenate pass.
        - With ``out=`` (a writable C-contiguous float64 array of
          exactly :attr:`value_count` values), that output array is the
          caller's buffer and the call allocates nothing; the filled
          prefix ``out[:n]`` is returned (``n < value_count`` only when
          degraded mode quarantined groups).
        - With a cache and a single row-group (and no ``out=``), the
          resident cached array is returned directly — zero copies.  It
          is read-only; callers that mutate must copy.
        """
        self._require_open()
        total = self.value_count
        if out is None:
            if cache is not None and len(self._meta) == 1:
                try:
                    return self.cached_rowgroup(0, cache)
                except CorruptRowGroupError as err:
                    if not self._degraded:
                        raise
                    self._quarantine(0, err)
                    return np.empty(0, dtype=np.float64)
            target = np.empty(total, dtype=np.float64)
        else:
            if (
                not isinstance(out, np.ndarray)
                or out.dtype != np.float64
                or out.ndim != 1
                or out.size != total
            ):
                raise ValueError(
                    f"out must be a 1-D float64 array of {total} values"
                )
            if not out.flags.c_contiguous or not out.flags.writeable:
                raise ValueError("out must be C-contiguous and writable")
            target = out
        pos = 0
        for index, meta in enumerate(self._meta):
            try:
                if cache is None:
                    self.read_rowgroup(
                        index, out=target[pos : pos + meta.count]
                    )
                else:
                    np.copyto(
                        target[pos : pos + meta.count],
                        self.cached_rowgroup(index, cache),
                    )
            except CorruptRowGroupError as err:
                if not self._degraded:
                    raise
                self._quarantine(index, err)
                continue
            pos += meta.count
        return target if pos == total else target[:pos]

    def scan_range(
        self, low: float, high: float, cache: RowGroupCache | None = None
    ) -> Iterator[tuple[int, np.ndarray]]:
        """Yield (row-group index, values) for groups that may match.

        Row-groups whose zone map excludes ``[low, high]`` are skipped
        without touching their compressed bytes — this is the predicate
        push-down the paper highlights as impossible for block-based
        general-purpose compression.  Corrupt row-groups raise, or are
        quarantined in degraded mode.
        """
        for index, meta in enumerate(self._meta):
            if not meta.may_contain_range(low, high):
                obs.counter_add("columnfile.rowgroups_skipped")
                continue
            try:
                values = self.cached_rowgroup(index, cache)
            except CorruptRowGroupError as err:
                if not self._degraded:
                    raise
                self._quarantine(index, err)
                continue
            obs.counter_add("columnfile.rowgroups_scanned")
            yield index, values

    def count_skippable(self, low: float, high: float) -> int:
        """How many row-groups the zone maps eliminate for a range."""
        return sum(
            1
            for meta in self._meta
            if not meta.may_contain_range(low, high)
        )

    def scan_range_vectors(
        self, low: float, high: float
    ) -> Iterator[tuple[int, int, np.ndarray]]:
        """Yield (row-group, vector index, values) at vector granularity.

        Inside each surviving row-group, only the vectors whose zone map
        admits ``[low, high]`` are decoded — everything else stays
        compressed.  This is the paper's vector-level skipping in action:
        a selective query pays decode cost proportional to the *selected*
        vectors, not the block size.
        """
        from repro.core.alp import alp_decode_vector
        from repro.core.alprd import decode_vector_bits

        for rg_index, meta in enumerate(self._meta):
            if not meta.may_contain_range(low, high):
                if obs.ENABLED:
                    obs.metrics.counter_add("columnfile.rowgroups_skipped", 1)
                    obs.metrics.counter_add(
                        "columnfile.vectors_skipped", len(meta.vector_zones)
                    )
                continue
            try:
                rowgroup = self.read_rowgroup_compressed(rg_index)
            except CorruptRowGroupError as err:
                if not self._degraded:
                    raise
                self._quarantine(rg_index, err)
                continue
            vectors = (
                rowgroup.alp.vectors
                if rowgroup.alp is not None
                else rowgroup.rd.vectors
            )
            for v_index, zone in enumerate(meta.vector_zones):
                if not zone.may_contain_range(low, high):
                    obs.counter_add("columnfile.vectors_skipped")
                    continue
                obs.counter_add("columnfile.vectors_decoded")
                if rowgroup.alp is not None:
                    values = alp_decode_vector(vectors[v_index])
                else:
                    from repro.alputil.bits import bits_to_double

                    values = bits_to_double(
                        decode_vector_bits(
                            vectors[v_index], rowgroup.rd.parameters
                        )
                    )
                yield rg_index, v_index, values

    def count_skippable_vectors(self, low: float, high: float) -> int:
        """How many vectors the two zone-map levels eliminate together."""
        skipped = 0
        for meta in self._meta:
            if not meta.may_contain_range(low, high):
                skipped += len(meta.vector_zones)
                continue
            skipped += sum(
                1
                for zone in meta.vector_zones
                if not zone.may_contain_range(low, high)
            )
        return skipped

    @property
    def vector_count(self) -> int:
        """Total number of vectors across all row-groups."""
        return sum(len(meta.vector_zones) for meta in self._meta)
