"""The main-branch benchmark trajectory (``BENCH_trajectory.jsonl``).

The regression gate (:mod:`repro.bench.gate`) answers "did this run
regress vs the checked-in baseline?" — a two-point comparison.  This
module keeps the *history*: every main-branch CI run appends one
condensed line to a JSONL trajectory file (carried between runs by the
Actions cache and republished as the ``BENCH_trajectory`` artifact), so
a slow drift that never trips the per-run tolerance is still visible.

One trajectory line holds the run label (commit SHA in CI), the
document's creation time and environment fingerprint, and per
(dataset, codec) record the drift-relevant metrics: ``bits_per_value``
(deterministic), the machine-relative ``compress_rel`` /
``decompress_rel`` throughputs, and any ``*_speedup_vs_decode``
counters — the fused-query ratios the ``query-kernels`` job pins.

CLI::

    python -m repro.bench.trajectory append BENCH.json TRAJ.jsonl [--label L]
    python -m repro.bench.trajectory show TRAJ.jsonl [--last N] [--summary P]

``append`` is idempotent per label: re-running a job for the same
commit replaces that label's line instead of duplicating it.  ``show``
renders a markdown table (latest value, delta vs previous run, delta
across the shown window) and, like the gate, appends it to
``$GITHUB_STEP_SUMMARY`` when set.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.bench.records import read_bench_json

#: Counter-name suffix of fused-vs-decode ratios worth tracking.
SPEEDUP_SUFFIX = "_speedup_vs_decode"

#: Per-record scalar fields copied into a trajectory line.
TRACKED_FIELDS = ("bits_per_value", "compress_rel", "decompress_rel")


def condense_document(document: dict, label: str) -> dict:
    """One trajectory line (a plain dict) from a full bench document."""
    metrics: dict[str, dict[str, float]] = {}
    for record in document["records"]:
        entry = {name: float(record[name]) for name in TRACKED_FIELDS}
        for name, value in record.get("counters", {}).items():
            if name.endswith(SPEEDUP_SUFFIX):
                entry[name] = float(value)
        metrics[f"{record['dataset']}/{record['codec']}"] = entry
    return {
        "label": label,
        "created_unix": document.get("created_unix"),
        "environment": document.get("environment", {}),
        "metrics": metrics,
    }


def load_trajectory(path: str | Path) -> list[dict]:
    """All well-formed lines of a trajectory file, oldest first.

    Malformed lines (a truncated cache restore, a partial write) are
    skipped with a warning rather than failing the run — the trajectory
    is an observability aid, and losing one point must never block CI.
    """
    trajectory_path = Path(path)
    if not trajectory_path.exists():
        return []
    runs: list[dict] = []
    for lineno, line in enumerate(
        trajectory_path.read_text().splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            run = json.loads(line)
        except json.JSONDecodeError:
            print(
                f"warning: {path}:{lineno} is not valid JSON, skipping",
                file=sys.stderr,
            )
            continue
        if isinstance(run, dict) and isinstance(run.get("metrics"), dict):
            runs.append(run)
        else:
            print(
                f"warning: {path}:{lineno} is not a trajectory line, "
                "skipping",
                file=sys.stderr,
            )
    return runs


def append_run(
    bench_path: str | Path,
    trajectory_path: str | Path,
    label: str | None = None,
) -> dict:
    """Validate ``bench_path`` and append its condensed line.

    A line with the same label (e.g. a re-run job for the same commit)
    is replaced in place, keeping one point per commit.
    """
    document, _ = read_bench_json(bench_path)
    line = condense_document(document, label or "local")
    runs = [
        run
        for run in load_trajectory(trajectory_path)
        if run.get("label") != line["label"]
    ]
    runs.append(line)
    Path(trajectory_path).write_text(
        "".join(json.dumps(run, sort_keys=True) + "\n" for run in runs)
    )
    return line


def render_trajectory(runs: list[dict], last: int = 10) -> str:
    """Markdown table of metric evolution over the most recent runs.

    One row per (record, metric): the latest value, the signed change
    vs the previous run, and the signed change across the whole shown
    window — the drift the per-run gate tolerance cannot see.
    """
    window = runs[-last:]
    if not window:
        return "## Benchmark trajectory\n\n(no runs recorded yet)\n"
    labels = [str(run.get("label", "?")) for run in window]
    lines = [
        "## Benchmark trajectory",
        "",
        f"{len(window)} run(s): {' → '.join(labels)}",
        "",
        "| record | metric | latest | vs previous | vs window start |",
        "|---|---|---:|---:|---:|",
    ]
    latest = window[-1]
    for key in sorted(latest["metrics"]):
        for metric, value in sorted(latest["metrics"][key].items()):
            prev_delta = _delta(window[-2:-1], key, metric, value)
            start_delta = _delta(window[:1], key, metric, value)
            lines.append(
                f"| {key} | {metric} | {value:.4f} "
                f"| {prev_delta} | {start_delta} |"
            )
    return "\n".join(lines) + "\n"


def _delta(
    reference_runs: list[dict], key: str, metric: str, value: float
) -> str:
    """Signed fractional change vs a reference run, or a dash."""
    if not reference_runs:
        return "—"
    reference = (
        reference_runs[0].get("metrics", {}).get(key, {}).get(metric)
    )
    if reference is None or reference == value:
        return "—" if reference is None else "±0.0%"
    if reference == 0:
        return "new"
    return f"{(value - reference) / reference:+.1%}"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.trajectory",
        description="append/inspect the main-branch bench trajectory",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    append_cmd = commands.add_parser(
        "append", help="condense a BENCH_*.json onto a trajectory JSONL"
    )
    append_cmd.add_argument("bench", help="BENCH_*.json of this run")
    append_cmd.add_argument("trajectory", help="trajectory JSONL to extend")
    append_cmd.add_argument(
        "--label",
        default=None,
        help="run label, e.g. the commit SHA (default 'local')",
    )

    show_cmd = commands.add_parser(
        "show", help="render the trajectory as a markdown delta table"
    )
    show_cmd.add_argument("trajectory", help="trajectory JSONL to read")
    show_cmd.add_argument(
        "--last", type=int, default=10, help="runs to show (default 10)"
    )
    show_cmd.add_argument(
        "--summary",
        default=None,
        help=(
            "also append the table to this file "
            "(default: $GITHUB_STEP_SUMMARY when set)"
        ),
    )
    args = parser.parse_args(argv)

    if args.command == "append":
        line = append_run(args.bench, args.trajectory, label=args.label)
        total = len(load_trajectory(args.trajectory))
        print(
            f"appended run {line['label']!r} "
            f"({len(line['metrics'])} records) to {args.trajectory} "
            f"({total} run(s) total)"
        )
        return 0

    runs = load_trajectory(args.trajectory)
    table = render_trajectory(runs, last=args.last)
    print(table, end="")
    summary_path = args.summary or os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with Path(summary_path).open("a", encoding="utf-8") as handle:
            handle.write(table)
    return 0


if __name__ == "__main__":
    sys.exit(main())
