"""Measurement utilities shared by all benchmark modules.

Speed is reported in values per second and, as a cross-reference to the
paper's metric, in a *tuples-per-cycle proxy*: values/second divided by
a nominal 3.5 GHz (the paper's Ice Lake clock).  Absolute numbers are
not comparable between CPython and the paper's C++ — the benches compare
*relative* speeds, which is what the paper's claims are about
(DESIGN.md, substitution 3).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.baselines.registry import get_codec
from repro.data import get_dataset

#: Nominal clock used for the tuples-per-cycle proxy (paper's Ice Lake).
NOMINAL_GHZ = 3.5


def bench_n(default: int = 60_000) -> int:
    """Values per dataset for table sweeps (override: REPRO_BENCH_N)."""
    return int(os.environ.get("REPRO_BENCH_N", default))


def measure_ratio(
    codec_name: str, values: np.ndarray, verify: bool = True
) -> float:
    """Compressed bits per value for a codec on a column."""
    codec = get_codec(codec_name)
    if verify:
        return codec.roundtrip_bits_per_value(values)
    encoded = codec.compress(values)
    return encoded.size_bits() / max(values.size, 1)


@dataclass(frozen=True)
class SpeedResult:
    """One timing measurement."""

    values_per_second: float
    seconds: float
    count: int

    @property
    def tuples_per_cycle_proxy(self) -> float:
        """values/sec normalized by the nominal clock."""
        return self.values_per_second / (NOMINAL_GHZ * 1e9)


def time_callable(
    fn: Callable[[], object],
    value_count: int,
    repeats: int = 5,
    warmup: int = 1,
) -> SpeedResult:
    """Best-of-N wall-clock timing of a zero-arg callable.

    Best-of (not mean) follows the micro-benchmark practice of measuring
    the code, not the scheduler.
    """
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    best = max(best, 1e-12)
    return SpeedResult(
        values_per_second=value_count / best, seconds=best, count=value_count
    )


def tuples_per_cycle(result: SpeedResult) -> float:
    """Convenience accessor for the proxy metric."""
    return result.tuples_per_cycle_proxy


def codec_speed_on_vector(
    codec_name: str,
    values: np.ndarray,
    repeats: int = 5,
) -> tuple[SpeedResult, SpeedResult]:
    """(compression, decompression) speed of a codec on one array.

    Mirrors the paper's §4.2 micro-benchmark: repeatedly [de]compress an
    L1-resident vector and take the best run.
    """
    codec = get_codec(codec_name)
    compress_speed = time_callable(
        lambda: codec.compress(values), values.size, repeats=repeats
    )
    encoded = codec.compress(values)
    decompress_speed = time_callable(
        lambda: codec.decompress(encoded), values.size, repeats=repeats
    )
    return compress_speed, decompress_speed


def dataset_vector(name: str, vector_size: int = 1024) -> np.ndarray:
    """One vector of a dataset (the micro-benchmark unit)."""
    return get_dataset(name, n=vector_size)


def alp_vector_speed(
    values: np.ndarray, repeats: int = 5
) -> tuple[SpeedResult, SpeedResult]:
    """ALP micro-benchmark speeds under the paper's protocol (§4.2).

    The paper's micro-benchmark repeatedly encodes one L1-resident vector
    and explicitly notes that "the first sampling phase ... was not
    present in the micro-benchmarks": row-group-level sampling is paid
    once per 100 vectors in real compression, so the per-vector cost is
    second-level sampling + encode (+ FFOR), and decode is UNFFOR +
    ALP_dec + patch.
    """
    from repro.core.alp import alp_decode_vector, alp_encode_vector
    from repro.core.sampler import first_level_sample, second_level_sample

    values = np.ascontiguousarray(values, dtype=np.float64)
    candidates = first_level_sample(values).candidates

    def compress_once():
        combo = second_level_sample(values, candidates).combination
        return alp_encode_vector(values, combo.exponent, combo.factor)

    compress_speed = time_callable(compress_once, values.size, repeats=repeats)
    encoded = compress_once()
    decompress_speed = time_callable(
        lambda: alp_decode_vector(encoded), values.size, repeats=repeats
    )
    return compress_speed, decompress_speed
