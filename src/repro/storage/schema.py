"""Logical schemas for multi-column ALPC tables (format v4).

A :class:`Schema` is an ordered collection of :class:`Column` entries —
name, logical type, nullability, and an optional per-column codec
override.  It is serialized as JSON inside the v4 footer (see
docs/FORMAT.md) so a reader can discover the table shape without any
out-of-band metadata, mirroring how Parquet/ORC front their row groups
with a self-describing schema.

Logical types map onto the repo's existing codecs:

========  =======================  ==========================
type      numpy representation     codecs
========  =======================  ==========================
float64   ``float64``              ``alp`` / ``alprd`` (adaptive)
int64     ``int64``                ``ffor`` / ``delta`` (adaptive)
string    ``object`` (``str``)     ``dict``
========  =======================  ==========================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

FLOAT64 = "float64"
INT64 = "int64"
STRING = "string"

#: Logical types understood by format v4, in documentation order.
LOGICAL_TYPES: tuple[str, ...] = (FLOAT64, INT64, STRING)

#: Valid per-column codec overrides for each logical type.  ``None``
#: (the default) lets the writer pick adaptively.
CODECS_BY_TYPE: dict[str, tuple[str, ...]] = {
    FLOAT64: ("alp", "alprd"),
    INT64: ("ffor", "delta"),
    STRING: ("dict",),
}


@dataclass(frozen=True)
class Column:
    """One column of a table: name, logical type, nullability, codec.

    ``codec`` pins the encoding for every chunk of this column; when
    ``None`` the writer chooses per chunk (ALP's sampler for floats,
    a size comparison between FFOR and delta for ints).
    """

    name: str
    type: str = FLOAT64
    nullable: bool = False
    codec: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError("column name must be a non-empty string")
        if self.type not in LOGICAL_TYPES:
            raise ValueError(
                f"unknown logical type {self.type!r}; expected one of {LOGICAL_TYPES}"
            )
        if self.codec is not None and self.codec not in CODECS_BY_TYPE[self.type]:
            raise ValueError(
                f"codec {self.codec!r} is not valid for {self.type} columns; "
                f"expected one of {CODECS_BY_TYPE[self.type]} or None"
            )

    def to_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "name": self.name,
            "type": self.type,
            "nullable": self.nullable,
        }
        if self.codec is not None:
            out["codec"] = self.codec
        return out

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Column":
        if not isinstance(data, dict):
            raise ValueError(f"column entry must be an object, got {type(data).__name__}")
        name = data.get("name")
        ctype = data.get("type", FLOAT64)
        nullable = data.get("nullable", False)
        codec = data.get("codec")
        if not isinstance(name, str):
            raise ValueError("column entry is missing a string 'name'")
        if not isinstance(ctype, str):
            raise ValueError(f"column {name!r} has a non-string 'type'")
        if not isinstance(nullable, bool):
            raise ValueError(f"column {name!r} has a non-boolean 'nullable'")
        if codec is not None and not isinstance(codec, str):
            raise ValueError(f"column {name!r} has a non-string 'codec'")
        return cls(name=name, type=ctype, nullable=nullable, codec=codec)


@dataclass(frozen=True)
class Schema:
    """An ordered collection of columns with unique names."""

    columns: tuple[Column, ...] = field(default=())

    def __post_init__(self) -> None:
        columns = tuple(self.columns)
        object.__setattr__(self, "columns", columns)
        if not columns:
            raise ValueError("a schema needs at least one column")
        seen: set[str] = set()
        for col in columns:
            if not isinstance(col, Column):
                raise ValueError(
                    f"schema entries must be Column instances, got {type(col).__name__}"
                )
            if col.name in seen:
                raise ValueError(f"duplicate column name {col.name!r}")
            seen.add(col.name)

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(col.name for col in self.columns)

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise KeyError(f"no column named {name!r}; schema has {list(self.names)}")

    def index(self, name: str) -> int:
        for i, col in enumerate(self.columns):
            if col.name == name:
                return i
        raise KeyError(f"no column named {name!r}; schema has {list(self.names)}")

    def select(self, names: "list[str] | tuple[str, ...]") -> "Schema":
        """Projected schema containing ``names`` in the requested order."""
        return Schema(tuple(self.column(name) for name in names))

    def to_dict(self) -> dict[str, object]:
        return {"columns": [col.to_dict() for col in self.columns]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"), sort_keys=False)

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Schema":
        if not isinstance(data, dict):
            raise ValueError("schema must be a JSON object")
        columns = data.get("columns")
        if not isinstance(columns, list):
            raise ValueError("schema object is missing a 'columns' list")
        return cls(tuple(Column.from_dict(entry) for entry in columns))

    @classmethod
    def from_json(cls, text: str) -> "Schema":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"schema JSON does not parse: {exc}") from exc
        return cls.from_dict(data)
