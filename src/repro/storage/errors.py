"""Typed corruption errors raised by the storage read path.

The hierarchy distinguishes the two blast radii a reader cares about:

- :class:`CorruptFileError` — file-level damage (bad magic, truncated
  trailer, header/footer checksum mismatch).  Nothing in the file can be
  trusted, so opening fails.
- :class:`CorruptRowGroupError` — one row-group's payload failed its
  checksum or did not decode.  The rest of the file is fine; a reader
  opened with ``degraded=True`` quarantines the group and keeps going.

Both derive from :class:`IntegrityError`, which itself derives from
``ValueError`` so pre-v3 callers catching ``ValueError`` keep working.

:class:`BufferLifetimeError` is not a corruption error: it guards the
zero-copy mmap read path, where payload ``memoryview`` slices alias the
mapped file.  Closing the map while such views are live would leave
them dangling (a segfault in C; a ``BufferError`` deep inside ``mmap``
in CPython), so the reader surfaces the situation as this typed error
instead.
"""

from __future__ import annotations


class IntegrityError(ValueError):
    """Base class for on-disk corruption detected by the storage layer."""


class BufferLifetimeError(RuntimeError):
    """A zero-copy reader was closed while exported views are still live.

    Raised by ``ColumnFileReader.close()`` when payload ``memoryview``
    slices (or numpy arrays borrowing them) still reference the mmap.
    The map stays open and valid; drop the views and close again.
    """

    def __init__(self, path: str) -> None:
        super().__init__(
            f"{path}: cannot close an mmap-backed reader while payload "
            "memoryviews are still alive; drop all views (and arrays "
            "borrowing them) before closing"
        )
        self.path = path


class CorruptFileError(IntegrityError):
    """File-level corruption: magic, framing, header or footer damage."""

    def __init__(self, path: str, reason: str) -> None:
        super().__init__(f"{path}: {reason}")
        self.path = path
        self.reason = reason


class CorruptRowGroupError(IntegrityError):
    """One row-group's section is corrupt; the rest of the file may be fine."""

    def __init__(
        self,
        path: str,
        index: int,
        offset: int,
        length: int,
        reason: str,
    ) -> None:
        super().__init__(
            f"{path}: row-group {index} "
            f"(offset {offset}, {length} bytes): {reason}"
        )
        self.path = path
        self.index = index
        self.offset = offset
        self.length = length
        self.reason = reason
