"""Unit tests for repro.alputil.bits."""

import math

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.alputil.bits import (
    bits_to_double,
    bits_to_float32,
    double_to_bits,
    float32_to_bits,
    ieee754_exponent,
    ieee754_mantissa,
    ieee754_sign,
    leading_zeros64,
    trailing_zeros64,
    xor_with_previous,
)


class TestBitViews:
    def test_double_roundtrip(self):
        values = np.array([0.0, -0.0, 1.0, -1.5, math.pi, 1e300, -1e-300])
        assert np.array_equal(
            bits_to_double(double_to_bits(values)).view(np.uint64),
            values.view(np.uint64),
        )

    def test_one_is_known_pattern(self):
        assert double_to_bits(np.array([1.0]))[0] == 0x3FF0000000000000

    def test_negative_zero_differs_from_zero(self):
        bits = double_to_bits(np.array([0.0, -0.0]))
        assert bits[0] == 0
        assert bits[1] == 1 << 63

    def test_nan_payload_preserved(self):
        payload = np.uint64(0x7FF8DEADBEEF0001)
        value = bits_to_double(np.array([payload], dtype=np.uint64))
        assert math.isnan(value[0])
        assert double_to_bits(value)[0] == payload

    def test_float32_roundtrip(self):
        values = np.array([0.0, -2.5, 3.14], dtype=np.float32)
        assert np.array_equal(
            float32_to_bits(bits_to_float32(float32_to_bits(values))),
            float32_to_bits(values),
        )

    def test_float32_one_pattern(self):
        assert float32_to_bits(np.array([1.0], dtype=np.float32))[0] == 0x3F800000


class TestFieldExtraction:
    def test_sign(self):
        signs = ieee754_sign(np.array([1.0, -1.0, 0.0, -0.0]))
        assert signs.tolist() == [0, 1, 0, 1]

    def test_exponent_of_one_is_bias(self):
        assert ieee754_exponent(np.array([1.0]))[0] == 1023

    def test_exponent_of_two(self):
        assert ieee754_exponent(np.array([2.0]))[0] == 1024

    def test_exponent_of_half(self):
        assert ieee754_exponent(np.array([0.5]))[0] == 1022

    def test_exponent_of_zero(self):
        assert ieee754_exponent(np.array([0.0]))[0] == 0

    def test_mantissa_of_power_of_two_is_zero(self):
        assert ieee754_mantissa(np.array([8.0]))[0] == 0

    def test_mantissa_of_1_5(self):
        # 1.5 = 1 + 0.5 -> top mantissa bit set.
        assert ieee754_mantissa(np.array([1.5]))[0] == 1 << 51


class TestZeroCounts:
    def test_leading_zeros_zero(self):
        assert leading_zeros64(np.array([0], dtype=np.uint64))[0] == 64

    def test_leading_zeros_one(self):
        assert leading_zeros64(np.array([1], dtype=np.uint64))[0] == 63

    def test_leading_zeros_msb(self):
        assert leading_zeros64(np.array([1 << 63], dtype=np.uint64))[0] == 0

    def test_trailing_zeros_zero(self):
        assert trailing_zeros64(np.array([0], dtype=np.uint64))[0] == 64

    def test_trailing_zeros_even(self):
        assert trailing_zeros64(np.array([8], dtype=np.uint64))[0] == 3

    def test_trailing_zeros_odd(self):
        assert trailing_zeros64(np.array([7], dtype=np.uint64))[0] == 0

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_matches_python_bit_tricks(self, x):
        arr = np.array([x], dtype=np.uint64)
        expected_lz = 64 - x.bit_length()
        assert leading_zeros64(arr)[0] == expected_lz
        expected_tz = 64 if x == 0 else (x & -x).bit_length() - 1
        assert trailing_zeros64(arr)[0] == expected_tz

    @given(
        st.lists(
            st.integers(min_value=0, max_value=2**64 - 1), min_size=1, max_size=50
        )
    )
    def test_vectorized_agrees_with_scalar(self, xs):
        arr = np.array(xs, dtype=np.uint64)
        lz = leading_zeros64(arr)
        tz = trailing_zeros64(arr)
        for i, x in enumerate(xs):
            assert lz[i] == 64 - x.bit_length()
            assert tz[i] == (64 if x == 0 else (x & -x).bit_length() - 1)


class TestXorWithPrevious:
    def test_first_element_passes_through(self):
        values = np.array([1.5, 1.5, 2.0])
        xored = xor_with_previous(values)
        assert xored[0] == double_to_bits(values[:1])[0]

    def test_equal_neighbours_xor_to_zero(self):
        values = np.array([3.25, 3.25])
        assert xor_with_previous(values)[1] == 0

    def test_roundtrip_by_rescan(self):
        rng = np.random.default_rng(7)
        values = rng.normal(size=100)
        xored = xor_with_previous(values)
        rebuilt = np.empty_like(xored)
        prev = np.uint64(0)
        for i, x in enumerate(xored):
            prev = prev ^ x
            rebuilt[i] = prev
        assert np.array_equal(rebuilt, double_to_bits(values))
