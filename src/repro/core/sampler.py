"""The two-level adaptive sampling of ALP (Section 3.2).

Level one runs once per row-group: ``m = 8`` equidistant vectors are
sampled, ``n = 32`` equidistant values from each, and for every sampled
vector the *entire* (e, f) search space (253 combinations) is scanned.
The up-to-``k = 5`` combinations that win most often become the
row-group's candidate set; ties prefer higher exponents and factors.

Level two runs once per vector: ``s = 32`` equidistant values are
sampled and the candidates from level one are tried *in order of
frequency*, with a greedy early exit — if two consecutive candidates do
no better than the best seen, the search stops.  When level one produced
a single candidate, level two is skipped entirely.

The level-one scan also powers the ALP vs ALP_rd decision: a best
estimate above ``RD_SIZE_THRESHOLD_BITS`` bits/value marks the row-group
as "real doubles".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.alputil.bits import leading_zeros64
from repro.core.constants import (
    EXCEPTION_SIZE_BITS,
    F10,
    IF10,
    MAX_COMBINATIONS,
    MAX_EXPONENT,
    SAMPLES_PER_ROWGROUP,
    SAMPLES_PER_VECTOR_FIRST_LEVEL,
    SAMPLES_PER_VECTOR_SECOND_LEVEL,
    VECTOR_SIZE,
)
from repro.core.fastround import fast_round


@dataclass(frozen=True, order=True)
class ExponentFactor:
    """One (exponent e, factor f) combination, ``f <= e``."""

    exponent: int
    factor: int

    def __post_init__(self) -> None:
        if not 0 <= self.factor <= self.exponent <= MAX_EXPONENT:
            raise ValueError(
                f"invalid combination e={self.exponent}, f={self.factor}"
            )


def _build_search_space() -> tuple[np.ndarray, np.ndarray]:
    """All (e, f) combinations, highest exponent/factor first.

    Ordering matters: the full search takes the *first* minimum, so
    enumerating high-e/high-f first implements the paper's tie-break
    ("prioritize combinations with higher exponents and higher factors").
    """
    exponents, factors = [], []
    for e in range(MAX_EXPONENT, -1, -1):
        for f in range(e, -1, -1):
            exponents.append(e)
            factors.append(f)
    return (
        np.asarray(exponents, dtype=np.int64),
        np.asarray(factors, dtype=np.int64),
    )


_E_ALL, _F_ALL = _build_search_space()

#: Number of combinations in the full search space (253 in the paper).
SEARCH_SPACE_SIZE = _E_ALL.size


def estimate_sizes_matrix(
    samples: np.ndarray, exponents: np.ndarray, factors: np.ndarray
) -> np.ndarray:
    """Estimated bits per (combination, sampled vector), fully batched.

    ``samples`` is a (vectors x samples-per-vector) float64 matrix;
    ``exponents`` / ``factors`` are parallel int arrays of combinations.
    Returns an int64 matrix of shape (combinations, vectors).  This one
    kernel powers both sampling levels: the first level evaluates the
    full 253-combination search space over all m sampled vectors at
    once, the second level evaluates the k' surviving candidates over a
    single vector's sample.
    """
    samples = np.ascontiguousarray(samples, dtype=np.float64)
    n_samples = samples.shape[1]
    # The multiplication structure must match alp_analyze exactly (two
    # separate multiplies, not a precomputed product): a different rounding
    # path would make the sampler mispredict the encoder's exceptions.
    e_mul = F10[exponents][:, None, None]
    f_inv = IF10[factors][:, None, None]
    f_mul = F10[factors][:, None, None]
    e_inv = IF10[exponents][:, None, None]
    with np.errstate(over="ignore", invalid="ignore"):
        encoded = fast_round(samples[None, :, :] * e_mul * f_inv)
        decoded = encoded * f_mul * e_inv
    exceptions = decoded.view(np.uint64) != samples.view(np.uint64)

    int_min = np.iinfo(np.int64).min
    int_max = np.iinfo(np.int64).max
    masked_max = np.where(exceptions, int_min, encoded).max(axis=2)
    masked_min = np.where(exceptions, int_max, encoded).min(axis=2)
    n_exc = exceptions.sum(axis=2)
    n_valid = n_samples - n_exc

    spread = np.where(
        n_valid > 0, masked_max - masked_min, 0
    ).astype(np.uint64)
    width = 64 - leading_zeros64(spread)
    return (n_valid * width + n_exc * EXCEPTION_SIZE_BITS).astype(np.int64)


def estimate_sizes_all_combinations(sample: np.ndarray) -> np.ndarray:
    """Estimated bits for ``sample`` under *every* (e, f) combination.

    Returns an array aligned with the module's search-space ordering.
    """
    sample = np.ascontiguousarray(sample, dtype=np.float64)
    if sample.size == 0:
        return np.zeros(SEARCH_SPACE_SIZE, dtype=np.int64)
    return estimate_sizes_matrix(sample[None, :], _E_ALL, _F_ALL)[:, 0]


def find_best_combination(sample: np.ndarray) -> tuple[ExponentFactor, int]:
    """Full-search the best (e, f) for a sample; returns (combo, est. bits)."""
    sizes = estimate_sizes_all_combinations(sample)
    best = int(np.argmin(sizes))
    combo = ExponentFactor(int(_E_ALL[best]), int(_F_ALL[best]))
    return combo, int(sizes[best])


def equidistant_indices(total: int, wanted: int) -> np.ndarray:
    """``wanted`` equidistant indices into a range of ``total`` elements."""
    if total <= 0:
        return np.empty(0, dtype=np.int64)
    wanted = min(wanted, total)
    return np.linspace(0, total - 1, num=wanted, dtype=np.int64)


def sample_vector(values: np.ndarray, wanted: int) -> np.ndarray:
    """Sample ``wanted`` equidistant values from a vector."""
    return values[equidistant_indices(values.size, wanted)]


@dataclass(frozen=True)
class FirstLevelResult:
    """Outcome of the row-group (first) sampling level.

    Attributes:
        candidates: up to ``k`` combinations, most frequent first.
        use_rd: True when the row-group should fall back to ALP_rd.
        best_estimated_bits_per_value: size estimate of the winning combo.
    """

    candidates: tuple[ExponentFactor, ...]
    use_rd: bool
    best_estimated_bits_per_value: float

    @property
    def k_prime(self) -> int:
        """Number of surviving candidates (the paper's k')."""
        return len(self.candidates)


def first_level_sample(
    rowgroup: np.ndarray,
    vector_size: int = VECTOR_SIZE,
    vectors_sampled: int = SAMPLES_PER_ROWGROUP,
    values_per_vector: int = SAMPLES_PER_VECTOR_FIRST_LEVEL,
    max_candidates: int = MAX_COMBINATIONS,
    rd_threshold_bits: float | None = None,
) -> FirstLevelResult:
    """Row-group sampling: full search on m x n sampled values (§3.2).

    The full searches of all m sampled vectors run as *one* batched
    (253 x m*n) evaluation (vectors whose tail chunk yields a shorter
    sample are batched separately per sample length, so estimates stay
    identical to the per-vector loop in
    :func:`first_level_sample_loop`).
    """
    from repro.core.constants import RD_SIZE_THRESHOLD_BITS

    if rd_threshold_bits is None:
        rd_threshold_bits = float(RD_SIZE_THRESHOLD_BITS)

    with obs.span("sampler.first_level"):
        rowgroup = np.ascontiguousarray(rowgroup, dtype=np.float64)
        n_vectors = max(1, (rowgroup.size + vector_size - 1) // vector_size)
        vector_indices = equidistant_indices(n_vectors, vectors_sampled)

        by_length: dict[int, list[np.ndarray]] = {}
        # Iterates the m = 8 sampled vector indices, not per-value data;
        # the per-value work is vectorized.  # reprolint: ignore[RL2]
        for vi in vector_indices.tolist():
            chunk = rowgroup[vi * vector_size : (vi + 1) * vector_size]
            if chunk.size == 0:
                continue
            sample = sample_vector(chunk, values_per_vector)
            by_length.setdefault(sample.size, []).append(sample)

        votes: Counter[ExponentFactor] = Counter()
        best_ratio = float("inf")
        sampled = 0
        for length, sample_list in by_length.items():
            sizes = estimate_sizes_matrix(
                np.stack(sample_list), _E_ALL, _F_ALL
            )
            # np.argmin takes the first minimum, preserving the search
            # space's high-e/high-f-first tie-break per vector.
            best = np.argmin(sizes, axis=0)
            # One vote per sampled vector (m = 8 per row-group), not a
            # per-value loop.  # reprolint: ignore[RL2]
            for column, ci in enumerate(best.tolist()):
                votes[ExponentFactor(int(_E_ALL[ci]), int(_F_ALL[ci]))] += 1
                best_ratio = min(best_ratio, int(sizes[ci, column]) / length)
            sampled += len(sample_list)

    if obs.ENABLED:
        obs.metrics.counter_add("sampler.first_level_runs", 1)
        obs.metrics.counter_add("sampler.first_level_vectors", sampled)
    return _rank_first_level(votes, best_ratio, max_candidates, rd_threshold_bits)


def _rank_first_level(
    votes: Counter[ExponentFactor],
    best_ratio: float,
    max_candidates: int,
    rd_threshold_bits: float,
) -> FirstLevelResult:
    """Turn per-vector winner votes into the ranked candidate set."""
    if not votes:
        return FirstLevelResult(
            candidates=(ExponentFactor(0, 0),),
            use_rd=False,
            best_estimated_bits_per_value=0.0,
        )

    # Most frequent first; ties prefer higher exponent, then higher factor.
    ranked = sorted(
        votes.items(),
        key=lambda item: (-item[1], -item[0].exponent, -item[0].factor),
    )
    candidates = tuple(combo for combo, _ in ranked[:max_candidates])
    if obs.ENABLED:
        obs.metrics.counter_add("sampler.candidates_kept", len(candidates))
    return FirstLevelResult(
        candidates=candidates,
        use_rd=best_ratio >= rd_threshold_bits,
        best_estimated_bits_per_value=best_ratio,
    )


def first_level_sample_loop(
    rowgroup: np.ndarray,
    vector_size: int = VECTOR_SIZE,
    vectors_sampled: int = SAMPLES_PER_ROWGROUP,
    values_per_vector: int = SAMPLES_PER_VECTOR_FIRST_LEVEL,
    max_candidates: int = MAX_COMBINATIONS,
    rd_threshold_bits: float | None = None,
) -> FirstLevelResult:
    """Per-vector-loop reference of :func:`first_level_sample`.

    One full search per sampled vector, exactly as the batched version
    but dispatched m times.  Kept (un-instrumented) as the ground truth
    for the sampler-equivalence tests; results are identical.
    """
    from repro.core.constants import RD_SIZE_THRESHOLD_BITS

    if rd_threshold_bits is None:
        rd_threshold_bits = float(RD_SIZE_THRESHOLD_BITS)

    rowgroup = np.ascontiguousarray(rowgroup, dtype=np.float64)
    n_vectors = max(1, (rowgroup.size + vector_size - 1) // vector_size)
    vector_indices = equidistant_indices(n_vectors, vectors_sampled)

    votes: Counter[ExponentFactor] = Counter()
    best_ratio = float("inf")
    for vi in vector_indices.tolist():
        chunk = rowgroup[vi * vector_size : (vi + 1) * vector_size]
        if chunk.size == 0:
            continue
        sample = sample_vector(chunk, values_per_vector)
        combo, est_bits = find_best_combination(sample)
        votes[combo] += 1
        best_ratio = min(best_ratio, est_bits / sample.size)
    return _rank_first_level(votes, best_ratio, max_candidates, rd_threshold_bits)


@dataclass(frozen=True)
class SecondLevelResult:
    """Outcome of the per-vector (second) sampling level."""

    combination: ExponentFactor
    combinations_tried: int
    skipped: bool  # True when k' == 1 and no sampling happened


def _estimate_for_candidates(
    sample: np.ndarray, candidate: ExponentFactor
) -> int:
    """Size estimate of one candidate on the per-vector sample."""
    from repro.core.alp import estimate_size_bits

    return estimate_size_bits(sample, candidate.exponent, candidate.factor)


def second_level_sample(
    vector: np.ndarray,
    candidates: tuple[ExponentFactor, ...],
    samples: int = SAMPLES_PER_VECTOR_SECOND_LEVEL,
) -> SecondLevelResult:
    """Per-vector sampling with greedy early exit (§3.2).

    Candidates are evaluated in the order level one ranked them.  If two
    consecutive candidates perform no better than the best so far, the
    search stops and the best so far wins.  With a single candidate the
    whole step is skipped.
    """
    if not candidates:
        raise ValueError("second_level_sample needs at least one candidate")
    if len(candidates) == 1:
        obs.counter_add("sampler.second_level_skipped")
        return SecondLevelResult(
            combination=candidates[0], combinations_tried=0, skipped=True
        )

    with obs.span("sampler.second_level"):
        sample = sample_vector(
            np.ascontiguousarray(vector, dtype=np.float64), samples
        )
        # All k' candidates in one (k' x s) evaluation; the paper's greedy
        # early-exit walk is then replayed over the size array, so the
        # winner and ``combinations_tried`` match the lazy loop exactly.
        exponents = np.asarray([c.exponent for c in candidates], dtype=np.int64)
        factors = np.asarray([c.factor for c in candidates], dtype=np.int64)
        sizes = estimate_sizes_matrix(sample[None, :], exponents, factors)[:, 0]
        best_combo, tried, early_exit = _greedy_walk(candidates, sizes.tolist())
    if obs.ENABLED:
        obs.metrics.counter_add("sampler.second_level_runs", 1)
        obs.metrics.counter_add("sampler.combinations_tried", tried)
        if early_exit:
            obs.metrics.counter_add("sampler.early_exits", 1)
    return SecondLevelResult(
        combination=best_combo, combinations_tried=tried, skipped=False
    )


def _greedy_walk(
    candidates: tuple[ExponentFactor, ...], sizes: list[int]
) -> tuple[ExponentFactor, int, bool]:
    """The §3.2 greedy early-exit walk over per-candidate size estimates.

    Returns ``(winner, combinations_tried, early_exit)``.  Stops after
    two consecutive candidates that do no better than the best so far —
    identical control flow whether the sizes were computed lazily (loop
    reference) or upfront (batched path).
    """
    best_combo = candidates[0]
    best_size = sizes[0]
    worse_streak = 0
    tried = 1
    for candidate, size in zip(candidates[1:], sizes[1:], strict=True):
        tried += 1
        if size < best_size:
            best_size = size
            best_combo = candidate
            worse_streak = 0
        else:
            worse_streak += 1
            if worse_streak >= 2:
                return best_combo, tried, True
    return best_combo, tried, False


def second_level_sample_rowgroup(
    rowgroup: np.ndarray,
    candidates: tuple[ExponentFactor, ...],
    vector_size: int = VECTOR_SIZE,
    samples: int = SAMPLES_PER_VECTOR_SECOND_LEVEL,
) -> list[SecondLevelResult]:
    """Level-two sampling for every vector of a row-group, batched.

    One (k' x vectors x s) evaluation replaces the per-vector calls to
    :func:`second_level_sample`; the greedy early-exit walk then replays
    per vector over its own size column.  Winners, try counts and early
    exits are identical to calling :func:`second_level_sample` on each
    chunk (vectors with a shorter tail sample are batched separately per
    sample length so their estimates do not change).
    """
    if not candidates:
        raise ValueError("second_level_sample needs at least one candidate")
    rowgroup = np.ascontiguousarray(rowgroup, dtype=np.float64)
    n_vectors = (rowgroup.size + vector_size - 1) // vector_size
    if len(candidates) == 1:
        obs.counter_add("sampler.second_level_skipped", n_vectors)
        return [
            SecondLevelResult(
                combination=candidates[0], combinations_tried=0, skipped=True
            )
        ] * n_vectors

    with obs.span("sampler.second_level"):
        by_length: dict[int, list[int]] = {}
        sample_rows: list[np.ndarray] = []
        for vi in range(n_vectors):
            chunk = rowgroup[vi * vector_size : (vi + 1) * vector_size]
            sample_rows.append(sample_vector(chunk, samples))
            by_length.setdefault(sample_rows[-1].size, []).append(vi)

        exponents = np.asarray([c.exponent for c in candidates], dtype=np.int64)
        factors = np.asarray([c.factor for c in candidates], dtype=np.int64)
        results: list[SecondLevelResult | None] = [None] * n_vectors
        early_exits = 0
        tried_total = 0
        for vector_ids in by_length.values():
            sizes = estimate_sizes_matrix(
                np.stack([sample_rows[vi] for vi in vector_ids]),
                exponents,
                factors,
            )
            for column, vi in enumerate(vector_ids):
                best_combo, tried, early_exit = _greedy_walk(
                    candidates, sizes[:, column].tolist()
                )
                results[vi] = SecondLevelResult(
                    combination=best_combo,
                    combinations_tried=tried,
                    skipped=False,
                )
                tried_total += tried
                early_exits += early_exit
    if obs.ENABLED:
        obs.metrics.counter_add("sampler.second_level_runs", n_vectors)
        obs.metrics.counter_add("sampler.combinations_tried", tried_total)
        if early_exits:
            obs.metrics.counter_add("sampler.early_exits", early_exits)
    return results  # type: ignore[return-value]


def second_level_sample_loop(
    vector: np.ndarray,
    candidates: tuple[ExponentFactor, ...],
    samples: int = SAMPLES_PER_VECTOR_SECOND_LEVEL,
) -> SecondLevelResult:
    """Lazy per-candidate-loop reference of :func:`second_level_sample`.

    Evaluates one candidate at a time and stops at the early exit, as
    the pre-batching implementation did.  Kept (un-instrumented) as the
    ground truth for the sampler-equivalence tests; results are
    identical to the batched version.
    """
    if not candidates:
        raise ValueError("second_level_sample needs at least one candidate")
    if len(candidates) == 1:
        return SecondLevelResult(
            combination=candidates[0], combinations_tried=0, skipped=True
        )
    sample = sample_vector(
        np.ascontiguousarray(vector, dtype=np.float64), samples
    )
    best_combo = candidates[0]
    best_size = _estimate_for_candidates(sample, best_combo)
    worse_streak = 0
    tried = 1
    for candidate in candidates[1:]:
        size = _estimate_for_candidates(sample, candidate)
        tried += 1
        if size < best_size:
            best_size = size
            best_combo = candidate
            worse_streak = 0
        else:
            worse_streak += 1
            if worse_streak >= 2:
                break
    return SecondLevelResult(
        combination=best_combo, combinations_tried=tried, skipped=False
    )
