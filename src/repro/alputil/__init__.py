"""Low-level utilities shared by every compression scheme in the library.

The subpackage is intentionally dependency-free (numpy only) and contains:

- :mod:`repro.alputil.bits` — IEEE 754 bit-level views and XOR statistics,
- :mod:`repro.alputil.bitstream` — an MSB-first bit stream used by the
  XOR-based baselines (Gorilla, Chimp, Chimp128, Elf),
- :mod:`repro.alputil.decimals` — shortest-decimal-representation helpers
  (decimal precision of a double, magnitude in base 10).
"""

from repro.alputil.bits import (
    double_to_bits,
    bits_to_double,
    float32_to_bits,
    bits_to_float32,
    ieee754_exponent,
    ieee754_mantissa,
    ieee754_sign,
    leading_zeros64,
    trailing_zeros64,
    xor_with_previous,
)
from repro.alputil.bitstream import BitReader, BitWriter
from repro.alputil.decimals import decimal_places, decimal_places_array, magnitude10

__all__ = [
    "BitReader",
    "BitWriter",
    "bits_to_double",
    "bits_to_float32",
    "decimal_places",
    "decimal_places_array",
    "double_to_bits",
    "float32_to_bits",
    "ieee754_exponent",
    "ieee754_mantissa",
    "ieee754_sign",
    "leading_zeros64",
    "magnitude10",
    "trailing_zeros64",
    "xor_with_previous",
]
