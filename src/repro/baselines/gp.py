"""General-purpose block compression baseline.

The paper benchmarks Zstd (level 3) as the representative heavyweight,
block-based compressor.  No Zstd wheel is available in this offline
environment, so stdlib codecs stand in behind the same interface:

- ``zlib`` (DEFLATE, level 6) plays the Zstd role: good ratio, slow
  relative to lightweight encodings, block-granular access only;
- ``lzma`` (level 1) is exposed as a second, even heavier point.

The substitution is recorded in DESIGN.md.  The property the paper's
claims rest on — a general-purpose compressor matches ALP's ratio but is
orders of magnitude slower and cannot skip inside a block — holds for
DEFLATE exactly as it does for Zstd.

Like the paper's setup, input is compressed in row-group-sized blocks
(~800 KB of raw doubles) rather than vector-sized ones: general-purpose
compressors need large windows to perform, which is precisely the
skipping disadvantage the paper calls out.
"""

from __future__ import annotations

import lzma
import zlib
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.constants import ROWGROUP_SIZE

#: zlib level mirroring Zstd's default-ish trade-off.
ZLIB_LEVEL = 6

#: lzma preset kept low; higher presets are impractically slow here.
LZMA_PRESET = 1


@dataclass(frozen=True)
class GpEncoded:
    """A block-compressed column (one blob per row-group-sized block)."""

    blocks: tuple[bytes, ...]
    codec: str  # "zlib" or "lzma"
    count: int

    def size_bits(self) -> int:
        """Sum of compressed block sizes."""
        return sum(len(b) for b in self.blocks) * 8

    def bits_per_value(self) -> float:
        """Compressed bits per value."""
        return self.size_bits() / self.count if self.count else 0.0


_COMPRESSORS: dict[str, Callable[[bytes], bytes]] = {
    "zlib": lambda raw: zlib.compress(raw, ZLIB_LEVEL),
    "lzma": lambda raw: lzma.compress(raw, preset=LZMA_PRESET),
}

_DECOMPRESSORS: dict[str, Callable[[bytes], bytes]] = {
    "zlib": zlib.decompress,
    "lzma": lzma.decompress,
}


def gp_compress(
    values: np.ndarray,
    codec: str = "zlib",
    block_values: int = ROWGROUP_SIZE,
) -> GpEncoded:
    """Compress a float64 array block-wise with a general-purpose codec."""
    if codec not in _COMPRESSORS:
        raise ValueError(f"unknown general-purpose codec {codec!r}")
    values = np.ascontiguousarray(values, dtype=np.float64)
    compress_fn = _COMPRESSORS[codec]
    blocks = tuple(
        compress_fn(values[start : start + block_values].tobytes())
        for start in range(0, values.size, block_values)
    )
    return GpEncoded(blocks=blocks, codec=codec, count=values.size)


def gp_decompress(encoded: GpEncoded) -> np.ndarray:
    """Decompress a :class:`GpEncoded` column back to float64."""
    if encoded.count == 0:
        return np.empty(0, dtype=np.float64)
    decompress_fn = _DECOMPRESSORS[encoded.codec]
    raw = b"".join(decompress_fn(block) for block in encoded.blocks)
    return np.frombuffer(raw, dtype=np.float64).copy()
