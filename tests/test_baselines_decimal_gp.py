"""Tests for Elf, PDE and the general-purpose baseline, plus the registry."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.elf import _erase, elf_compress, elf_decompress
from repro.baselines.gp import gp_compress, gp_decompress
from repro.baselines.pde import (
    EXCEPTION_EXPONENT,
    _search_exponents,
    pde_compress,
    pde_decompress,
)
from repro.baselines.registry import CODECS, get_codec, list_codecs


def bitwise_equal(a, b):
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return a.shape == b.shape and np.array_equal(
        a.view(np.uint64), b.view(np.uint64)
    )


class TestElfErase:
    def test_erase_low_precision_value(self):
        erased, did = _erase(71.3, 1)
        assert did
        # The erased value must still round back to the original.
        assert float(f"{erased:.1f}") == 71.3

    def test_erased_has_more_trailing_zero_bits(self):
        import struct

        original_bits = struct.unpack("<Q", struct.pack("<d", 71.3))[0]
        erased, did = _erase(71.3, 1)
        erased_bits = struct.unpack("<Q", struct.pack("<d", erased))[0]
        assert did
        tz = lambda x: 64 if x == 0 else ((x & -x).bit_length() - 1)
        assert tz(erased_bits) > tz(original_bits)

    def test_full_precision_value_not_erased(self):
        _, did = _erase(math.pi, 17)
        assert not did or True  # erasing pi at alpha=17 may trivially fail

    def test_integer_value(self):
        erased, did = _erase(123.0, 0)
        assert float(f"{erased:.0f}") == 123.0


class TestElf:
    def test_roundtrip_decimal_data(self):
        rng = np.random.default_rng(0)
        values = np.round(rng.uniform(-100, 100, 1500), 1)
        assert bitwise_equal(elf_decompress(elf_compress(values)), values)

    def test_roundtrip_special(self):
        values = np.array([math.nan, math.inf, -0.0, 0.0, 5e-324])
        assert bitwise_equal(elf_decompress(elf_compress(values)), values)

    def test_elf_beats_chimp_on_low_precision(self):
        from repro.baselines.chimp import chimp_compress

        rng = np.random.default_rng(1)
        values = np.round(rng.uniform(0, 120, 3000), 1)
        elf_bits = elf_compress(values).bits_per_value()
        chimp_bits = chimp_compress(values).bits_per_value()
        assert elf_bits < chimp_bits

    @given(
        st.lists(
            st.floats(allow_nan=True, allow_infinity=True, width=64),
            max_size=80,
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_arbitrary(self, xs):
        values = np.array(xs, dtype=np.float64)
        assert bitwise_equal(elf_decompress(elf_compress(values)), values)


class TestPde:
    def test_search_finds_visible_precision(self):
        digits, exponents = _search_exponents(np.array([8.25, 100.0, 0.5]))
        assert exponents.tolist() == [2, 0, 1]
        assert digits.tolist() == [825, 100, 5]

    def test_search_marks_exceptions(self):
        _, exponents = _search_exponents(np.array([math.pi]))
        assert exponents[0] == EXCEPTION_EXPONENT

    def test_big_digits_become_exceptions(self):
        # Needs 12 digits at e=2 -> exceeds the 31-bit digit budget.
        values = np.array([12345678901.25])
        _, exponents = _search_exponents(values)
        assert exponents[0] == EXCEPTION_EXPONENT

    def test_roundtrip(self):
        rng = np.random.default_rng(2)
        values = np.round(rng.uniform(0, 1000, 5000), 2)
        values[::97] = math.pi  # sprinkle exceptions
        assert bitwise_equal(pde_decompress(pde_compress(values)), values)

    def test_roundtrip_special(self):
        values = np.array([math.nan, math.inf, -math.inf, -0.0, 0.0])
        assert bitwise_equal(pde_decompress(pde_compress(values)), values)

    def test_integers_compress_very_well(self):
        # CMS/9-style discrete counts: PDE's best case (paper §4.1).
        rng = np.random.default_rng(3)
        values = rng.integers(0, 500, 4000).astype(np.float64)
        bits = pde_compress(values).bits_per_value()
        assert bits < 16

    @given(
        st.lists(
            st.floats(allow_nan=True, allow_infinity=True, width=64),
            max_size=150,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_arbitrary(self, xs):
        values = np.array(xs, dtype=np.float64)
        assert bitwise_equal(pde_decompress(pde_compress(values)), values)


class TestGp:
    def test_roundtrip_zlib(self):
        rng = np.random.default_rng(4)
        values = np.round(rng.uniform(0, 10, 10_000), 1)
        assert bitwise_equal(gp_decompress(gp_compress(values)), values)

    def test_roundtrip_lzma(self):
        rng = np.random.default_rng(5)
        values = np.round(rng.uniform(0, 10, 5_000), 1)
        encoded = gp_compress(values, codec="lzma")
        assert bitwise_equal(gp_decompress(encoded), values)

    def test_blocks_are_rowgroup_sized(self):
        values = np.zeros(250_000)
        encoded = gp_compress(values)
        assert len(encoded.blocks) == 3  # 102400 + 102400 + 45200

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError):
            gp_compress(np.zeros(4), codec="zstd")

    def test_compresses_repetitive_data(self):
        values = np.tile(np.round(np.arange(100) * 0.5, 1), 100)
        assert gp_compress(values).bits_per_value() < 8


class TestRegistry:
    def test_all_expected_codecs_present(self):
        for name in (
            "alp",
            "lwc+alp",
            "gorilla",
            "chimp",
            "chimp128",
            "patas",
            "elf",
            "pde",
            "zlib(gp)",
        ):
            assert name in CODECS

    def test_get_codec_unknown(self):
        with pytest.raises(KeyError):
            get_codec("nope")

    def test_list_codecs(self):
        assert "alp" in list_codecs()

    @pytest.mark.parametrize("name", sorted(CODECS))
    def test_every_codec_roundtrips_via_interface(self, name):
        rng = np.random.default_rng(6)
        values = np.round(rng.uniform(0, 50, 1200), 2)
        bits = get_codec(name).roundtrip_bits_per_value(values)
        assert 0 < bits < 96

    def test_roundtrip_check_raises_on_corruption(self):
        codec = get_codec("alp")
        broken = Codec = type(codec)(
            name="broken",
            compress=codec.compress,
            decompress=lambda blob: np.zeros(3),
            vectorized=True,
        )
        with pytest.raises(AssertionError):
            broken.roundtrip_bits_per_value(np.array([1.5, 2.5, 3.5]))
