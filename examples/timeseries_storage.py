"""Columnar storage with predicate push-down over ALP-compressed data.

Writes a year of synthetic stock ticks into an ALPC column file, then
answers a range query while *skipping* row-groups whose zone maps prove
they contain no qualifying values — the capability the paper contrasts
with block-based general-purpose compression.

Run:  python examples/timeseries_storage.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import api

# One year of tick prices: a slow upward random walk, two decimals.
rng = np.random.default_rng(21)
prices = np.round(
    np.cumsum(rng.normal(0.002, 0.08, 1_500_000)) + 150.0, 2
)

path = Path(tempfile.mkdtemp()) / "stocks.alpc"
start = time.perf_counter()
api.write(path, prices)  # atomic, checksummed (format v3)
write_seconds = time.perf_counter() - start

raw_mib = prices.nbytes / 2**20
file_mib = path.stat().st_size / 2**20
print(f"wrote {prices.size:,} ticks in {write_seconds:.2f}s")
print(f"file size : {file_mib:.2f} MiB (raw {raw_mib:.2f} MiB, "
      f"{raw_mib / file_mib:.1f}x smaller)")

reader = api.open(path)
print(f"row-groups: {reader.rowgroup_count}, each with a [min, max] zone map")

# Range query: prices the walk only reaches late in the year.
low, high = float(np.percentile(prices, 99.5)), float(prices.max())
skippable = reader.count_skippable(low, high)
print(f"\nquery: price in [{low:.2f}, {high:.2f}]")
print(f"zone maps skip {skippable}/{reader.rowgroup_count} row-groups "
      "without touching their bytes")

start = time.perf_counter()
matches = 0
for _index, values in reader.scan_range(low, high):
    matches += int(((values >= low) & (values <= high)).sum())
pushdown_seconds = time.perf_counter() - start

start = time.perf_counter()
everything = reader.read_all()
full_matches = int(((everything >= low) & (everything <= high)).sum())
full_seconds = time.perf_counter() - start

assert matches == full_matches
print(f"push-down scan : {pushdown_seconds * 1000:.0f} ms "
      f"({matches:,} matches)")
print(f"full scan      : {full_seconds * 1000:.0f} ms (same answer)")
print(f"speedup        : {full_seconds / max(pushdown_seconds, 1e-9):.1f}x")
