"""The framed wire protocol of :mod:`repro.server`.

One message — request or response — is a single *frame*::

    u32  magic   b"ALPS"
    u32  header length in bytes
    u64  payload length in bytes
    ...  header: UTF-8 JSON object
    ...  payload: raw bytes (may be empty)

The header carries the operation and its parameters (requests) or the
status and result metadata (responses); the payload carries bulk data —
little-endian float64 values for ``scan``/``decompress``, the column
wire encoding (below) for ``compress``.  Frames are strictly bounded:
headers above :data:`MAX_HEADER_BYTES` and payloads above
:data:`MAX_PAYLOAD_BYTES` are rejected before any allocation, so a
malformed or hostile peer cannot balloon the server.

Response headers always contain ``ok`` (bool).  Failures carry
``error`` — one of the :data:`ERROR_CODES` — plus a human-readable
``message``.  ``overloaded`` is the backpressure signal: the request
was *not* admitted and the client may retry later.

Column wire encoding (``compress`` responses / ``decompress`` request
payloads)::

    u32  row-group count
    u32  vector size
    u64  value count
    ...  serialized row-groups, back to back (storage serializer format)

which is the exact on-disk row-group layout of ``docs/FORMAT.md``
without the file header/footer — the server ships columns, not files.
"""

from __future__ import annotations

import json
import struct
from typing import Callable

import numpy as np

from repro.core.compressor import CompressedRowGroups
from repro.storage.serializer import (
    deserialize_rowgroup,
    empty_stats,
    serialize_rowgroup,
)

#: Frame magic; rejects non-protocol peers on the first 4 bytes.
FRAME_MAGIC = b"ALPS"
#: ``magic | header_len | payload_len`` prefix.
_PREFIX = struct.Struct("<4sIQ")
PREFIX_LEN = _PREFIX.size

#: Upper bound on the JSON header of one frame.
MAX_HEADER_BYTES = 64 * 1024
#: Default upper bound on one frame's payload (servers may lower it).
MAX_PAYLOAD_BYTES = 1 << 30

#: Column wire encoding prefix: row-group count, vector size, value count.
_COLUMN_PREFIX = struct.Struct("<IIQ")

# Error codes a response header's ``error`` field may carry.
ERR_BAD_REQUEST = "bad_request"
ERR_NOT_FOUND = "not_found"
ERR_OVERLOADED = "overloaded"
ERR_DEADLINE = "deadline_exceeded"
ERR_TOO_LARGE = "too_large"
ERR_CORRUPT = "corrupt"
ERR_SHUTTING_DOWN = "shutting_down"
ERR_INTERNAL = "internal"

ERROR_CODES = frozenset(
    {
        ERR_BAD_REQUEST,
        ERR_NOT_FOUND,
        ERR_OVERLOADED,
        ERR_DEADLINE,
        ERR_TOO_LARGE,
        ERR_CORRUPT,
        ERR_SHUTTING_DOWN,
        ERR_INTERNAL,
    }
)


class ProtocolError(ValueError):
    """A frame that does not follow the wire format."""


def encode_frame(header: dict[str, object], payload: bytes = b"") -> bytes:
    """Serialize one frame (header dict + raw payload) to bytes."""
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if len(header_bytes) > MAX_HEADER_BYTES:
        raise ProtocolError(
            f"frame header is {len(header_bytes)} bytes "
            f"(limit {MAX_HEADER_BYTES})"
        )
    prefix = _PREFIX.pack(FRAME_MAGIC, len(header_bytes), len(payload))
    return prefix + header_bytes + payload


def parse_prefix(
    prefix: bytes, max_payload: int = MAX_PAYLOAD_BYTES
) -> tuple[int, int]:
    """Validate a frame prefix; returns (header_len, payload_len)."""
    if len(prefix) != PREFIX_LEN:
        raise ProtocolError(
            f"short frame prefix: {len(prefix)} of {PREFIX_LEN} bytes"
        )
    magic, header_len, payload_len = _PREFIX.unpack(prefix)
    if magic != FRAME_MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if header_len == 0 or header_len > MAX_HEADER_BYTES:
        raise ProtocolError(
            f"frame header length {header_len} outside (0, {MAX_HEADER_BYTES}]"
        )
    if payload_len > max_payload:
        raise ProtocolError(
            f"frame payload length {payload_len} exceeds limit {max_payload}"
        )
    return header_len, payload_len


def decode_header(header_bytes: bytes) -> dict[str, object]:
    """Parse a frame's JSON header; must be a JSON object."""
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame header is not JSON: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError("frame header must be a JSON object")
    return header


def read_frame(
    read_exactly: Callable[[int], bytes],
    max_payload: int = MAX_PAYLOAD_BYTES,
) -> tuple[dict[str, object], bytes]:
    """Read one frame via a blocking ``read_exactly(n)`` callable.

    This is the synchronous-side reader (client, tests); the asyncio
    server reads the same layout with ``StreamReader.readexactly``.
    """
    header_len, payload_len = parse_prefix(
        read_exactly(PREFIX_LEN), max_payload
    )
    header = decode_header(read_exactly(header_len))
    payload = read_exactly(payload_len) if payload_len else b""
    return header, payload


def error_frame(
    code: str, message: str, request_id: object = None
) -> bytes:
    """An ``ok=False`` response frame carrying an error code + message."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    header: dict[str, object] = {
        "ok": False,
        "error": code,
        "message": message,
    }
    if request_id is not None:
        header["id"] = request_id
    return encode_frame(header)


def ok_frame(
    fields: dict[str, object] | None = None,
    payload: bytes = b"",
    request_id: object = None,
) -> bytes:
    """An ``ok=True`` response frame with result fields and a payload."""
    header: dict[str, object] = {"ok": True}
    if fields:
        header.update(fields)
    if request_id is not None:
        header["id"] = request_id
    return encode_frame(header, payload)


# -- bulk payload encodings ----------------------------------------------


def values_to_bytes(values: np.ndarray) -> bytes:
    """Little-endian float64 bytes of a value payload."""
    return np.ascontiguousarray(values, dtype="<f8").tobytes()


def values_from_bytes(payload: bytes) -> np.ndarray:
    """Decode a float64 payload (validates the length)."""
    if len(payload) % 8:
        raise ProtocolError(
            f"float64 payload length {len(payload)} is not a multiple of 8"
        )
    return np.frombuffer(payload, dtype="<f8").copy()


def column_to_bytes(column: CompressedRowGroups) -> bytes:
    """Serialize a compressed column to the wire encoding."""
    parts = [
        _COLUMN_PREFIX.pack(
            len(column.rowgroups), column.vector_size, column.count
        )
    ]
    parts.extend(serialize_rowgroup(rg) for rg in column.rowgroups)
    return b"".join(parts)


def column_from_bytes(payload: bytes) -> CompressedRowGroups:
    """Decode the wire encoding back into a compressed column."""
    if len(payload) < _COLUMN_PREFIX.size:
        raise ProtocolError("column payload shorter than its prefix")
    n_rowgroups, vector_size, count = _COLUMN_PREFIX.unpack_from(payload, 0)
    offset = _COLUMN_PREFIX.size
    rowgroups = []
    try:
        for _ in range(n_rowgroups):
            rowgroup, consumed = deserialize_rowgroup(payload, offset)
            rowgroups.append(rowgroup)
            offset += consumed
    except (ValueError, IndexError, KeyError, struct.error) as exc:
        raise ProtocolError(
            f"column payload does not decode: {exc}"
        ) from exc
    if offset != len(payload):
        raise ProtocolError(
            f"column payload has {len(payload) - offset} trailing bytes"
        )
    decoded_count = sum(rg.count for rg in rowgroups)
    if decoded_count != count:
        raise ProtocolError(
            f"column payload count mismatch: prefix says {count}, "
            f"row-groups hold {decoded_count}"
        )
    return CompressedRowGroups(
        rowgroups=tuple(rowgroups),
        count=count,
        vector_size=vector_size,
        stats=empty_stats(),
    )
