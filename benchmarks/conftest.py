"""Shared fixtures for the experiment benches.

Every bench writes its rendered table to ``benchmarks/results/<name>.txt``
(in addition to printing), so results survive pytest's output capture
and can be pasted into EXPERIMENTS.md.

Dataset size per sweep is controlled by ``REPRO_BENCH_N`` (default
60000); the pure-Python XOR baselines dominate the runtime.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def emit(results_dir):
    """Print a report table and persist it under benchmarks/results/."""

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _emit


@pytest.fixture(scope="session")
def dataset_cache():
    """Session-scoped dataset materialization cache."""
    from repro.data import get_dataset

    cache: dict[tuple[str, int], object] = {}

    def _get(name: str, n: int):
        key = (name, n)
        if key not in cache:
            cache[key] = get_dataset(name, n=n)
        return cache[key]

    return _get
