"""Tests for the FastLanes-style interleaved bit-packing layout."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encodings.bitpack import pack_bits
from repro.encodings.transposed import (
    TILE_ORDER,
    TRANSPOSE_INVERSE,
    TRANSPOSE_PERMUTATION,
    pack_bits_transposed,
    transpose_values,
    unpack_bits_transposed,
    untranspose_values,
)


class TestPermutation:
    def test_is_a_permutation(self):
        assert np.array_equal(
            np.sort(TRANSPOSE_PERMUTATION), np.arange(1024)
        )

    def test_inverse_composes_to_identity(self):
        values = np.arange(1024)
        assert np.array_equal(
            untranspose_values(transpose_values(values)), values
        )
        assert np.array_equal(
            TRANSPOSE_PERMUTATION[TRANSPOSE_INVERSE], np.arange(1024)
        )

    def test_tile_order_is_fastlanes(self):
        assert TILE_ORDER == (0, 4, 2, 6, 1, 5, 3, 7)

    def test_first_slots_follow_tile_order(self):
        # Slot 0 starts at tile 0, slot 16 at tile 4 (value 512), etc.
        assert TRANSPOSE_PERMUTATION[0] == 0
        assert TRANSPOSE_PERMUTATION[16] == 4 * 128
        assert TRANSPOSE_PERMUTATION[32] == 2 * 128

    def test_not_identity(self):
        assert not np.array_equal(TRANSPOSE_PERMUTATION, np.arange(1024))


class TestPackUnpack:
    def test_roundtrip_full_vector(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 1 << 17, 1024).astype(np.uint64)
        payload = pack_bits_transposed(values, 17)
        assert np.array_equal(
            unpack_bits_transposed(payload, 17, 1024), values
        )

    def test_same_size_as_sequential(self):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 1 << 9, 1024).astype(np.uint64)
        assert len(pack_bits_transposed(values, 9)) == len(
            pack_bits(values, 9)
        )

    def test_payload_differs_from_sequential(self):
        values = np.arange(1024, dtype=np.uint64)
        assert pack_bits_transposed(values, 10) != pack_bits(values, 10)

    def test_short_vector_falls_back(self):
        values = np.arange(100, dtype=np.uint64)
        payload = pack_bits_transposed(values, 7)
        assert payload == pack_bits(values, 7)
        assert np.array_equal(
            unpack_bits_transposed(payload, 7, 100), values
        )

    def test_wrong_size_transpose_rejected(self):
        with pytest.raises(ValueError):
            transpose_values(np.arange(512))
        with pytest.raises(ValueError):
            untranspose_values(np.arange(2048))

    @given(st.integers(min_value=0, max_value=63), st.randoms(use_true_random=False))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_random_widths(self, width, rnd):
        if width == 0:
            values = np.zeros(1024, dtype=np.uint64)
        else:
            values = np.array(
                [rnd.getrandbits(width) for _ in range(1024)],
                dtype=np.uint64,
            )
        payload = pack_bits_transposed(values, width)
        assert np.array_equal(
            unpack_bits_transposed(payload, width, 1024), values
        )
