"""Exact binary layout for compressed row-groups.

Everything the in-memory dataclasses of :mod:`repro.core` carry is given
a little-endian byte layout here, so columns survive a disk round-trip
bit-exactly.  The format is deliberately simple (length-prefixed
sections, no alignment games): the benchmarks measure the *encodings*,
not the framing.

Layout of one serialized row-group::

    u8   scheme          0 = ALP, 1 = ALP_rd
    u32  value count
    -- ALP --
    u8   candidate count, then (u8 exponent, u8 factor) per candidate
    u16  vector count, then per vector:
         u8 e, u8 f, u16 count,
         i64 ffor reference, u8 ffor bit width, u32 payload len, payload,
         u16 exception count, positions (u16 each), values (f64 each)
    -- ALP_rd --
    u8   right bit width, u8 total bits,
    u8   dictionary size, entries (u16 each),
    u16  vector count, then per vector:
         u16 count, u32 left len, left bytes, u32 right len, right bytes,
         u16 exception count, positions (u16 each), values (u16 each)
"""

from __future__ import annotations

import struct
from typing import Any

import numpy as np

from repro.core.alp import AlpVector
from repro.core.alprd import AlpRdParameters, AlpRdRowGroup, AlpRdVector
from repro.core.compressor import (
    AlpRowGroup,
    CompressedRowGroup,
    CompressionStats,
    FirstLevelResult,
)
from repro.core.sampler import ExponentFactor
from repro.encodings.dictionary import SkewedDictionary
from repro.encodings.ffor import FforEncoded

_SCHEME_ALP = 0
_SCHEME_ALPRD = 1


class ByteWriter:
    """Tiny append-only little-endian struct writer."""

    __slots__ = ("_parts",)

    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def u8(self, value: int) -> None:
        self._parts.append(struct.pack("<B", value))

    def u16(self, value: int) -> None:
        self._parts.append(struct.pack("<H", value))

    def u32(self, value: int) -> None:
        self._parts.append(struct.pack("<I", value))

    def u64(self, value: int) -> None:
        self._parts.append(struct.pack("<Q", value))

    def i64(self, value: int) -> None:
        self._parts.append(struct.pack("<q", value))

    def f64(self, value: float) -> None:
        self._parts.append(struct.pack("<d", value))

    def raw(self, data: bytes) -> None:
        self._parts.append(data)

    def array(self, values: np.ndarray) -> None:
        """Raw dump of a numpy array's little-endian bytes."""
        self._parts.append(np.ascontiguousarray(values).tobytes())

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class ByteReader:
    """Sequential little-endian struct reader over a buffer."""

    __slots__ = ("_buffer", "_pos")

    def __init__(self, buffer: bytes, offset: int = 0) -> None:
        self._buffer = buffer
        self._pos = offset

    def _take(self, fmt: str) -> Any:
        size = struct.calcsize(fmt)
        value = struct.unpack_from(fmt, self._buffer, self._pos)[0]
        self._pos += size
        return value

    def u8(self) -> int:
        return self._take("<B")

    def u16(self) -> int:
        return self._take("<H")

    def u32(self) -> int:
        return self._take("<I")

    def u64(self) -> int:
        return self._take("<Q")

    def i64(self) -> int:
        return self._take("<q")

    def f64(self) -> float:
        return self._take("<d")

    def raw(self, size: int) -> bytes:
        data = self._buffer[self._pos : self._pos + size]
        if len(data) != size:
            raise ValueError("truncated buffer")
        self._pos += size
        return data

    def array(self, dtype: np.dtype, count: int) -> np.ndarray:
        dtype = np.dtype(dtype)
        data = self.raw(dtype.itemsize * count)
        return np.frombuffer(data, dtype=dtype).copy()

    @property
    def position(self) -> int:
        return self._pos


def _write_ffor(w: ByteWriter, ffor: FforEncoded) -> None:
    w.i64(ffor.reference)
    w.u8(ffor.bit_width)
    w.u32(len(ffor.payload))
    w.raw(ffor.payload)
    w.u32(ffor.count)


def _read_ffor(r: ByteReader) -> FforEncoded:
    reference = r.i64()
    bit_width = r.u8()
    payload = r.raw(r.u32())
    count = r.u32()
    return FforEncoded(
        payload=payload, reference=reference, bit_width=bit_width, count=count
    )


def _write_alp_vector(w: ByteWriter, vector: AlpVector) -> None:
    w.u8(vector.exponent)
    w.u8(vector.factor)
    w.u16(vector.count)
    _write_ffor(w, vector.ffor)
    w.u16(vector.exc_positions.size)
    w.array(vector.exc_positions.astype("<u2"))
    w.array(vector.exc_values.astype("<f8"))


def _read_alp_vector(r: ByteReader) -> AlpVector:
    exponent = r.u8()
    factor = r.u8()
    count = r.u16()
    ffor = _read_ffor(r)
    n_exc = r.u16()
    exc_positions = r.array(np.dtype("<u2"), n_exc).astype(np.uint16)
    exc_values = r.array(np.dtype("<f8"), n_exc).astype(np.float64)
    return AlpVector(
        ffor=ffor,
        exponent=exponent,
        factor=factor,
        exc_values=exc_values,
        exc_positions=exc_positions,
        count=count,
    )


def _write_rd_vector(w: ByteWriter, vector: AlpRdVector) -> None:
    w.u16(vector.count)
    w.u32(len(vector.left_payload))
    w.raw(vector.left_payload)
    w.u32(len(vector.right_payload))
    w.raw(vector.right_payload)
    w.u16(vector.exc_positions.size)
    w.array(vector.exc_positions.astype("<u2"))
    w.array(vector.exc_values.astype("<u2"))


def _read_rd_vector(r: ByteReader) -> AlpRdVector:
    count = r.u16()
    left = r.raw(r.u32())
    right = r.raw(r.u32())
    n_exc = r.u16()
    exc_positions = r.array(np.dtype("<u2"), n_exc).astype(np.uint16)
    exc_values = r.array(np.dtype("<u2"), n_exc).astype(np.uint16)
    return AlpRdVector(
        left_payload=left,
        right_payload=right,
        exc_positions=exc_positions,
        exc_values=exc_values,
        count=count,
    )


def serialize_rowgroup(rowgroup: CompressedRowGroup) -> bytes:
    """Serialize one compressed row-group to bytes."""
    w = ByteWriter()
    if rowgroup.alp is not None:
        w.u8(_SCHEME_ALP)
        w.u32(rowgroup.count)
        alp = rowgroup.alp
        w.u8(len(alp.candidates))
        for candidate in alp.candidates:
            w.u8(candidate.exponent)
            w.u8(candidate.factor)
        w.u16(len(alp.vectors))
        for vector in alp.vectors:
            _write_alp_vector(w, vector)
    else:
        if rowgroup.rd is None:
            raise ValueError("row-group has neither ALP nor ALP_rd payload")
        rd = rowgroup.rd
        w.u8(_SCHEME_ALPRD)
        w.u32(rowgroup.count)
        w.u8(rd.parameters.right_bit_width)
        w.u8(rd.parameters.total_bits)
        entries = rd.parameters.dictionary.entries
        w.u8(entries.size)
        w.array(entries.astype("<u2"))
        w.u16(len(rd.vectors))
        for vector in rd.vectors:
            _write_rd_vector(w, vector)
    return w.getvalue()


def deserialize_rowgroup(
    buffer: bytes, offset: int = 0
) -> tuple[CompressedRowGroup, int]:
    """Deserialize one row-group; returns (row-group, bytes consumed).

    Compression-time sampling statistics are not stored (they describe
    the act of compressing, not the data), so the deserialized row-group
    carries a placeholder :class:`FirstLevelResult`.
    """
    r = ByteReader(buffer, offset)
    scheme = r.u8()
    count = r.u32()
    if scheme == _SCHEME_ALP:
        n_candidates = r.u8()
        candidates = tuple(
            ExponentFactor(r.u8(), r.u8()) for _ in range(n_candidates)
        )
        n_vectors = r.u16()
        vectors = tuple(_read_alp_vector(r) for _ in range(n_vectors))
        alp = AlpRowGroup(vectors=vectors, candidates=candidates, count=count)
        rowgroup = CompressedRowGroup(
            alp=alp,
            rd=None,
            first_level=FirstLevelResult(
                candidates=candidates,
                use_rd=False,
                best_estimated_bits_per_value=0.0,
            ),
            count=count,
        )
    elif scheme == _SCHEME_ALPRD:
        right_bit_width = r.u8()
        total_bits = r.u8()
        n_entries = r.u8()
        entries = r.array(np.dtype("<u2"), n_entries).astype(np.uint16)
        width = max(int(entries.size - 1).bit_length(), 0)
        parameters = AlpRdParameters(
            right_bit_width=right_bit_width,
            dictionary=SkewedDictionary(entries=entries, code_width=width),
            total_bits=total_bits,
        )
        n_vectors = r.u16()
        vectors = tuple(_read_rd_vector(r) for _ in range(n_vectors))
        rd = AlpRdRowGroup(parameters=parameters, vectors=vectors, count=count)
        rowgroup = CompressedRowGroup(
            alp=None,
            rd=rd,
            first_level=FirstLevelResult(
                candidates=(ExponentFactor(0, 0),),
                use_rd=True,
                best_estimated_bits_per_value=0.0,
            ),
            count=count,
        )
    else:
        raise ValueError(f"unknown scheme tag {scheme}")
    return rowgroup, r.position - offset


def empty_stats() -> CompressionStats:
    """Placeholder stats for deserialized columns."""
    return CompressionStats()
