"""Lightweight numpy integer-dtype inference over the AST.

This is *not* a type checker: it is a forward, intraprocedural dataflow
pass that tracks the integer kind/width of expressions whose dtype is
syntactically evident — ``np.uint64(x)``, ``arr.view(np.int64)``,
``np.zeros(n, dtype=np.uint16)``, names assigned from such expressions,
and arithmetic that propagates a known kind.  Anything else is
``None`` ("unknown"), and rules only fire when *both* sides of a
suspicious operation are known — so the pass trades recall for a
near-zero false-positive rate, which is what makes RL1 enforceable.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass


@dataclass(frozen=True)
class IntKind:
    """An inferred numpy integer dtype: kind ('i'/'u') and bit width."""

    kind: str
    width: int

    def __str__(self) -> str:
        return f"{'u' if self.kind == 'u' else ''}int{self.width}"


#: numpy constructor / attribute names to (kind, width).
_NP_INT_NAMES: dict[str, IntKind] = {
    "int8": IntKind("i", 8),
    "int16": IntKind("i", 16),
    "int32": IntKind("i", 32),
    "int64": IntKind("i", 64),
    "intp": IntKind("i", 64),
    "uint8": IntKind("u", 8),
    "uint16": IntKind("u", 16),
    "uint32": IntKind("u", 32),
    "uint64": IntKind("u", 64),
}

#: dtype string codes like ">u8", "<i4", "u2" (numpy char + item size).
_DTYPE_STR_RE = re.compile(r"^[<>=|]?(?P<kind>[iu])(?P<bytes>[1248])$")

#: Array-returning numpy constructors whose ``dtype=`` kw names the dtype.
_DTYPE_KW_CALLS = {
    "asarray",
    "ascontiguousarray",
    "array",
    "zeros",
    "empty",
    "full",
    "arange",
    "frombuffer",
    "fromiter",
    "full_like",
    "zeros_like",
    "empty_like",
    "linspace",
}


def _is_np(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id in ("np", "numpy")


def dtype_of_node(node: ast.expr) -> IntKind | None:
    """Dtype named by an expression used *as a dtype* (``np.uint64``,
    ``"<u2"``, ``np.dtype(np.uint8)``)."""
    if isinstance(node, ast.Attribute) and _is_np(node.value):
        return _NP_INT_NAMES.get(node.attr)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        match = _DTYPE_STR_RE.match(node.value)
        if match:
            return IntKind(match.group("kind"), int(match.group("bytes")) * 8)
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "dtype"
        and _is_np(node.func.value)
        and node.args
    ):
        return dtype_of_node(node.args[0])
    return None


def _dtype_kw(call: ast.Call) -> IntKind | None:
    for keyword in call.keywords:
        if keyword.arg == "dtype":
            return dtype_of_node(keyword.value)
    return None


class Env:
    """Name -> inferred :class:`IntKind` within one function scope."""

    def __init__(self) -> None:
        self.names: dict[str, IntKind | None] = {}
        #: Name -> the AST expression it was last assigned from, used by
        #: rules that need to look *through* a local (e.g. shift masks).
        self.sources: dict[str, ast.expr] = {}

    def assign(self, target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.names[target.id] = infer(value, self)
            self.sources[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    self.names[element.id] = None
                    self.sources.pop(element.id, None)


def infer(node: ast.expr, env: Env) -> IntKind | None:
    """Best-effort integer dtype of ``node`` (None when unknown)."""
    if isinstance(node, ast.Name):
        return env.names.get(node.id)
    if isinstance(node, ast.Call):
        return _infer_call(node, env)
    if isinstance(node, ast.BinOp):
        left = infer(node.left, env)
        if isinstance(node.op, (ast.LShift, ast.RShift)):
            return left
        right = infer(node.right, env)
        if left is not None and right is not None:
            if left.kind == right.kind:
                return left if left.width >= right.width else right
            return None  # mixed-kind promotion — RL1's business, not ours
        return left if left is not None else right
    if isinstance(node, ast.UnaryOp):
        return infer(node.operand, env)
    if isinstance(node, ast.Subscript):
        # Indexing/slicing an array keeps its dtype; constant-table
        # subscripts (F10[e]) resolve to None via the Name lookup.
        return infer(node.value, env)
    if isinstance(node, ast.IfExp):
        body = infer(node.body, env)
        orelse = infer(node.orelse, env)
        return body if body == orelse else None
    return None


def _infer_call(node: ast.Call, env: Env) -> IntKind | None:
    func = node.func
    if isinstance(func, ast.Attribute):
        # np.uint64(x) and friends.
        if _is_np(func.value) and func.attr in _NP_INT_NAMES:
            return _NP_INT_NAMES[func.attr]
        # arr.view(np.uint64) / arr.astype(np.int64) / arr.astype("<u2").
        if func.attr in ("view", "astype") and node.args:
            return dtype_of_node(node.args[0])
        # np.asarray(x, dtype=...), np.zeros(n, dtype=...), ...
        if _is_np(func.value) and func.attr in _DTYPE_KW_CALLS:
            return _dtype_kw(node)
        # arr.copy() / np.abs(arr) etc. keep the dtype of their input.
        if func.attr in ("copy", "ravel", "reshape", "flatten"):
            return infer(func.value, env)
    return None


def resolve(node: ast.expr, env: Env, depth: int = 3) -> ast.expr:
    """Follow ``Name`` nodes to their assigned expression (bounded)."""
    while depth > 0 and isinstance(node, ast.Name):
        source = env.sources.get(node.id)
        if source is None:
            return node
        node = source
        depth -= 1
    return node
