"""Wire-format tests: frames, bounds, and the column wire encoding."""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.core.compressor import compress, decompress
from repro.server import protocol


def _read_frame_from_bytes(data: bytes, **kwargs):
    view = memoryview(data)
    offset = 0

    def read_exactly(n: int) -> bytes:
        nonlocal offset
        chunk = bytes(view[offset : offset + n])
        offset += n
        return chunk

    return protocol.read_frame(read_exactly, **kwargs)


class TestFrames:
    def test_roundtrip(self):
        header = {"op": "scan", "dataset": "d", "id": 7}
        payload = b"\x01\x02\x03"
        got_header, got_payload = _read_frame_from_bytes(
            protocol.encode_frame(header, payload)
        )
        assert got_header == header
        assert got_payload == payload

    def test_empty_payload(self):
        frame = protocol.encode_frame({"op": "ping"})
        header, payload = _read_frame_from_bytes(frame)
        assert header == {"op": "ping"}
        assert payload == b""

    def test_bad_magic_rejected(self):
        frame = bytearray(protocol.encode_frame({"op": "ping"}))
        frame[:4] = b"XXXX"
        with pytest.raises(protocol.ProtocolError, match="magic"):
            _read_frame_from_bytes(bytes(frame))

    def test_oversized_header_rejected_on_encode(self):
        with pytest.raises(protocol.ProtocolError, match="header"):
            protocol.encode_frame({"blob": "x" * protocol.MAX_HEADER_BYTES})

    def test_oversized_payload_rejected_before_read(self):
        prefix = struct.Struct("<4sIQ").pack(
            protocol.FRAME_MAGIC, 10, protocol.MAX_PAYLOAD_BYTES + 1
        )
        with pytest.raises(protocol.ProtocolError, match="payload"):
            protocol.parse_prefix(prefix)

    def test_lowered_payload_bound_applies(self):
        frame = protocol.encode_frame({"op": "x"}, b"a" * 100)
        with pytest.raises(protocol.ProtocolError, match="payload"):
            _read_frame_from_bytes(frame, max_payload=50)

    def test_non_object_header_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="object"):
            protocol.decode_header(b"[1, 2]")

    def test_non_json_header_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="JSON"):
            protocol.decode_header(b"\xff\xfe")

    def test_error_frame_shape(self):
        frame = protocol.error_frame(
            protocol.ERR_OVERLOADED, "busy", request_id=3
        )
        header, payload = _read_frame_from_bytes(frame)
        assert header == {
            "ok": False,
            "error": "overloaded",
            "message": "busy",
            "id": 3,
        }
        assert payload == b""

    def test_error_frame_rejects_unknown_code(self):
        with pytest.raises(ValueError, match="unknown error code"):
            protocol.error_frame("nope", "x")

    def test_ok_frame_shape(self):
        frame = protocol.ok_frame({"count": 5}, b"pp", request_id=9)
        header, payload = _read_frame_from_bytes(frame)
        assert header == {"ok": True, "count": 5, "id": 9}
        assert payload == b"pp"


class TestValuePayloads:
    def test_roundtrip_bitexact(self):
        values = np.array(
            [0.1, -0.0, np.nan, np.inf, -np.inf, 1e300], dtype=np.float64
        )
        back = protocol.values_from_bytes(protocol.values_to_bytes(values))
        assert np.array_equal(back.view(np.uint64), values.view(np.uint64))

    def test_ragged_length_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="multiple of 8"):
            protocol.values_from_bytes(b"\x00" * 11)

    def test_result_is_writable_copy(self):
        values = np.arange(4, dtype=np.float64)
        back = protocol.values_from_bytes(protocol.values_to_bytes(values))
        back[0] = 99.0  # must not raise: decoupled from the buffer


class TestColumnWire:
    def _column(self, n=10_000, seed=0):
        rng = np.random.default_rng(seed)
        values = np.round(rng.normal(50, 9, n), 2)
        return values, compress(values, vector_size=256)

    def test_roundtrip_bitexact(self):
        values, column = self._column()
        back = protocol.column_from_bytes(protocol.column_to_bytes(column))
        assert back.count == column.count
        assert back.vector_size == column.vector_size
        restored = decompress(back)
        assert np.array_equal(
            restored.view(np.uint64), values.view(np.uint64)
        )

    def test_trailing_bytes_rejected(self):
        _, column = self._column(2_000)
        wire = protocol.column_to_bytes(column) + b"\x00"
        with pytest.raises(protocol.ProtocolError, match="trailing"):
            protocol.column_from_bytes(wire)

    def test_truncated_rejected(self):
        _, column = self._column(2_000)
        wire = protocol.column_to_bytes(column)
        with pytest.raises(protocol.ProtocolError):
            protocol.column_from_bytes(wire[: len(wire) // 2])

    def test_count_mismatch_rejected(self):
        _, column = self._column(2_000)
        wire = bytearray(protocol.column_to_bytes(column))
        # Corrupt the value-count field of the column prefix.
        struct.pack_into("<Q", wire, 8, column.count + 1)
        with pytest.raises(protocol.ProtocolError, match="count mismatch"):
            protocol.column_from_bytes(bytes(wire))

    def test_short_prefix_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="prefix"):
            protocol.column_from_bytes(b"\x01\x02")


class TestProjectionNegotiation:
    """Versioned negotiation of the v4 ``columns`` projection field.

    Old clients never send ``columns``; their requests must produce
    response frames *byte-identical* to the pre-projection protocol —
    same field set, same payload, no schema echo.  New clients opt in
    by sending ``columns`` and get the schema echo back.
    """

    @pytest.fixture()
    def ops_and_values(self, tmp_path):
        from repro import api
        from repro.server.ops import build_ops
        from repro.server.registry import DatasetRegistry

        rng = np.random.default_rng(11)
        n = 8_192
        ts = np.cumsum(rng.random(n))
        value = np.round(rng.normal(20, 5, n), 2)
        api.write_table(tmp_path / "t.alpc", {"ts": ts, "value": value})
        registry = DatasetRegistry()
        registry.register_file(tmp_path / "t.alpc", name="t")
        return build_ops(registry), {"ts": ts, "value": value}

    def test_old_header_answered_byte_identically(self, ops_and_values):
        ops, columns = ops_and_values
        result = ops["scan"](
            {"op": "scan", "dataset": "t", "column": "value"}, b""
        )
        # The exact pre-projection response frame, byte for byte.
        expected = protocol.ok_frame(
            {
                "count": len(columns["value"]),
                "rowgroups_quarantined": 0,
                "values_quarantined": 0,
            },
            protocol.values_to_bytes(columns["value"]),
            request_id=1,
        )
        got = protocol.ok_frame(result.fields, result.payload, request_id=1)
        assert got == expected
        assert "schema" not in result.fields

    def test_columns_header_gets_schema_echo(self, ops_and_values):
        ops, columns = ops_and_values
        result = ops["scan"](
            {"op": "scan", "dataset": "t", "columns": ["value", "ts"]}, b""
        )
        assert result.fields["schema"] == [
            {"name": "value", "type": "float64", "nullable": False},
            {"name": "ts", "type": "float64", "nullable": False},
        ]
        n = len(columns["ts"])
        assert result.fields["counts"] == [n, n]
        values = protocol.values_from_bytes(result.payload)
        assert np.array_equal(values[:n], columns["value"])
        assert np.array_equal(values[n:], columns["ts"])

    def test_column_and_columns_are_exclusive(self, ops_and_values):
        from repro.server.ops import OpError

        ops, _ = ops_and_values
        with pytest.raises(OpError) as err:
            ops["scan"](
                {
                    "op": "scan",
                    "dataset": "t",
                    "column": "value",
                    "columns": ["ts"],
                },
                b"",
            )
        assert err.value.code == protocol.ERR_BAD_REQUEST
