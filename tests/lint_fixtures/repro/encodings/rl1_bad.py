"""Seeded RL1 violations — a lint fixture, never imported.

The path under ``lint_fixtures`` mirrors ``src/``, so the engine scopes
this file as ``repro/encodings/rl1_bad.py`` and the dtype rules fire.
"""

import numpy as np


def mixed_arithmetic(values):
    signed = np.asarray(values, dtype=np.int64)
    unsigned = np.asarray(values, dtype=np.uint64)
    return signed + unsigned


def unexplained_narrowing(values):
    return values.astype(np.uint16)


def wrapping_cast(values):
    signed = np.asarray(values, dtype=np.int64)
    return signed.astype(np.uint64)


def full_width_shift():
    return np.uint64(1) << np.uint64(64)
