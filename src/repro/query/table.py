"""Multi-column compressed tables with late materialization.

The engine's single-column operators cover the paper's SCAN/SUM
benchmarks; real analytical queries touch several columns.  A
:class:`CompressedTable` holds one compressed column source per name and
executes filtered aggregations with *late materialization*: the filter
column decodes vector by vector, produces selection masks, and payload
columns only materialize the selected positions — vectors whose mask is
empty are decoded lazily (or, for ALP sources, not at all).

This is the query-processing pattern that vector-granular compressed
storage enables and block-based compression defeats, i.e. the systems
argument of the paper's introduction made executable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.query.sources import ColumnSource, make_source


@dataclass(frozen=True)
class FilterPredicate:
    """A range predicate on one column: ``low <= value <= high``."""

    column: str
    low: float
    high: float

    def mask(self, values: np.ndarray) -> np.ndarray:
        """Boolean selection mask for one vector."""
        return (values >= self.low) & (values <= self.high)


class CompressedTable:
    """A set of equally-long compressed columns, queryable vector-wise."""

    def __init__(self, columns: dict[str, ColumnSource]) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        counts = {name: source.value_count for name, source in columns.items()}
        if len(set(counts.values())) != 1:
            raise ValueError(f"column lengths differ: {counts}")
        self._columns = dict(columns)

    @classmethod
    def from_arrays(
        cls,
        arrays: dict[str, np.ndarray],
        codec: str = "alp",
    ) -> "CompressedTable":
        """Compress a dict of float64 arrays into a table."""
        return cls(
            {name: make_source(codec, values) for name, values in arrays.items()}
        )

    @property
    def column_names(self) -> tuple[str, ...]:
        """Names of the table's columns."""
        return tuple(self._columns)

    @property
    def row_count(self) -> int:
        """Number of rows."""
        return next(iter(self._columns.values())).value_count

    def column(self, name: str) -> ColumnSource:
        """Access one column's source."""
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"unknown column {name!r}; have {sorted(self._columns)}"
            ) from None

    def compressed_bits(self) -> int:
        """Total compressed footprint of all columns."""
        return sum(source.compressed_bits for source in self._columns.values())

    def scan(
        self,
        columns: list[str],
        predicate: FilterPredicate | None = None,
    ) -> Iterator[dict[str, np.ndarray]]:
        """Yield vector-wise batches of the selected columns.

        With a predicate, the filter column drives: its vector decodes
        first, the mask compacts every projected column, and batches with
        no qualifying rows are skipped without materializing the payload
        columns — late materialization.
        """
        for name in columns:
            self.column(name)  # validate upfront

        if predicate is None:
            iterators = {name: self.column(name).vectors() for name in columns}
            while True:
                batch = {}
                for name, it in iterators.items():
                    vector = next(it, None)
                    if vector is None:
                        return
                    batch[name] = vector
                yield batch
            return

        filter_iter = self.column(predicate.column).vectors()
        payload_names = [n for n in columns if n != predicate.column]
        payload_iters = {
            name: self.column(name).vectors() for name in payload_names
        }
        for filter_vector in filter_iter:
            mask = predicate.mask(filter_vector)
            if not mask.any():
                # Advance payload cursors without materializing results.
                for it in payload_iters.values():
                    next(it, None)
                continue
            batch = {}
            if predicate.column in columns:
                batch[predicate.column] = filter_vector[mask]
            for name, it in payload_iters.items():
                payload_vector = next(it, None)
                if payload_vector is None:
                    return
                batch[name] = payload_vector[mask]
            yield batch

    def aggregate(
        self,
        column: str,
        kind: str = "sum",
        predicate: FilterPredicate | None = None,
    ) -> float:
        """Filtered aggregate of one column: sum / count / min / max."""
        reducers: dict[str, Callable[[float, np.ndarray], float]] = {
            "sum": lambda acc, v: acc + float(v.sum()),
            "count": lambda acc, v: acc + v.size,
            "min": lambda acc, v: min(acc, float(v.min())) if v.size else acc,
            "max": lambda acc, v: max(acc, float(v.max())) if v.size else acc,
        }
        initial = {
            "sum": 0.0,
            "count": 0.0,
            "min": float("inf"),
            "max": float("-inf"),
        }
        if kind not in reducers:
            raise ValueError(f"unknown aggregate {kind!r}")
        accumulator = initial[kind]
        reducer = reducers[kind]
        for batch in self.scan([column], predicate=predicate):
            accumulator = reducer(accumulator, batch[column])
        return accumulator
