"""RL2 — hot-loop rule: no per-value Python loops in the hot kernels.

PR 2 made the packing/encoding kernels word-parallel; a per-value Python
``for``/``while`` loop sneaking back into ``bitpack`` / ``ffor`` /
``alp`` / ``sampler`` / ``alprd`` would regress throughput by two orders
of magnitude without failing any correctness test.  RL2 flags, inside
those modules:

- every ``while`` statement;
- ``for`` loops whose iterable is ``something.tolist()`` (the classic
  "iterate the array in Python" pattern) or a 1/2-argument ``range()``
  over a data-sized bound (``len(...)``, ``.size``, ``.shape``).

Pinned equivalence/reference implementations are exempt: any function
whose name ends in ``_reference``, ``_bitmatrix``, ``_loop`` or
``_scalar`` is a deliberate scalar oracle kept for differential testing.
Three-argument ``range(start, stop, step)`` loops are allowed — they are
chunk/block loops, not per-value loops.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Rule, Violation

#: Modules whose loops are performance-critical.
_HOT_BASENAMES = {"bitpack.py", "ffor.py", "alp.py", "sampler.py", "alprd.py"}

#: Function-name suffixes marking pinned scalar oracles.
_PINNED_SUFFIXES = ("_reference", "_bitmatrix", "_loop", "_scalar")

#: Attribute/function names that make a ``range()`` bound data-sized.
_SIZE_MARKERS = {"size", "shape", "count"}


def _is_pinned(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return func.name.endswith(_PINNED_SUFFIXES)


def _mentions_data_size(node: ast.expr) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute) and child.attr in _SIZE_MARKERS:
            return True
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Name)
            and child.func.id == "len"
        ):
            return True
    return False


def _per_value_iter(iter_node: ast.expr) -> str | None:
    """A human-readable reason if ``iter_node`` iterates per value."""
    for child in ast.walk(iter_node):
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Attribute)
            and child.func.attr == "tolist"
        ):
            return "iterates an array via .tolist()"
    if (
        isinstance(iter_node, ast.Call)
        and isinstance(iter_node.func, ast.Name)
        and iter_node.func.id == "range"
        and len(iter_node.args) <= 2
        and any(_mentions_data_size(arg) for arg in iter_node.args)
    ):
        return "ranges over a data-sized bound"
    return None


class HotLoopRule(Rule):
    """RL2: per-value Python loops inside the hot kernel modules."""

    code = "RL2"
    name = "hot-loop"
    description = (
        "per-value for/while loops in hot modules (bitpack, ffor, alp, "
        "sampler, alprd) outside pinned *_reference/*_bitmatrix/"
        "*_loop/*_scalar oracles"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return (
            bool(ctx.effective)
            and ctx.effective[0] == "repro"
            and ctx.basename in _HOT_BASENAMES
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        yield from self._walk(ctx, ctx.tree.body)

    def _walk(
        self, ctx: FileContext, body: list[ast.stmt]
    ) -> Iterator[Violation]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not _is_pinned(stmt):
                    yield from self._walk(ctx, stmt.body)
                continue
            if isinstance(stmt, ast.While):
                yield self.violation(
                    ctx,
                    stmt,
                    "while loop in a hot module; vectorize it or move it "
                    "to a pinned *_reference oracle",
                )
            elif isinstance(stmt, ast.For):
                reason = _per_value_iter(stmt.iter)
                if reason is not None:
                    yield self.violation(
                        ctx,
                        stmt,
                        f"per-value for loop in a hot module ({reason}); "
                        "vectorize it or move it to a pinned *_reference "
                        "oracle",
                    )
            for child_body in _child_bodies(stmt):
                yield from self._walk(ctx, child_body)


def _child_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
    bodies: list[list[ast.stmt]] = []
    for field_name in ("body", "orelse", "finalbody"):
        value = getattr(stmt, field_name, None)
        if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
            bodies.append(value)
    for handler in getattr(stmt, "handlers", []) or []:
        bodies.append(handler.body)
    return bodies
