"""Columnar storage: serialization and a skippable column-file format.

The paper's central systems argument for lightweight encodings is that —
unlike block-based general-purpose compression — one can *skip through*
compressed data at vector granularity, enabling predicate push-down in
scans.  This subpackage makes that concrete:

- :mod:`repro.storage.serializer` — byte-level (de)serialization of
  compressed row-groups (every dataclass in :mod:`repro.core` has an
  exact binary layout here),
- :mod:`repro.storage.columnfile` — an on-disk column format with
  per-row-group and per-vector zone maps, offset indexes, and a scan
  API that skips non-qualifying row-groups/vectors without touching
  (let alone decompressing) their bytes.
"""

from repro.storage.dataset_dir import DatasetReader, write_dataset
from repro.storage.columnfile import (
    ColumnFileReader,
    ColumnFileWriter,
    RowGroupMeta,
    VectorZone,
    read_column_file,
    write_column_file,
)
from repro.storage.serializer import (
    deserialize_rowgroup,
    serialize_rowgroup,
)
from repro.storage.serializer_f32 import (
    deserialize_float_column,
    serialize_float_column,
)

__all__ = [
    "ColumnFileReader",
    "ColumnFileWriter",
    "DatasetReader",
    "RowGroupMeta",
    "VectorZone",
    "deserialize_float_column",
    "deserialize_rowgroup",
    "read_column_file",
    "serialize_float_column",
    "serialize_rowgroup",
    "write_column_file",
    "write_dataset",
]
