"""Synchronous request handlers: the work the event loop never does.

Every op that decodes, compresses or touches storage is *blocking* work,
so the asyncio service dispatches these handlers to its worker thread
pool (``run_in_executor``) — the event loop only frames bytes and
schedules.  That split is enforced statically: reprolint RL6 flags
blocking calls inside ``async def`` bodies under ``repro/server/``.

Handlers receive the decoded request header and raw payload and return
an :class:`OpResult` (response header fields + response payload).
Anticipated failures raise :class:`OpError` with a protocol error code;
anything else becomes an ``internal`` error frame in the service layer.

The query ops go through the same engine the local benchmarks use
(:func:`repro.query.engine.sum_query` / :func:`range_sum_query` /
:func:`comp_query` over a :class:`~repro.query.sources.FileColumnSource`),
so served numbers and local numbers come from one code path — including
the encoded-domain fast paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro import api
from repro.query.engine import comp_query, range_sum_query, sum_query
from repro.server import protocol
from repro.server.registry import DatasetRegistry, ServedColumn
from repro.storage.errors import IntegrityError


class OpError(Exception):
    """An anticipated failure, mapped to a protocol error frame."""

    def __init__(self, code: str, message: str) -> None:
        if code not in protocol.ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message


@dataclass(frozen=True)
class OpResult:
    """One successful response: header fields plus a raw payload."""

    fields: dict[str, object] = field(default_factory=dict)
    payload: bytes = b""


#: An op handler: (request header, request payload) -> OpResult.
OpHandler = Callable[[dict[str, object], bytes], OpResult]


def _require_str(header: dict[str, object], key: str) -> str:
    value = header.get(key)
    if not isinstance(value, str) or not value:
        raise OpError(
            protocol.ERR_BAD_REQUEST,
            f"request field {key!r} must be a non-empty string",
        )
    return value


def _optional_str(header: dict[str, object], key: str) -> str | None:
    value = header.get(key)
    if value is None:
        return None
    if not isinstance(value, str):
        raise OpError(
            protocol.ERR_BAD_REQUEST,
            f"request field {key!r} must be a string",
        )
    return value


def _columns_projection(header: dict[str, object]) -> list[str] | None:
    """The optional ``columns`` projection field of a request header.

    ``None`` when absent — the caller must then answer exactly as the
    pre-projection protocol did, so old clients see byte-identical
    responses.
    """
    value = header.get("columns")
    if value is None:
        return None
    if (
        not isinstance(value, list)
        or not value
        or not all(isinstance(c, str) and c for c in value)
    ):
        raise OpError(
            protocol.ERR_BAD_REQUEST,
            "request field 'columns' must be a non-empty list of "
            "column names",
        )
    if len(set(value)) != len(value):
        raise OpError(
            protocol.ERR_BAD_REQUEST,
            f"duplicate names in 'columns': {value}",
        )
    return value


def _rowgroup_range(
    header: dict[str, object], served: ServedColumn
) -> tuple[int, int] | None:
    """The optional ``rowgroups`` partition field: ``[start, stop)``.

    The shard router scopes each backend request to one partition with
    this field; requests without it keep the whole-column semantics of
    the pre-sharding protocol.
    """
    value = header.get("rowgroups")
    if value is None:
        return None
    if (
        not isinstance(value, list)
        or len(value) != 2
        or not all(
            isinstance(v, int) and not isinstance(v, bool) for v in value
        )
    ):
        raise OpError(
            protocol.ERR_BAD_REQUEST,
            "request field 'rowgroups' must be a [start, stop) pair of "
            "row-group indexes",
        )
    start, stop = int(value[0]), int(value[1])
    count = served.reader.rowgroup_count
    if not (0 <= start < stop <= count):
        raise OpError(
            protocol.ERR_BAD_REQUEST,
            f"row-group range [{start}, {stop}) outside the column's "
            f"[0, {count})",
        )
    return start, stop


def _range_bounds(
    header: dict[str, object],
) -> tuple[float, float] | None:
    low, high = header.get("low"), header.get("high")
    if low is None and high is None:
        return None
    if low is None or high is None:
        raise OpError(
            protocol.ERR_BAD_REQUEST,
            "range queries need both 'low' and 'high'",
        )
    for name, value in (("low", low), ("high", high)):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise OpError(
                protocol.ERR_BAD_REQUEST,
                f"request field {name!r} must be a number",
            )
    return float(low), float(high)


def _resolve(
    registry: DatasetRegistry, header: dict[str, object]
) -> ServedColumn:
    dataset = _require_str(header, "dataset")
    column = _optional_str(header, "column")
    try:
        return registry.column(dataset, column)
    except KeyError as exc:
        raise OpError(protocol.ERR_NOT_FOUND, str(exc.args[0])) from exc


def _quarantine_fields(served: ServedColumn) -> dict[str, object]:
    report = served.scan_report()
    return {
        "rowgroups_quarantined": report.rowgroups_quarantined,
        "values_quarantined": report.values_quarantined,
    }


def build_ops(
    registry: DatasetRegistry,
    options: api.CompressionOptions | None = None,
) -> dict[str, OpHandler]:
    """The op table of one server: name -> synchronous handler."""
    opts = options or api.CompressionOptions()

    def op_ping(header: dict[str, object], payload: bytes) -> OpResult:
        return OpResult(fields={"pong": True})

    def op_datasets(header: dict[str, object], payload: bytes) -> OpResult:
        return OpResult(fields={"datasets": registry.describe()})

    def op_scan(header: dict[str, object], payload: bytes) -> OpResult:
        names = _columns_projection(header)
        if names is None:
            # Pre-projection request shape: the response must stay
            # byte-identical for old clients — same fields, no schema
            # echo (tests/test_server_protocol.py pins this).
            served = _resolve(registry, header)
            bounds = _range_bounds(header)
            rowgroups = _rowgroup_range(header, served)
            # scan_payload owns the buffer lifecycle: full-column scans
            # decode into a pooled target and release it once the
            # response bytes exist, so steady state allocates nothing
            # per request beyond the serialized frame itself.
            body, count = served.scan_payload(bounds, rowgroups)
            fields: dict[str, object] = {"count": count}
            fields.update(_quarantine_fields(served))
            return OpResult(fields=fields, payload=body)
        if header.get("column") is not None:
            raise OpError(
                protocol.ERR_BAD_REQUEST,
                "'column' and 'columns' are mutually exclusive",
            )
        dataset = _require_str(header, "dataset")
        bounds = _range_bounds(header)
        if bounds is not None and len(names) != 1:
            raise OpError(
                protocol.ERR_BAD_REQUEST,
                "range bounds apply to a single projected column",
            )
        try:
            schema = registry.schema(dataset)
            projected = [registry.column(dataset, name) for name in names]
        except KeyError as exc:
            raise OpError(
                protocol.ERR_NOT_FOUND, str(exc.args[0])
            ) from exc
        rowgroups = _rowgroup_range(header, projected[0])
        blocks: list[bytes] = []
        counts: list[int] = []
        for served in projected:
            body, count = served.scan_payload(bounds, rowgroups)
            blocks.append(body)
            counts.append(count)
        reports = [served.scan_report() for served in projected]
        fields = {
            "count": sum(counts),
            "counts": counts,
            "schema": [schema.column(name).to_dict() for name in names],
            "rowgroups_quarantined": sum(
                r.rowgroups_quarantined for r in reports
            ),
            "values_quarantined": sum(
                r.values_quarantined for r in reports
            ),
        }
        return OpResult(fields=fields, payload=b"".join(blocks))

    def op_sum(header: dict[str, object], payload: bytes) -> OpResult:
        served = _resolve(registry, header)
        bounds = _range_bounds(header)
        rowgroups = _rowgroup_range(header, served)
        # Both shapes run the engine's encoded-domain (late
        # materialization) path: integers are reduced in place of
        # doubles, and ranged sums skip non-qualifying vectors via zone
        # maps + FFOR headers without unpacking them.
        source = served.query_source(rowgroups)
        if bounds is None:
            total = float(sum_query(source))
            count = int(source.value_count)
        else:
            total, count = range_sum_query(source, *bounds)
        fields: dict[str, object] = {"sum": total, "count": count}
        fields.update(_quarantine_fields(served))
        return OpResult(fields=fields)

    def op_comp(header: dict[str, object], payload: bytes) -> OpResult:
        from repro.baselines.registry import list_codecs

        served = _resolve(registry, header)
        codec = _optional_str(header, "codec") or "alp"
        if codec not in ("uncompressed", *list_codecs()):
            raise OpError(
                protocol.ERR_BAD_REQUEST,
                f"unknown codec {codec!r}; known: "
                + ", ".join(list_codecs()),
            )
        values = served.all_values()
        bits = int(comp_query(codec, values))
        return OpResult(
            fields={
                "codec": codec,
                "compressed_bits": bits,
                "bits_per_value": bits / max(values.size, 1),
                "count": int(values.size),
            }
        )

    def op_compress(header: dict[str, object], payload: bytes) -> OpResult:
        try:
            values = protocol.values_from_bytes(payload)
        except protocol.ProtocolError as exc:
            raise OpError(protocol.ERR_BAD_REQUEST, str(exc)) from exc
        column = api.compress(values, opts)
        return OpResult(
            fields={
                "count": int(column.count),
                "bits_per_value": column.bits_per_value(),
                "compression_ratio": column.compression_ratio(),
            },
            payload=protocol.column_to_bytes(column),
        )

    def op_decompress(header: dict[str, object], payload: bytes) -> OpResult:
        try:
            column = protocol.column_from_bytes(payload)
        except protocol.ProtocolError as exc:
            raise OpError(protocol.ERR_BAD_REQUEST, str(exc)) from exc
        try:
            values = api.decompress(column, opts)
        except IntegrityError as exc:
            raise OpError(protocol.ERR_CORRUPT, str(exc)) from exc
        return OpResult(
            fields={"count": int(values.size)},
            payload=protocol.values_to_bytes(values),
        )

    return {
        "ping": op_ping,
        "datasets": op_datasets,
        "scan": op_scan,
        "sum": op_sum,
        "comp": op_comp,
        "compress": op_compress,
        "decompress": op_decompress,
    }
