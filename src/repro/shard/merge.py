"""Deterministic merging of per-partition responses.

The merge rules exist to keep one promise: **with every shard healthy, a
routed response is byte- and value-identical to the same request served
by one node** (pinned by ``tests/test_shard_router.py``).

- *Scans* concatenate partition payloads in partition (row-group) order
  — exactly the order a single node's row-group loop produces.
- *Sums* fold partition partials **left-to-right in partition order**,
  mirroring :class:`~repro.query.operators.EncodedSumOperator`'s
  ``total = term if not started else total + term`` accumulation.
  Float addition is not associative, so folding in any other order (or
  pairwise) could drift by a ulp; folding in the same order cannot.
- *Quarantine tallies* add across partitions, and a partition whose
  every replica is unreachable degrades into those same tallies (its
  row-group and row counts), keeping the response row-aligned: counts
  always account for every row the dataset owns.

Each helper consumes :class:`PartResult` records — one per partition,
``missing=True`` when no replica answered.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.shard.placement import Partition


@dataclass(frozen=True)
class PartResult:
    """One partition's outcome: a backend response or a degraded miss."""

    partition: Partition
    #: Response header fields (empty when missing).
    fields: dict[str, object] = field(default_factory=dict)
    payload: bytes = b""
    missing: bool = False


def _int_field(fields: dict[str, object], key: str) -> int:
    value = fields.get(key, 0)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return 0
    return int(value)


def merge_tallies(parts: "list[PartResult]") -> dict[str, object]:
    """Summed quarantine tallies, with missing partitions folded in."""
    rowgroups = 0
    values = 0
    missing = 0
    for part in parts:
        if part.missing:
            rowgroups += part.partition.stop - part.partition.start
            values += part.partition.rows
            missing += 1
        else:
            rowgroups += _int_field(part.fields, "rowgroups_quarantined")
            values += _int_field(part.fields, "values_quarantined")
    fields: dict[str, object] = {
        "rowgroups_quarantined": rowgroups,
        "values_quarantined": values,
    }
    if missing:
        fields["partial"] = True
        fields["shards_missed"] = missing
    return fields


def merge_scan(parts: "list[PartResult]") -> tuple[dict[str, object], bytes]:
    """Merge single-column scan partitions: ordered concatenation."""
    fields = merge_tallies(parts)
    fields["count"] = sum(
        _int_field(part.fields, "count") for part in parts
    )
    payload = b"".join(part.payload for part in parts)
    return fields, payload


def merge_scan_columns(
    parts: "list[PartResult]", n_columns: int
) -> tuple[dict[str, object], bytes]:
    """Merge projection partitions into one per-column-major payload.

    Each partition's payload is column-major *within the partition*
    (column 0's slice, then column 1's …, per its ``counts``); the
    single-node response is column-major over the whole table.  So the
    merge re-slices: for each column, concatenate that column's slice
    from every partition in order.  float64 values are 8 bytes each,
    which makes the slicing arithmetic exact.
    """
    fields = merge_tallies(parts)
    columns: list[list[bytes]] = [[] for _ in range(n_columns)]
    counts = [0] * n_columns
    for part in parts:
        if part.missing:
            continue
        part_counts = part.fields.get("counts")
        if (
            not isinstance(part_counts, list)
            or len(part_counts) != n_columns
        ):
            raise ValueError(
                f"partition {part.partition.key} returned malformed "
                f"'counts': {part_counts!r}"
            )
        offset = 0
        for index, raw in enumerate(part_counts):
            size = int(raw) * 8
            columns[index].append(part.payload[offset : offset + size])
            counts[index] += int(raw)
            offset += size
    fields["counts"] = counts
    fields["count"] = sum(counts)
    payload = b"".join(b"".join(slices) for slices in columns)
    # The schema echo comes from any shard that answered — they serve
    # identical files, so any copy is the canonical one.
    for part in parts:
        if not part.missing and "schema" in part.fields:
            fields["schema"] = part.fields["schema"]
            break
    return fields, payload


def merge_sum(parts: "list[PartResult]") -> dict[str, object]:
    """Fold partition sums left-to-right in partition order."""
    fields = merge_tallies(parts)
    total = 0.0
    started = False
    count = 0
    for part in parts:
        if part.missing:
            continue
        term = part.fields.get("sum")
        if isinstance(term, bool) or not isinstance(term, (int, float)):
            raise ValueError(
                f"partition {part.partition.key} returned malformed "
                f"'sum': {term!r}"
            )
        # Mirrors EncodedSumOperator.result(): the first term is taken
        # as-is, later terms accumulate in order.
        total = float(term) if not started else total + float(term)
        started = True
        count += _int_field(part.fields, "count")
    fields["sum"] = total
    fields["count"] = count
    return fields
