"""Fault injection: corrupted payloads must fail loudly or decode
bounded garbage — never hang, crash the interpreter, or read out of
bounds.

Decoders are driven with (a) truncated streams, (b) bit-flipped
payloads and (c) random bytes.  The acceptable outcomes are a Python
exception (EOFError / ValueError / IndexError / struct.error / KeyError)
or a well-formed array of the declared length whose content simply
differs — silent wrong-length results are the only failure.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.baselines.chimp import ChimpEncoded, chimp_compress, chimp_decompress
from repro.baselines.chimp128 import (
    Chimp128Encoded,
    chimp128_compress,
    chimp128_decompress,
)
from repro.baselines.fpc import FpcEncoded, fpc_decompress
from repro.baselines.gorilla import (
    GorillaEncoded,
    gorilla_compress,
    gorilla_decompress,
)
from repro.baselines.patas import PatasEncoded, patas_compress, patas_decompress
from repro.baselines.registry import Encoded, get, list_codecs
from repro.core.alp import alp_decode_vector, alp_encode_vector
from repro.encodings.ffor import FforEncoded, ffor_decode
from repro.storage.serializer import deserialize_rowgroup

ACCEPTABLE = (
    EOFError,
    ValueError,
    IndexError,
    KeyError,
    OverflowError,
    struct.error,
)


def _values():
    rng = np.random.default_rng(0)
    return np.round(np.cumsum(rng.normal(0, 0.1, 500)) + 20.0, 2)


class TestTruncatedStreams:
    def test_gorilla_truncated(self):
        encoded = gorilla_compress(_values())
        broken = GorillaEncoded(
            payload=encoded.payload[: len(encoded.payload) // 3],
            count=encoded.count,
        )
        with pytest.raises(ACCEPTABLE):
            gorilla_decompress(broken)

    def test_chimp_truncated(self):
        encoded = chimp_compress(_values())
        broken = ChimpEncoded(
            payload=encoded.payload[: len(encoded.payload) // 3],
            count=encoded.count,
        )
        with pytest.raises(ACCEPTABLE):
            chimp_decompress(broken)

    def test_chimp128_truncated(self):
        encoded = chimp128_compress(_values())
        broken = Chimp128Encoded(
            payload=encoded.payload[: len(encoded.payload) // 3],
            count=encoded.count,
            ring_size=encoded.ring_size,
        )
        with pytest.raises(ACCEPTABLE):
            chimp128_decompress(broken)

    def test_ffor_truncated(self):
        encoded = FforEncoded(payload=b"\x00", reference=0, bit_width=13, count=100)
        with pytest.raises(ACCEPTABLE):
            ffor_decode(encoded)


class TestBitFlips:
    def test_flipped_alp_payload_changes_values_not_shape(self):
        values = _values()
        vector = alp_encode_vector(values, 14, 12)
        payload = bytearray(vector.ffor.payload)
        payload[len(payload) // 2] ^= 0xFF
        from dataclasses import replace

        broken = replace(
            vector, ffor=replace(vector.ffor, payload=bytes(payload))
        )
        decoded = alp_decode_vector(broken)
        assert decoded.shape == values.shape  # framing intact
        assert not np.array_equal(
            decoded.view(np.uint64), values.view(np.uint64)
        )  # corruption visible

    def test_flipped_patas_payload_bounded(self):
        encoded = patas_compress(_values())
        payload = bytearray(encoded.payload)
        if payload:
            payload[0] ^= 0xFF
        broken = PatasEncoded(
            headers=encoded.headers,
            payload=bytes(payload),
            first_value=encoded.first_value,
            count=encoded.count,
        )
        decoded = patas_decompress(broken)
        assert decoded.shape == (encoded.count,)


class TestRandomBytes:
    @pytest.mark.parametrize("seed", range(8))
    def test_gorilla_fuzz(self, seed):
        rng = np.random.default_rng(seed)
        junk = rng.integers(0, 256, 200, dtype=np.uint8).tobytes()
        encoded = GorillaEncoded(payload=junk, count=64)
        try:
            out = gorilla_decompress(encoded)
            assert out.shape == (64,)
        except ACCEPTABLE:
            pass

    @pytest.mark.parametrize("seed", range(8))
    def test_chimp_fuzz(self, seed):
        rng = np.random.default_rng(seed + 100)
        junk = rng.integers(0, 256, 200, dtype=np.uint8).tobytes()
        encoded = ChimpEncoded(payload=junk, count=64)
        try:
            out = chimp_decompress(encoded)
            assert out.shape == (64,)
        except ACCEPTABLE:
            pass

    @pytest.mark.parametrize("seed", range(8))
    def test_fpc_fuzz(self, seed):
        rng = np.random.default_rng(seed + 200)
        headers = rng.integers(0, 256, 32, dtype=np.uint8).tobytes()
        payload = rng.integers(0, 256, 300, dtype=np.uint8).tobytes()
        encoded = FpcEncoded(headers=headers, payload=payload, count=64)
        try:
            out = fpc_decompress(encoded)
            assert out.shape == (64,)
        except ACCEPTABLE:
            pass

    @pytest.mark.parametrize("seed", range(8))
    def test_rowgroup_deserialize_fuzz(self, seed):
        rng = np.random.default_rng(seed + 300)
        junk = rng.integers(0, 256, 400, dtype=np.uint8).tobytes()
        try:
            rowgroup, consumed = deserialize_rowgroup(junk)
            assert consumed <= len(junk)
        except ACCEPTABLE:
            pass


class TestEveryRegisteredCodec:
    """Registry-driven sweep: no hand-maintained codec list to drift.

    Whatever lands in ``repro.baselines.registry.CODECS`` automatically
    gets a losslessness check and a corruption check here.
    """

    @pytest.mark.parametrize("name", list_codecs())
    def test_roundtrip_and_encoded_contract(self, name):
        codec = get(name)
        values = _values()
        encoded = codec.compress(values)
        assert isinstance(encoded, Encoded)
        assert encoded.count == values.size
        assert encoded.size_bits() > 0
        decoded = codec.decompress(encoded)
        assert np.array_equal(
            decoded.view(np.uint64), values.view(np.uint64)
        )

    @pytest.mark.parametrize("name", list_codecs())
    def test_corrupted_payload_never_silent_garbage(self, name):
        """Flip a byte in whatever payload field the blob carries.

        The contract is detection-or-correct-shape: either a loud
        exception from ``ACCEPTABLE``, or an array of the declared
        length (the corruption then being visible in the values, which
        the storage layer's checksums exist to catch).
        """
        from dataclasses import fields, is_dataclass, replace

        codec = get(name)
        values = _values()
        encoded = codec.compress(values)
        if not is_dataclass(encoded):
            pytest.skip(f"{name} blob is not a dataclass")
        payload_fields = [
            f.name
            for f in fields(encoded)
            if isinstance(getattr(encoded, f.name), bytes)
            and getattr(encoded, f.name)
        ]
        if not payload_fields:
            pytest.skip(f"{name} blob carries no flat bytes payload")
        for field_name in payload_fields:
            payload = bytearray(getattr(encoded, field_name))
            payload[len(payload) // 2] ^= 0x40
            broken = replace(encoded, **{field_name: bytes(payload)})
            try:
                decoded = codec.decompress(broken)
            except ACCEPTABLE:
                continue
            assert decoded.shape == values.shape
