"""E2 — Table 2: the dataset-analysis metrics of Section 2.

Prints one row per dataset in the paper's column layout (decimal
precision, duplicates, IEEE exponent stats, P_enc/P_dec success rates,
XOR zero bits) computed on the synthetic stand-ins.

Shape claims asserted (the findings Section 2 derives from this table):

- for most datasets the per-vector decimal-precision deviation is < 1
  (paper: 25 of 30),
- the best single exponent recovers >= 95% of values on decimal-origin
  datasets, and per-vector exponents do at least as well (C12 <= C13),
- visible-precision exponents (C11) are worse than the best exponent
  (C12) on average — the paper's motivation for high exponents,
- POI-lat/POI-lon have the lowest XOR zero counts and fail the decimal
  test (they are the "real doubles").
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import compute_metrics
from repro.bench.harness import bench_n
from repro.bench.report import format_table, shape_check
from repro.data import DATASET_ORDER, DATASETS


def _measure(dataset_cache):
    n = min(bench_n(), 32_768)
    return {
        name: compute_metrics(dataset_cache(name, n))
        for name in DATASET_ORDER
    }


def test_table2_dataset_metrics(benchmark, emit, dataset_cache):
    metrics = benchmark.pedantic(
        lambda: _measure(dataset_cache), rounds=1, iterations=1
    )

    rows = []
    for name in DATASET_ORDER:
        m = metrics[name]
        rows.append(
            [
                name,
                m.precision_max,
                m.precision_min,
                f"{m.precision_avg:.1f}",
                f"{m.precision_std_per_vector:.1f}",
                f"{m.non_unique_fraction * 100:.1f}%",
                f"{m.exponent_avg:.0f}",
                f"{m.exponent_std_per_vector:.1f}",
                f"{m.success_per_value * 100:.1f}%",
                f"{m.best_exponent} ({m.success_best_exponent * 100:.1f}%)",
                f"{m.success_per_vector * 100:.1f}%",
                f"{m.xor_leading_zeros_avg:.1f}",
                f"{m.xor_trailing_zeros_avg:.1f}",
            ]
        )

    decimal_names = [
        n for n in DATASET_ORDER if not DATASETS[n].expects_rd
    ]
    low_deviation = sum(
        1
        for n in DATASET_ORDER
        if metrics[n].precision_std_per_vector < 1.0
    )
    c11_avg = float(
        np.mean([metrics[n].success_per_value for n in DATASET_ORDER])
    )
    c12_avg = float(
        np.mean([metrics[n].success_best_exponent for n in DATASET_ORDER])
    )
    checks = [
        shape_check(
            f"precision deviation < 1 inside vectors on {low_deviation}/30 "
            "datasets (paper: 25/30; require >= 20)",
            low_deviation >= 20,
        ),
        shape_check(
            "best exponent recovers >= 90% on every decimal-origin dataset",
            all(
                metrics[n].success_best_exponent >= 0.90
                for n in decimal_names
            ),
        ),
        shape_check(
            "per-vector exponent success >= per-dataset success (C13 >= C12)",
            all(
                metrics[n].success_per_vector
                >= metrics[n].success_best_exponent - 1e-9
                for n in DATASET_ORDER
            ),
        ),
        shape_check(
            f"visible-precision exponents are worse on average "
            f"(C11 {c11_avg:.2f} < C12 {c12_avg:.2f})",
            c11_avg < c12_avg,
        ),
        shape_check(
            "POI datasets fail the decimal test (success < 90%)",
            all(
                metrics[n].success_best_exponent < 0.90
                for n in ("POI-lat", "POI-lon")
            ),
        ),
        shape_check(
            "POI datasets have the lowest XOR trailing-zero averages",
            max(
                metrics[n].xor_trailing_zeros_avg
                for n in ("POI-lat", "POI-lon")
            )
            <= min(
                metrics[n].xor_trailing_zeros_avg
                for n in DATASET_ORDER
                if n not in ("POI-lat", "POI-lon")
            )
            + 1.0,
        ),
    ]

    report = format_table(
        [
            "dataset",
            "Pmax",
            "Pmin",
            "Pavg",
            "Pstd/vec",
            "dup%",
            "ExpAvg",
            "ExpStd",
            "C11 val",
            "C12 best-e",
            "C13 vec",
            "XOR lead0",
            "XOR trail0",
        ],
        rows,
        title=f"Table 2 — dataset metrics (n={min(bench_n(), 32_768)})",
    )
    report += "\n" + "\n".join(checks)
    emit("table2_dataset_metrics", report)
    assert all(c.startswith("[PASS]") for c in checks), "\n" + "\n".join(checks)
