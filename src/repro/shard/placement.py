"""Consistent-hash placement: partitions, the ring, and the shard map.

The router partitions every served column by row-group range and places
each partition on ``replication`` backends chosen by a consistent-hash
ring walk.  Two properties carry the whole design:

- **Stability** — the replica list of a partition depends only on the
  partition key and the node set, never on request order or process
  state.  The first replica is therefore *the* warm replica: routing the
  same partition to the same backend on every request keeps that
  backend's decoded-vector cache hot for exactly its own row-groups.
- **Minimal disruption** — adding or removing one backend remaps only
  the partitions whose ring neighborhood changed (about ``1/N`` of
  them), not the whole key space.  Caches on surviving backends stay
  warm through membership changes (pinned by a Hypothesis property in
  ``tests/test_shard_placement.py``).

Hashing uses ``blake2b`` (:func:`stable_hash`), not Python's ``hash()``:
the builtin is salted per process, and placement must agree between a
router restart and its previous self — and between test runs.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass


def stable_hash(key: str) -> int:
    """A process-stable 64-bit hash of ``key`` (blake2b, first 8 bytes)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class Partition:
    """One shard unit: a half-open row-group range of one served column."""

    dataset: str
    column: str
    #: Row-group range ``[start, stop)`` within the column.
    start: int
    stop: int
    #: Total values in the range, from the column's footer metadata —
    #: what a missing shard contributes to ``values_quarantined``.
    rows: int

    @property
    def key(self) -> str:
        """The placement key (stable across restarts and processes)."""
        return f"{self.dataset}/{self.column}#{self.start}:{self.stop}"

    @property
    def rowgroups(self) -> tuple[int, int]:
        """The range as the wire-level ``rowgroups`` request field."""
        return (self.start, self.stop)


class HashRing:
    """A consistent-hash ring with virtual nodes.

    Each node is hashed ``vnodes`` times onto a 64-bit circle; a key is
    placed by walking clockwise from its own hash and collecting the
    first ``n`` *distinct* nodes — the replica preference order.
    """

    def __init__(
        self,
        nodes: "list[str] | tuple[str, ...]",
        vnodes: int = 64,
    ) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self._vnodes = vnodes
        self._nodes: set[str] = set()
        #: Sorted parallel arrays: vnode hash -> owning node.
        self._hashes: list[int] = []
        self._owners: list[str] = []
        for node in nodes:
            self.add_node(node)

    @property
    def nodes(self) -> tuple[str, ...]:
        """The member nodes, sorted for determinism."""
        return tuple(sorted(self._nodes))

    def add_node(self, node: str) -> None:
        """Add ``node`` (idempotent is an error: membership is explicit)."""
        if node in self._nodes:
            raise ValueError(f"node {node!r} is already on the ring")
        self._nodes.add(node)
        for replica in range(self._vnodes):
            point = stable_hash(f"{node}#{replica}")
            index = bisect.bisect(self._hashes, point)
            self._hashes.insert(index, point)
            self._owners.insert(index, node)

    def remove_node(self, node: str) -> None:
        """Remove ``node`` and all its virtual nodes."""
        if node not in self._nodes:
            raise ValueError(f"node {node!r} is not on the ring")
        self._nodes.discard(node)
        keep = [
            (h, o)
            for h, o in zip(self._hashes, self._owners, strict=True)
            if o != node
        ]
        self._hashes = [h for h, _ in keep]
        self._owners = [o for _, o in keep]

    def preference(self, key: str, n: int) -> tuple[str, ...]:
        """The first ``min(n, len(nodes))`` distinct nodes clockwise from
        ``key``'s hash — the stable replica preference order."""
        if not self._hashes:
            return ()
        want = min(n, len(self._nodes))
        start = bisect.bisect(self._hashes, stable_hash(key))
        chosen: list[str] = []
        seen: set[str] = set()
        for step in range(len(self._owners)):
            owner = self._owners[(start + step) % len(self._owners)]
            if owner not in seen:
                seen.add(owner)
                chosen.append(owner)
                if len(chosen) == want:
                    break
        return tuple(chosen)


def partition_column(
    dataset: str,
    column: str,
    rowgroup_rows: "list[int]",
    partition_rowgroups: int,
) -> "list[Partition]":
    """Split one column into ``ceil(G / partition_rowgroups)`` partitions.

    ``rowgroup_rows`` is the per-row-group value count list from the
    column's ``describe()`` — partition row totals come from it, so the
    router never opens the files itself.
    """
    if partition_rowgroups < 1:
        raise ValueError(
            f"partition_rowgroups must be >= 1, got {partition_rowgroups}"
        )
    partitions: list[Partition] = []
    count = len(rowgroup_rows)
    for start in range(0, count, partition_rowgroups):
        stop = min(start + partition_rowgroups, count)
        partitions.append(
            Partition(
                dataset=dataset,
                column=column,
                start=start,
                stop=stop,
                rows=int(sum(rowgroup_rows[start:stop])),
            )
        )
    return partitions


def build_shard_map(
    describe: dict[str, object],
    ring: HashRing,
    replication: int,
    partition_rowgroups: int,
) -> dict[tuple[str, str], list[tuple[Partition, tuple[str, ...]]]]:
    """Place every column of a ``datasets`` describe onto the ring.

    Returns ``(dataset, column) -> [(partition, replica preference)]``
    with partitions in row-group order — the order scatter responses are
    merged back in, which is what keeps merged scans byte-identical to a
    single-node scan.
    """
    if replication < 1:
        raise ValueError(f"replication must be >= 1, got {replication}")
    shard_map: dict[
        tuple[str, str], list[tuple[Partition, tuple[str, ...]]]
    ] = {}
    for dataset, columns in describe.items():
        if not isinstance(columns, dict):
            raise ValueError(f"malformed describe for dataset {dataset!r}")
        for column, meta in columns.items():
            if not isinstance(meta, dict):
                raise ValueError(
                    f"malformed describe for column "
                    f"{dataset!r}/{column!r}"
                )
            rowgroup_rows = meta.get("rowgroup_rows")
            if not isinstance(rowgroup_rows, list):
                raise ValueError(
                    f"describe of {dataset!r}/{column!r} lacks "
                    f"'rowgroup_rows'; backends must be at least as new "
                    f"as the router"
                )
            partitions = partition_column(
                dataset, column, [int(r) for r in rowgroup_rows],
                partition_rowgroups,
            )
            shard_map[(dataset, column)] = [
                (part, ring.preference(part.key, replication))
                for part in partitions
            ]
    _balance_primaries(shard_map, ring.nodes)
    return shard_map


def _balance_primaries(
    shard_map: dict[tuple[str, str], list[tuple[Partition, tuple[str, ...]]]],
    nodes: tuple[str, ...],
    load: "dict[str, int] | None" = None,
) -> None:
    """Rotate each replica list so primary row-load spreads evenly.

    With coarse partitioning a deployment may have only a handful of
    placement keys (one per column), and the raw ring walk can then put
    most primaries on one node — the law of small numbers, not a ring
    bug.  This greedy pass walks partitions in deterministic key order
    and promotes, within each partition's *ring-chosen replica set*, the
    replica with the least accumulated primary row-load.  Replica
    membership is untouched (so ring stability/disruption properties
    hold unchanged); only the warm-primary choice moves, and it is a
    pure function of the shard map, so every router instance over the
    same backends agrees on it.
    """
    if load is None:
        load = {}
    for node in nodes:
        load.setdefault(node, 0)
    for key in sorted(shard_map):
        rebuilt: list[tuple[Partition, tuple[str, ...]]] = []
        for part, replicas in shard_map[key]:
            if len(replicas) > 1:
                best = 0
                for index in range(1, len(replicas)):
                    if load[replicas[index]] < load[replicas[best]]:
                        best = index
                if best:
                    replicas = (replicas[best],) + tuple(
                        node
                        for index, node in enumerate(replicas)
                        if index != best
                    )
            if replicas:
                load[replicas[0]] += part.rows
            rebuilt.append((part, replicas))
        shard_map[key] = rebuilt
