"""Tests for ALP_rd (Algorithm 3)."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alputil.bits import double_to_bits
from repro.core.alprd import (
    alprd_decode,
    alprd_encode,
    decode_vector_bits,
    encode_vector_bits,
    find_best_cut,
    fit_parameters,
)
from repro.core.constants import MAX_RD_LEFT_BITS


def _poi_like(n, seed=0):
    """Synthetic POI-lat style data: uniform degrees converted to radians."""
    rng = np.random.default_rng(seed)
    degrees = rng.uniform(-90, 90, n)
    return degrees * math.pi / 180.0


class TestFindBestCut:
    def test_cut_respects_left_limit(self):
        bits = double_to_bits(_poi_like(512))
        params = find_best_cut(bits)
        assert 1 <= params.left_bit_width <= MAX_RD_LEFT_BITS
        assert params.right_bit_width >= 64 - MAX_RD_LEFT_BITS

    def test_low_variance_front_bits_found(self):
        # Values in a tight range share sign+exponent+top mantissa bits:
        # the dictionary should cover the sample with few entries.
        bits = double_to_bits(_poi_like(512) + 10.0)
        params = find_best_cut(bits)
        assert params.dictionary.entries.size <= 8

    def test_float32_cut(self):
        rng = np.random.default_rng(1)
        weights = rng.normal(0, 0.02, 512).astype(np.float32)
        bits = weights.view(np.uint32).astype(np.uint64)
        params = find_best_cut(bits, total_bits=32)
        assert params.total_bits == 32
        assert params.right_bit_width >= 32 - MAX_RD_LEFT_BITS


class TestVectorRoundTrip:
    def test_roundtrip_poi(self):
        values = _poi_like(1024)
        bits = double_to_bits(values)
        params = find_best_cut(bits)
        vector = encode_vector_bits(bits, params)
        assert np.array_equal(decode_vector_bits(vector, params), bits)

    def test_exceptions_recorded_for_out_of_dict_values(self):
        # Fit on a narrow sample, then encode data outside that range.
        narrow = double_to_bits(np.linspace(1.0, 1.001, 256))
        params = find_best_cut(narrow)
        wild = double_to_bits(np.array([1e300, -1e-300, 2.5]))
        vector = encode_vector_bits(wild, params)
        assert vector.exc_positions.size >= 1
        assert np.array_equal(decode_vector_bits(vector, params), wild)


class TestRowGroupRoundTrip:
    def test_roundtrip_large(self):
        values = _poi_like(5000)
        rowgroup = alprd_encode(values)
        decoded = alprd_decode(rowgroup)
        assert np.array_equal(
            decoded.view(np.uint64), values.view(np.uint64)
        )

    def test_compresses_poi_data(self):
        # Paper: ALP_rd achieves ~55-56 bits/value on POI (max ~1.2x).
        values = _poi_like(10_000)
        rowgroup = alprd_encode(values)
        assert rowgroup.bits_per_value() < 64
        assert rowgroup.bits_per_value() > 45

    def test_special_values_roundtrip(self):
        values = np.array(
            [math.nan, math.inf, -math.inf, 0.0, -0.0, 5e-324, 1.7e308]
        )
        rowgroup = alprd_encode(values)
        decoded = alprd_decode(rowgroup)
        assert np.array_equal(
            decoded.view(np.uint64), values.view(np.uint64)
        )

    def test_empty(self):
        rowgroup = alprd_encode(np.empty(0))
        assert alprd_decode(rowgroup).size == 0
        assert rowgroup.bits_per_value() == 0.0

    def test_vector_boundaries(self):
        # 2.5 vectors worth of data.
        values = _poi_like(2560)
        rowgroup = alprd_encode(values, vector_size=1024)
        assert len(rowgroup.vectors) == 3
        assert np.array_equal(
            alprd_decode(rowgroup).view(np.uint64), values.view(np.uint64)
        )

    def test_fixed_parameters_reused(self):
        values = _poi_like(2048)
        params = fit_parameters(values)
        rowgroup = alprd_encode(values, parameters=params)
        assert rowgroup.parameters is params

    @given(
        st.lists(
            st.floats(allow_nan=True, allow_infinity=True, width=64),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_doubles_roundtrip(self, xs):
        values = np.array(xs, dtype=np.float64)
        rowgroup = alprd_encode(values)
        decoded = alprd_decode(rowgroup)
        assert np.array_equal(
            decoded.view(np.uint64), values.view(np.uint64)
        )
