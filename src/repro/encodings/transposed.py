"""Interleaved ("transposed") bit-packing layout, after FastLanes.

The FastLanes library stores a 1024-value vector in a *unified
transposed layout*: values are permuted so that any SIMD register
width — 128, 256, 512 bits — decodes contiguous lanes independently,
with the tile order ``0 4 2 6 1 5 3 7`` making the permutation identical
for every width.  The sequential layout used elsewhere in this package
is simpler and equally fast under numpy, so the interleaved layout is
provided as an *alternative backend*:

- :data:`TRANSPOSE_PERMUTATION` — the 1024-entry order: the vector is
  viewed as 8 row-tiles of 128 values, visited in the FastLanes tile
  order, each tile contributing one value per 16-lane group per step;
- :func:`pack_bits_transposed` / :func:`unpack_bits_transposed` — bit
  packing over the permuted order, bit-compatible in *size* with the
  sequential packer and lossless under the inverse permutation.

Like FastLanes, the permutation is its own fixed constant; unlike the
C++ library we do not claim SIMD benefits in numpy — the point is
format-level compatibility of the concept and a place to measure the
layout's (absence of) cost in this substrate.
"""

from __future__ import annotations

import numpy as np

from repro.core.constants import VECTOR_SIZE
from repro.encodings.bitpack import pack_bits, unpack_bits

#: FastLanes tile visiting order.
TILE_ORDER = (0, 4, 2, 6, 1, 5, 3, 7)

#: Values per vector in the FastLanes layout.
TRANSPOSED_VECTOR_SIZE = VECTOR_SIZE

#: Lanes per tile row (1024 values = 8 tiles x 128; each tile is
#: visited 16 values at a time across 8 steps).
_LANE_WIDTH = 16


def _build_permutation() -> np.ndarray:
    """Source index for each output slot of the transposed layout."""
    order = np.empty(TRANSPOSED_VECTOR_SIZE, dtype=np.int64)
    slot = 0
    for step in range(TRANSPOSED_VECTOR_SIZE // (_LANE_WIDTH * len(TILE_ORDER))):
        for tile in TILE_ORDER:
            base = tile * (TRANSPOSED_VECTOR_SIZE // len(TILE_ORDER))
            start = base + step * _LANE_WIDTH
            order[slot : slot + _LANE_WIDTH] = np.arange(
                start, start + _LANE_WIDTH
            )
            slot += _LANE_WIDTH
    return order


#: Output slot -> source index.
TRANSPOSE_PERMUTATION = _build_permutation()

#: Source index -> output slot (inverse permutation).
TRANSPOSE_INVERSE = np.argsort(TRANSPOSE_PERMUTATION)


def transpose_values(values: np.ndarray) -> np.ndarray:
    """Apply the FastLanes ordering to a full 1024-value array."""
    values = np.asarray(values)
    if values.size != TRANSPOSED_VECTOR_SIZE:
        raise ValueError(
            f"transposed layout needs exactly {TRANSPOSED_VECTOR_SIZE} "
            f"values, got {values.size}"
        )
    return values[TRANSPOSE_PERMUTATION]


def untranspose_values(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`transpose_values`."""
    values = np.asarray(values)
    if values.size != TRANSPOSED_VECTOR_SIZE:
        raise ValueError(
            f"transposed layout needs exactly {TRANSPOSED_VECTOR_SIZE} "
            f"values, got {values.size}"
        )
    return values[TRANSPOSE_INVERSE]


def pack_bits_transposed(values: np.ndarray, width: int) -> bytes:
    """Pack a 1024-value array in the interleaved order.

    Short (tail) vectors fall back to the sequential layout — FastLanes
    likewise only uses the transposed layout on full vectors.
    """
    values = np.ascontiguousarray(values, dtype=np.uint64)
    if values.size != TRANSPOSED_VECTOR_SIZE:
        return pack_bits(values, width)
    return pack_bits(transpose_values(values), width)


def unpack_bits_transposed(
    buffer: bytes, width: int, count: int
) -> np.ndarray:
    """Inverse of :func:`pack_bits_transposed`."""
    values = unpack_bits(buffer, width, count)
    if count != TRANSPOSED_VECTOR_SIZE:
        return values
    return untranspose_values(values)
