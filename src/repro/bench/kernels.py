"""Kernel-level micro-benchmarks: bit-packing, FFOR and the ALP vector codec.

``python -m repro.bench.kernels`` (or ``alp-repro bench --kernels``)
times the hot kernels the word-parallel rewrite targets, at the widths
that exercise its three code paths:

- width 4  — sub-byte fields, the generic scatter/gather path;
- width 16 — byte-aligned, the direct dtype-cast fast path;
- width 48 — byte-aligned but wider than any native dtype, the
  byte-column path.

Each width yields one ``pack`` record (compress = ``pack_bits``,
decompress = ``unpack_bits``) and one ``ffor`` record (compress =
``ffor_encode``, decompress = fused ``ffor_decode``); a final
``kernels/alp-vector`` record times the end-to-end per-vector ALP
encode (level-two sampling + ALP_enc + FFOR) and decode (UNFFOR +
ALP_dec + patch), the paper's §4.2 micro-benchmark unit.  The ``pack``
records also carry the measured speedup over the retired bit-matrix
packer (:func:`repro.encodings.bitpack.pack_bits_bitmatrix`) in their
``counters``.

Records follow the ``BENCH_*.json`` schema (see
:mod:`repro.bench.records`): ``bits_per_value`` is the field width and
``compression_ratio`` is ``64 / width``, both deterministic, so the CI
regression gate's ratio check doubles as a layout invariant; the
``*_rel`` throughputs are calibration-anchored like every other record.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.bench.records import BenchRecord
from repro.core.constants import VECTOR_SIZE

#: The widths benchmarked — one per pack/unpack code path (see module doc).
KERNEL_WIDTHS = (4, 16, 48)

#: The micro-benchmark unit: one L1-resident vector, as in the paper.
KERNEL_VECTOR_SIZE = VECTOR_SIZE

#: Vectors processed per timed call, so one call takes long enough that
#: ``perf_counter`` granularity and scheduler noise do not dominate.
KERNEL_VECTORS = 64


def _kernel_values(width: int) -> np.ndarray:
    """Deterministic uint64 test values that need exactly ``width`` bits."""
    rng = np.random.default_rng(0xA19 + width)
    count = KERNEL_VECTORS * KERNEL_VECTOR_SIZE
    if width == 0:
        return np.zeros(count, dtype=np.uint64)
    values = rng.integers(0, 1 << width, size=count, dtype=np.uint64)
    # Pin the top bit somewhere so bit_width_required(values) == width.
    values[0] = (1 << width) - 1
    return values


def _per_vector_mbps(fn, values_nbytes: int, repeats: int) -> float:
    """Median MB/s of a callable that processes all KERNEL_VECTORS."""
    from repro.bench.harness import time_callable

    result = time_callable(
        fn, values_nbytes // 8, repeats=repeats, stat="median"
    )
    return values_nbytes / result.seconds / 1e6


def _bench_pack(width: int, repeats: int, calibration: float) -> BenchRecord:
    """One pack/unpack record at ``width`` (+ bit-matrix speedup)."""
    from repro.encodings.bitpack import (
        pack_bits,
        pack_bits_bitmatrix,
        unpack_bits,
    )

    values = _kernel_values(width)
    vectors = [
        values[start : start + KERNEL_VECTOR_SIZE]
        for start in range(0, values.size, KERNEL_VECTOR_SIZE)
    ]
    payloads = [pack_bits(v, width) for v in vectors]

    pack_mbps = _per_vector_mbps(
        lambda: [pack_bits(v, width) for v in vectors],
        values.nbytes,
        repeats,
    )
    bitmatrix_mbps = _per_vector_mbps(
        lambda: [pack_bits_bitmatrix(v, width) for v in vectors],
        values.nbytes,
        repeats,
    )
    unpack_mbps = _per_vector_mbps(
        lambda: [
            unpack_bits(p, width, KERNEL_VECTOR_SIZE) for p in payloads
        ],
        values.nbytes,
        repeats,
    )
    return BenchRecord(
        dataset=f"kernels/w{width:02d}",
        codec="pack",
        n=int(values.size),
        bits_per_value=float(width),
        compression_ratio=64.0 / width,
        compress_mbps=pack_mbps,
        decompress_mbps=unpack_mbps,
        compress_rel=pack_mbps / calibration,
        decompress_rel=unpack_mbps / calibration,
        counters={
            "pack.bitmatrix_mbps": bitmatrix_mbps,
            "pack.speedup_vs_bitmatrix": pack_mbps / bitmatrix_mbps,
        },
    )


def _bench_ffor(width: int, repeats: int, calibration: float) -> BenchRecord:
    """One FFOR encode/decode record with ``width``-bit residuals."""
    from repro.encodings.ffor import ffor_decode, ffor_encode

    residuals = _kernel_values(width).astype(np.int64)
    base = 1 << 52  # a far-from-zero reference, as ALP integers have
    values = residuals + base
    vectors = [
        values[start : start + KERNEL_VECTOR_SIZE]
        for start in range(0, values.size, KERNEL_VECTOR_SIZE)
    ]
    encoded = [ffor_encode(v) for v in vectors]

    encode_mbps = _per_vector_mbps(
        lambda: [ffor_encode(v) for v in vectors], values.nbytes, repeats
    )
    decode_mbps = _per_vector_mbps(
        lambda: [ffor_decode(e) for e in encoded], values.nbytes, repeats
    )
    return BenchRecord(
        dataset=f"kernels/w{width:02d}",
        codec="ffor",
        n=int(values.size),
        bits_per_value=float(width),
        compression_ratio=64.0 / width,
        compress_mbps=encode_mbps,
        decompress_mbps=decode_mbps,
        compress_rel=encode_mbps / calibration,
        decompress_rel=decode_mbps / calibration,
    )


def _bench_alp_vector(repeats: int, calibration: float) -> BenchRecord:
    """End-to-end per-vector ALP encode/decode (§4.2 protocol)."""
    from repro.bench.harness import alp_vector_speed
    from repro.data import get_dataset

    values = get_dataset("City-Temp", n=KERNEL_VECTOR_SIZE)
    compress_speed, decompress_speed = alp_vector_speed(
        values, repeats=repeats
    )
    compress_mbps = values.nbytes / compress_speed.seconds / 1e6
    decompress_mbps = values.nbytes / decompress_speed.seconds / 1e6
    from repro.core.alp import alp_encode_vector
    from repro.core.sampler import find_best_combination

    combo, _ = find_best_combination(values)
    encoded = alp_encode_vector(values, combo.exponent, combo.factor)
    bits_per_value = encoded.bits_per_value()
    return BenchRecord(
        dataset="kernels/alp-vector",
        codec="alp",
        n=int(values.size),
        bits_per_value=bits_per_value,
        compression_ratio=64.0 / bits_per_value,
        compress_mbps=compress_mbps,
        decompress_mbps=decompress_mbps,
        compress_rel=compress_mbps / calibration,
        decompress_rel=decompress_mbps / calibration,
    )


def kernel_bench_records(repeats: int = 5) -> list[BenchRecord]:
    """All kernel micro-benchmark records (see module docstring).

    The calibration anchoring the ``*_rel`` fields is measured once
    before and once after the kernel sweep and averaged, the same
    drift-compensation idea as the per-record sandwich in
    :func:`repro.bench.harness.bench_codec_structured`.
    """
    from repro.bench.harness import calibration_mbps

    cal_before = calibration_mbps(repeats=repeats)
    records: list[BenchRecord] = []
    timings: list[tuple[int, BenchRecord]] = []
    for width in KERNEL_WIDTHS:
        timings.append((width, _bench_pack(width, repeats, cal_before)))
        timings.append((width, _bench_ffor(width, repeats, cal_before)))
    alp_record = _bench_alp_vector(repeats, cal_before)
    calibration = (cal_before + calibration_mbps(repeats=repeats)) / 2

    # Re-anchor every record on the averaged calibration.
    for _, record in timings:
        records.append(
            BenchRecord(
                dataset=record.dataset,
                codec=record.codec,
                n=record.n,
                bits_per_value=record.bits_per_value,
                compression_ratio=record.compression_ratio,
                compress_mbps=record.compress_mbps,
                decompress_mbps=record.decompress_mbps,
                compress_rel=record.compress_mbps / calibration,
                decompress_rel=record.decompress_mbps / calibration,
                counters=record.counters,
            )
        )
    records.append(
        BenchRecord(
            dataset=alp_record.dataset,
            codec=alp_record.codec,
            n=alp_record.n,
            bits_per_value=alp_record.bits_per_value,
            compression_ratio=alp_record.compression_ratio,
            compress_mbps=alp_record.compress_mbps,
            decompress_mbps=alp_record.decompress_mbps,
            compress_rel=alp_record.compress_mbps / calibration,
            decompress_rel=alp_record.decompress_mbps / calibration,
        )
    )
    return records


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.kernels",
        description="kernel micro-benchmarks (pack/unpack, FFOR, ALP vector)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="timing repeats (default 5)"
    )
    args = parser.parse_args(argv)
    for record in kernel_bench_records(repeats=args.repeats):
        extra = ""
        speedup = record.counters.get("pack.speedup_vs_bitmatrix")
        if speedup is not None:
            extra = f"  ({speedup:.1f}x vs bit-matrix)"
        print(
            f"{record.dataset:18s} {record.codec:5s} "
            f"C {record.compress_mbps:8.1f} MB/s  "
            f"D {record.decompress_mbps:8.1f} MB/s{extra}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
