"""Unit coverage for the reprolint CFG builder and dataflow layer."""

from __future__ import annotations

import ast

from repro.lint.cfg import (
    BACK,
    EXCEPTION,
    EXIT,
    LOOP_HEAD,
    NORMAL,
    WITH_ENTER,
    WITH_EXIT,
    Block,
    ForwardAnalysis,
    block_awaits,
    build_cfg,
    iter_evaluated,
    iter_function_cfgs,
    run_forward,
)


def _cfg(source: str):
    tree = ast.parse(source)
    func = tree.body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(func)


def _edges(cfg):
    return {
        (src, dst, kind)
        for src in range(len(cfg.blocks))
        for dst, kind in cfg.succs(src)
    }


def _blocks_of_kind(cfg, kind):
    return [b for b in cfg.blocks if b.kind == kind]


# ------------------------------------------------------------------- shape


def test_straight_line_reaches_exit():
    cfg = _cfg("def f(x):\n    y = x\n    return y\n")
    # entry -> assign -> return -> exit, all NORMAL.
    path = []
    index = cfg.entry
    while index != cfg.exit:
        succs = [dst for dst, kind in cfg.succs(index) if kind == NORMAL]
        assert len(succs) == 1
        index = succs[0]
        path.append(index)
    assert cfg.blocks[path[-1]].kind == EXIT


def test_if_without_else_falls_through():
    cfg = _cfg("def f(c):\n    if c:\n        a = c\n    b = c\n")
    test_block = next(
        b for b in cfg.blocks if isinstance(b.node, ast.If)
    )
    targets = {dst for dst, kind in cfg.succs(test_block.index)}
    assert len(targets) == 2  # body and fall-through


def test_loop_has_back_edge_and_exit_edge():
    cfg = _cfg("def f(items):\n    for i in items:\n        x = i\n")
    head = _blocks_of_kind(cfg, LOOP_HEAD)[0]
    kinds = {kind for _, _, kind in _edges(cfg)}
    assert BACK in kinds
    # Iterator exhaustion leaves the loop.
    assert any(kind == NORMAL for _, kind in cfg.succs(head.index))
    # The implicit __next__ can raise.
    assert any(kind == EXCEPTION for _, kind in cfg.succs(head.index))


def test_while_true_still_exits_structurally():
    cfg = _cfg("def f():\n    while True:\n        pass\n")
    head = _blocks_of_kind(cfg, LOOP_HEAD)[0]
    assert any(kind == NORMAL for _, kind in cfg.succs(head.index))


def test_with_models_enter_exit_and_enter_exception():
    cfg = _cfg("def f(cm):\n    with cm() as h:\n        use(h)\n")
    enter = _blocks_of_kind(cfg, WITH_ENTER)[0]
    exits = _blocks_of_kind(cfg, WITH_EXIT)
    assert len(exits) == 1
    # __enter__ failure propagates outward: __exit__ is NOT called.
    assert (enter.index, cfg.exit, EXCEPTION) in _edges(cfg)
    # The raising body routes through the with-exit funnel.
    body = next(b for b in cfg.blocks if isinstance(b.node, ast.Expr))
    assert (body.index, exits[0].index, EXCEPTION) in _edges(cfg)


def test_try_finally_runs_on_exception_and_return():
    cfg = _cfg(
        "def f(x):\n"
        "    try:\n"
        "        risky(x)\n"
        "        return x\n"
        "    finally:\n"
        "        cleanup(x)\n"
    )
    cleanup = next(
        b
        for b in cfg.blocks
        if isinstance(b.node, ast.Expr)
        and "cleanup" in ast.unparse(b.node)
    )
    # The finally body fans out to both continuations: re-raise (exit
    # via the propagating exception) and return (exit).
    assert (cleanup.index, cfg.exit, NORMAL) in _edges(cfg)
    risky = next(
        b
        for b in cfg.blocks
        if isinstance(b.node, ast.Expr) and "risky" in ast.unparse(b.node)
    )
    # risky's exception edge goes into the finally funnel, not to exit.
    exc_targets = {dst for dst, kind in cfg.succs(risky.index) if kind == EXCEPTION}
    assert exc_targets and cfg.exit not in exc_targets


def test_catch_all_handler_swallows_dispatch_edge():
    swallowed = _cfg(
        "def f(x):\n"
        "    try:\n"
        "        risky(x)\n"
        "    except BaseException:\n"
        "        x = None\n"
    )
    leaky = _cfg(
        "def f(x):\n"
        "    try:\n"
        "        risky(x)\n"
        "    except ValueError:\n"
        "        x = None\n"
    )

    def dispatch_exc_to_exit(cfg):
        return any(
            (dst, kind) == (cfg.exit, EXCEPTION)
            for b in cfg.blocks
            if b.kind == "except-dispatch"
            for dst, kind in cfg.succs(b.index)
        )

    assert not dispatch_exc_to_exit(swallowed)
    assert dispatch_exc_to_exit(leaky)


def test_break_through_finally_runs_cleanup():
    cfg = _cfg(
        "def f(items):\n"
        "    for i in items:\n"
        "        try:\n"
        "            if i:\n"
        "                break\n"
        "        finally:\n"
        "            note(i)\n"
        "    tail()\n"
    )
    note = next(
        b
        for b in cfg.blocks
        if isinstance(b.node, ast.Expr) and "note" in ast.unparse(b.node)
    )
    # The finally's exits include the loop-after join (break continuation).
    join_targets = {dst for dst, _ in cfg.succs(note.index)}
    assert len(join_targets) >= 2  # break target + fall-through


def test_safe_statements_get_no_exception_edge():
    cfg = _cfg("def f(x, y):\n    z = x\n    ok = x is y\n    t = (x, y)\n")
    for block in cfg.blocks:
        if isinstance(block.node, ast.Assign):
            kinds = {kind for _, kind in cfg.succs(block.index)}
            assert kinds == {NORMAL}


def test_calls_get_exception_edges():
    cfg = _cfg("def f(x):\n    y = g(x)\n    return y\n")
    assign = next(b for b in cfg.blocks if isinstance(b.node, ast.Assign))
    assert any(kind == EXCEPTION for _, kind in cfg.succs(assign.index))


# -------------------------------------------------------- helpers & walking


def test_iter_evaluated_skips_nested_defs():
    cfg = _cfg("def f(x):\n    y = lambda: boom(x)\n")
    assign = next(b for b in cfg.blocks if isinstance(b.node, ast.Assign))
    names = {
        n.id for n in iter_evaluated(assign) if isinstance(n, ast.Name)
    }
    assert "boom" not in names


def test_block_awaits_marks_await_and_async_with():
    cfg = _cfg(
        "async def f(lock):\n"
        "    async with lock:\n"
        "        await tick()\n"
    )
    marked = [b for b in cfg.blocks if block_awaits(b)]
    kinds = {b.kind for b in marked}
    assert WITH_ENTER in kinds and WITH_EXIT in kinds
    assert any(
        isinstance(b.node, ast.Expr) for b in marked
    )  # the await statement itself


def test_iter_function_cfgs_finds_nested_defs():
    tree = ast.parse(
        "def outer():\n    def inner():\n        return 1\n    return inner\n"
    )
    names = [func.name for func, _ in iter_function_cfgs(tree)]
    assert sorted(names) == ["inner", "outer"]


# ---------------------------------------------------------------- dataflow


class _ReachingAssigns(ForwardAnalysis):
    """Tiny gen-only analysis: which assign lines may have executed."""

    def transfer(self, block: Block, state: frozenset[object]):
        if isinstance(block.node, ast.Assign) and block.kind == "stmt":
            return state | {block.node.lineno}
        return state

    def transfer_exception(self, block: Block, state: frozenset[object]):
        return state  # the assignment did not happen


def test_run_forward_joins_branches():
    cfg = _cfg(
        "def f(c):\n"
        "    if c:\n"
        "        a = 1\n"
        "    else:\n"
        "        b = 2\n"
        "    tail(c)\n"
    )
    states = run_forward(cfg, _ReachingAssigns())
    assert states[cfg.exit] == frozenset({3, 5})


def test_run_forward_exception_edge_uses_exception_transfer():
    cfg = _cfg(
        "def f(x):\n"
        "    try:\n"
        "        y = g(x)\n"
        "    finally:\n"
        "        done(x)\n"
    )
    states = run_forward(cfg, _ReachingAssigns())
    # The normal path contributes line 3; the exception path (g raised
    # before binding) contributes nothing — the joined exit state holds
    # exactly the may-information.
    assert states[cfg.exit] == frozenset({3})
    finally_block = next(
        b
        for b in cfg.blocks
        if isinstance(b.node, ast.Expr) and "done" in ast.unparse(b.node)
    )
    # The finally body itself sees the *join* of both ways in.
    assert states[finally_block.index] == frozenset({3})
