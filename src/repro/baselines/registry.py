"""Uniform codec registry over ALP and every baseline.

The benchmark harness, the storage layer and the examples all talk to
compressors through this registry: a :class:`Codec` pairs a compress and
a decompress callable whose encoded object exposes ``size_bits()``.

Names follow the paper's tables: ``alp``, ``lwc+alp`` (the cascading
variant of Table 4's penultimate column), ``gorilla``, ``chimp``,
``chimp128``, ``patas``, ``elf``, ``pde`` and ``zlib(gp)`` /
``lzma(gp)`` standing in for Zstd.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Protocol, runtime_checkable

import numpy as np

from repro.baselines.chimp import chimp_compress, chimp_decompress
from repro.baselines.chimp128 import chimp128_compress, chimp128_decompress
from repro.baselines.elf import elf_compress, elf_decompress
from repro.baselines.fpc import fpc_compress, fpc_decompress
from repro.baselines.gorilla import gorilla_compress, gorilla_decompress
from repro.baselines.gp import gp_compress, gp_decompress
from repro.baselines.lz import lz_compress, lz_decompress
from repro.baselines.patas import patas_compress, patas_decompress
from repro.baselines.pde import pde_compress, pde_decompress
from repro.core.compressor import compress as alp_compress
from repro.core.compressor import decompress as alp_decompress
from repro.encodings.cascade import cascade_compress, cascade_decompress


@runtime_checkable
class Encoded(Protocol):
    """What every codec's compressed object exposes.

    The registry's uniform contract: whatever ``Codec.compress``
    returns, it carries the value count and its compressed footprint.
    """

    count: int

    def size_bits(self) -> int:
        """Compressed size in bits."""
        ...


@dataclass(frozen=True)
class Codec:
    """A named (compress, decompress) pair with a uniform interface."""

    name: str
    compress: Callable[[np.ndarray], Any]
    decompress: Callable[[Any], np.ndarray]
    vectorized: bool  # True when [de]compression is array-at-a-time

    def roundtrip_bits_per_value(self, values: np.ndarray) -> float:
        """Compress, verify losslessness, and return bits per value."""
        encoded = self.compress(values)
        decoded = self.decompress(encoded)
        values = np.ascontiguousarray(values, dtype=np.float64)
        if not np.array_equal(
            decoded.view(np.uint64), values.view(np.uint64)
        ):
            raise AssertionError(f"{self.name} round-trip is not lossless")
        return encoded.size_bits() / max(values.size, 1)


CODECS: dict[str, Codec] = {
    "alp": Codec("alp", alp_compress, alp_decompress, vectorized=True),
    "lwc+alp": Codec(
        "lwc+alp", cascade_compress, cascade_decompress, vectorized=True
    ),
    "gorilla": Codec(
        "gorilla", gorilla_compress, gorilla_decompress, vectorized=False
    ),
    "chimp": Codec(
        "chimp", chimp_compress, chimp_decompress, vectorized=False
    ),
    "chimp128": Codec(
        "chimp128", chimp128_compress, chimp128_decompress, vectorized=False
    ),
    "patas": Codec(
        "patas", patas_compress, patas_decompress, vectorized=False
    ),
    "elf": Codec("elf", elf_compress, elf_decompress, vectorized=False),
    "fpc": Codec("fpc", fpc_compress, fpc_decompress, vectorized=False),
    "pde": Codec("pde", pde_compress, pde_decompress, vectorized=True),
    "zlib(gp)": Codec(
        "zlib(gp)",
        lambda values: gp_compress(values, codec="zlib"),
        gp_decompress,
        vectorized=False,
    ),
    "lzma(gp)": Codec(
        "lzma(gp)",
        lambda values: gp_compress(values, codec="lzma"),
        gp_decompress,
        vectorized=False,
    ),
    "lz4-like(gp)": Codec(
        "lz4-like(gp)", lz_compress, lz_decompress, vectorized=False
    ),
}


def get_codec(name: str) -> Codec:
    """Look up a codec by its table name."""
    try:
        return CODECS[name]
    except KeyError:
        known = ", ".join(sorted(CODECS))
        raise KeyError(f"unknown codec {name!r}; known: {known}") from None


#: Short alias: ``repro.baselines.registry.get(name)``.
get = get_codec


def list_codecs() -> list[str]:
    """All registered codec names, in registry order."""
    return list(CODECS)
