"""Engine mechanics of reprolint: scoping, suppressions, fixtures, CLI."""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint import ALL_RULES
from repro.lint.cli import main as lint_main
from repro.lint.engine import effective_parts, lint_file, lint_paths

ROOT = Path(__file__).resolve().parents[1]
FIXTURES = ROOT / "tests" / "lint_fixtures"


def _codes(violations):
    return sorted({v.rule for v in violations})


# ---------------------------------------------------------------- scoping


def test_effective_parts_strips_src():
    parts = effective_parts(ROOT / "src/repro/core/alp.py", ROOT)
    assert parts == ("repro", "core", "alp.py")


def test_effective_parts_scopes_fixtures_like_src():
    parts = effective_parts(FIXTURES / "repro/encodings/rl1_bad.py", ROOT)
    assert parts == ("repro", "encodings", "rl1_bad.py")


def test_directory_walk_skips_fixtures_unless_explicit():
    implicit = lint_paths([ROOT / "tests"], root=ROOT)
    assert not any("lint_fixtures" in v.path for v in implicit)
    explicit = lint_paths([FIXTURES], root=ROOT)
    assert explicit


# --------------------------------------------------------------- fixtures


ALL_CODES = [f"RL{n}" for n in range(1, 11)]


def test_fixtures_trigger_every_rule_family():
    violations = lint_paths([FIXTURES], root=ROOT)
    assert _codes(violations) == sorted(ALL_CODES)


def test_rl6_fixture_flags_each_blocking_shape():
    violations = lint_file(
        FIXTURES / "repro/server/rl6_bad.py", ROOT, ALL_RULES
    )
    assert all(v.rule == "RL6" for v in violations)
    messages = " | ".join(v.message for v in violations)
    assert "time.sleep()" in messages
    assert "open()" in messages
    assert "socket.create_connection()" in messages
    assert "repro.api compress()" in messages
    # The nested sync helper and the module-level sync function are the
    # allowed shapes — exactly the four coroutine bodies fire.
    assert len(violations) == 4


def test_rl7_fixture_flags_payload_copies_only():
    violations = lint_file(
        FIXTURES / "repro/storage/rl7_bad.py", ROOT, ALL_RULES
    )
    assert all(v.rule == "RL7" for v in violations)
    # Three unjustified copies fire; the copy-free shapes (size
    # construction, literal list, encode form, no-arg) and the
    # suppressed justified copy do not.
    assert len(violations) == 3


def test_rl1_fixture_flags_each_check():
    violations = lint_file(
        FIXTURES / "repro/encodings/rl1_bad.py", ROOT, ALL_RULES
    )
    messages = " | ".join(v.message for v in violations)
    assert "mixes int64 and uint64" in messages
    assert "narrowing astype(uint16)" in messages
    assert "value-wrapping cast" in messages
    assert "shift by 64" in messages


def test_rl2_fixture_exempts_pinned_reference():
    violations = lint_file(FIXTURES / "repro/core/alp.py", ROOT, ALL_RULES)
    assert all(v.rule == "RL2" for v in violations)
    # decode_reference's .tolist() loop is pinned and must not appear.
    assert len(violations) == 2


def test_rl8_fixture_flags_each_discipline_breach():
    violations = lint_file(
        FIXTURES / "repro/server/rl8_bad.py", ROOT, ALL_RULES
    )
    assert all(v.rule == "RL8" for v in violations)
    messages = " | ".join(v.message for v in violations)
    assert "mutated under a lock elsewhere but bare" in messages
    assert "blocking time.sleep()" in messages
    assert "acquired while already held" in messages
    assert "await while holding" in messages
    assert "lock-order cycle" in messages
    assert len(violations) == 5


def test_rl8_clean_fixture_is_silent():
    assert lint_file(FIXTURES / "repro/server/rl8_clean.py", ROOT, ALL_RULES) == []


def test_rl9_fixture_flags_each_linearity_breach():
    violations = lint_file(
        FIXTURES / "repro/server/rl9_bad.py", ROOT, ALL_RULES
    )
    assert all(v.rule == "RL9" for v in violations)
    messages = " | ".join(v.message for v in violations)
    assert "'leaks_on_error'" in messages
    assert "'leaks_on_branch'" in messages
    assert "double release" in messages
    assert "file descriptor 'fd'" in messages
    assert len(violations) == 4


def test_rl9_clean_fixture_is_silent():
    assert lint_file(FIXTURES / "repro/server/rl9_clean.py", ROOT, ALL_RULES) == []


def test_rl10_fixture_flags_each_escape_shape():
    violations = lint_file(
        FIXTURES / "repro/storage/rl10_bad.py", ROOT, ALL_RULES
    )
    assert all(v.rule == "RL10" for v in violations)
    messages = " | ".join(v.message for v in violations)
    assert "'self._last'" in messages
    assert ".append()" in messages
    assert "'_STASH[index]'" in messages
    assert "yielded out of the ``with`` scope" in messages
    assert "captured by closure" in messages
    assert len(violations) == 5


def test_rl10_clean_fixture_is_silent():
    assert (
        lint_file(FIXTURES / "repro/storage/rl10_clean.py", ROOT, ALL_RULES)
        == []
    )


# ------------------------------------------------------------ suppressions


def _lint_snippet(tmp_path: Path, source: str):
    target = tmp_path / "lint_fixtures" / "repro" / "core" / "snippet.py"
    target.parent.mkdir(parents=True)
    target.write_text(source)
    return lint_file(target, tmp_path, ALL_RULES)


def test_trailing_suppression(tmp_path):
    assert _lint_snippet(tmp_path, "assert True  # reprolint: ignore[RL5]\n") == []


def test_standalone_suppression_covers_next_line(tmp_path):
    source = "# reprolint: ignore[RL5]\nassert True\n"
    assert _lint_snippet(tmp_path, source) == []


def test_suppression_is_per_rule(tmp_path):
    violations = _lint_snippet(
        tmp_path, "assert True  # reprolint: ignore[RL4]\n"
    )
    assert _codes(violations) == ["RL5"]


def test_bare_ignore_suppresses_all_rules(tmp_path):
    assert _lint_snippet(tmp_path, "assert True  # reprolint: ignore\n") == []


def test_multi_code_suppression(tmp_path):
    source = "SIZE = 1024  # reprolint: ignore[RL4,RL5]\n"
    assert _lint_snippet(tmp_path, source) == []


def test_skip_file(tmp_path):
    source = "# reprolint: skip-file\nassert True\nSIZE = 1024\n"
    assert _lint_snippet(tmp_path, source) == []


def test_unsuppressed_violation_fires(tmp_path):
    violations = _lint_snippet(tmp_path, "assert True\n")
    assert _codes(violations) == ["RL5"]


def test_suppression_covers_multiline_decorator(tmp_path):
    # The RL4 literal anchors on the decorator's continuation line; the
    # pragma fits on the decorator's closing line.  Both belong to the
    # decorated statement's header span.
    source = (
        "@fancy(\n"
        "    1024,\n"
        ")  # reprolint: ignore[RL4]\n"
        "def sized():\n"
        "    return None\n"
    )
    assert _lint_snippet(tmp_path, source) == []


def test_suppression_on_def_does_not_blanket_body(tmp_path):
    source = (
        "def sized():  # reprolint: ignore[RL5]\n"
        "    assert True\n"
    )
    violations = _lint_snippet(tmp_path, source)
    assert _codes(violations) == ["RL5"]


def test_suppression_on_any_header_line_of_multiline_statement(tmp_path):
    # RL4 anchors the magic literal on the *first* line of the statement;
    # the pragma sits on the last physical line of its header span.
    source = "SIZES = (\n    1024,\n    1024,\n)  # reprolint: ignore[RL4]\n"
    assert _lint_snippet(tmp_path, source) == []


def test_suppression_on_unrelated_following_line_does_not_leak(tmp_path):
    source = "assert True\nx = 1  # reprolint: ignore[RL5]\n"
    violations = _lint_snippet(tmp_path, source)
    assert _codes(violations) == ["RL5"]


# ---------------------------------------------------------------------- CLI


def test_cli_nonzero_on_fixtures(capsys):
    code = lint_main([str(FIXTURES), "--root", str(ROOT)])
    out = capsys.readouterr().out
    assert code == 1
    assert "RL1" in out and "violation(s)" in out


def test_cli_zero_on_clean_file(capsys):
    clean = ROOT / "src/repro/core/constants.py"
    assert lint_main([str(clean), "--root", str(ROOT)]) == 0


def test_cli_json_format(capsys):
    code = lint_main([str(FIXTURES), "--root", str(ROOT), "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema_version"] == 1
    assert payload["rules"] == sorted(ALL_CODES)
    assert {entry["rule"] for entry in payload["violations"]} == set(ALL_CODES)
    assert all(
        {"rule", "path", "line", "col", "message"} <= set(entry)
        for entry in payload["violations"]
    )


def test_cli_select_narrows_rules(capsys):
    code = lint_main(
        [str(FIXTURES), "--root", str(ROOT), "--format", "json",
         "--select", "RL8,RL9,RL10"]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["rules"] == ["RL10", "RL8", "RL9"]
    assert {entry["rule"] for entry in payload["violations"]} == {
        "RL8",
        "RL9",
        "RL10",
    }


def test_cli_select_rejects_unknown_code(capsys):
    assert lint_main([str(FIXTURES), "--select", "RL99"]) == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ALL_CODES:
        assert code in out
