"""Plain-text table rendering for benchmark reports.

Every bench prints its result in the paper's row/column layout with a
``paper`` reference column where the paper published one, so the shape
comparison (who wins, by roughly what factor) is visible in the pytest
output and can be pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.1f}",
    title: str | None = None,
) -> str:
    """Render a fixed-width table.

    Floats go through ``float_format``; everything else through ``str``.
    """
    rendered_rows = []
    for row in rows:
        rendered_rows.append(
            [
                float_format.format(cell)
                if isinstance(cell, float)
                else str(cell)
                for cell in row
            ]
        )
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.rjust(widths[i]) if i else cell.ljust(widths[i])
            for i, cell in enumerate(cells)
        )

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def shape_check(description: str, condition: bool) -> str:
    """One-line PASS/FAIL marker for a paper shape claim."""
    marker = "PASS" if condition else "FAIL"
    return f"[{marker}] {description}"
