"""E3 — Figure 3: how many (e, f) combinations cover a dataset's vectors.

The paper full-searches the best combination for *every* vector of every
dataset and finds the distinct winners per dataset to be tiny: for most
datasets, 5 combinations cover everything, and for several a single
combination is always best.  This is the empirical basis for the k = 5
sampling parameter.

Shape claims asserted:

- on a large majority of decimal datasets, <= 5 combinations cover at
  least 95% of vectors (the paper's k = 5 justification),
- at least a few datasets need only ONE combination.
"""

from __future__ import annotations

from collections import Counter


from repro.bench.harness import bench_n
from repro.bench.report import format_table, shape_check
from repro.core.constants import VECTOR_SIZE
from repro.core.sampler import find_best_combination
from repro.data import DATASET_ORDER, DATASETS


def _best_combinations_per_vector(values):
    winners = Counter()
    for start in range(0, values.size, VECTOR_SIZE):
        chunk = values[start : start + VECTOR_SIZE]
        combo, _ = find_best_combination(chunk)
        winners[combo] += 1
    return winners


def _measure(dataset_cache):
    n = min(bench_n(), 32_768)
    out = {}
    for name in DATASET_ORDER:
        winners = _best_combinations_per_vector(dataset_cache(name, n))
        total = sum(winners.values())
        ranked = winners.most_common()
        coverage_top5 = sum(c for _, c in ranked[:5]) / total
        out[name] = {
            "distinct": len(ranked),
            "top1": ranked[0][1] / total,
            "top5": coverage_top5,
            "best": ranked[0][0],
        }
    return out


def test_fig3_best_combinations(benchmark, emit, dataset_cache):
    stats = benchmark.pedantic(
        lambda: _measure(dataset_cache), rounds=1, iterations=1
    )

    rows = [
        [
            name,
            stats[name]["distinct"],
            f"(e={stats[name]['best'].exponent},f={stats[name]['best'].factor})",
            f"{stats[name]['top1'] * 100:.0f}%",
            f"{stats[name]['top5'] * 100:.0f}%",
        ]
        for name in DATASET_ORDER
    ]

    decimal_names = [n for n in DATASET_ORDER if not DATASETS[n].expects_rd]
    covered = sum(
        1 for n in decimal_names if stats[n]["top5"] >= 0.95
    )
    single = sum(1 for n in DATASET_ORDER if stats[n]["distinct"] == 1)
    checks = [
        shape_check(
            f"top-5 combinations cover >= 95% of vectors on {covered}/"
            f"{len(decimal_names)} decimal datasets (require >= 2/3)",
            covered >= (2 * len(decimal_names)) // 3,
        ),
        shape_check(
            f"{single} datasets need a single combination (paper: several; "
            "require >= 3)",
            single >= 3,
        ),
    ]

    report = format_table(
        ["dataset", "distinct", "best (e,f)", "top-1 cover", "top-5 cover"],
        rows,
        title="Figure 3 — distinct best (e,f) combinations per dataset "
        f"(full search per vector, n={min(bench_n(), 32_768)})",
    )
    report += "\n" + "\n".join(checks)
    emit("fig3_best_combinations", report)
    assert all(c.startswith("[PASS]") for c in checks), "\n" + "\n".join(checks)
