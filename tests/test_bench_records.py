"""Tests for the BENCH_*.json records, harness emitter and CI gate."""

import json

import pytest

from repro.bench.gate import compare_records, run_gate
from repro.bench.records import (
    DOCUMENT_KIND,
    SCHEMA_VERSION,
    BenchRecord,
    build_document,
    read_bench_json,
    validate_document,
    write_bench_json,
)


def make_record(**overrides) -> BenchRecord:
    base = dict(
        dataset="City-Temp",
        codec="alp",
        n=4096,
        bits_per_value=10.5,
        compression_ratio=64.0 / 10.5,
        compress_mbps=300.0,
        decompress_mbps=2000.0,
        compress_rel=0.03,
        decompress_rel=0.2,
        spans={"compressor.compress": {"count": 1, "total_s": 0.01}},
        counters={"compressor.values": 4096},
    )
    base.update(overrides)
    return BenchRecord(**base)


class TestBenchRecord:
    def test_dict_round_trip(self):
        record = make_record()
        assert BenchRecord.from_dict(record.to_dict()) == record

    def test_key(self):
        assert make_record().key == ("City-Temp", "alp")


class TestValidateDocument:
    def test_valid_document_passes(self):
        document = build_document([make_record()], {"n": 4096}, 9000.0)
        assert validate_document(document) == []
        assert document["kind"] == DOCUMENT_KIND
        assert document["schema_version"] == SCHEMA_VERSION

    def test_not_an_object(self):
        assert validate_document([1, 2]) == ["document is not a JSON object"]

    def test_bad_kind_and_version(self):
        document = build_document([make_record()], {}, 9000.0)
        document["kind"] = "other"
        document["schema_version"] = 99
        problems = validate_document(document)
        assert any("kind" in p for p in problems)
        assert any("schema_version" in p for p in problems)

    def test_bad_calibration(self):
        document = build_document([make_record()], {}, 9000.0)
        document["calibration_mbps"] = 0
        assert any("calibration" in p for p in validate_document(document))

    def test_empty_records(self):
        document = build_document([], {}, 9000.0)
        assert any("records" in p for p in validate_document(document))

    def test_nonfinite_numeric_field(self):
        document = build_document([make_record()], {}, 9000.0)
        document["records"][0]["bits_per_value"] = float("nan")
        assert any(
            "bits_per_value" in p for p in validate_document(document)
        )

    def test_negative_numeric_field(self):
        document = build_document([make_record()], {}, 9000.0)
        document["records"][0]["compress_rel"] = -0.1
        assert any("compress_rel" in p for p in validate_document(document))

    def test_duplicate_key(self):
        document = build_document(
            [make_record(), make_record()], {}, 9000.0
        )
        assert any("duplicates" in p for p in validate_document(document))


class TestWriteRead:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        written = write_bench_json(path, [make_record()], {"n": 4096}, 9000.0)
        document, records = read_bench_json(path)
        assert document == written
        assert records == [make_record()]

    def test_write_refuses_invalid(self, tmp_path):
        bad = make_record(bits_per_value=float("inf"))
        with pytest.raises(ValueError):
            write_bench_json(tmp_path / "x.json", [bad], {}, 9000.0)

    def test_read_refuses_invalid(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"kind": "wrong"}))
        with pytest.raises(ValueError):
            read_bench_json(path)


class TestGate:
    def test_identical_records_pass(self):
        record = make_record()
        checks = compare_records(record, record)
        assert [c.metric for c in checks] == [
            "bits_per_value",
            "compress_rel",
            "decompress_rel",
        ]
        assert not any(c.failed for c in checks)

    def test_ratio_regression_fails(self):
        baseline = make_record()
        current = make_record(bits_per_value=10.5 * 1.05)
        checks = {c.metric: c for c in compare_records(current, baseline)}
        assert checks["bits_per_value"].failed

    def test_ratio_improvement_passes(self):
        baseline = make_record()
        current = make_record(bits_per_value=8.0)
        checks = {c.metric: c for c in compare_records(current, baseline)}
        assert not checks["bits_per_value"].failed

    def test_throughput_regression_fails(self):
        baseline = make_record()
        current = make_record(decompress_rel=0.2 * 0.5)
        checks = {c.metric: c for c in compare_records(current, baseline)}
        assert checks["decompress_rel"].failed
        assert not checks["compress_rel"].failed

    def test_throughput_within_tolerance_passes(self):
        baseline = make_record()
        current = make_record(compress_rel=0.03 * 0.8)
        checks = {c.metric: c for c in compare_records(current, baseline)}
        assert not checks["compress_rel"].failed

    def _write(self, path, records):
        write_bench_json(path, records, {"n": 4096}, 9000.0)
        return str(path)

    def test_run_gate_missing_record_is_fatal(self, tmp_path):
        baseline = self._write(
            tmp_path / "base.json",
            [make_record(), make_record(dataset="Stocks-DE")],
        )
        current = self._write(tmp_path / "cur.json", [make_record()])
        checks, problems = run_gate(current, baseline)
        assert len(problems) == 1
        assert "Stocks-DE" in problems[0]

    def test_run_gate_new_record_passes(self, tmp_path):
        baseline = self._write(tmp_path / "base.json", [make_record()])
        current = self._write(
            tmp_path / "cur.json",
            [make_record(), make_record(dataset="Gov/10")],
        )
        checks, problems = run_gate(current, baseline)
        assert problems == []
        assert len(checks) == 3  # only the shared record is compared
        assert not any(c.failed for c in checks)


class TestTiming:
    def test_median_stat_resists_lucky_outlier(self):
        from repro.bench.harness import time_callable

        fake = iter([0.001, 0.010, 0.010, 0.010, 0.010])

        class Clock:
            now = 0.0

        def fn():
            Clock.now += next(fake)

        import repro.bench.harness as harness

        real = harness.time.perf_counter
        harness.time.perf_counter = lambda: Clock.now
        try:
            result = time_callable(fn, 100, repeats=5, warmup=0, stat="median")
        finally:
            harness.time.perf_counter = real
        # One anomalously fast sample must not define the result.
        assert result.seconds == pytest.approx(0.010)

    def test_invalid_stat_rejected(self):
        from repro.bench.harness import time_callable

        with pytest.raises(ValueError):
            time_callable(lambda: None, 1, stat="mean")


class TestSmokeSchema:
    def test_structured_bench_emits_valid_document(self, tmp_path):
        from repro.bench.harness import run_structured_bench

        path = tmp_path / "BENCH_mini.json"
        document, records = run_structured_bench(
            ["City-Temp"], ["alp"], n=4096, repeats=1, out_path=path
        )
        assert validate_document(document) == []
        assert len(records) == 1
        record = records[0]
        assert record.bits_per_value > 0
        assert record.compress_rel > 0
        assert record.decompress_rel > 0
        # Per-stage breakdown is embedded in the record.
        assert "compressor.compress" in record.spans
        assert any(
            name.startswith("compressor.") for name in record.counters
        )
        # And the file round-trips through the validating reader.
        loaded_document, loaded_records = read_bench_json(path)
        assert loaded_records == records


class TestKernelRecords:
    def test_kernel_records_conform_to_schema(self):
        from repro.bench.harness import calibration_mbps
        from repro.bench.kernels import KERNEL_WIDTHS, kernel_bench_records
        from repro.bench.records import build_document

        records = kernel_bench_records(repeats=1)
        # One pack + one ffor record per width, plus the ALP vector
        # record, the two encoded-query records (q-sum, q-cmp), the
        # zone-map table-scan record (q-table) and the cold-read I/O
        # record (kernels/io).
        assert len(records) == 2 * len(KERNEL_WIDTHS) + 5
        by_dataset = {r.dataset: r for r in records}
        for name, counter in (
            ("kernels/q-sum", "query.sum_speedup_vs_decode"),
            ("kernels/q-cmp", "query.cmp_speedup_vs_decode"),
            ("kernels/q-table", "table.scan_speedup_vs_decode"),
        ):
            assert by_dataset[name].counters[counter] > 0
        document = build_document(
            records,
            config={"kernels": True},
            calibration_mbps=calibration_mbps(repeats=1),
        )
        assert validate_document(document) == []
        pack_records = [r for r in records if r.codec == "pack"]
        assert {r.bits_per_value for r in pack_records} == set(
            float(w) for w in KERNEL_WIDTHS
        )
        for record in pack_records:
            assert record.counters["pack.speedup_vs_bitmatrix"] > 0
