"""Tests for serialization and the ALPC column-file format."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compressor import compress_rowgroup, decompress
from repro.data import get_dataset
from repro import api
from repro.storage.columnfile import ColumnFileReader, ColumnFileWriter
from repro.storage.serializer import deserialize_rowgroup, serialize_rowgroup


def bitwise_equal(a, b):
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return a.shape == b.shape and np.array_equal(
        a.view(np.uint64), b.view(np.uint64)
    )


def _roundtrip_rowgroup(values):
    rowgroup, _, _ = compress_rowgroup(np.asarray(values, dtype=np.float64))
    payload = serialize_rowgroup(rowgroup)
    restored, consumed = deserialize_rowgroup(payload)
    assert consumed == len(payload)
    return rowgroup, restored


class TestSerializer:
    def test_alp_rowgroup_roundtrip(self):
        rng = np.random.default_rng(0)
        values = np.round(rng.uniform(0, 100, 5000), 2)
        original, restored = _roundtrip_rowgroup(values)
        assert restored.scheme == "alp"
        from repro.core.compressor import CompressedRowGroups
        from repro.storage.serializer import empty_stats

        col = CompressedRowGroups(
            rowgroups=(restored,),
            count=restored.count,
            vector_size=1024,
            stats=empty_stats(),
        )
        assert bitwise_equal(decompress(col), values)

    def test_alprd_rowgroup_roundtrip(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(0, 1, 4096) * math.pi
        original, restored = _roundtrip_rowgroup(values)
        assert restored.scheme == "alprd"
        from repro.core.compressor import CompressedRowGroups
        from repro.storage.serializer import empty_stats

        col = CompressedRowGroups(
            rowgroups=(restored,),
            count=restored.count,
            vector_size=1024,
            stats=empty_stats(),
        )
        assert bitwise_equal(decompress(col), values)

    def test_exceptions_survive(self):
        values = np.round(np.linspace(0, 10, 2048), 2)
        values[7] = math.nan
        values[1030] = math.inf
        _, restored = _roundtrip_rowgroup(values)
        assert restored.alp is not None
        total_exc = sum(v.exception_count for v in restored.alp.vectors)
        assert total_exc >= 2

    def test_candidates_survive(self):
        rng = np.random.default_rng(2)
        values = np.round(rng.uniform(0, 100, 3000), 2)
        original, restored = _roundtrip_rowgroup(values)
        assert restored.alp.candidates == original.alp.candidates

    def test_size_bits_consistent(self):
        rng = np.random.default_rng(3)
        values = np.round(rng.uniform(0, 100, 3000), 2)
        original, restored = _roundtrip_rowgroup(values)
        assert original.size_bits() == restored.size_bits()

    def test_garbage_scheme_rejected(self):
        with pytest.raises(ValueError):
            deserialize_rowgroup(b"\xff" + b"\x00" * 10)

    @given(
        st.lists(
            st.floats(allow_nan=True, allow_infinity=True, width=64),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_roundtrip(self, xs):
        values = np.array(xs, dtype=np.float64)
        _, restored = _roundtrip_rowgroup(values)
        from repro.core.compressor import CompressedRowGroups
        from repro.storage.serializer import empty_stats

        col = CompressedRowGroups(
            rowgroups=(restored,),
            count=restored.count,
            vector_size=1024,
            stats=empty_stats(),
        )
        assert bitwise_equal(decompress(col), values)


class TestColumnFile:
    def test_write_read_roundtrip(self, tmp_path):
        values = get_dataset("City-Temp", n=250_000)
        path = tmp_path / "city.alpc"
        api.write(path, values)
        assert bitwise_equal(api.read(path), values)

    def test_file_smaller_than_raw(self, tmp_path):
        values = get_dataset("City-Temp", n=250_000)
        path = tmp_path / "city.alpc"
        api.write(path, values)
        assert path.stat().st_size < values.nbytes / 3

    def test_rowgroup_random_access(self, tmp_path):
        values = get_dataset("Stocks-USA", n=300_000)
        path = tmp_path / "stocks.alpc"
        api.write(path, values)
        reader = ColumnFileReader(path)
        assert reader.rowgroup_count == 3
        assert reader.value_count == 300_000
        middle = reader.read_rowgroup(1)
        assert bitwise_equal(middle, values[102_400:204_800])

    def test_zone_map_skipping(self, tmp_path):
        # Three row-groups with disjoint ranges -> a range predicate
        # touching one of them must skip the other two.
        parts = [
            np.round(np.random.default_rng(i).uniform(lo, lo + 10, 102_400), 1)
            for i, lo in enumerate((0.0, 100.0, 200.0))
        ]
        values = np.concatenate(parts)
        path = tmp_path / "ranges.alpc"
        api.write(path, values)
        reader = ColumnFileReader(path)
        assert reader.count_skippable(100.0, 110.0) == 2
        hits = list(reader.scan_range(100.0, 110.0))
        assert len(hits) == 1
        assert hits[0][0] == 1

    def test_non_finite_rowgroups_never_skipped(self, tmp_path):
        values = np.round(np.linspace(0, 10, 102_400), 2)
        values[5] = math.nan
        path = tmp_path / "nan.alpc"
        api.write(path, values)
        reader = ColumnFileReader(path)
        assert reader.count_skippable(1e9, 2e9) == 0  # inconclusive zone map

    def test_empty_column(self, tmp_path):
        path = tmp_path / "empty.alpc"
        api.write(path, np.empty(0))
        reader = ColumnFileReader(path)
        assert reader.rowgroup_count == 0
        assert reader.read_all().size == 0

    def test_streamed_writes(self, tmp_path):
        rng = np.random.default_rng(4)
        chunk_a = np.round(rng.uniform(0, 10, 102_400), 1)
        chunk_b = np.round(rng.uniform(0, 10, 50_000), 1)
        path = tmp_path / "streamed.alpc"
        with ColumnFileWriter(path) as writer:
            writer.write_values(chunk_a)
            writer.write_values(chunk_b)
        combined = np.concatenate([chunk_a, chunk_b])
        assert bitwise_equal(api.read(path), combined)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.alpc"
        path.write_bytes(b"not a column file")
        with pytest.raises(ValueError):
            ColumnFileReader(path)

    def test_rd_rowgroups_in_file(self, tmp_path):
        values = get_dataset("POI-lat", n=120_000)
        path = tmp_path / "poi.alpc"
        api.write(path, values)
        assert bitwise_equal(api.read(path), values)
