"""repro.shard — a sharded serving tier over :mod:`repro.server`.

A coordinator/router that partitions every registered dataset by
row-group range across N ``repro.server`` backends and speaks the same
``ALPS`` framed protocol on both sides:

- :mod:`repro.shard.placement` — the consistent-hash ring (virtual
  nodes, stable blake2b hashing), partitioning, and the shard map;
- :mod:`repro.shard.pool` — the health-checked backend connection pool
  with ejection / probation re-admission;
- :mod:`repro.shard.merge` — deterministic scatter-response merging
  (ordered scan concatenation, order-preserving sum folding,
  quarantine-tally degradation for missing shards);
- :mod:`repro.shard.router` — the router service itself: scatter-gather
  with per-shard deadline budgets and replica failover, served through
  a stock :class:`~repro.server.service.ReproServer` frontend.

Semantics (placement, deadline budgeting, failover, the degradation
contract) are documented in ``docs/SHARDING.md``; ``alp-repro
shard-serve`` is the CLI entry point.
"""

from __future__ import annotations

from repro.shard.merge import PartResult, merge_scan, merge_sum
from repro.shard.placement import (
    HashRing,
    Partition,
    build_shard_map,
    partition_column,
    stable_hash,
)
from repro.shard.pool import BackendPool
from repro.shard.router import (
    RouterConfig,
    RouterHandle,
    ShardRouter,
    run_router_in_thread,
)

__all__ = [
    "BackendPool",
    "HashRing",
    "PartResult",
    "Partition",
    "RouterConfig",
    "RouterHandle",
    "ShardRouter",
    "build_shard_map",
    "merge_scan",
    "merge_sum",
    "partition_column",
    "run_router_in_thread",
    "stable_hash",
]
