"""Query helpers for the end-to-end benchmarks (Table 6 / Figure 6).

Three queries, matching the paper:

- :func:`scan_query` — decompress the whole column through the scan
  operator (materializing every vector, discarding it);
- :func:`sum_query` — SUM aggregation, through the encoded-domain fast
  path when the source registers one (late materialization: packed
  integers are reduced and scaled once per vector, doubles are never
  built), falling back to scan + vectorized float summing;
- :func:`comp_query` — compress the column and serialize it, including
  the metadata the paper mentions (offsets, parameters).

:func:`range_sum_query` / :func:`range_count_query` add the filtered
aggregates: range predicates are translated to exact integer bounds and
evaluated fused inside the unpack loop on encoded sources, with
FFOR-header (and, for file sources, zone-map) skipping.

Fast paths are resolved through :mod:`repro.query.dispatch` — the
engine never names a concrete source type; sources register their own
handlers.  Every query also has an explicit ``*_decoded`` form, which
is both the fallback and the oracle the property tests compare against.

:func:`run_partitioned` executes a query over N partitions with a thread
pool; numpy kernels release the GIL for part of their work, so the
ALP-style vectorized sources see real scaling while the per-value Python
codecs stay serialized — a faithful, if exaggerated, analogue of
"CPU-bound codecs scale flat".
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable

import numpy as np

from repro import obs
from repro.query.dispatch import dispatch
from repro.query.operators import (
    AggregateOperator,
    FilterOperator,
    ScanOperator,
)
from repro.query.sources import ColumnSource, make_source


def scan_query(source: ColumnSource) -> int:
    """Decompress every vector; returns the number of values scanned."""
    with obs.span("query.scan"):
        scanned = 0
        vectors = 0
        for vector in ScanOperator(source):
            scanned += vector.size
            vectors += 1
        if obs.ENABLED:
            obs.metrics.counter_add("query.vectors_scanned", vectors)
            obs.metrics.counter_add("query.values_scanned", scanned)
        return scanned


def sum_query(source: ColumnSource) -> float:
    """SUM aggregation; encoded-domain when the source supports it."""
    with obs.span("query.sum"):
        result = float(
            dispatch("sum", source, default=sum_query_decoded)
        )
    obs.counter_add("query.sum_queries")
    return result


def sum_query_decoded(source: ColumnSource) -> float:
    """The decode-then-aggregate SUM: fallback path and test oracle."""
    return AggregateOperator(ScanOperator(source), kind="sum").result()


def range_sum_query(
    source: ColumnSource, low: float, high: float
) -> tuple[float, int]:
    """Filtered SUM: ``(sum, count)`` of values in ``[low, high]``."""
    with obs.span("query.range_sum"):
        result = dispatch(
            "range_sum",
            source,
            low,
            high,
            default=range_sum_query_decoded,
        )
    obs.counter_add("query.range_queries")
    return float(result[0]), int(result[1])


def range_sum_query_decoded(
    source: ColumnSource, low: float, high: float
) -> tuple[float, int]:
    """Decode-then-filter-then-sum: fallback path and test oracle."""
    total = 0.0
    count = 0
    for vector in FilterOperator(ScanOperator(source), low, high):
        total += float(vector.sum())
        count += vector.size
    return total, count


def range_count_query(
    source: ColumnSource, low: float, high: float
) -> int:
    """COUNT of values in ``[low, high]``."""
    with obs.span("query.range_count"):
        result = int(
            dispatch(
                "range_count",
                source,
                low,
                high,
                default=range_count_query_decoded,
            )
        )
    obs.counter_add("query.range_queries")
    return result


def range_count_query_decoded(
    source: ColumnSource, low: float, high: float
) -> int:
    """Decode-then-filter-then-count: fallback path and test oracle."""
    count = 0
    for vector in FilterOperator(ScanOperator(source), low, high):
        count += vector.size
    return count


def comp_query(codec_name: str, values: np.ndarray) -> int:
    """Compress ``values`` under a codec; returns compressed bits.

    Sources that serialize to an on-disk layout (ALP) register a "comp"
    handler reporting serialized bits including metadata; everything
    else reports its in-memory compressed footprint.
    """
    with obs.span("query.comp"):
        source = make_source(codec_name, values)
        return int(
            dispatch("comp", source, default=_comp_in_memory_bits)
        )


def _comp_in_memory_bits(source: ColumnSource) -> int:
    return source.compressed_bits


def run_partitioned(
    source: ColumnSource,
    query: Callable[[ColumnSource], float],
    threads: int,
) -> list[float]:
    """Run ``query`` over ``threads`` partitions of ``source`` in parallel.

    Returns the per-partition results (sum them for a global aggregate).
    """
    partitions = source.partition(threads)
    if len(partitions) == 1:
        return [query(partitions[0])]
    with ThreadPoolExecutor(max_workers=len(partitions)) as pool:
        return list(pool.map(query, partitions))
