"""Registry-driven dispatch of query ops to source-specific fast paths.

The engine used to hard-code ``isinstance(source, AlpSource)`` checks to
pick fast paths, which meant every new encoded source required editing
the engine.  Instead, sources (or the modules that define them) register
handlers here::

    register("sum", MyEncodedSource, my_fused_sum)

and the engine resolves ``dispatch(op, source, ...)`` at query time.
Lookup is MRO-aware — the handler registered for the most specific class
of the source wins, so a subclass of an encoded source inherits its fast
path automatically and may override it.  A handler can return
``NotImplemented`` to decline a particular call (e.g. an input shape it
does not support), in which case the next-most-specific handler — and
ultimately the engine's decode-then-execute default — runs instead.
"""

from __future__ import annotations

from typing import Any, Callable

from repro import obs

#: A fast-path handler: ``(source, *op_args) -> result`` or
#: ``NotImplemented`` to fall through.
Handler = Callable[..., Any]

#: op name -> [(source type, handler)], registration order.
_registry: dict[str, list[tuple[type, Handler]]] = {}


def register(
    op: str, source_type: type, handler: Handler | None = None
) -> Callable[[Handler], Handler]:
    """Register ``handler`` as the ``op`` fast path for ``source_type``.

    Usable directly (``register("sum", AlpSource, fused_sum)``) or as a
    decorator (``@register("sum", AlpSource)``).  Re-registering the
    same (op, type) pair replaces the previous handler — latest wins —
    so tests can stub fast paths without global state leaking.
    """

    def add(fn: Handler) -> Handler:
        entries = _registry.setdefault(op, [])
        entries[:] = [(t, h) for t, h in entries if t is not source_type]
        entries.append((source_type, fn))
        return fn

    if handler is not None:
        return add(handler)
    return add


def handlers_for(op: str, source: object) -> list[Handler]:
    """All handlers applicable to ``source``, most-specific-first.

    Specificity is the position of the registered class in
    ``type(source).__mro__``; classes not in the MRO do not match.
    """
    entries = _registry.get(op, [])
    mro = type(source).__mro__
    matched = [
        (mro.index(registered), handler)
        for registered, handler in entries
        if registered in mro
    ]
    matched.sort(key=lambda pair: pair[0])
    return [handler for _, handler in matched]


def dispatch(
    op: str, source: object, *args: Any, default: Handler
) -> Any:
    """Run the best registered fast path, falling back to ``default``.

    Handlers are tried most-specific-first; each may return
    ``NotImplemented`` to decline.  ``default`` receives the same
    ``(source, *args)`` and must always produce a result.
    """
    for handler in handlers_for(op, source):
        result = handler(source, *args)
        if result is not NotImplemented:
            obs.counter_add("query.dispatch_fastpath")
            return result
    obs.counter_add("query.dispatch_fallback")
    return default(source, *args)


def registered_ops() -> dict[str, tuple[type, ...]]:
    """Snapshot of the registry: op name -> registered source types."""
    return {
        op: tuple(t for t, _ in entries)
        for op, entries in _registry.items()
    }
