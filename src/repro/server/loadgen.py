"""Closed-loop load generator for a running repro server.

``alp-repro loadgen`` drives N concurrent worker threads, each with its
own :class:`~repro.server.client.ServerClient`, in a *closed loop*: a
worker issues its next request the moment the previous response lands,
so offered load tracks server capacity instead of piling an open-loop
backlog onto the admission queue.

Each worker cycles through an op mix (``scan``/``sum``/``comp`` by
default) against the datasets the server advertises.  Per-request
latency is recorded; the run reports p50/p95/p99/max, throughput
(requests/s and decoded values/s), and the per-code error tally —
``overloaded`` responses count as *backpressure*, not failures, because
an explicit rejection is the protocol working as designed.

Results can be persisted as a schema-valid ``BENCH_*.json`` document
(see :mod:`repro.bench.records`): served scan throughput maps into the
required MB/s fields and the latency percentiles travel in the
free-form ``counters`` dict of the single record.
"""

from __future__ import annotations

import bisect
import itertools
import random
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.bench.records import BenchRecord, write_bench_json
from repro.concurrency import create_lock
from repro.server.client import ServerClient, ServerError

#: Default operation mix, cycled per worker request.
DEFAULT_OPS = ("scan", "sum", "sum", "scan")


@dataclass
class LoadgenResult:
    """What one loadgen run measured."""

    requests: int = 0
    errors: dict[str, int] = field(default_factory=dict)
    overloaded: int = 0
    values_scanned: int = 0
    elapsed_s: float = 0.0
    latencies_s: list[float] = field(default_factory=list)
    #: Client-process memory accounting (see the trace pass in
    #: :func:`run_loadgen`): ``None`` when not measured.
    peak_rss_bytes: int | None = None
    large_allocs: int | None = None

    @property
    def error_count(self) -> int:
        """Total non-backpressure errors."""
        return sum(self.errors.values())

    def percentile(self, q: float) -> float:
        """Latency percentile (seconds) by nearest-rank; 0.0 if empty."""
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        rank = min(len(ordered) - 1, int(q / 100.0 * len(ordered)))
        return ordered[rank]

    def summary(self) -> dict[str, object]:
        """JSON-ready run summary (the CLI prints this)."""
        rps = self.requests / self.elapsed_s if self.elapsed_s else 0.0
        return {
            "requests": self.requests,
            "errors": dict(sorted(self.errors.items())),
            "error_count": self.error_count,
            "overloaded": self.overloaded,
            "values_scanned": self.values_scanned,
            "elapsed_s": self.elapsed_s,
            "requests_per_s": rps,
            "latency_p50_ms": self.percentile(50) * 1e3,
            "latency_p95_ms": self.percentile(95) * 1e3,
            "latency_p99_ms": self.percentile(99) * 1e3,
            "latency_max_ms": (
                max(self.latencies_s) * 1e3 if self.latencies_s else 0.0
            ),
            "peak_rss_bytes": self.peak_rss_bytes,
            "large_allocs": self.large_allocs,
        }


@dataclass(frozen=True)
class LoadgenConfig:
    """One loadgen run's shape."""

    host: str = "127.0.0.1"
    port: int = 0
    clients: int = 4
    requests_per_client: int = 50
    ops: tuple[str, ...] = DEFAULT_OPS
    deadline_ms: float | None = None
    #: Retry budget for ``overloaded`` rejections, per request.
    overload_retries: int = 0
    retry_sleep_s: float = 0.01
    #: Zipf exponent for target selection: 0.0 (default) keeps the
    #: legacy round-robin trace; ``s > 0`` draws each request's target
    #: with probability ∝ 1/rank^s (rank = discovery order), so a few
    #: hot keys dominate — the cache-friendly skew real serving sees,
    #: and what makes warm-cache-aware shard routing measurable.
    zipf_s: float = 0.0
    #: Seed for the zipfian draw (per-worker streams derive from it),
    #: so a trace is reproducible across runs and machines.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError(f"clients must be >= 1, got {self.clients}")
        if self.requests_per_client < 1:
            raise ValueError(
                "requests_per_client must be >= 1, "
                f"got {self.requests_per_client}"
            )
        bad = set(self.ops) - {"scan", "sum", "comp"}
        if bad:
            raise ValueError(f"unsupported loadgen ops: {sorted(bad)}")
        if self.zipf_s < 0:
            raise ValueError(f"zipf_s must be >= 0, got {self.zipf_s}")


def _zipf_picker(
    config: LoadgenConfig, worker_index: int, n_targets: int
) -> "Callable[[int], int] | None":
    """A per-worker target picker under zipfian skew, or ``None``.

    Each worker gets its own ``random.Random`` stream derived from the
    run seed, so a multi-worker trace is reproducible yet workers do
    not march in lockstep over the same hot key.
    """
    if config.zipf_s == 0.0 or n_targets <= 1:
        return None
    rng = random.Random(config.seed * 1000 + worker_index)
    weights = [1.0 / (rank**config.zipf_s) for rank in range(1, n_targets + 1)]
    cumulative = list(itertools.accumulate(weights))
    total = cumulative[-1]

    def pick(_request_index: int) -> int:
        return bisect.bisect(cumulative, rng.random() * total)

    return pick


def _issue(
    client: ServerClient, op: str, dataset: str, column: str | None
) -> int:
    """One request; returns the number of values it touched server-side."""
    if op == "scan":
        values, _ = client.scan(dataset, column)
        return int(values.size)
    if op == "sum":
        _, fields = client.sum(dataset, column)
        return int(fields.get("count", 0))  # type: ignore[arg-type]
    response = client.comp(dataset, column)
    return int(response.get("count", 0))  # type: ignore[arg-type]


def _worker(
    config: LoadgenConfig,
    targets: list[tuple[str, str | None]],
    worker_index: int,
    result: LoadgenResult,
    lock: threading.Lock,
) -> None:
    pick = _zipf_picker(config, worker_index, len(targets))
    with ServerClient(
        config.host, config.port, deadline_ms=config.deadline_ms
    ) as client:
        for i in range(config.requests_per_client):
            op = config.ops[(worker_index + i) % len(config.ops)]
            target_index = (
                pick(i) if pick else (worker_index + i) % len(targets)
            )
            dataset, column = targets[target_index]
            start = time.perf_counter()
            scanned = 0
            error_code: str | None = None
            retries_left = config.overload_retries
            while True:
                try:
                    scanned = _issue(client, op, dataset, column)
                except ServerError as exc:
                    if exc.is_overloaded:
                        with lock:
                            result.overloaded += 1
                        if retries_left > 0:
                            retries_left -= 1
                            time.sleep(config.retry_sleep_s)
                            continue
                    error_code = exc.code
                break
            elapsed = time.perf_counter() - start
            with lock:
                result.requests += 1
                result.latencies_s.append(elapsed)
                result.values_scanned += scanned
                if error_code is not None:
                    result.errors[error_code] = (
                        result.errors.get(error_code, 0) + 1
                    )


def discover_targets(
    config: LoadgenConfig,
) -> list[tuple[str, str | None]]:
    """Ask the server which (dataset, column) pairs it serves."""
    with ServerClient(config.host, config.port) as client:
        described = client.datasets()
    targets: list[tuple[str, str | None]] = []
    for dataset, columns in described.items():
        # The `datasets` op body maps dataset -> {column: metadata}.
        if isinstance(columns, dict) and columns:
            targets.extend((dataset, str(column)) for column in columns)
        else:
            targets.append((dataset, None))
    if not targets:
        raise RuntimeError("server advertises no datasets to load-test")
    return targets


def run_loadgen(
    config: LoadgenConfig,
    targets: list[tuple[str, str | None]] | None = None,
) -> LoadgenResult:
    """Run the closed loop; returns the aggregated result."""
    if targets is None:
        targets = discover_targets(config)
    result = LoadgenResult()
    lock = create_lock("run_loadgen.result_lock")
    threads = [
        threading.Thread(
            target=_worker,
            args=(config, targets, index, result, lock),
            name=f"loadgen-{index}",
        )
        for index in range(config.clients)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    result.elapsed_s = time.perf_counter() - start

    # Memory accounting rides after the timed run, so tracemalloc's
    # interpreter hooks never inflate a measured latency.  The traced
    # pass replays one request of each op against the first target and
    # keeps the worst per-request large-allocation count — the
    # client-side copy trajectory (receive buffers, decoded responses).
    from repro.bench.harness import peak_rss_bytes, traced_large_allocs

    result.peak_rss_bytes = peak_rss_bytes()
    dataset, column = targets[0]
    with ServerClient(
        config.host, config.port, deadline_ms=config.deadline_ms
    ) as client:
        result.large_allocs = max(
            traced_large_allocs(lambda: _issue(client, op, dataset, column))
            for op in dict.fromkeys(config.ops)
        )
    return result


def write_loadgen_json(
    path: str | Path,
    config: LoadgenConfig,
    result: LoadgenResult,
    record_name: str = "loadgen",
) -> dict:
    """Persist a run as a schema-valid ``BENCH_*.json`` document.

    The bench schema is (dataset, codec)-shaped; a serving run maps onto
    it as one record: decoded-scan throughput fills the MB/s fields
    (8 bytes per served float64 value), the compression-shape fields are
    0.0 (allowed by the schema, meaning "not measured here"), and the
    latency percentiles ride in the free-form ``counters`` dict.

    ``decompress_rel`` is served MB/s divided by the same-process
    :func:`~repro.bench.harness.calibration_mbps` reference — the
    machine-relative number the regression gate actually compares, so a
    routed-serving baseline checked into the repo holds across CI
    runners of different speeds.  (Baselines written before this field
    was populated carry ``0.0`` there; the gate reads an upgrade from
    0.0 as an improvement, so they stay valid.)

    ``record_name`` distinguishes single-node (``loadgen``) from routed
    (e.g. ``shard_loadgen``) runs — gate comparisons key on it.
    """
    from repro.bench.harness import calibration_mbps

    summary = result.summary()
    served_mbps = (
        result.values_scanned * 8 / 1e6 / result.elapsed_s
        if result.elapsed_s
        else 0.0
    )
    calibration = calibration_mbps()
    record = BenchRecord(
        dataset="served",
        codec=record_name,
        n=max(result.requests, 1),
        bits_per_value=0.0,
        compression_ratio=0.0,
        compress_mbps=0.0,
        decompress_mbps=served_mbps,
        compress_rel=0.0,
        decompress_rel=served_mbps / calibration if calibration else 0.0,
        spans={},
        counters=summary,
        peak_rss_bytes=result.peak_rss_bytes,
        large_allocs=result.large_allocs,
    )
    return write_bench_json(
        path,
        [record],
        config={
            "mode": record_name,
            "clients": config.clients,
            "requests_per_client": config.requests_per_client,
            "ops": list(config.ops),
            "deadline_ms": config.deadline_ms,
            "zipf_s": config.zipf_s,
            "seed": config.seed,
        },
        calibration_mbps=calibration,
    )
