"""A shared decoded-vector LRU cache with a byte budget.

Serving makes decode work *repeat*: the same hot row-groups are decoded
for every scan/sum that touches them.  This cache memoizes decoded
row-group values keyed by ``(file, rowgroup_index)`` under a byte
budget, evicting least-recently-used entries, so a warm server pays
decompression once per resident row-group instead of once per request.

The cache is deliberately storage-agnostic: :meth:`get_or_load` takes a
loader callable, so the same instance backs the server's request
handlers *and* the local query engine
(``FileColumnSource(cache=...)`` / ``ColumnFileReader`` scans accept a
cache).  Entries are marked read-only before insertion — every consumer
sees the same array, so a writable view would let one request corrupt
another's results.

Thread-safety: bookkeeping (map, LRU order, counters) is lock-protected;
the *loader runs outside the lock*, so concurrent misses on different
keys decode in parallel.  Two threads missing the same key concurrently
may both run the loader — the first insertion wins, both get correct
values, and the duplicate work is counted as a second miss (this is a
cache, not a deduplicator).

Counters are mirrored into :mod:`repro.obs` when enabled
(``cache.hits`` / ``cache.misses`` / ``cache.evictions``, gauge
``cache.bytes``) and always available locally via :meth:`stats`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Hashable

import numpy as np

from repro import obs
from repro.concurrency import create_lock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.server.bufferpool import BufferPool

#: Cache keys: ``(file path, row-group index)`` for column files; any
#: hashable works (the cache never interprets the key).
CacheKey = Hashable


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of the cache counters."""

    hits: int
    misses: int
    evictions: int
    entries: int
    bytes_used: int
    byte_budget: int

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": self.entries,
            "bytes_used": self.bytes_used,
            "byte_budget": self.byte_budget,
            "hit_rate": self.hit_rate,
        }


class DecodedVectorCache:
    """Byte-budgeted, thread-safe LRU over decoded float64 row-groups.

    ``pool``, when given, is a :class:`~repro.server.bufferpool.BufferPool`
    that :meth:`load_into` draws fill targets from — decode-into-buffer
    cache fills instead of fresh allocations.  Inserted targets are
    *transferred* to the cache (made read-only, never recycled), so a
    pool-fed cache is safe to share with in-flight responses.
    """

    def __init__(
        self,
        byte_budget: int = 256 * 1024 * 1024,
        pool: "BufferPool | None" = None,
    ) -> None:
        if byte_budget < 0:
            raise ValueError(f"byte_budget must be >= 0, got {byte_budget}")
        self._budget = byte_budget
        self._pool = pool
        self._lock = create_lock("DecodedVectorCache._lock")
        self._entries: OrderedDict[CacheKey, np.ndarray] = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def byte_budget(self) -> int:
        """The configured budget in bytes."""
        return self._budget

    def get(self, key: CacheKey) -> np.ndarray | None:
        """The cached values for ``key`` (refreshing LRU), or ``None``."""
        with self._lock:
            values = self._entries.get(key)
            if values is None:
                self._misses += 1
                obs.counter_add("cache.misses")
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            obs.counter_add("cache.hits")
            return values

    def put(self, key: CacheKey, values: np.ndarray) -> np.ndarray:
        """Insert ``values`` under ``key``; returns the resident array.

        The array is made read-only (consumers share it).  Values larger
        than the whole budget are returned uncached.  When the key is
        already present the resident entry wins — concurrent loaders of
        the same key converge on one array.
        """
        values = np.ascontiguousarray(values, dtype=np.float64)
        values.setflags(write=False)
        size = int(values.nbytes)
        if size > self._budget:
            return values
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                return existing
            self._entries[key] = values
            self._bytes += size
            while self._bytes > self._budget and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= int(evicted.nbytes)
                self._evictions += 1
                obs.counter_add("cache.evictions")
            obs.gauge_set("cache.bytes", self._bytes)
            return values

    def get_or_load(
        self, key: CacheKey, loader: Callable[[], np.ndarray]
    ) -> np.ndarray:
        """Return the cached values or run ``loader`` and cache its result.

        The loader executes outside the lock; exceptions propagate
        uncached (a corrupt row-group must not poison the cache).
        """
        values = self.get(key)
        if values is not None:
            return values
        return self.put(key, loader())

    def load_into(
        self,
        key: CacheKey,
        count: int,
        fill: Callable[[np.ndarray], None],
    ) -> np.ndarray:
        """Like :meth:`get_or_load`, with a decode-into-buffer fill.

        On a miss, a float64 target of ``count`` values is drawn from
        the attached pool (or freshly allocated without one), ``fill``
        decodes into it in place, and the filled buffer is inserted.
        A buffer that becomes the resident entry is *transferred* to
        the cache; one that loses an insertion race (or exceeds the
        cache budget) goes back to the pool.  ``fill`` runs outside
        the lock; its exceptions propagate uncached, returning the
        buffer to the pool.
        """
        values = self.get(key)
        if values is not None:
            return values
        pool = self._pool
        if pool is None:
            buffer = np.empty(count, dtype=np.float64)
            fill(buffer)
            return self.put(key, buffer)
        buffer = pool.acquire(count)
        try:
            fill(buffer)
            resident = self.put(key, buffer)
        except BaseException:
            # put() may have already frozen the buffer; it must go back
            # writable or the next decode-into fails.  The nested
            # finally keeps the release on every path — RL9 checks this
            # shape statically.
            try:
                buffer.setflags(write=True)
            finally:
                pool.release(buffer)
            raise
        if resident is buffer:
            # The cache (or, for over-budget arrays, the caller) now
            # owns the buffer; it is read-only and must never be handed
            # out as a decode target again.
            pool.transfer(buffer)
        else:
            try:
                buffer.setflags(write=True)
            finally:
                pool.release(buffer)
        return resident

    def invalidate(self, key: CacheKey) -> bool:
        """Drop one entry; returns whether it was present."""
        with self._lock:
            values = self._entries.pop(key, None)
            if values is None:
                return False
            self._bytes -= int(values.nbytes)
            obs.gauge_set("cache.bytes", self._bytes)
            return True

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            obs.gauge_set("cache.bytes", 0)

    def stats(self) -> CacheStats:
        """A consistent snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
                bytes_used=self._bytes,
                byte_budget=self._budget,
            )
