"""Clean counterexample for RL10: borrowed, function-local views only."""


def decode_values(reader, index, deserialize):
    view = reader.rowgroup_payload(index)
    return deserialize(view)  # borrow: the decoded arrays own their data


def slice_locally(reader, index):
    view = reader.rowgroup_payload(index)
    header, body = view[:16], view[16:]
    return len(header) + len(body)


class OwnedReader:
    """A reader yielding views of *itself* is the owner's documented API."""

    def __init__(self, count):
        self._count = count

    def rowgroup_payload(self, index):
        raise NotImplementedError

    def iter_payloads(self):
        index = 0
        while index < self._count:
            view = self.rowgroup_payload(index)
            yield view
            index += 1
