"""Tests for the 32-bit ALP / ALP_rd ports (Section 4.4)."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.float32 import (
    alp32_analyze,
    alp32_decode_vector,
    alp32_encode_vector,
    compress_f32,
    decompress_f32,
    fast_round_f32,
    find_best_combination_f32,
)


def bitwise_equal32(a, b):
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    return a.shape == b.shape and np.array_equal(
        a.view(np.uint32), b.view(np.uint32)
    )


class TestFastRoundF32:
    def test_basic(self):
        values = np.array([0.5, 1.5, 2.4, -2.6], dtype=np.float32)
        assert fast_round_f32(values).tolist() == [0, 2, 2, -3]

    def test_nonfinite_no_crash(self):
        out = fast_round_f32(
            np.array([math.nan, math.inf], dtype=np.float32)
        )
        assert out.shape == (2,)


class TestAlp32:
    def test_decimal_floats_encode(self):
        values = np.round(
            np.random.default_rng(0).uniform(0, 100, 256), 2
        ).astype(np.float32)
        e, f, _ = find_best_combination_f32(values)
        encoded, exceptions = alp32_analyze(values, e, f)
        assert exceptions.mean() < 0.2

    def test_vector_roundtrip(self):
        values = np.round(
            np.random.default_rng(1).uniform(-50, 50, 1024), 1
        ).astype(np.float32)
        e, f, _ = find_best_combination_f32(values)
        vector = alp32_encode_vector(values, e, f)
        assert bitwise_equal32(alp32_decode_vector(vector), values)

    def test_exceptions_patched(self):
        values = np.round(
            np.random.default_rng(2).uniform(0, 10, 128), 1
        ).astype(np.float32)
        values[5] = np.float32(math.pi)
        e, f, _ = find_best_combination_f32(values)
        vector = alp32_encode_vector(values, e, f)
        assert vector.exception_count >= 1
        assert bitwise_equal32(alp32_decode_vector(vector), values)


class TestCompressF32:
    def test_decimal_column_uses_alp(self):
        values = np.round(
            np.random.default_rng(3).uniform(0, 100, 20_000), 1
        ).astype(np.float32)
        column = compress_f32(values)
        assert column.scheme == "alp"
        assert bitwise_equal32(decompress_f32(column), values)
        # §4.4: same integers as the 64-bit case but 32-bit base ->
        # clearly compressed.
        assert column.bits_per_value() < 20

    def test_ml_weights_use_rd(self):
        rng = np.random.default_rng(4)
        weights = rng.normal(0, 0.02, 20_000).astype(np.float32)
        column = compress_f32(weights)
        assert column.scheme == "alprd"
        assert bitwise_equal32(decompress_f32(column), weights)
        # Table 7: ~28 bits/value on weights — i.e. some compression.
        assert column.bits_per_value() < 32

    def test_force_scheme(self):
        values = np.round(
            np.random.default_rng(5).uniform(0, 10, 2048), 1
        ).astype(np.float32)
        column = compress_f32(values, force_scheme="alprd")
        assert column.scheme == "alprd"
        assert bitwise_equal32(decompress_f32(column), values)

    def test_empty(self):
        column = compress_f32(np.empty(0, dtype=np.float32))
        assert decompress_f32(column).size == 0

    def test_special_values(self):
        values = np.array(
            [math.nan, math.inf, -math.inf, 0.0, -0.0], dtype=np.float32
        )
        column = compress_f32(values)
        assert bitwise_equal32(decompress_f32(column), values)

    @given(
        st.lists(
            st.floats(width=32, allow_nan=True, allow_infinity=True),
            max_size=300,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_floats_roundtrip(self, xs):
        values = np.array(xs, dtype=np.float32)
        column = compress_f32(values)
        assert bitwise_equal32(decompress_f32(column), values)
