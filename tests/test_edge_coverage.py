"""Edge-path coverage across modules (cases the main suites skim)."""

import math

import numpy as np

from repro.alputil.bitstream import BitReader, BitWriter
from repro.alputil.decimals import decimal_places
from repro.baselines.chimp import chimp_compress, chimp_decompress
from repro.baselines.gorilla import gorilla_compress, gorilla_decompress
from repro.core.compressor import compress, decompress
from repro.core.sampler import ExponentFactor, second_level_sample
from repro.data import get_dataset
from repro.encodings.dictionary import dictionary_decode, dictionary_encode
from repro.encodings.rle import rle_decode, rle_encode
from repro.query.sources import (
    FileColumnSource,
    UncompressedSource,
    make_source,
)


class TestXorFastPaths:
    def test_gorilla_reuses_previous_window(self):
        # Values crafted so consecutive XORs share the leading/trailing
        # window: the second non-zero XOR takes the '10' control path.
        base = np.float64(1.0).view(np.uint64)
        values = np.array(
            [
                1.0,
                (base ^ np.uint64(0b1100 << 20)).view(np.float64),
                (base ^ np.uint64(0b1010 << 20)).view(np.float64),
            ]
        )
        encoded = gorilla_compress(values)
        decoded = gorilla_decompress(encoded)
        assert np.array_equal(
            decoded.view(np.uint64), values.view(np.uint64)
        )

    def test_chimp_same_leading_class_path(self):
        base = np.float64(100.0).view(np.uint64)
        xors = [np.uint64(0b1011 << 4), np.uint64(0b1101 << 4)]
        stream = [100.0]
        current = base
        for xor in xors:
            current = current ^ xor
            stream.append(current.view(np.float64))
        values = np.array(stream)
        decoded = chimp_decompress(chimp_compress(values))
        assert np.array_equal(
            decoded.view(np.uint64), values.view(np.uint64)
        )


class TestSamplerTies:
    def test_equal_candidates_keep_first(self):
        values = np.round(np.linspace(0, 10, 256), 1)
        a = ExponentFactor(14, 13)
        b = ExponentFactor(15, 14)  # same d values, same size estimate
        result = second_level_sample(values, (a, b))
        assert result.combination == a  # strict improvement required


class TestTinyInputs:
    def test_compress_two_values(self):
        values = np.array([1.5, 2.5])
        assert np.array_equal(decompress(compress(values)), values)

    def test_compress_single_nan(self):
        values = np.array([math.nan])
        out = decompress(compress(values))
        assert np.array_equal(out.view(np.uint64), values.view(np.uint64))

    def test_rle_single(self):
        values = np.array([7], dtype=np.int64)
        assert np.array_equal(rle_decode(rle_encode(values)), values)

    def test_dictionary_single(self):
        values = np.array([3], dtype=np.int64)
        assert np.array_equal(
            dictionary_decode(dictionary_encode(values)), values
        )


class TestBitstreamEdges:
    def test_finish_idempotent_via_new_writer(self):
        w = BitWriter()
        w.write(0b1, 1)
        first = w.finish()
        assert first == w.finish()  # flushing twice is stable

    def test_reader_remaining_counts_padding(self):
        w = BitWriter()
        w.write(0b101, 3)
        r = BitReader(w.finish())
        assert r.bits_remaining == 8
        r.read(3)
        assert r.bits_remaining == 5


class TestDecimalsEdges:
    def test_negative_values(self):
        assert decimal_places(-8.0605) == 4
        assert decimal_places(-3.0) == 0

    def test_large_negative_exponent(self):
        assert decimal_places(-1e-7) == 7


class TestSourcePartitionEdges:
    def test_file_source_partition_is_self(self, tmp_path):
        from repro import api

        values = np.round(np.linspace(0, 1, 5000), 2)
        path = tmp_path / "x.alpc"
        api.write(path, values)
        source = FileColumnSource.open(path)
        assert source.partition(4) == [source]

    def test_alp_source_single_partition(self):
        source = make_source("alp", np.round(np.linspace(0, 1, 2000), 2))
        parts = source.partition(1)
        assert len(parts) == 1
        assert parts[0].value_count == 2000

    def test_uncompressed_partition_alignment(self):
        values = np.arange(5000, dtype=np.float64)
        parts = UncompressedSource(values).partition(3)
        sizes = [p.value_count for p in parts]
        assert sum(sizes) == 5000
        # All but the last partition must be vector-aligned.
        assert all(s % 1024 == 0 for s in sizes[:-1])


class TestColumnMetadataEdges:
    def test_candidate_list_survives_in_stats(self):
        values = get_dataset("Basel-Temp", n=20_480)
        column = compress(values)
        for rowgroup in column.rowgroups:
            assert 1 <= len(rowgroup.first_level.candidates) <= 5

    def test_bits_per_value_additive_over_rowgroups(self):
        values = get_dataset("City-Temp", n=204_800)
        column = compress(values)
        total = sum(rg.size_bits() for rg in column.rowgroups)
        assert total == column.size_bits()
