"""Tests for float32 serialization and the file-backed scan source."""

import numpy as np
import pytest

from repro.core.float32 import compress_f32, decompress_f32
from repro.data import get_model_weights
from repro.query.engine import scan_query, sum_query
from repro.query.sources import FileColumnSource
from repro import api
from repro.storage.serializer_f32 import (
    deserialize_float_column,
    serialize_float_column,
)


class TestFloat32Serialization:
    def test_ml_weights_roundtrip(self):
        weights = get_model_weights("W2V-Tweets")
        column = compress_f32(weights)
        assert column.scheme == "alprd"
        restored_column = deserialize_float_column(
            serialize_float_column(column)
        )
        restored = decompress_f32(restored_column)
        assert np.array_equal(
            restored.view(np.uint32), weights.view(np.uint32)
        )

    def test_alp32_column_roundtrip(self):
        values = np.round(
            np.random.default_rng(0).uniform(0, 100, 10_000), 1
        ).astype(np.float32)
        column = compress_f32(values)
        assert column.scheme == "alp"
        restored_column = deserialize_float_column(
            serialize_float_column(column)
        )
        restored = decompress_f32(restored_column)
        assert np.array_equal(
            restored.view(np.uint32), values.view(np.uint32)
        )

    def test_size_preserved(self):
        weights = get_model_weights("W2V-Tweets")
        column = compress_f32(weights)
        restored = deserialize_float_column(serialize_float_column(column))
        assert restored.size_bits() == column.size_bits()

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            deserialize_float_column(b"JUNKJUNKJUNK")

    def test_serialized_close_to_logical_size(self):
        weights = get_model_weights("GPT2")
        column = compress_f32(weights)
        payload = serialize_float_column(column)
        logical = column.size_bits() / 8
        assert len(payload) <= logical * 1.05 + 1024


class TestFileColumnSource:
    @pytest.fixture
    def column_file(self, tmp_path):
        values = np.round(np.linspace(0.0, 1000.0, 250_000), 2)
        path = tmp_path / "col.alpc"
        api.write(path, values)
        return path, values

    def test_full_scan(self, column_file):
        path, values = column_file
        source = FileColumnSource.open(path)
        assert source.value_count == values.size
        assert scan_query(source) == values.size
        assert sum_query(source) == pytest.approx(
            float(values.sum()), rel=1e-9
        )

    def test_compressed_bits_positive(self, column_file):
        path, values = column_file
        source = FileColumnSource.open(path)
        assert 0 < source.compressed_bits < values.size * 64

    def test_range_pushdown_scans_fewer_values(self, column_file):
        path, values = column_file
        full = FileColumnSource.open(path)
        narrow = FileColumnSource.open(path, value_range=(500.0, 501.0))
        scanned_full = scan_query(full)
        scanned_narrow = scan_query(narrow)
        assert scanned_narrow < scanned_full / 20

    def test_pushdown_preserves_matches(self, column_file):
        path, values = column_file
        low, high = 250.0, 300.0
        source = FileColumnSource.open(path, value_range=(low, high))
        found = 0
        for vector in source.vectors():
            found += int(((vector >= low) & (vector <= high)).sum())
        expected = int(((values >= low) & (values <= high)).sum())
        assert found == expected
