"""Vectorized bit-packing (the FastLanes "BP" primitive).

Packs arrays of unsigned integers into a dense byte buffer using a fixed
bit width per vector, and unpacks them back.  This is the workhorse under
FFOR, the skewed dictionary of ALP_rd, and the PDE baseline.

The layout is MSB-first within the buffer (value ``i`` occupies bits
``[i*w, (i+1)*w)`` of the stream).  The FastLanes C++ library uses an
interleaved transposed layout for SIMD friendliness; in numpy the plain
sequential layout vectorizes equally well and keeps the format readable,
so we use it and note the deviation here.
"""

from __future__ import annotations

import numpy as np

from repro import obs


def bit_width_required(values: np.ndarray) -> int:
    """Smallest bit width able to represent every value in ``values``.

    Values must be non-negative (unsigned).  An empty or all-zero array
    needs 0 bits — FFOR exploits this for constant vectors.

    Signed-dtype inputs are accepted but validated on their *minimum*:
    checking ``values.max() < 0`` would only reject all-negative arrays
    (and can never fire for unsigned dtypes), silently mis-sizing mixed
    arrays like ``[-1, 5]``.
    """
    values = np.asarray(values)
    if values.size == 0:
        return 0
    if values.dtype.kind != "u" and int(values.min()) < 0:
        raise ValueError("bit_width_required expects non-negative values")
    return int(values.max()).bit_length()


def pack_bits(values: np.ndarray, width: int) -> bytes:
    """Pack ``values`` (non-negative, each < 2**width) into bytes.

    >>> unpack_bits(pack_bits(np.array([1, 2, 3], dtype=np.uint64), 2), 2, 3)
    array([1, 2, 3], dtype=uint64)
    """
    if width < 0 or width > 64:
        raise ValueError(f"bit width must be in [0, 64], got {width}")
    values = np.ascontiguousarray(values, dtype=np.uint64)
    if width == 0:
        if values.size and int(values.max()) != 0:
            raise ValueError("width 0 requires an all-zero array")
        return b""
    if values.size and int(values.max()) >> width:
        raise ValueError(
            f"value {int(values.max())} does not fit in {width} bits"
        )
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    bits = ((values[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.uint8)
    packed = np.packbits(bits.ravel()).tobytes()
    if obs.ENABLED:
        obs.metrics.counter_add("bitpack.pack_calls", 1)
        obs.metrics.counter_add("bitpack.pack_values", int(values.size))
        obs.metrics.counter_add("bitpack.pack_bytes", len(packed))
    return packed


def unpack_bits(buffer: bytes, width: int, count: int) -> np.ndarray:
    """Unpack ``count`` values of ``width`` bits each from ``buffer``.

    For widths up to 56 this gathers an 8-byte window per value and
    extracts the field with one shift-and-mask — O(1) numpy work per
    value, the port of FastLanes' branch-free unpacking.  Wider fields
    (57..64 bits, rare: only near-incompressible vectors) take a
    two-window path.
    """
    if width < 0 or width > 64:
        raise ValueError(f"bit width must be in [0, 64], got {width}")
    if count < 0:
        raise ValueError("count must be non-negative")
    if width == 0:
        return np.zeros(count, dtype=np.uint64)
    total_bits = count * width
    available = len(buffer) * 8
    if total_bits > available:
        raise ValueError(
            f"buffer holds {available} bits, need {total_bits} "
            f"for {count} values of width {width}"
        )
    if count == 0:
        return np.zeros(0, dtype=np.uint64)
    if obs.ENABLED:
        obs.metrics.counter_add("bitpack.unpack_calls", 1)
        obs.metrics.counter_add("bitpack.unpack_values", count)
        obs.metrics.counter_add("bitpack.unpack_bytes", len(buffer))
    # Pad the payload to whole 64-bit words (plus one spill word), view it
    # as big-endian uint64, and reconstruct each field from the one or two
    # words it straddles.  Three gathers + shifts, independent of width —
    # the numpy analogue of FastLanes' branch-free unpack kernels.
    padded_len = ((len(buffer) + 7) // 8 + 1) * 8
    words = np.frombuffer(
        buffer.ljust(padded_len, b"\x00"), dtype=">u8"
    ).astype(np.uint64)
    starts = np.arange(count, dtype=np.uint64) * np.uint64(width)
    word_idx = (starts >> np.uint64(6)).astype(np.int64)
    offset = starts & np.uint64(63)
    hi = words[word_idx] << offset
    # A shift by 64 is undefined; mask the no-spill lanes to zero instead.
    spill_shift = (np.uint64(64) - offset) & np.uint64(63)
    lo = np.where(
        offset == 0,
        np.uint64(0),
        words[word_idx + 1] >> spill_shift,
    )
    return (hi | lo) >> np.uint64(64 - width)


def packed_size_bytes(count: int, width: int) -> int:
    """Byte size of ``count`` packed values of ``width`` bits."""
    return (count * width + 7) // 8
