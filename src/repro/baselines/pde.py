"""PseudoDecimals (PDE) from BtrBlocks (Kuschewski et al., SIGMOD 2023).

PDE assumes doubles were generated from decimals and, *per value*,
brute-force searches the smallest exponent ``e`` such that

    d = round(v * 10**e)    and    d * 10**-e == v   (exactly).

Each value then stores a 5-bit exponent plus its significant digits
``d`` (bit-packed per vector); values that fail the search for every
exponent — or whose digits exceed the 32-bit budget PDE imposes — are
stored as 80-bit exceptions (raw double + position).

The structural contrasts with ALP that the paper stresses are all here:

- one exponent *per value* (vs per vector) — pure metadata overhead;
- no trailing-zero factor ``f``, so high exponents are useless to PDE
  and its digits are bigger than ALP's;
- an exhaustive per-value search, which is why PDE has by far the
  slowest compression in Table 5 while its (vectorizable) decompression
  is second only to ALP.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.constants import F10, IF10, VECTOR_SIZE
from repro.core.fastround import fast_round
from repro.encodings.for_ import ForEncoded, for_decode, for_encode

#: PDE searches exponents 0..17 (5-bit storage).
MAX_PDE_EXPONENT = 17

#: Digits beyond 31 bits are rejected (BtrBlocks packs digits as int32).
MAX_DIGIT_BITS = 31

#: Exponent value marking an exception slot.
EXCEPTION_EXPONENT = MAX_PDE_EXPONENT + 1


@dataclass(frozen=True)
class PdeVector:
    """One PDE-encoded vector: digits and exponents, each FOR+BP packed.

    Packing the exponent stream (not just storing 5 raw bits per value)
    matches BtrBlocks and is what the paper credits for PDE's strong
    CMS/9 result: an all-integer vector has constant exponent 0, which
    bit-packs to zero bits.
    """

    digits: ForEncoded
    exponents: ForEncoded
    exc_values: np.ndarray  # float64 originals, in position order
    count: int

    def size_bits(self) -> int:
        """Digits + packed exponents + 64 bits per exception value."""
        return (
            self.digits.size_bits()
            + self.exponents.size_bits()
            + self.exc_values.size * 64
        )


@dataclass(frozen=True)
class PdeEncoded:
    """A PDE-compressed column (vector-at-a-time blocks).

    Exceptions need no stored positions: every value carries an exponent
    anyway, and the ``EXCEPTION_EXPONENT`` sentinel tells the decoder to
    pull the next raw double from the vector's exception stream.
    """

    vectors: tuple[PdeVector, ...]
    count: int

    def size_bits(self) -> int:
        """Sum of vector footprints."""
        return sum(v.size_bits() for v in self.vectors)

    def bits_per_value(self) -> float:
        """Compressed bits per value."""
        return self.size_bits() / self.count if self.count else 0.0

    @property
    def exception_count(self) -> int:
        """Total exceptions in the column."""
        return sum(v.exc_values.size for v in self.vectors)


def _search_exponents(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-value exhaustive exponent search.

    Returns (digits int64, exponent int64 with EXCEPTION_EXPONENT where no
    exponent works).  The search scans e = 0..17 from the smallest up and
    keeps the first success, exactly like the reference; the scan itself
    is vectorized across values but, like PDE, pays the full search for
    every value.
    """
    digits = np.zeros(values.size, dtype=np.int64)
    exponents = np.full(values.size, EXCEPTION_EXPONENT, dtype=np.int64)
    unresolved = np.ones(values.size, dtype=bool)
    for e in range(MAX_PDE_EXPONENT + 1):
        with np.errstate(over="ignore", invalid="ignore"):
            d = fast_round(values * F10[e])
            decoded = d * IF10[e]
        ok = (
            unresolved
            & (decoded.view(np.uint64) == values.view(np.uint64))
            & (np.abs(d) < (1 << MAX_DIGIT_BITS))
        )
        digits[ok] = d[ok]
        exponents[ok] = e
        unresolved &= ~ok
        if not unresolved.any():
            break
    return digits, exponents


#: PDE packs digits/exponents in vector-sized blocks, like the rest of
#: the library (BtrBlocks uses its own block granularity; the choice only
#: affects header amortization).
PDE_VECTOR_SIZE = VECTOR_SIZE


def _encode_vector(values: np.ndarray) -> PdeVector:
    """Encode one vector of doubles."""
    digits, exponents = _search_exponents(values)
    exceptional = exponents == EXCEPTION_EXPONENT
    exc_values = values[exceptional].copy()
    # Exception slots keep digit 0 so they do not widen the packing.
    digits = np.where(exceptional, 0, digits)
    return PdeVector(
        digits=for_encode(digits),
        exponents=for_encode(exponents),
        exc_values=exc_values,
        count=values.size,
    )


def _decode_vector(vector: PdeVector) -> np.ndarray:
    """Decode one PDE vector."""
    digits = for_decode(vector.digits)
    exponents = for_decode(vector.exponents)
    safe_exponents = np.minimum(exponents, MAX_PDE_EXPONENT)
    out = digits * IF10[safe_exponents]
    exc_positions = np.flatnonzero(exponents == EXCEPTION_EXPONENT)
    if exc_positions.size:
        out[exc_positions] = vector.exc_values
    return out


def pde_compress(values: np.ndarray) -> PdeEncoded:
    """Compress a float64 array with PDE."""
    values = np.ascontiguousarray(values, dtype=np.float64)
    vectors = tuple(
        _encode_vector(values[start : start + PDE_VECTOR_SIZE])
        for start in range(0, values.size, PDE_VECTOR_SIZE)
    )
    return PdeEncoded(vectors=vectors, count=values.size)


def pde_decompress(encoded: PdeEncoded) -> np.ndarray:
    """Decompress a :class:`PdeEncoded` column back to float64.

    Vectors decode into one preallocated output array (same batching
    style as the ALP decompressor) instead of being concatenated.
    """
    if encoded.count == 0:
        return np.empty(0, dtype=np.float64)
    out = np.empty(encoded.count, dtype=np.float64)
    pos = 0
    for vector in encoded.vectors:
        out[pos : pos + vector.count] = _decode_vector(vector)
        pos += vector.count
    return out
