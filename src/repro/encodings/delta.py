"""Delta encoding for integers (FastLanes building block).

Stores the first value and the differences between consecutive values,
bit-packed with a zig-zag transform so that negative deltas stay small.
The cascade layer uses Delta for (somewhat) ordered dictionaries and RLE
run values, as suggested in the paper's Section 3.1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.encodings.bitpack import bit_width_required, pack_bits, unpack_bits


def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map signed integers to unsigned: 0,-1,1,-2,... -> 0,1,2,3,..."""
    values = np.asarray(values, dtype=np.int64)
    return (
        (values.view(np.uint64) << np.uint64(1))
        ^ (values >> np.int64(63)).view(np.uint64)
    )


def zigzag_decode(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`."""
    values = np.asarray(values, dtype=np.uint64)
    return (
        (values >> np.uint64(1)) ^ (np.uint64(0) - (values & np.uint64(1)))
    ).view(np.int64)


@dataclass(frozen=True)
class DeltaEncoded:
    """A Delta-encoded integer vector."""

    payload: bytes
    first_value: int
    bit_width: int
    count: int

    def size_bits(self) -> int:
        """Packed deltas + 64-bit first value + 8-bit width."""
        return len(self.payload) * 8 + 64 + 8


def delta_encode(values: np.ndarray) -> DeltaEncoded:
    """Encode int64 values as zig-zagged, bit-packed deltas."""
    values = np.ascontiguousarray(values, dtype=np.int64)
    if values.size == 0:
        return DeltaEncoded(payload=b"", first_value=0, bit_width=0, count=0)
    deltas = np.diff(values)
    zz = zigzag_encode(deltas)
    width = bit_width_required(zz)
    return DeltaEncoded(
        payload=pack_bits(zz, width),
        first_value=int(values[0]),
        bit_width=width,
        count=values.size,
    )


def delta_decode(encoded: DeltaEncoded) -> np.ndarray:
    """Decode a :class:`DeltaEncoded` vector back to int64."""
    if encoded.count == 0:
        return np.empty(0, dtype=np.int64)
    zz = unpack_bits(encoded.payload, encoded.bit_width, encoded.count - 1)
    deltas = zigzag_decode(zz)
    out = np.empty(encoded.count, dtype=np.int64)
    out[0] = encoded.first_value
    if encoded.count > 1:
        np.cumsum(deltas, out=out[1:])
        out[1:] += encoded.first_value
    return out
