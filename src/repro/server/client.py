"""Synchronous TCP client for the :mod:`repro.server` protocol.

A thin blocking wrapper: one socket, sequential request/response frames.
Used by ``alp-repro loadgen`` (one client per concurrent worker thread),
the shard router's backend pool, the test suite, and anything that wants
to talk to a running server without touching asyncio.

Error responses raise :class:`ServerError` carrying the protocol error
code, so callers can branch on backpressure (``exc.code ==
"overloaded"``) versus genuine failures.  Connect failures — after the
bounded, jitter-backed retry budget is spent — raise the typed
:class:`ServerUnavailableError` instead of a raw ``OSError``, so
callers (the router's replica failover above all) can treat "this
backend is down" as one catchable condition.
"""

from __future__ import annotations

import random
import socket
import time
from types import TracebackType

import numpy as np

from repro.core.compressor import CompressedRowGroups
from repro.server import protocol


class ServerError(Exception):
    """An ``ok=False`` response from the server."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message

    @property
    def is_overloaded(self) -> bool:
        """Backpressure, not failure — the caller may retry later."""
        return self.code == protocol.ERR_OVERLOADED


class ServerUnavailableError(ConnectionError):
    """The server could not be reached within the retry budget.

    Raised by :class:`ServerClient` when every connect attempt (the
    initial one plus ``connect_retries`` backed-off retries) failed, or
    when a mid-request reconnect exhausted the same budget.  ``attempts``
    counts the connects tried; ``__cause__`` keeps the last ``OSError``.
    """

    def __init__(self, host: str, port: int, attempts: int) -> None:
        super().__init__(
            f"server {host}:{port} unavailable after "
            f"{attempts} connect attempt(s)"
        )
        self.host = host
        self.port = port
        self.attempts = attempts


class ServerClient:
    """One blocking connection to a repro server.

    Use as a context manager, or call :meth:`close` explicitly.  A
    single client is *not* thread-safe (frames would interleave); give
    each thread its own client.

    ``connect_retries`` bounds *additional* connect attempts after a
    refused/failed connect, with jittered exponential backoff
    (``retry_backoff_s * 2**attempt``, each multiplied by a uniform
    ``1.0..1.0+retry_jitter`` factor so synchronized clients do not
    reconnect in lockstep).  ``request_retries`` additionally retries a
    request whose connection died mid-flight (every op is stateless and
    idempotent, so a resend is safe) after reconnecting under the same
    policy.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float | None = 60.0,
        deadline_ms: float | None = None,
        connect_retries: int = 0,
        request_retries: int = 0,
        retry_backoff_s: float = 0.05,
        retry_jitter: float = 0.5,
        rng: random.Random | None = None,
    ) -> None:
        self.deadline_ms = deadline_ms
        self._host = host
        self._port = port
        self._timeout_s = timeout_s
        self._connect_retries = max(0, int(connect_retries))
        self._request_retries = max(0, int(request_retries))
        self._retry_backoff_s = retry_backoff_s
        self._retry_jitter = retry_jitter
        self._rng = rng or random.Random()
        self._next_id = 0
        self._sock = self._connect()

    def _connect(self) -> socket.socket:
        """One bounded, backed-off connect; typed error on exhaustion."""
        attempts = self._connect_retries + 1
        for attempt in range(attempts):
            try:
                return socket.create_connection(
                    (self._host, self._port), timeout=self._timeout_s
                )
            except OSError as exc:
                if attempt + 1 == attempts:
                    raise ServerUnavailableError(
                        self._host, self._port, attempts
                    ) from exc
                backoff = self._retry_backoff_s * (2.0**attempt)
                backoff *= 1.0 + self._retry_jitter * self._rng.random()
                time.sleep(backoff)
        raise AssertionError("unreachable")  # pragma: no cover

    # -- plumbing -----------------------------------------------------

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    def _read_exactly(self, n: int) -> bytes:
        chunks: list[bytes] = []
        remaining = n
        while remaining:
            chunk = self._sock.recv(min(remaining, 1 << 20))
            if not chunk:
                raise ConnectionError(
                    f"server closed the connection with {remaining} of "
                    f"{n} bytes unread"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def request(
        self,
        op: str,
        fields: dict[str, object] | None = None,
        payload: bytes = b"",
        deadline_ms: float | None = None,
    ) -> tuple[dict[str, object], bytes]:
        """Send one request frame, return the (header, payload) response.

        ``deadline_ms`` overrides the client-wide deadline for this one
        request; the socket timeout is tightened to the deadline (plus a
        grace second for the response frame to cross the wire), so a
        deadline-budgeted caller — the shard router — never waits on a
        dead backend longer than the budget it handed out.

        Raises :class:`ServerError` on ``ok=False`` responses,
        :class:`ServerUnavailableError` when the connection died and the
        reconnect budget is spent, and :class:`ConnectionError` if the
        server hangs up mid-frame with no retries configured.
        """
        effective = (
            deadline_ms if deadline_ms is not None else self.deadline_ms
        )
        self._next_id += 1
        header: dict[str, object] = {"op": op, "id": self._next_id}
        if effective is not None:
            header["deadline_ms"] = effective
        if fields:
            header.update(fields)
        frame = protocol.encode_frame(header, payload)
        attempts = self._request_retries + 1
        for attempt in range(attempts):
            try:
                if effective is not None:
                    self._sock.settimeout(effective / 1000.0 + 1.0)
                try:
                    self._sock.sendall(frame)
                    response, resp_payload = protocol.read_frame(
                        self._read_exactly
                    )
                finally:
                    if effective is not None:
                        self._sock.settimeout(self._timeout_s)
                break
            except (ConnectionError, TimeoutError, OSError):
                # The connection is in an unknown framing state either
                # way; only a fresh one is usable.
                self._sock.close()
                if attempt + 1 == attempts:
                    raise
                self._sock = self._connect()
        if not response.get("ok"):
            code = response.get("error")
            if not isinstance(code, str) or code not in protocol.ERROR_CODES:
                code = protocol.ERR_INTERNAL
            raise ServerError(code, str(response.get("message", "")))
        return response, resp_payload

    # -- typed ops ----------------------------------------------------

    def ping(self) -> bool:
        response, _ = self.request("ping")
        return bool(response.get("pong"))

    def datasets(self) -> dict[str, object]:
        response, _ = self.request("datasets")
        datasets = response.get("datasets")
        return datasets if isinstance(datasets, dict) else {}

    def scan(
        self,
        dataset: str,
        column: str | None = None,
        low: float | None = None,
        high: float | None = None,
    ) -> tuple[np.ndarray, dict[str, object]]:
        """Fetch (range-filtered) column values; returns (values, fields)."""
        fields = _query_fields(dataset, column, low, high)
        response, payload = self.request("scan", fields)
        return protocol.values_from_bytes(payload), response

    def scan_columns(
        self, dataset: str, columns: list[str]
    ) -> tuple[dict[str, np.ndarray], dict[str, object]]:
        """Fetch a multi-column projection in one request.

        Sends the v4 ``columns`` header field; the response echoes the
        projected columns' ``schema`` and per-column ``counts``, which
        this helper uses to split the concatenated float64 payload back
        into one array per column.  Returns ``(name -> values,
        response fields)``.
        """
        response, payload = self.request(
            "scan", {"dataset": dataset, "columns": list(columns)}
        )
        counts = response.get("counts")
        if not isinstance(counts, list) or len(counts) != len(columns):
            raise protocol.ProtocolError(
                f"projection response 'counts' does not match the "
                f"{len(columns)} requested columns: {counts!r}"
            )
        values = protocol.values_from_bytes(payload)
        if int(sum(counts)) != int(values.size):
            raise protocol.ProtocolError(
                f"projection payload holds {values.size} values, "
                f"counts say {sum(counts)}"
            )
        out: dict[str, np.ndarray] = {}
        offset = 0
        for name, count in zip(columns, counts, strict=True):
            out[name] = values[offset : offset + int(count)]
            offset += int(count)
        return out, response

    def sum(
        self,
        dataset: str,
        column: str | None = None,
        low: float | None = None,
        high: float | None = None,
    ) -> tuple[float, dict[str, object]]:
        """Server-side sum; returns (total, response fields)."""
        response, _ = self.request(
            "sum", _query_fields(dataset, column, low, high)
        )
        return float(response["sum"]), response  # type: ignore[arg-type]

    def comp(
        self, dataset: str, column: str | None = None, codec: str = "alp"
    ) -> dict[str, object]:
        """Server-side compression-size probe under ``codec``."""
        fields = _query_fields(dataset, column, None, None)
        fields["codec"] = codec
        response, _ = self.request("comp", fields)
        return response

    def compress(
        self, values: np.ndarray
    ) -> tuple[CompressedRowGroups, dict[str, object]]:
        """Round-trip values through the server-side compressor."""
        response, payload = self.request(
            "compress", payload=protocol.values_to_bytes(values)
        )
        return protocol.column_from_bytes(payload), response

    def decompress(self, column: CompressedRowGroups) -> np.ndarray:
        """Server-side decompression of a compressed column."""
        _, payload = self.request(
            "decompress", payload=protocol.column_to_bytes(column)
        )
        return protocol.values_from_bytes(payload)


def _query_fields(
    dataset: str,
    column: str | None,
    low: float | None,
    high: float | None,
) -> dict[str, object]:
    fields: dict[str, object] = {"dataset": dataset}
    if column is not None:
        fields["column"] = column
    if low is not None:
        fields["low"] = low
    if high is not None:
        fields["high"] = high
    return fields
