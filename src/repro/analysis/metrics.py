"""The dataset metrics of Table 2 (Section 2 of the paper).

For a column of doubles, :func:`compute_metrics` reports:

- visible decimal precision: max / min / per-vector mean and deviation
  (columns C2-C5),
- non-unique fraction and value magnitude statistics per vector (C6-C8),
- IEEE 754 biased-exponent mean and deviation per vector (C9-C10),
- success rates of the ``P_enc``/``P_dec`` procedures from Section 2.5
  with the exponent chosen per value / per dataset / per vector
  (C11-C13),
- average leading and trailing zero bits after XOR with the previous
  value (C14-C15).

Everything is computed on (a sample of) the column; the Table 2 bench
prints one row per dataset in the paper's layout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alputil.bits import (
    ieee754_exponent,
    leading_zeros64,
    trailing_zeros64,
    xor_with_previous,
)
from repro.alputil.decimals import decimal_places_array
from repro.core.constants import VECTOR_SIZE
from repro.core.fastround import fast_round

#: P_enc/P_dec search only this far (10**e exactness, Section 2.5).
MAX_PENC_EXPONENT = 17


def penc_pdec_roundtrip(
    values: np.ndarray, exponents: np.ndarray
) -> np.ndarray:
    """Element-wise success of P_enc/P_dec with a given exponent per value.

    P_enc: ``d = round(n * 10**e)``; P_dec: ``n' = d * 10**-e``; success
    means ``n'`` reproduces ``n`` bit-exactly (Section 2.5).
    """
    values = np.ascontiguousarray(values, dtype=np.float64)
    exponents = np.clip(np.asarray(exponents, dtype=np.int64), 0, MAX_PENC_EXPONENT)
    tens = 10.0 ** exponents.astype(np.float64)
    with np.errstate(over="ignore", invalid="ignore"):
        encoded = fast_round(values * tens)
        decoded = encoded * (10.0 ** (-exponents.astype(np.float64)))
    return decoded.view(np.uint64) == values.view(np.uint64)


def per_value_success_rate(values: np.ndarray) -> float:
    """C11: success using each value's *visible precision* as exponent."""
    if values.size == 0:
        return 0.0
    exponents = decimal_places_array(values)
    return float(penc_pdec_roundtrip(values, exponents).mean())


def best_exponent_success(values: np.ndarray) -> tuple[int, float]:
    """C12: the single exponent maximizing the success rate, and that rate."""
    if values.size == 0:
        return 0, 0.0
    best_e, best_rate = 0, -1.0
    for e in range(MAX_PENC_EXPONENT + 1):
        rate = float(
            penc_pdec_roundtrip(values, np.full(values.size, e)).mean()
        )
        if rate > best_rate:
            best_e, best_rate = e, rate
    return best_e, best_rate


def per_vector_best_exponent_success(
    values: np.ndarray, vector_size: int = VECTOR_SIZE
) -> float:
    """C13: success when the exponent is optimized per vector."""
    if values.size == 0:
        return 0.0
    successes = 0
    for start in range(0, values.size, vector_size):
        chunk = values[start : start + vector_size]
        _, rate = best_exponent_success(chunk)
        successes += rate * chunk.size
    return successes / values.size


@dataclass(frozen=True)
class DatasetMetrics:
    """One Table 2 row."""

    count: int
    precision_max: int
    precision_min: int
    precision_avg: float
    precision_std_per_vector: float
    non_unique_fraction: float
    value_avg: float
    value_std_per_vector: float
    exponent_avg: float
    exponent_std_per_vector: float
    success_per_value: float
    best_exponent: int
    success_best_exponent: float
    success_per_vector: float
    xor_leading_zeros_avg: float
    xor_trailing_zeros_avg: float


def _per_vector(values: np.ndarray, vector_size: int, fn) -> list[float]:
    """Apply ``fn`` to each vector-sized chunk."""
    return [
        fn(values[start : start + vector_size])
        for start in range(0, values.size, vector_size)
    ]


def compute_metrics(
    values: np.ndarray,
    vector_size: int = VECTOR_SIZE,
    sample_limit: int = 65_536,
    seed: int = 0,
) -> DatasetMetrics:
    """Compute a Table 2 row for a column (on a prefix sample if large).

    A contiguous prefix is used rather than a random sample so that the
    per-vector statistics and XOR locality stay meaningful.
    """
    values = np.ascontiguousarray(values, dtype=np.float64)
    if values.size > sample_limit:
        values = values[:sample_limit]
    if values.size == 0:
        raise ValueError("cannot compute metrics of an empty column")

    finite = values[np.isfinite(values)]
    precisions = decimal_places_array(values)

    non_unique = np.mean(
        _per_vector(
            values,
            vector_size,
            lambda v: 1.0 - np.unique(v.view(np.uint64)).size / v.size,
        )
    )
    xors = xor_with_previous(values)[1:]
    if xors.size == 0:
        xors = np.zeros(1, dtype=np.uint64)

    best_e, best_rate = best_exponent_success(values)
    return DatasetMetrics(
        count=values.size,
        precision_max=int(precisions.max()),
        precision_min=int(precisions.min()),
        precision_avg=float(precisions.mean()),
        precision_std_per_vector=float(
            np.mean(
                _per_vector(
                    values,
                    vector_size,
                    lambda v: decimal_places_array(v).std(),
                )
            )
        ),
        non_unique_fraction=float(non_unique),
        value_avg=float(finite.mean()) if finite.size else float("nan"),
        value_std_per_vector=float(
            np.mean(
                _per_vector(
                    values,
                    vector_size,
                    lambda v: v[np.isfinite(v)].std()
                    if np.isfinite(v).any()
                    else 0.0,
                )
            )
        ),
        exponent_avg=float(ieee754_exponent(values).mean()),
        exponent_std_per_vector=float(
            np.mean(
                _per_vector(
                    values,
                    vector_size,
                    lambda v: ieee754_exponent(v).std(),
                )
            )
        ),
        success_per_value=per_value_success_rate(values),
        best_exponent=best_e,
        success_best_exponent=best_rate,
        success_per_vector=per_vector_best_exponent_success(
            values, vector_size
        ),
        xor_leading_zeros_avg=float(leading_zeros64(xors).mean()),
        xor_trailing_zeros_avg=float(trailing_zeros64(xors).mean()),
    )
