"""Placement properties: ring balance, minimal disruption, shard maps.

The two Hypothesis properties pin the guarantees the router's cache
warmth and failover behavior rest on:

- **balance** — with 64 virtual nodes per backend, no backend owns more
  than twice its fair share of keys;
- **minimal disruption** — removing (or adding) one backend remaps
  *exactly* the keys that backend owned (or the new one acquires):
  every other key keeps its owner, so surviving backends keep their
  warm caches through membership changes.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shard.placement import (
    HashRing,
    Partition,
    build_shard_map,
    partition_column,
    stable_hash,
)

#: Enough keys that the balance statistics are stable.
KEYS = [f"ds{i % 7}/col{i % 3}#{i}:{i + 1}" for i in range(1200)]

node_names = st.lists(
    st.from_regex(r"[a-z0-9.]{1,12}:[0-9]{2,5}", fullmatch=True),
    min_size=2,
    max_size=8,
    unique=True,
)


class TestStableHash:
    def test_stable_across_calls(self):
        assert stable_hash("a/b#0:1") == stable_hash("a/b#0:1")

    def test_64_bit_range(self):
        for key in ("", "x", "a" * 100):
            assert 0 <= stable_hash(key) < 2**64

    def test_known_value_pins_process_independence(self):
        # blake2b is deterministic everywhere; Python's hash() is not.
        # This literal breaking means every deployed placement moved.
        assert stable_hash("dataset/column#0:4") == 0xDE2670D1AC34FCE1


class TestHashRing:
    def test_preference_returns_distinct_nodes(self):
        ring = HashRing(["a:1", "b:2", "c:3"])
        pref = ring.preference("key", 3)
        assert len(pref) == len(set(pref)) == 3

    def test_preference_capped_at_node_count(self):
        ring = HashRing(["a:1", "b:2"])
        assert len(ring.preference("key", 5)) == 2

    def test_preference_stable(self):
        ring = HashRing(["a:1", "b:2", "c:3"])
        assert ring.preference("k", 2) == ring.preference("k", 2)

    def test_empty_ring(self):
        ring = HashRing([])
        assert ring.preference("k", 1) == ()

    def test_duplicate_node_rejected(self):
        ring = HashRing(["a:1"])
        with pytest.raises(ValueError, match="already on the ring"):
            ring.add_node("a:1")

    def test_remove_unknown_rejected(self):
        ring = HashRing(["a:1"])
        with pytest.raises(ValueError, match="not on the ring"):
            ring.remove_node("b:2")

    @settings(max_examples=40, deadline=None)
    @given(nodes=node_names)
    def test_balance_bound(self, nodes):
        ring = HashRing(nodes, vnodes=64)
        owners = {node: 0 for node in nodes}
        for key in KEYS:
            owners[ring.preference(key, 1)[0]] += 1
        fair = len(KEYS) / len(nodes)
        assert max(owners.values()) <= 2.0 * fair
        assert min(owners.values()) > 0

    @settings(max_examples=40, deadline=None)
    @given(nodes=node_names, data=st.data())
    def test_remove_remaps_only_the_removed_nodes_keys(self, nodes, data):
        ring = HashRing(nodes, vnodes=64)
        removed = data.draw(st.sampled_from(nodes))
        before = {key: ring.preference(key, 1)[0] for key in KEYS}
        ring.remove_node(removed)
        after = {key: ring.preference(key, 1)[0] for key in KEYS}
        for key in KEYS:
            if before[key] != removed:
                assert after[key] == before[key]
            else:
                assert after[key] != removed

    @settings(max_examples=40, deadline=None)
    @given(nodes=node_names)
    def test_add_moves_keys_only_to_the_new_node(self, nodes):
        joining, existing = nodes[0], nodes[1:]
        ring = HashRing(existing, vnodes=64)
        before = {key: ring.preference(key, 1)[0] for key in KEYS}
        ring.add_node(joining)
        after = {key: ring.preference(key, 1)[0] for key in KEYS}
        for key in KEYS:
            assert after[key] in (before[key], joining)

    @settings(max_examples=20, deadline=None)
    @given(nodes=node_names, data=st.data())
    def test_replica_sets_disrupt_minimally(self, nodes, data):
        """Replica *sets* lose only the removed node, for n=2 walks."""
        ring = HashRing(nodes, vnodes=64)
        removed = data.draw(st.sampled_from(nodes))
        before = {key: ring.preference(key, 2) for key in KEYS}
        ring.remove_node(removed)
        after = {key: ring.preference(key, 2) for key in KEYS}
        for key in KEYS:
            if removed not in before[key]:
                assert after[key] == before[key]


class TestPartitionColumn:
    def test_rows_accounted_exactly(self):
        rows = [100, 100, 100, 50]
        parts = partition_column("d", "c", rows, 2)
        assert [(p.start, p.stop, p.rows) for p in parts] == [
            (0, 2, 200),
            (2, 4, 150),
        ]
        assert sum(p.rows for p in parts) == sum(rows)

    def test_single_rowgroup_partitions(self):
        parts = partition_column("d", "c", [10, 20, 30], 1)
        assert len(parts) == 3
        assert parts[1] == Partition("d", "c", 1, 2, 20)

    def test_oversized_partition_clamps(self):
        (part,) = partition_column("d", "c", [10, 20], 100)
        assert (part.start, part.stop, part.rows) == (0, 2, 30)

    def test_key_is_stable_and_distinct(self):
        parts = partition_column("d", "c", [1] * 4, 1)
        keys = [p.key for p in parts]
        assert len(set(keys)) == 4
        assert keys[0] == "d/c#0:1"

    def test_bad_partition_size_rejected(self):
        with pytest.raises(ValueError, match="partition_rowgroups"):
            partition_column("d", "c", [1], 0)


class TestBuildShardMap:
    DESCRIBE = {
        "temps": {
            "temps": {
                "values": 300,
                "rowgroups": 3,
                "rowgroup_rows": [100, 100, 100],
            }
        },
        "prices": {
            "bid": {
                "values": 50,
                "rowgroups": 1,
                "rowgroup_rows": [50],
            },
            "ask": {
                "values": 50,
                "rowgroups": 1,
                "rowgroup_rows": [50],
            },
        },
    }

    def test_partitions_in_rowgroup_order(self):
        ring = HashRing(["a:1", "b:2", "c:3"])
        shard_map = build_shard_map(self.DESCRIBE, ring, 2, 1)
        placed = shard_map[("temps", "temps")]
        assert [p.start for p, _ in placed] == [0, 1, 2]
        for _, replicas in placed:
            assert len(replicas) == 2

    def test_every_column_mapped(self):
        ring = HashRing(["a:1", "b:2"])
        shard_map = build_shard_map(self.DESCRIBE, ring, 1, 1)
        assert set(shard_map) == {
            ("temps", "temps"),
            ("prices", "bid"),
            ("prices", "ask"),
        }

    def test_primary_load_balanced_with_few_keys(self):
        """With one partition per column (a handful of placement keys)
        the raw ring walk can pile most primaries onto one node; the
        deterministic balancing pass must spread them."""
        describe = {
            f"col{i}": {
                f"col{i}": {
                    "values": 1000,
                    "rowgroups": 1,
                    "rowgroup_rows": [1000],
                }
            }
            for i in range(6)
        }
        ring = HashRing(["a:1", "b:2", "c:3"])
        shard_map = build_shard_map(describe, ring, 2, 1)
        primary_rows: dict[str, int] = {}
        for placed in shard_map.values():
            for part, replicas in placed:
                primary_rows[replicas[0]] = (
                    primary_rows.get(replicas[0], 0) + part.rows
                )
        assert max(primary_rows.values()) <= 2 * (
            sum(primary_rows.values()) / len(ring.nodes)
        )

    def test_primary_balancing_is_deterministic(self):
        ring_a = HashRing(["a:1", "b:2", "c:3"])
        ring_b = HashRing(["a:1", "b:2", "c:3"])
        assert build_shard_map(self.DESCRIBE, ring_a, 2, 1) == (
            build_shard_map(self.DESCRIBE, ring_b, 2, 1)
        )

    def test_balancing_preserves_replica_membership(self):
        """Balancing may rotate a replica list but never change its
        membership — the ring's disruption properties depend on that."""
        ring = HashRing(["a:1", "b:2", "c:3", "d:4"])
        shard_map = build_shard_map(self.DESCRIBE, ring, 3, 1)
        for (dataset, column), placed in shard_map.items():
            for part, replicas in placed:
                assert set(replicas) == set(ring.preference(part.key, 3))

    def test_missing_rowgroup_rows_rejected(self):
        ring = HashRing(["a:1"])
        with pytest.raises(ValueError, match="rowgroup_rows"):
            build_shard_map({"d": {"c": {"values": 1}}}, ring, 1, 1)

    def test_bad_replication_rejected(self):
        ring = HashRing(["a:1"])
        with pytest.raises(ValueError, match="replication"):
            build_shard_map(self.DESCRIBE, ring, 0, 1)
