"""RL3 — span hygiene: ``with``-scoped spans and registered names.

The observability layer promises two things: spans always close (their
timings feed the benchmark regression gate), and every metric name in
the code is documented in ``docs/OBSERVABILITY.md``.  Both break
quietly.  RL3 enforces:

- ``obs.span(...)`` is only entered via ``with`` — a manually-managed
  span object leaks on the first exception and skews timings;
- every span/counter/gauge *name literal* passed to ``obs.span`` /
  ``obs.counter_add`` / ``obs.gauge_set`` appears in the registry
  (:mod:`repro.lint.names`), which the docs test cross-checks.

Dynamically computed names are skipped (nothing to check statically); an
``IfExp`` of two string literals — the conditional-scheme counter
pattern — has both branches validated.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Rule, Violation
from repro.lint.names import COUNTER_NAMES, GAUGE_NAMES, SPAN_NAMES

#: Receiver names treated as the observability module.
_OBS_RECEIVERS = {"obs", "metrics"}

#: obs call attr -> the registry its first argument must be in.
_NAME_REGISTRIES = {
    "span": ("span", SPAN_NAMES),
    "counter_add": ("counter", COUNTER_NAMES),
    "gauge_set": ("gauge", GAUGE_NAMES),
}


def _is_obs_call(node: ast.Call, attr: str) -> bool:
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr == attr
        and isinstance(func.value, ast.Name)
        and func.value.id in _OBS_RECEIVERS
    )


def _name_literals(node: ast.expr) -> list[str] | None:
    """String literals a name argument can evaluate to (None = dynamic)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, ast.IfExp):
        body = _name_literals(node.body)
        orelse = _name_literals(node.orelse)
        if body is not None and orelse is not None:
            return body + orelse
    return None


class SpanHygieneRule(Rule):
    """RL3: ``with``-only spans and registry-checked metric names."""

    code = "RL3"
    name = "span-hygiene"
    description = (
        "obs spans entered outside a with statement, or span/counter/"
        "gauge name literals missing from the registered-name registry"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        parts = ctx.effective
        return (
            bool(parts)
            and parts[0] == "repro"
            and ctx.basename != "obs.py"
            and (len(parts) < 2 or parts[1] != "lint")
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        with_contexts = {
            id(item.context_expr)
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.With, ast.AsyncWith))
            for item in node.items
        }
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _is_obs_call(node, "span") and id(node) not in with_contexts:
                yield self.violation(
                    ctx,
                    node,
                    "obs.span() must be entered via a with statement "
                    "(manual span management leaks on exceptions)",
                )
            for attr, (kind, registry) in _NAME_REGISTRIES.items():
                if not (_is_obs_call(node, attr) and node.args):
                    continue
                literals = _name_literals(node.args[0])
                if literals is None:
                    continue  # dynamic name — not statically checkable
                for literal in literals:
                    if literal not in registry:
                        yield self.violation(
                            ctx,
                            node,
                            f"unregistered {kind} name {literal!r}; add it "
                            "to repro/lint/names.py and "
                            "docs/OBSERVABILITY.md",
                        )
