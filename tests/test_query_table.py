"""Tests for multi-column compressed tables and late materialization."""

import numpy as np
import pytest

from repro.query.table import CompressedTable, FilterPredicate


@pytest.fixture(scope="module")
def trades():
    rng = np.random.default_rng(0)
    n = 60_000
    price = np.round(np.cumsum(rng.normal(0, 0.05, n)) + 100.0, 2)
    volume = rng.integers(1, 1000, n).astype(np.float64)
    fee = np.round(price * 0.001, 4)
    return {"price": price, "volume": volume, "fee": fee}


@pytest.fixture(scope="module")
def table(trades):
    return CompressedTable.from_arrays(trades)


class TestConstruction:
    def test_columns_and_rows(self, table, trades):
        assert set(table.column_names) == {"price", "volume", "fee"}
        assert table.row_count == trades["price"].size

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            CompressedTable.from_arrays(
                {"a": np.zeros(10), "b": np.zeros(11)}
            )

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            CompressedTable({})

    def test_unknown_column(self, table):
        with pytest.raises(KeyError):
            table.column("nope")

    def test_compressed_smaller_than_raw(self, table, trades):
        raw_bits = sum(a.nbytes * 8 for a in trades.values())
        assert table.compressed_bits() < raw_bits / 2


class TestScan:
    def test_unfiltered_scan_reconstructs(self, table, trades):
        parts = {name: [] for name in trades}
        for batch in table.scan(list(trades)):
            for name, vector in batch.items():
                parts[name].append(vector)
        for name, expected in trades.items():
            rebuilt = np.concatenate(parts[name])
            assert np.array_equal(
                rebuilt.view(np.uint64), expected.view(np.uint64)
            ), name

    def test_filtered_scan_matches_numpy(self, table, trades):
        predicate = FilterPredicate("price", 100.0, 101.0)
        mask = (trades["price"] >= 100.0) & (trades["price"] <= 101.0)
        got_volume = []
        for batch in table.scan(["price", "volume"], predicate=predicate):
            assert (batch["price"] >= 100.0).all()
            assert (batch["price"] <= 101.0).all()
            got_volume.append(batch["volume"])
        rebuilt = (
            np.concatenate(got_volume) if got_volume else np.empty(0)
        )
        assert np.array_equal(rebuilt, trades["volume"][mask])

    def test_filter_column_not_projected(self, table, trades):
        predicate = FilterPredicate("price", 100.0, 100.5)
        mask = (trades["price"] >= 100.0) & (trades["price"] <= 100.5)
        total = 0
        for batch in table.scan(["fee"], predicate=predicate):
            assert "price" not in batch
            total += batch["fee"].size
        assert total == int(mask.sum())

    def test_empty_selection(self, table):
        predicate = FilterPredicate("price", 1e8, 2e8)
        assert list(table.scan(["volume"], predicate=predicate)) == []

    def test_unknown_projection_rejected_early(self, table):
        with pytest.raises(KeyError):
            next(iter(table.scan(["nope"])))


class TestAggregate:
    def test_unfiltered_sum(self, table, trades):
        assert table.aggregate("volume", "sum") == pytest.approx(
            float(trades["volume"].sum()), rel=1e-9
        )

    def test_filtered_sum(self, table, trades):
        predicate = FilterPredicate("price", 99.0, 101.0)
        mask = (trades["price"] >= 99.0) & (trades["price"] <= 101.0)
        expected = float(trades["volume"][mask].sum())
        got = table.aggregate("volume", "sum", predicate=predicate)
        assert got == pytest.approx(expected, rel=1e-9)

    def test_count_min_max(self, table, trades):
        predicate = FilterPredicate("volume", 500.0, 1000.0)
        mask = (trades["volume"] >= 500.0) & (trades["volume"] <= 1000.0)
        assert table.aggregate(
            "price", "count", predicate=predicate
        ) == int(mask.sum())
        assert table.aggregate(
            "price", "min", predicate=predicate
        ) == pytest.approx(float(trades["price"][mask].min()))
        assert table.aggregate(
            "price", "max", predicate=predicate
        ) == pytest.approx(float(trades["price"][mask].max()))

    def test_unknown_aggregate(self, table):
        with pytest.raises(ValueError):
            table.aggregate("price", "median")

    def test_self_filtered_aggregate(self, table, trades):
        # Filter and aggregate the same column.
        predicate = FilterPredicate("price", 100.0, 102.0)
        mask = (trades["price"] >= 100.0) & (trades["price"] <= 102.0)
        got = table.aggregate("price", "sum", predicate=predicate)
        assert got == pytest.approx(float(trades["price"][mask].sum()), rel=1e-9)


class TestMixedCodecs:
    def test_columns_can_use_different_codecs(self, trades):
        from repro.query.sources import make_source

        table = CompressedTable(
            {
                "price": make_source("alp", trades["price"]),
                "volume": make_source("pde", trades["volume"]),
            }
        )
        assert table.aggregate("volume", "sum") == pytest.approx(
            float(trades["volume"].sum()), rel=1e-9
        )
