"""Deterministically (re)generate the checked-in golden ALPC files.

The golden files pin the on-disk byte layout of every format
generation the reader must keep accepting:

- ``golden_v2.alpc`` — the pre-checksum single-column layout
- ``golden_v3.alpc`` — single column with CRC32C integrity
- ``golden_v4.alpc`` — schema-described multi-column table (nullable
  int, string dictionary, float) at a small row-group geometry

The *expected values* are not stored next to the files: they are
re-derived here from fixed PCG64 seeds using only stream-stable
generator methods (``random``/``integers``), so the compat test in
``tests/test_golden_compat.py`` imports this module and compares the
checked-in bytes against freshly computed arrays.

Regenerate (only when deliberately re-pinning a generation) with::

    PYTHONPATH=src python -m tests.golden.generate
"""

from __future__ import annotations

import pathlib

import numpy as np

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent

N_ROWS = 4_096
VECTOR_SIZE = 256
ROWGROUP_VECTORS = 2


def single_column_values() -> np.ndarray:
    """The float column stored in the v2 and v3 goldens."""
    rng = np.random.default_rng(0xA1B2)
    # Two decimal places keeps the ALP path exercised.
    return np.round(rng.random(N_ROWS) * 200.0 - 100.0, 2)


def table_arrays() -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
    """Columns and validity stored in the v4 golden."""
    rng = np.random.default_rng(0xC3D4)
    f = np.round(np.cumsum(rng.random(N_ROWS) + 0.5), 2)
    i = rng.integers(-1_000_000, 1_000_000, N_ROWS)
    s = np.array(
        [f"city-{int(k) % 17:02d}" for k in rng.integers(0, 17, N_ROWS)],
        dtype=object,
    )
    validity = {"i": rng.random(N_ROWS) > 0.15}
    # Null slots decode to the codec fill value; store that fill so
    # the expected arrays match the round-trip exactly.
    i[~validity["i"]] = 0
    return {"f": f, "i": i, "s": s}, validity


def main() -> None:
    from repro.storage.columnfile import ColumnFileWriter
    from repro.storage.schema import INT64, STRING, Column, Schema
    from repro.storage.tablefile import TableFileWriter

    values = single_column_values()
    for name, integrity in (("golden_v2", False), ("golden_v3", True)):
        path = GOLDEN_DIR / f"{name}.alpc"
        with ColumnFileWriter(
            path,
            vector_size=VECTOR_SIZE,
            rowgroup_vectors=ROWGROUP_VECTORS,
            integrity=integrity,
        ) as writer:
            writer.write_values(values)
        print(f"wrote {path} ({path.stat().st_size} bytes)")

    columns, validity = table_arrays()
    schema = Schema(
        (
            Column("f"),
            Column("i", INT64, nullable=True),
            Column("s", STRING),
        )
    )
    path = GOLDEN_DIR / "golden_v4.alpc"
    with TableFileWriter(
        path,
        schema,
        vector_size=VECTOR_SIZE,
        rowgroup_vectors=ROWGROUP_VECTORS,
    ) as writer:
        writer.write_rows(columns, validity=validity)
    print(f"wrote {path} ({path.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
