"""The shard router: one ``ALPS`` endpoint over N partitioned backends.

A :class:`ShardRouter` is a :class:`~repro.server.service.ReproServer`
whose query ops are replaced with scatter-gather versions.  It speaks
the same framed protocol on both sides — clients need no changes (the
load generator and ``ServerClient`` work unmodified), and backends are
plain ``alp-repro serve`` processes that all register the same files
(shared-storage model).  Partitioning is purely serving-side: each
backend request carries the ``rowgroups: [start, stop)`` header field
scoping it to one partition, so each backend's decoded-vector cache
warms exactly the partitions the placement assigns it.

Request path, per query::

    resolve -> partitions (placement.build_shard_map, cached)
            -> scatter: one RPC per partition, replicas tried in ring
               preference order with a per-shard deadline budget
            -> gather: ordered merge (repro.shard.merge) -> one frame

Failure semantics (docs/SHARDING.md is the contract):

- A replica that is unreachable / times out / answers ``overloaded`` or
  ``deadline_exceeded`` triggers **failover** to the next replica in
  preference order (``shard.failovers``), with the remaining deadline
  budget split across the replicas still untried.
- A partition with *no* answering replica degrades to quarantine
  tallies (its rows → ``values_quarantined``) in a ``partial: true``
  response (``shard.partial_responses``) — never a failed request.
- ``bad_request`` / ``not_found`` / ``corrupt`` / ``too_large`` are the
  caller's or the data's fault and propagate immediately; retrying a
  different replica would return the same answer.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field as dataclass_field

from repro import obs
from repro.server import protocol
from repro.server.client import ServerClient, ServerError
from repro.server.ops import (
    OpError,
    OpResult,
    _columns_projection,
    _optional_str,
    _range_bounds,
    _require_str,
)
from repro.server.registry import DatasetRegistry
from repro.server.service import ReproServer, ServerConfig, ServerHandle
from repro.shard.merge import (
    PartResult,
    merge_scan,
    merge_scan_columns,
    merge_sum,
)
from repro.shard.placement import (
    HashRing,
    Partition,
    build_shard_map,
)
from repro.shard.pool import BackendPool

#: Error codes that are the request's (or the data's) fault: every
#: replica would answer identically, so failover must not mask them.
_NON_RETRYABLE = frozenset(
    {
        protocol.ERR_BAD_REQUEST,
        protocol.ERR_NOT_FOUND,
        protocol.ERR_TOO_LARGE,
        protocol.ERR_CORRUPT,
    }
)


@dataclass(frozen=True)
class RouterConfig:
    """Every routing knob in one place (mirrors ``ServerConfig``)."""

    #: Backend addresses, ``host:port`` each.
    backends: tuple[str, ...] = ()
    #: Replicas per partition (capped at the backend count).
    replication: int = 2
    #: Row-groups per partition: the scatter granularity.
    partition_rowgroups: int = 1
    #: Concurrent backend RPCs across all in-flight requests.
    fanout: int = 8
    #: Virtual nodes per backend on the consistent-hash ring.
    vnodes: int = 64
    #: Deadline headroom reserved for the router's own merge + framing.
    shard_margin_ms: float = 50.0
    #: Never hand a backend a budget below this (a too-small budget
    #: fails replicas that are merely warming up).
    min_shard_budget_ms: float = 100.0
    #: TCP connect timeout towards backends.
    connect_timeout_s: float = 5.0
    #: Startup dataset discovery retries per backend (backends may still
    #: be binding when the router starts — CI races on this).
    discovery_retries: int = 5
    #: The frontend (client-facing) server configuration.
    server: ServerConfig = dataclass_field(default_factory=ServerConfig)

    def __post_init__(self) -> None:
        if not self.backends:
            raise ValueError("a router needs at least one backend")
        if self.replication < 1:
            raise ValueError(
                f"replication must be >= 1, got {self.replication}"
            )


class ShardRouter:
    """Scatter-gather routing over a fixed backend set.

    Construction is eager and blocking: it connects to every backend,
    verifies they serve *identical* datasets, and builds the shard map.
    Serve it with :class:`RouterHandle` (threaded) or embed
    ``router.server`` in an event loop directly.
    """

    def __init__(self, config: RouterConfig) -> None:
        self.config = config
        self.pool = BackendPool(
            config.backends, connect_timeout_s=config.connect_timeout_s
        )
        self._describe = self._discover()
        self.ring = HashRing(list(config.backends), vnodes=config.vnodes)
        self.shard_map = build_shard_map(
            self._describe,
            self.ring,
            min(config.replication, len(config.backends)),
            config.partition_rowgroups,
        )
        #: dataset -> column -> rowgroup_rows, parsed once for routing.
        #: (build_shard_map above already validated these shapes.)
        self._columns: dict[str, dict[str, list[int]]] = {}
        for dataset, columns in self._describe.items():
            if not isinstance(columns, dict):
                raise ValueError(f"malformed describe for {dataset!r}")
            parsed: dict[str, list[int]] = {}
            for column, meta in columns.items():
                rows = (
                    meta.get("rowgroup_rows")
                    if isinstance(meta, dict)
                    else None
                )
                if not isinstance(rows, list):
                    raise ValueError(
                        f"malformed describe for {dataset!r}/{column!r}"
                    )
                parsed[column] = [int(r) for r in rows]
            self._columns[dataset] = parsed
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, config.fanout),
            thread_name_prefix="repro-shard",
        )
        # The frontend: a stock ReproServer (framing, admission,
        # deadlines, drain) over an empty registry, with the query ops
        # swapped for scatter-gather versions.  compress/decompress
        # stay local — they never touch the registry.
        self.server = ReproServer(DatasetRegistry(), config.server)
        self.server.register_op("datasets", self._op_datasets)
        self.server.register_op("scan", self._op_scan)
        self.server.register_op("sum", self._op_sum)
        self.server.register_op("comp", self._op_comp)
        obs.gauge_set("shard.backends_healthy", len(config.backends))

    # -- startup ------------------------------------------------------

    def _discover(self) -> dict[str, object]:
        """Fetch and cross-check every backend's ``datasets`` describe."""
        describes: list[tuple[str, dict[str, object]]] = []
        for address in self.config.backends:
            host, _, port = address.rpartition(":")
            with ServerClient(
                host,
                int(port),
                timeout_s=self.config.connect_timeout_s,
                connect_retries=self.config.discovery_retries,
                retry_backoff_s=0.2,
            ) as client:
                describes.append((address, client.datasets()))
        first_address, canonical = describes[0]
        if not canonical:
            raise ValueError(
                f"backend {first_address} serves no datasets; register "
                f"the same files on every backend before routing"
            )
        for address, describe in describes[1:]:
            if describe != canonical:
                raise ValueError(
                    f"backend {address} serves different datasets than "
                    f"{first_address}; all backends must register "
                    f"identical files (shared-storage model)"
                )
        return canonical

    def close(self) -> None:
        """Release scatter workers and pooled backend connections."""
        self._executor.shutdown(wait=False)
        self.pool.close()

    # -- resolution ---------------------------------------------------

    def _resolve(
        self, header: dict[str, object]
    ) -> tuple[str, str]:
        """Resolve (dataset, column), mirroring the registry's rules."""
        dataset = _require_str(header, "dataset")
        column = _optional_str(header, "column")
        columns = self._columns.get(dataset)
        if columns is None:
            raise OpError(
                protocol.ERR_NOT_FOUND,
                f"unknown dataset {dataset!r}; "
                f"registered: {sorted(self._columns)}",
            )
        if column is None:
            if len(columns) == 1:
                return dataset, next(iter(columns))
            raise OpError(
                protocol.ERR_NOT_FOUND,
                f"dataset {dataset!r} has {len(columns)} columns; "
                f"specify one of {sorted(columns)}",
            )
        if column not in columns:
            raise OpError(
                protocol.ERR_NOT_FOUND,
                f"unknown column {column!r} of dataset {dataset!r}; "
                f"have {sorted(columns)}",
            )
        return dataset, column

    def _partitions(
        self, dataset: str, column: str
    ) -> "list[tuple[Partition, tuple[str, ...]]]":
        return self.shard_map[(dataset, column)]

    # -- scatter ------------------------------------------------------

    def _deadline(self, header: dict[str, object]) -> float:
        """The request's absolute deadline on the monotonic clock."""
        deadline_ms = header.get("deadline_ms")
        if not isinstance(deadline_ms, (int, float)) or isinstance(
            deadline_ms, bool
        ):
            deadline_ms = self.config.server.default_deadline_ms
        return time.monotonic() + float(deadline_ms) / 1000.0

    def _replica_order(self, replicas: "tuple[str, ...]") -> "list[str]":
        """Preference order with ejected backends demoted to last resort.

        Demoted, not dropped: if every replica is inside a cool-down the
        router still tries them (one may have just recovered) instead of
        silently degrading for the whole cool-down window.
        """
        available = [r for r in replicas if self.pool.available(r)]
        ejected = [r for r in replicas if not self.pool.available(r)]
        return available + ejected

    def _call_partition(
        self,
        partition: Partition,
        replicas: "tuple[str, ...]",
        op: str,
        fields: dict[str, object],
        deadline: float,
    ) -> PartResult:
        """One partition's RPC, with replica failover and budgeting."""
        order = self._replica_order(replicas)
        for index, address in enumerate(order):
            remaining_ms = (deadline - time.monotonic()) * 1000.0
            if remaining_ms <= 0:
                break
            tries_left = len(order) - index
            budget_ms = max(
                (remaining_ms - self.config.shard_margin_ms) / tries_left,
                self.config.min_shard_budget_ms,
            )
            budget_ms = min(budget_ms, remaining_ms)
            obs.counter_add("shard.scatter_rpcs")
            try:
                client = self.pool.checkout(address)
            except OSError:
                # Covers ServerUnavailableError: the backend cannot even
                # be dialled.
                self.pool.report_failure(address)
                if index + 1 < len(order):
                    obs.counter_add("shard.failovers")
                continue
            try:
                response, payload = client.request(
                    op, fields, deadline_ms=budget_ms
                )
            except ServerError as exc:
                # The backend answered — the connection is healthy and
                # reusable; only the verdict decides what happens next.
                self.pool.checkin(address, client)
                if exc.code in _NON_RETRYABLE:
                    raise OpError(exc.code, exc.message) from exc
                if index + 1 < len(order):
                    obs.counter_add("shard.failovers")
                continue
            except (ConnectionError, TimeoutError, OSError):
                # Includes a SIGKILLed backend mid-request: the framing
                # state of this connection is gone for good.
                self.pool.discard(client)
                self.pool.report_failure(address)
                if index + 1 < len(order):
                    obs.counter_add("shard.failovers")
                continue
            self.pool.checkin(address, client)
            self.pool.report_success(address)
            return PartResult(
                partition=partition, fields=response, payload=payload
            )
        obs.counter_add("shard.shards_missed")
        return PartResult(partition=partition, missing=True)

    def _scatter(
        self,
        placed: "list[tuple[Partition, tuple[str, ...]]]",
        op: str,
        base_fields: dict[str, object],
        deadline: float,
    ) -> "list[PartResult]":
        """Fan one request out across its partitions; gather in order."""
        with obs.span("shard.scatter"):
            futures: list[Future[PartResult]] = []
            for partition, replicas in placed:
                fields = dict(base_fields)
                fields["rowgroups"] = list(partition.rowgroups)
                futures.append(
                    self._executor.submit(
                        self._call_partition,
                        partition,
                        replicas,
                        op,
                        fields,
                        deadline,
                    )
                )
            parts = [future.result() for future in futures]
        if any(part.missing for part in parts):
            obs.counter_add("shard.partial_responses")
        return parts

    def _proxy(
        self,
        key: str,
        op: str,
        fields: dict[str, object],
        deadline: float,
        payload: bytes = b"",
    ) -> tuple[dict[str, object], bytes]:
        """Forward one whole request to a stable replica, with failover.

        Used for ops that cannot be partitioned (``comp``, and
        projections over columns with mismatched row-group layouts).
        Unlike a scatter partition there is no degraded shape for these,
        so exhausting every replica is a hard ``overloaded`` error.
        """
        replicas = self.ring.preference(
            key, min(self.config.replication, len(self.config.backends))
        )
        for index, address in enumerate(self._replica_order(replicas)):
            remaining_ms = (deadline - time.monotonic()) * 1000.0
            if remaining_ms <= 0:
                break
            obs.counter_add("shard.scatter_rpcs")
            try:
                client = self.pool.checkout(address)
            except OSError:
                self.pool.report_failure(address)
                obs.counter_add("shard.failovers")
                continue
            try:
                response, body = client.request(
                    op, fields, payload=payload, deadline_ms=remaining_ms
                )
            except ServerError as exc:
                self.pool.checkin(address, client)
                if exc.code in _NON_RETRYABLE:
                    raise OpError(exc.code, exc.message) from exc
                obs.counter_add("shard.failovers")
                continue
            except (ConnectionError, TimeoutError, OSError):
                self.pool.discard(client)
                self.pool.report_failure(address)
                obs.counter_add("shard.failovers")
                continue
            self.pool.checkin(address, client)
            self.pool.report_success(address)
            return response, body
        raise OpError(
            protocol.ERR_OVERLOADED,
            f"no replica of {key!r} answered within the deadline",
        )

    # -- op handlers (run on the frontend's worker threads) -----------

    def _op_datasets(
        self, header: dict[str, object], payload: bytes
    ) -> OpResult:
        return OpResult(fields={"datasets": self._describe})

    def _op_scan(
        self, header: dict[str, object], payload: bytes
    ) -> OpResult:
        deadline = self._deadline(header)
        names = _columns_projection(header)
        bounds = _range_bounds(header)
        if names is None:
            dataset, column = self._resolve(header)
            base: dict[str, object] = {
                "dataset": dataset, "column": column,
            }
            if bounds is not None:
                base["low"], base["high"] = bounds
            parts = self._scatter(
                self._partitions(dataset, column), "scan", base, deadline
            )
            fields, body = merge_scan(parts)
            return OpResult(fields=fields, payload=body)
        if header.get("column") is not None:
            raise OpError(
                protocol.ERR_BAD_REQUEST,
                "'column' and 'columns' are mutually exclusive",
            )
        dataset = _require_str(header, "dataset")
        columns = self._columns.get(dataset)
        if columns is None:
            raise OpError(
                protocol.ERR_NOT_FOUND,
                f"unknown dataset {dataset!r}; "
                f"registered: {sorted(self._columns)}",
            )
        for name in names:
            if name not in columns:
                raise OpError(
                    protocol.ERR_NOT_FOUND,
                    f"unknown column {name!r} of dataset {dataset!r}; "
                    f"have {sorted(columns)}",
                )
        if bounds is not None and len(names) != 1:
            raise OpError(
                protocol.ERR_BAD_REQUEST,
                "range bounds apply to a single projected column",
            )
        base = {"dataset": dataset, "columns": list(names)}
        if bounds is not None:
            base["low"], base["high"] = bounds
        layouts = {tuple(columns[name]) for name in names}
        if len(layouts) != 1:
            # Columns with different row-group layouts cannot share one
            # rowgroups field; serve the projection whole from a stable
            # replica instead of scattering.
            response, body = self._proxy(
                f"{dataset}/*", "scan", base, deadline
            )
            return OpResult(
                fields={
                    k: v
                    for k, v in response.items()
                    if k not in ("ok", "id")
                },
                payload=body,
            )
        parts = self._scatter(
            self._partitions(dataset, names[0]), "scan", base, deadline
        )
        fields, body = merge_scan_columns(parts, len(names))
        return OpResult(fields=fields, payload=body)

    def _op_sum(
        self, header: dict[str, object], payload: bytes
    ) -> OpResult:
        deadline = self._deadline(header)
        dataset, column = self._resolve(header)
        bounds = _range_bounds(header)
        base: dict[str, object] = {"dataset": dataset, "column": column}
        if bounds is not None:
            base["low"], base["high"] = bounds
        parts = self._scatter(
            self._partitions(dataset, column), "sum", base, deadline
        )
        return OpResult(fields=merge_sum(parts))

    def _op_comp(
        self, header: dict[str, object], payload: bytes
    ) -> OpResult:
        deadline = self._deadline(header)
        dataset, column = self._resolve(header)
        fields: dict[str, object] = {"dataset": dataset, "column": column}
        codec = _optional_str(header, "codec")
        if codec is not None:
            fields["codec"] = codec
        response, _ = self._proxy(
            f"{dataset}/{column}", "comp", fields, deadline
        )
        return OpResult(
            fields={
                k: v for k, v in response.items() if k not in ("ok", "id")
            }
        )


class RouterHandle:
    """A router serving on a dedicated event-loop thread.

    The synchronous-caller mirror of
    :class:`~repro.server.service.ServerHandle`: construction blocks
    until backends are discovered and the frontend socket is bound;
    :meth:`shutdown` drains the frontend, then releases the scatter
    executor and the backend pool.
    """

    def __init__(self, config: RouterConfig) -> None:
        self.router = ShardRouter(config)
        self._handle = ServerHandle(server=self.router.server)

    @property
    def host(self) -> str:
        return self._handle.host

    @property
    def port(self) -> int:
        return self._handle.port

    def shutdown(self, timeout_s: float = 60.0) -> None:
        self._handle.shutdown(timeout_s=timeout_s)
        self.router.close()


def run_router_in_thread(config: RouterConfig) -> RouterHandle:
    """Start a router on a background thread (bound and discovered on
    return)."""
    return RouterHandle(config)
