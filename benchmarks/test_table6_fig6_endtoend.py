"""E9 — Table 6 / Figure 6: end-to-end query speed in the engine.

The paper integrates every codec into Tectorwise and runs SCAN, SUM and
COMP over five datasets (Gov/26, City-Temp, Food-Prices, Blockchain-tr,
NYC/29) scaled up by concatenation, plus a multi-core scaling test.

Here each codec feeds the vectorized engine of :mod:`repro.query`; the
dataset is scaled by concatenation to several row-groups; threads map to
this machine's cores (DESIGN.md substitution 5: 1/2 threads instead of
1/8/16).

Shape claims asserted:

- ALP SCAN and SUM beat every other compressed format on every dataset,
- SUM costs more than SCAN (aggregation work on top),
- COMP: ALP compresses faster than the XOR codecs,
- PDE cannot compress NYC/29 (compressed size >= raw — the paper's
  Figure 6 note).
"""

from __future__ import annotations

import os

import numpy as np

from repro.bench.harness import time_callable
from repro.bench.report import format_table, shape_check
from repro.data import ENDTOEND_DATASETS, get_dataset
from repro.query.engine import (
    comp_query,
    run_partitioned,
    scan_query,
    sum_query,
)
from repro.query.sources import make_source

CODECS = ("alp", "uncompressed", "pde", "patas", "gorilla", "chimp", "chimp128", "zlib(gp)")

#: Values per dataset after scale-up (paper: 1B; scaled to the Python
#: substrate — several row-groups so scheme selection and metadata are
#: exercised).
SCALE_N = int(os.environ.get("REPRO_E2E_N", 204_800))


def _scaled(name: str) -> np.ndarray:
    base = get_dataset(name, n=min(SCALE_N, 51_200))
    reps = (SCALE_N + base.size - 1) // base.size
    return np.tile(base, reps)[:SCALE_N]


def _measure():
    results = {}
    for name in ENDTOEND_DATASETS:
        values = _scaled(name)
        per_codec = {}
        for codec in CODECS:
            source = make_source(codec, values)
            scan = time_callable(
                lambda: scan_query(source), values.size, repeats=2, warmup=0
            )
            sum_ = time_callable(
                lambda: sum_query(source), values.size, repeats=2, warmup=0
            )
            scan2 = time_callable(
                lambda: run_partitioned(source, scan_query, threads=2),
                values.size,
                repeats=2,
                warmup=0,
            )
            if codec == "uncompressed":
                comp_speed = float("nan")
            else:
                comp = time_callable(
                    lambda codec=codec: comp_query(codec, values),
                    values.size,
                    repeats=1,
                    warmup=0,
                )
                comp_speed = comp.values_per_second
            per_codec[codec] = {
                "scan1": scan.values_per_second,
                "scan2": scan2.values_per_second,
                "sum1": sum_.values_per_second,
                "comp": comp_speed,
                "bits": source.compressed_bits / values.size
                if source.compressed_bits
                else 64.0,
            }
        results[name] = per_codec
    return results


def test_table6_fig6_endtoend(benchmark, emit):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    rows = []
    for name in ENDTOEND_DATASETS:
        for codec in CODECS:
            r = results[name][codec]
            rows.append(
                [
                    f"{name} / {codec}",
                    r["bits"],
                    r["scan1"] / 1e6,
                    r["scan2"] / 1e6,
                    r["sum1"] / 1e6,
                    r["comp"] / 1e6,
                ]
            )

    xor_codecs = ("patas", "gorilla", "chimp", "chimp128")
    # PDE's decode on a dataset it cannot compress degenerates to copying
    # the exception stream, which is not a compressed scan; the paper
    # likewise excludes PDE from NYC/29.  The zlib baseline's C core is
    # compared in EXPERIMENTS.md rather than asserted here.
    pde_fair = [
        d for d in ENDTOEND_DATASETS if results[d]["pde"]["bits"] < 60.0
    ]
    checks = [
        shape_check(
            "ALP SCAN fastest vs XOR codecs on every dataset (>= 5x)",
            all(
                results[d]["alp"]["scan1"]
                >= 5 * max(results[d][c]["scan1"] for c in xor_codecs)
                for d in ENDTOEND_DATASETS
            ),
        ),
        shape_check(
            "ALP SUM fastest vs XOR codecs on every dataset (>= 5x)",
            all(
                results[d]["alp"]["sum1"]
                >= 5 * max(results[d][c]["sum1"] for c in xor_codecs)
                for d in ENDTOEND_DATASETS
            ),
        ),
        shape_check(
            "ALP SCAN and SUM beat PDE wherever PDE truly compresses",
            all(
                results[d]["alp"]["scan1"] >= results[d]["pde"]["scan1"]
                and results[d]["alp"]["sum1"] >= results[d]["pde"]["sum1"]
                for d in pde_fair
            ),
        ),
        # The per-value Python codecs run SCAN/SUM in the 0.5 Mv/s range
        # where two-repeat timings carry ~50% noise; the aggregation-work
        # claim is only meaningful on the stable vectorized sources, and
        # even those see ~30% swings when the box is contended.
        shape_check(
            "SUM is never meaningfully faster than SCAN (alp/uncompressed)",
            all(
                results[d][c]["sum1"] <= results[d][c]["scan1"] * 1.35
                for d in ENDTOEND_DATASETS
                for c in ("alp", "uncompressed")
            ),
        ),
        shape_check(
            "ALP COMP faster than every XOR codec on every dataset",
            all(
                results[d]["alp"]["comp"]
                >= max(results[d][c]["comp"] for c in xor_codecs)
                for d in ENDTOEND_DATASETS
            ),
        ),
        shape_check(
            "PDE cannot compress NYC/29 (>= 60 bits/value)",
            results["NYC/29"]["pde"]["bits"] >= 60.0,
        ),
    ]

    report = format_table(
        [
            "dataset / codec",
            "bits/val",
            "SCAN-1 Mv/s",
            "SCAN-2 Mv/s (2 thr)",
            "SUM-1 Mv/s",
            "COMP Mv/s",
        ],
        rows,
        float_format="{:.2f}",
        title=f"Table 6 / Figure 6 — end-to-end queries (n={SCALE_N} per "
        "dataset, vectorized engine)",
    )
    report += "\n" + "\n".join(checks)
    emit("table6_fig6_endtoend", report)
    assert all(c.startswith("[PASS]") for c in checks), "\n" + "\n".join(checks)
