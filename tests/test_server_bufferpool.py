"""BufferPool ownership protocol, pooled cache fills, zero-alloc serving."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import LARGE_ALLOC_BYTES, traced_large_allocs
from repro.server.bufferpool import MAX_PER_BUCKET, BufferPool
from repro.server.cache import DecodedVectorCache
from repro.server.ops import build_ops
from repro.server.registry import DatasetRegistry
from repro.storage.columnfile import ColumnFileWriter


class TestAcquireRelease:
    def test_miss_then_hit(self):
        pool = BufferPool()
        first = pool.acquire(1000)
        assert first.dtype == np.float64 and first.size == 1000
        pool.release(first)
        second = pool.acquire(1000)
        assert second is first
        stats = pool.stats()
        assert (stats.hits, stats.misses, stats.outstanding) == (1, 1, 1)

    def test_distinct_sizes_use_distinct_buckets(self):
        pool = BufferPool()
        a, b = pool.acquire(10), pool.acquire(20)
        pool.release(a)
        pool.release(b)
        assert pool.acquire(20) is b
        assert pool.acquire(10) is a

    def test_outstanding_tracks_inflight(self):
        pool = BufferPool()
        buffers = [pool.acquire(64) for _ in range(5)]
        assert pool.stats().outstanding == 5
        for buf in buffers:
            pool.release(buf)
        assert pool.stats().outstanding == 0
        assert pool.stats().free_buffers == 5

    def test_byte_budget_caps_idle_bytes(self):
        pool = BufferPool(byte_budget=1000)
        small = pool.acquire(100)  # 800 bytes, fits
        big = pool.acquire(1000)  # 8000 bytes, never fits
        pool.release(small)
        pool.release(big)
        stats = pool.stats()
        assert stats.free_buffers == 1
        assert stats.free_bytes == 800
        assert stats.free_bytes <= stats.byte_budget

    def test_bucket_depth_is_capped(self):
        pool = BufferPool()
        buffers = [pool.acquire(8) for _ in range(MAX_PER_BUCKET + 5)]
        for buf in buffers:
            pool.release(buf)
        assert pool.stats().free_buffers == MAX_PER_BUCKET

    def test_clear_drops_idle_buffers(self):
        pool = BufferPool()
        pool.release(pool.acquire(50))
        pool.clear()
        assert pool.stats().free_buffers == 0
        assert pool.stats().free_bytes == 0

    def test_hit_rate(self):
        pool = BufferPool()
        pool.release(pool.acquire(10))
        pool.acquire(10)
        assert pool.stats().hit_rate == 0.5


class TestReleaseValidation:
    @pytest.mark.parametrize(
        "bad",
        [
            np.empty(10, dtype=np.float32),
            np.empty((5, 2), dtype=np.float64),
            np.empty(20, dtype=np.float64)[::2],
            np.empty(10, dtype=np.float64)[2:],
            b"not an array",
        ],
        ids=["dtype", "2d", "strided", "view", "not-array"],
    )
    def test_unreturnable_buffers_rejected(self, bad):
        pool = BufferPool()
        with pytest.raises(ValueError, match="release"):
            pool.release(bad)

    def test_read_only_buffer_rejected(self):
        pool = BufferPool()
        buf = pool.acquire(10)
        buf.setflags(write=False)
        with pytest.raises(ValueError, match="release"):
            pool.release(buf)

    def test_transfer_forgets_without_recycling(self):
        pool = BufferPool()
        buf = pool.acquire(77)
        pool.transfer(buf)
        stats = pool.stats()
        assert stats.outstanding == 0
        assert stats.free_buffers == 0
        # A transferred buffer is never handed out again.
        assert pool.acquire(77) is not buf


class TestCacheLoadInto:
    def test_miss_fills_pooled_buffer_and_transfers(self):
        pool = BufferPool()
        cache = DecodedVectorCache(pool=pool)
        filled = []

        def fill(out):
            out[...] = 42.0
            filled.append(out)

        resident = cache.load_into("key", 500, fill)
        assert resident is filled[0]
        assert not resident.flags.writeable  # cache residents are shared
        assert np.all(resident == 42.0)
        # Ownership moved to the cache: nothing outstanding, nothing on
        # the free list to be scribbled over.
        stats = pool.stats()
        assert stats.outstanding == 0
        assert stats.free_buffers == 0

    def test_hit_skips_the_pool(self):
        pool = BufferPool()
        cache = DecodedVectorCache(pool=pool)
        cache.load_into("key", 100, lambda out: out.fill(1.0))
        misses_before = pool.stats().misses
        again = cache.load_into(
            "key", 100, lambda out: pytest.fail("fill on a hit")
        )
        assert np.all(again == 1.0)
        assert pool.stats().misses == misses_before

    def test_fill_exception_returns_buffer_to_pool(self):
        pool = BufferPool()
        cache = DecodedVectorCache(pool=pool)

        def boom(out):
            raise RuntimeError("corrupt row-group")

        with pytest.raises(RuntimeError):
            cache.load_into("key", 200, boom)
        stats = pool.stats()
        assert stats.outstanding == 0
        assert stats.free_buffers == 1  # released, writable, reusable
        recycled = pool.acquire(200)
        assert recycled.flags.writeable

    def test_put_exception_returns_buffer_to_pool(self, monkeypatch):
        # Regression (found by RL9): the insertion used to sit outside
        # the try that released the buffer, so a put() failure leaked a
        # pooled buffer — and the handler returned it read-only, which
        # release() rejects.
        pool = BufferPool()
        cache = DecodedVectorCache(pool=pool)

        def broken_put(key, values):
            # Fail the way the real put() can: after freezing the array.
            values.setflags(write=False)
            raise MemoryError("insertion failed")

        monkeypatch.setattr(cache, "put", broken_put)
        with pytest.raises(MemoryError):
            cache.load_into("key", 200, lambda out: out.fill(4.0))
        stats = pool.stats()
        assert stats.outstanding == 0
        assert stats.free_buffers == 1
        assert pool.acquire(200).flags.writeable

    def test_over_budget_fill_goes_back_to_pool(self):
        pool = BufferPool()
        cache = DecodedVectorCache(byte_budget=100, pool=pool)
        result = cache.load_into("big", 500, lambda out: out.fill(2.0))
        assert np.all(result == 2.0)
        # put() returned the uncached array itself; the caller keeps it,
        # so it must have been transferred, not recycled.
        assert pool.stats().free_buffers == 0

    def test_pool_less_cache_still_works(self):
        cache = DecodedVectorCache()
        got = cache.load_into("k", 50, lambda out: out.fill(3.0))
        assert np.all(got == 3.0)
        assert cache.get("k") is got


class TestZeroAllocServing:
    """Steady-state ops perform zero large allocations per request.

    Asserted in-process at the op-handler layer (no sockets), with the
    tracemalloc peak-delta counter the bench records use: after warmup,
    a ``sum`` request — encoded-domain, tiny response — must allocate
    nothing at or above :data:`LARGE_ALLOC_BYTES`, and a ``scan``
    request nothing beyond the one documented response-serialization
    copy.
    """

    @pytest.fixture(scope="class")
    def served(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("serve") / "col.alpc"
        rng = np.random.default_rng(2)
        values = np.round(rng.normal(15.0, 4.0, 120_000), 2)
        with ColumnFileWriter(path, rowgroup_vectors=10) as writer:
            writer.write_values(values)
        pool = BufferPool()
        cache = DecodedVectorCache(pool=pool)
        registry = DatasetRegistry(cache=cache, mmap=True, pool=pool)
        registry.register_file(path, name="col")
        ops = build_ops(registry)
        yield registry, ops, pool
        registry.column("col", None).reader.close()

    def test_sum_steady_state_allocates_nothing_large(self, served):
        _, ops, _ = served
        request = {"dataset": "col"}
        ops["sum"](request, b"")  # warm zone maps / plan caches
        allocs = traced_large_allocs(lambda: ops["sum"](request, b""))
        assert allocs == 0

    def test_scan_steady_state_allocates_only_the_response(self, served):
        registry, ops, pool = served
        request = {"dataset": "col"}
        response_bytes = ops["scan"](request, b"").payload
        hits_before = pool.stats().hits
        allocs = traced_large_allocs(lambda: ops["scan"](request, b""))
        # The serialized response frame is the one remaining large
        # allocation; the decode target itself came from the pool.
        budget = len(response_bytes) // LARGE_ALLOC_BYTES + 2
        assert allocs <= budget
        assert pool.stats().hits > hits_before  # buffers recycled

    def test_scan_without_pool_allocates_more(self, served):
        # Control: the same scan with the pool detached allocates the
        # decode target on top of the response copy.
        registry, ops, pool = served
        column = registry.column("col", None)
        request = {"dataset": "col"}
        response_bytes = ops["scan"](request, b"").payload
        pooled = traced_large_allocs(lambda: ops["scan"](request, b""))
        column.pool = None
        try:
            unpooled = traced_large_allocs(lambda: ops["scan"](request, b""))
        finally:
            column.pool = pool
        # Detached, the decode target is a fresh full-column allocation
        # on top of the response copy.
        assert unpooled > pooled
        assert len(response_bytes) > LARGE_ALLOC_BYTES
