"""Columnar storage: serialization and a skippable column-file format.

The paper's central systems argument for lightweight encodings is that —
unlike block-based general-purpose compression — one can *skip through*
compressed data at vector granularity, enabling predicate push-down in
scans.  This subpackage makes that concrete:

- :mod:`repro.storage.serializer` — byte-level (de)serialization of
  compressed row-groups (every dataclass in :mod:`repro.core` has an
  exact binary layout here),
- :mod:`repro.storage.columnfile` — an on-disk column format with
  per-row-group and per-vector zone maps, offset indexes, and a scan
  API that skips non-qualifying row-groups/vectors without touching
  (let alone decompressing) their bytes,
- :mod:`repro.storage.schema` / :mod:`repro.storage.tablefile` —
  format v4: schema-described multi-column tables (null bitmaps, int64
  and string columns, per-column chunk offsets inside each row-group)
  with typed zone maps; the table reader also opens v2/v3 files as
  one-column tables,
- :mod:`repro.storage.integrity` / :mod:`repro.storage.errors` —
  CRC32C checksums (format v3) and the typed corruption errors the
  verifying read path raises,
- :mod:`repro.storage.verify` — section-by-section integrity walks and
  copy-intact-row-groups repair (``alp-repro verify`` / ``repair``).

See ``docs/STORAGE.md`` for the v3 byte layout and the quarantine
semantics of degraded reads.
"""

from repro.storage.dataset_dir import DatasetReader, write_dataset
from repro.storage.columnfile import (
    ColumnFileReader,
    ColumnFileWriter,
    QuarantinedRowGroup,
    RowGroupMeta,
    ScanReport,
    VectorZone,
)
from repro.storage.schema import Column, Schema
from repro.storage.tablefile import (
    ChunkZone,
    QuarantinedChunk,
    TableColumnReader,
    TableFileReader,
    TableFileWriter,
    TableScanReport,
    file_format_version,
)
from repro.storage.errors import (
    CorruptFileError,
    CorruptRowGroupError,
    IntegrityError,
)
from repro.storage.integrity import crc32c
from repro.storage.verify import (
    DatasetVerifyReport,
    FileVerifyReport,
    RepairReport,
    repair_column_file,
    verify_column_file,
    verify_dataset,
    verify_path,
)
from repro.storage.serializer import (
    deserialize_rowgroup,
    serialize_rowgroup,
)
from repro.storage.serializer_f32 import (
    deserialize_float_column,
    serialize_float_column,
)

__all__ = [
    "ChunkZone",
    "Column",
    "ColumnFileReader",
    "ColumnFileWriter",
    "CorruptFileError",
    "CorruptRowGroupError",
    "DatasetReader",
    "DatasetVerifyReport",
    "FileVerifyReport",
    "IntegrityError",
    "QuarantinedChunk",
    "QuarantinedRowGroup",
    "RepairReport",
    "RowGroupMeta",
    "ScanReport",
    "Schema",
    "TableColumnReader",
    "TableFileReader",
    "TableFileWriter",
    "TableScanReport",
    "VectorZone",
    "crc32c",
    "deserialize_float_column",
    "deserialize_rowgroup",
    "file_format_version",
    "repair_column_file",
    "serialize_float_column",
    "serialize_rowgroup",
    "verify_column_file",
    "verify_dataset",
    "verify_path",
    "write_dataset",
]
