"""Tests for parallel compression and automatic codec selection."""

import math

import numpy as np
import pytest

from repro.core.autotune import (
    choose_codec,
    compress_auto,
    decompress_auto,
)
from repro.core.compressor import compress, compress_parallel, decompress
from repro.data import get_dataset


def bitwise_equal(a, b):
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return a.shape == b.shape and np.array_equal(
        a.view(np.uint64), b.view(np.uint64)
    )


class TestCompressParallel:
    def test_bit_identical_to_serial(self):
        values = get_dataset("Stocks-USA", n=320_000)
        serial = compress(values)
        parallel = compress_parallel(values, threads=2)
        assert parallel.size_bits() == serial.size_bits()
        assert len(parallel.rowgroups) == len(serial.rowgroups)
        assert bitwise_equal(decompress(parallel), values)

    def test_single_rowgroup_falls_back(self):
        values = np.round(np.random.default_rng(0).uniform(0, 9, 5000), 1)
        column = compress_parallel(values, threads=4)
        assert bitwise_equal(decompress(column), values)

    def test_stats_preserved(self):
        values = get_dataset("City-Temp", n=250_000)
        parallel = compress_parallel(values, threads=2)
        stats = parallel.stats
        assert stats.vectors_encoded == sum(
            len(rg.alp.vectors) if rg.alp else len(rg.rd.vectors)
            for rg in parallel.rowgroups
        )

    def test_mixed_schemes_parallel(self):
        decimal = np.round(
            np.random.default_rng(1).uniform(0, 100, 102_400), 1
        )
        real = np.random.default_rng(2).uniform(0, 1, 102_400) * math.pi
        values = np.concatenate([decimal, real])
        column = compress_parallel(values, threads=2)
        assert {rg.scheme for rg in column.rowgroups} == {"alp", "alprd"}
        assert bitwise_equal(decompress(column), values)


class TestChooseCodec:
    def test_decimal_data_picks_alp_family(self):
        values = get_dataset("Dew-Temp", n=30_000)
        choice = choose_codec(values)
        assert choice.name in ("alp", "lwc+alp")
        assert choice.projected_bits_per_value < 30

    def test_duplicate_heavy_picks_cascade(self):
        values = get_dataset("Gov/26", n=120_000)
        choice = choose_codec(values)
        assert choice.name == "lwc+alp"

    def test_gps_radians_pick_pi(self):
        values = get_dataset("POI-lat-gps", n=30_000)
        choice = choose_codec(values)
        assert choice.name == "alp-pi"

    def test_full_precision_radians_do_not_pick_pi(self):
        values = get_dataset("POI-lat", n=30_000)
        choice = choose_codec(values)
        assert choice.name != "alp-pi"
        assert choice.trials["alp-pi"] == float("inf")

    def test_trials_reported_for_all_candidates(self):
        values = get_dataset("City-Temp", n=20_000)
        choice = choose_codec(values)
        assert set(choice.trials) == {"alp", "lwc+alp", "alp-pi"}


class TestCompressAuto:
    @pytest.mark.parametrize(
        "dataset", ["City-Temp", "Gov/26", "POI-lat-gps", "POI-lat"]
    )
    def test_roundtrip(self, dataset):
        values = get_dataset(dataset, n=40_000)
        encoded = compress_auto(values)
        assert bitwise_equal(decompress_auto(encoded), values)
        assert 0 < encoded.bits_per_value() < 64

    def test_auto_never_much_worse_than_plain_alp(self):
        for dataset in ("City-Temp", "NYC/29", "Gov/40"):
            values = get_dataset(dataset, n=40_000)
            auto_bits = compress_auto(values).bits_per_value()
            plain_bits = compress(values).bits_per_value()
            assert auto_bits <= plain_bits * 1.1, dataset
